//! `streamer-repro` — workspace facade for the SC'23 reproduction of
//! *CXL Memory as Persistent Memory for Disaggregated HPC: A Practical
//! Approach*.
//!
//! This crate re-exports the workspace's public APIs under one roof so the
//! examples and integration tests (and downstream users who just want "the
//! whole thing") can depend on a single crate:
//!
//! * [`cxl_pmem`] — the CXL-as-PMem runtime (the paper's contribution).
//! * [`pmem`] — the PMDK-style persistent object store.
//! * [`cxl`] — the CXL protocol/device model (Type-3 endpoint, FPGA prototype,
//!   switch pooling, multi-headed sharing).
//! * [`memsim`] — the calibrated analytical memory-system model.
//! * [`numa`] — topology, affinity and memory-binding policies.
//! * [`stream`] — STREAM / STREAM-PMem kernels and the simulated runner.
//! * [`streamer`] — the evaluation harness regenerating every figure/table.
//!
//! # Example
//!
//! Bring up the paper's Setup #1 and ask the model for a Triad point on the
//! CXL expander — the one-liner version of `examples/quickstart.rs`:
//!
//! ```
//! use streamer_repro::cxl_pmem::{AccessMode, CxlPmemRuntime};
//! use streamer_repro::numa::AffinityPolicy;
//! use streamer_repro::stream::{Kernel, SimulatedStream, StreamConfig};
//!
//! let runtime = CxlPmemRuntime::setup1();
//! let placement = runtime.place(&AffinityPolicy::SingleSocket(0), 10).unwrap();
//! let stream = SimulatedStream::new(&runtime, StreamConfig::paper());
//! let point = stream
//!     .simulate(Kernel::Triad, &placement, 2, AccessMode::AppDirect)
//!     .unwrap();
//! assert!(point.bandwidth_gbs > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use cxl;
pub use cxl_pmem;
pub use memsim;
pub use numa;
pub use pmem;
pub use streamer;

/// The STREAM / STREAM-PMem crate (named `stream-bench` on crates.io-style
/// naming; re-exported as `stream` for readability).
pub use stream_bench as stream;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // A single line touching each re-export keeps the facade honest.
        let runtime = crate::cxl_pmem::CxlPmemRuntime::setup1();
        assert_eq!(runtime.topology().nodes().len(), 3);
        assert_eq!(crate::stream::Kernel::Triad.figure_number(), 8);
        assert_eq!(crate::streamer::groups::TestGroup::ALL.len(), 5);
        // The checkpoint subsystem (and the crash-matrix dimensions) are
        // reachable through the facade.
        assert_eq!(crate::pmem::CheckpointPhase::ALL.len(), 4);
        assert_eq!(crate::pmem::CrashPoint::ALL.len(), 4);
        // So are the disaggregation subsystem and its scenario group.
        let cluster = crate::cxl_pmem::DisaggregatedCluster::new(
            "facade",
            crate::cxl::CoherenceMode::SoftwareManaged,
        );
        assert_eq!(cluster.ports(), 0);
        assert_eq!(crate::streamer::RestartScenario::ALL.len(), 4);
        // And the adaptive tiering engine (tracker, residency, sweep grid).
        let tracker = crate::cxl_pmem::AccessTracker::new(4096, 1024);
        tracker.record_read(0, 4096);
        assert_eq!(tracker.chunk_count(), 4);
        assert_eq!(crate::pmem::ResidencyMap::map_size(4), 32 + 16);
        assert_eq!(crate::streamer::tiering::DATASETS_GIB.len(), 6);
    }
}
