//! `streamer-repro` — workspace facade for the SC'23 reproduction of
//! *CXL Memory as Persistent Memory for Disaggregated HPC: A Practical
//! Approach*.
//!
//! This crate re-exports the workspace's public APIs under one roof so the
//! examples and integration tests (and downstream users who just want "the
//! whole thing") can depend on a single crate:
//!
//! * [`cxl_pmem`] — the CXL-as-PMem runtime (the paper's contribution).
//! * [`pmem`] — the PMDK-style persistent object store.
//! * [`cxl`] — the CXL protocol/device model (Type-3 endpoint, FPGA prototype,
//!   switch pooling, multi-headed sharing).
//! * [`memsim`] — the calibrated analytical memory-system model.
//! * [`numa`] — topology, affinity and memory-binding policies.
//! * [`stream`] — STREAM / STREAM-PMem kernels and the simulated runner.
//! * [`streamer`] — the evaluation harness regenerating every figure/table.
//!
//! For the common entry points there is a [`prelude`]: one glob import that
//! brings in the runtime builder, the disaggregated cluster, checkpointing,
//! tiering, admission control and the versioned object store.
//!
//! # Example
//!
//! Bring up the paper's Setup #1 and ask the model for a Triad point on the
//! CXL expander — the one-liner version of `examples/quickstart.rs`:
//!
//! ```
//! use streamer_repro::prelude::*;
//!
//! let runtime = RuntimeBuilder::setup1().build();
//! let placement = runtime.place(&AffinityPolicy::SingleSocket(0), 10).unwrap();
//! let stream = SimulatedStream::new(&runtime, StreamConfig::paper());
//! let point = stream
//!     .simulate(Kernel::Triad, &placement, 2, AccessMode::AppDirect)
//!     .unwrap();
//! assert!(point.bandwidth_gbs > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use cxl;
pub use cxl_pmem;
pub use memsim;
pub use numa;
pub use pmem;
pub use streamer;

/// The STREAM / STREAM-PMem crate (named `stream-bench` on crates.io-style
/// naming; re-exported as `stream` for readability).
pub use stream_bench as stream;

/// The common entry points, importable in one line.
///
/// The prelude names exactly the types a typical program touches on its way
/// from "build a runtime" to "serve versioned objects out of pooled far
/// memory": the [`RuntimeBuilder`](crate::cxl_pmem::RuntimeBuilder) front
/// door, thread placement, the
/// disaggregated cluster with its per-host segment/store handles, the
/// checkpoint and object-store subsystems with their crash-injection
/// dimensions, adaptive tiering, QoS admission, and the STREAM harness.
/// Everything else stays one hop away behind the per-crate re-exports
/// ([`cxl_pmem`], [`pmem`], ...).
///
/// Deprecated items are deliberately excluded, so `use
/// streamer_repro::prelude::*;` never drags a deprecation warning into a
/// downstream build:
///
/// ```
/// #![deny(warnings)]
/// use streamer_repro::prelude::*;
///
/// let runtime = RuntimeBuilder::setup2().build();
/// assert_eq!(runtime.setup(), SetupKind::XeonGoldDdr4);
/// ```
pub mod prelude {
    pub use crate::cxl::CoherenceMode;
    pub use crate::cxl_pmem::{
        AccessMode, AdmissionController, ClassConfig, ClusterError, CxlPmemRuntime, Decision,
        DisaggregatedCluster, HostSegment, HostStore, QosClass, RuntimeBuilder, RuntimePreset,
        SetupKind, TierPolicy, TieredRegion,
    };
    pub use crate::numa::AffinityPolicy;
    pub use crate::pmem::{
        CheckpointCrash, CheckpointPhase, CheckpointRegion, CrashPoint, ObjectCrash, ObjectPhase,
        ObjectStore, PmemPool, StoreCheck,
    };
    pub use crate::stream::{Kernel, SimulatedStream, StreamConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // A single line touching each re-export keeps the facade honest.
        let runtime = crate::cxl_pmem::RuntimeBuilder::setup1().build();
        assert_eq!(runtime.topology().nodes().len(), 3);
        assert_eq!(crate::stream::Kernel::Triad.figure_number(), 8);
        assert_eq!(crate::streamer::groups::TestGroup::ALL.len(), 5);
        // The checkpoint subsystem (and the crash-matrix dimensions) are
        // reachable through the facade.
        assert_eq!(crate::pmem::CheckpointPhase::ALL.len(), 4);
        assert_eq!(crate::pmem::CrashPoint::ALL.len(), 4);
        // So are the disaggregation subsystem and its scenario group.
        let cluster = crate::cxl_pmem::DisaggregatedCluster::new(
            "facade",
            crate::cxl::CoherenceMode::SoftwareManaged,
        );
        assert_eq!(cluster.ports(), 0);
        assert_eq!(crate::streamer::RestartScenario::ALL.len(), 4);
        // And the adaptive tiering engine (tracker, residency, sweep grid).
        let tracker = crate::cxl_pmem::AccessTracker::new(4096, 1024);
        tracker.record_read(0, 4096);
        assert_eq!(tracker.chunk_count(), 4);
        assert_eq!(crate::pmem::ResidencyMap::map_size(4), 32 + 16);
        assert_eq!(crate::streamer::tiering::DATASETS_GIB.len(), 6);
        // And the versioned object store with its crash-injection dimensions,
        // plus the QoS admission front door.
        assert_eq!(crate::pmem::ObjectPhase::ALL.len(), 3);
        assert!(crate::pmem::ObjectStore::region_size(64, 256) > 0);
        assert!(crate::cxl_pmem::ClassConfig::closed().queue_depth == 0);
    }

    /// The prelude glob must resolve without ambiguity and must never
    /// re-export a deprecated item (the doctest on [`crate::prelude`] enforces
    /// the warning-free guarantee on a downstream-shaped build; this test
    /// keeps it honest from inside the crate, where `deny(deprecated)` turns
    /// any deprecated re-export's use into a compile error).
    #[test]
    #[deny(deprecated, unused_imports, ambiguous_glob_reexports)]
    fn prelude_is_glob_importable_and_deprecation_free() {
        use crate::prelude::*;

        let runtime = RuntimeBuilder::dcpmm_baseline().build();
        assert_eq!(runtime.setup(), SetupKind::SapphireRapidsDcpmm);
        assert_eq!(CrashPoint::ALL.len(), 4);
        assert_eq!(ObjectPhase::ALL.len(), 3);
        assert_eq!(CheckpointPhase::ALL.len(), 4);
        let _ = (
            AccessMode::AppDirect,
            CoherenceMode::SoftwareManaged,
            QosClass::Checkpoint,
            TierPolicy::CxlExpander,
            Kernel::Triad,
        );
        let cluster = DisaggregatedCluster::new("prelude", CoherenceMode::SoftwareManaged);
        assert_eq!(cluster.ports(), 0);
    }
}
