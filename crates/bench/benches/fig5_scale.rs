//! Figure 5: SCALE bandwidth vs thread count for test groups 1.(a)–2.(b).

use criterion::{criterion_group, criterion_main, Criterion};
use repro_bench::{generate_subfigure, print_figure};
use std::hint::black_box;
use stream_bench::Kernel;
use streamer::groups::TestGroup;

fn fig5_scale(c: &mut Criterion) {
    // Print the full figure data once so the bench log carries the series.
    print_figure(Kernel::Scale);
    let mut group = c.benchmark_group("fig5_scale");
    group.sample_size(10);
    for test_group in TestGroup::ALL {
        group.bench_function(format!("5{}", test_group.subfigure()), |b| {
            b.iter(|| black_box(generate_subfigure(Kernel::Scale, test_group)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig5_scale);
criterion_main!(benches);
