//! The headline comparison (§1.4 / §5): CXL-DDR4 vs published Optane DCPMM
//! bandwidth and vs local DDR4/DDR5.

use criterion::{criterion_group, criterion_main, Criterion};
use cxl_pmem::{AccessMode, RuntimeBuilder};
use numa::AffinityPolicy;
use std::hint::black_box;
use stream_bench::{Kernel, SimulatedStream, StreamConfig};
use streamer::headline_table;

fn dcpmm_comparison(c: &mut Criterion) {
    println!(
        "{}",
        headline_table().expect("headline table").to_markdown()
    );

    let cxl_runtime = RuntimeBuilder::setup1().build();
    let dcpmm_runtime = RuntimeBuilder::dcpmm_baseline().build();
    let mut group = c.benchmark_group("dcpmm_comparison");
    group.sample_size(10);
    for (name, runtime) in [("cxl_ddr4", &cxl_runtime), ("dcpmm", &dcpmm_runtime)] {
        group.bench_function(format!("{name}_triad_10t"), |b| {
            let stream = SimulatedStream::new(runtime, StreamConfig::paper());
            let placement = runtime
                .place(&AffinityPolicy::SingleSocket(0), 10)
                .expect("placement");
            b.iter(|| {
                black_box(
                    stream
                        .simulate(Kernel::Triad, &placement, 2, AccessMode::AppDirect)
                        .expect("simulation"),
                )
            })
        });
    }
    group.bench_function("headline_table", |b| {
        b.iter(|| black_box(headline_table().expect("headline table")))
    });
    group.finish();
}

criterion_group!(benches, dcpmm_comparison);
criterion_main!(benches);
