//! Figure 7: COPY bandwidth vs thread count for test groups 1.(a)–2.(b).

use criterion::{criterion_group, criterion_main, Criterion};
use repro_bench::{generate_subfigure, print_figure};
use std::hint::black_box;
use stream_bench::Kernel;
use streamer::groups::TestGroup;

fn fig7_copy(c: &mut Criterion) {
    print_figure(Kernel::Copy);
    let mut group = c.benchmark_group("fig7_copy");
    group.sample_size(10);
    for test_group in TestGroup::ALL {
        group.bench_function(format!("7{}", test_group.subfigure()), |b| {
            b.iter(|| black_box(generate_subfigure(Kernel::Copy, test_group)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig7_copy);
criterion_main!(benches);
