//! Ablations over the paper's §2.2 / §6 enhancement list: faster DDR behind
//! the FPGA, more DDR channels, and upgraded controller headroom.

use criterion::{criterion_group, criterion_main, Criterion};
use cxl_pmem::{AccessMode, CxlPmemRuntime, RuntimeBuilder};
use numa::AffinityPolicy;
use std::hint::black_box;
use stream_bench::{Kernel, SimulatedStream, StreamConfig};

fn saturated_cxl_bandwidth(runtime: &CxlPmemRuntime) -> f64 {
    let stream = SimulatedStream::new(runtime, StreamConfig::paper());
    let placement = runtime
        .place(&AffinityPolicy::close(), 20)
        .expect("placement");
    stream
        .simulate(Kernel::Triad, &placement, 2, AccessMode::MemoryMode)
        .expect("simulation")
        .bandwidth_gbs
}

fn ablation(c: &mut Criterion) {
    let variants: Vec<(&str, CxlPmemRuntime)> = vec![
        ("baseline_ddr4_1333_x1", RuntimeBuilder::setup1().build()),
        (
            "ddr4_3200_x1",
            RuntimeBuilder::new()
                .machine(memsim::machines::sapphire_rapids_cxl_upgraded(2.4, 1))
                .build(),
        ),
        (
            "ddr4_3200_x4",
            RuntimeBuilder::new()
                .machine(memsim::machines::sapphire_rapids_cxl_upgraded(2.4, 4))
                .build(),
        ),
        (
            "ddr5_5600_x4",
            RuntimeBuilder::new()
                .machine(memsim::machines::sapphire_rapids_cxl_upgraded(4.2, 4))
                .build(),
        ),
    ];
    println!("Ablation: saturated CXL Memory-Mode Triad bandwidth (GB/s)");
    for (name, runtime) in &variants {
        println!("  {name:<24} {:.1}", saturated_cxl_bandwidth(runtime));
    }

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (name, runtime) in &variants {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(saturated_cxl_bandwidth(runtime)))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
