//! Tiering hot-path costs: what does the adaptive engine charge the STREAM
//! kernels, and how fast can it move chunks?
//!
//! Two numbers land in `BENCH_tiering.json` at the repository root and are
//! gated by the CI `bench-smoke` job:
//!
//! * **tracking overhead** — the full STREAM sequence with the tiering
//!   [`AccessTracker`] attached vs detached. The tracker is a handful of
//!   relaxed `fetch_add`s per worker window, so the overhead budget is <5 %.
//! * **migration throughput** — a functional [`TieredRegion`] bulk-moving
//!   every chunk between tiers through the resident `PinnedPool`
//!   (`PooledChunkExecutor` batching: one flush per chunk, one drain per
//!   destination tier, residency flips through the undo log).
//!
//! A third, unguarded number records what the analytical model charges for a
//! paper-scale 16 GiB rebalance (`Engine::migration_cost`), tying the
//! functional migrator to the simulated sweep in `streamer scenario tiering`.

use criterion::{criterion_group, criterion_main, Criterion};
use cxl_pmem::tiering::{AccessTracker, TierAssignment, TieredRegion};
use cxl_pmem::{CxlPmemRuntime, PooledChunkExecutor, RuntimeBuilder, TierPolicy};
use numa::{AffinityPolicy, PinnedPool};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use stream_bench::{Kernel, StreamConfig, VolatileStream};

const ELEMENTS: usize = 1_000_000;
const THREADS: usize = 8;
const NTIMES: usize = 5;
/// Repetitions per measurement; min-of-N on both sides cancels scheduler
/// noise, which matters because the gated overhead is a small difference.
const REPS: usize = 9;
/// Tracking granularity: 1 MiB tiering chunks over the 8 MB array span.
const TRACK_CHUNK: u64 = 1 << 20;

/// Functional-migration shape: 128 × 64 KiB = 8 MiB per tier slab.
const MIG_CHUNKS: usize = 128;
const MIG_CHUNK_LEN: u64 = 64 * 1024;

fn worker_pool(threads: usize) -> PinnedPool {
    let topo = numa::topology::sapphire_rapids_cxl();
    let placement = AffinityPolicy::close()
        .place(&topo, threads)
        .expect("placement");
    PinnedPool::new(&topo, &placement)
}

/// Seconds for the full `ntimes` × Copy→Scale→Add→Triad sequence.
fn sequence_seconds(stream: &mut VolatileStream, pool: &PinnedPool) -> f64 {
    let start = Instant::now();
    black_box(stream.run(pool));
    start.elapsed().as_secs_f64()
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

/// Builds the functional region used for migration throughput: every chunk
/// starts on the DRAM tier; both budgets can hold the whole region so a full
/// swing in either direction is legal.
fn migration_region(runtime: &CxlPmemRuntime) -> TieredRegion {
    let slab = MIG_CHUNKS as u64 * MIG_CHUNK_LEN;
    runtime
        .tiered_region(
            &[
                (TierPolicy::LocalDram { socket: 0 }, slab),
                (TierPolicy::CxlExpander, slab),
            ],
            "bench-tiering",
            slab,
            MIG_CHUNK_LEN,
        )
        .expect("region")
}

fn tiering_hotpath(c: &mut Criterion) {
    let config = StreamConfig {
        elements: ELEMENTS,
        ntimes: NTIMES,
        scalar: 3.0,
    };
    let pool = worker_pool(THREADS);

    // --- tracking overhead on the STREAM hot path --------------------------
    let tracker = Arc::new(AccessTracker::new(ELEMENTS as u64 * 8, TRACK_CHUNK));
    let mut untracked = VolatileStream::new(config);
    let mut tracked = VolatileStream::new(config);
    tracked.set_tracker(Some(tracker.clone()));
    // Interleave the reps so slow-clock drift hits both paths equally.
    let mut untracked_s = f64::INFINITY;
    let mut tracked_s = f64::INFINITY;
    for _ in 0..REPS {
        untracked_s = untracked_s.min(sequence_seconds(&mut untracked, &pool));
        tracked_s = tracked_s.min(sequence_seconds(&mut tracked, &pool));
    }
    let overhead_pct = (tracked_s / untracked_s - 1.0) * 100.0;
    let sampled: u64 = tracker.heat().iter().map(|h| h.total()).sum();
    assert!(sampled > 0, "the tracked run must have fed the tracker");
    println!(
        "tracking {ELEMENTS}e {THREADS}t ({} invocations)  untracked {:9.3} ms  \
         tracked {:9.3} ms  overhead {overhead_pct:+.2}%",
        NTIMES * Kernel::ALL.len(),
        untracked_s * 1e3,
        tracked_s * 1e3,
    );

    // --- functional migration throughput over the resident pool ------------
    let runtime = RuntimeBuilder::setup1().build();
    let workers = runtime
        .worker_pool_for(&AffinityPolicy::close(), THREADS)
        .expect("workers");
    let mut region = migration_region(&runtime);
    let all_on = |tier: usize| TierAssignment {
        tier_of: vec![tier; MIG_CHUNKS],
    };
    let bytes_per_swing = MIG_CHUNKS as u64 * MIG_CHUNK_LEN;
    let mut swing_s = f64::INFINITY;
    for _ in 0..REPS {
        for target in [1usize, 0] {
            let start = Instant::now();
            let stats = region
                .migrate_to(&all_on(target), &PooledChunkExecutor(&workers))
                .expect("migration");
            swing_s = swing_s.min(start.elapsed().as_secs_f64());
            assert_eq!(stats.chunks_moved, MIG_CHUNKS);
        }
    }
    let migration_gbs = bytes_per_swing as f64 / 1e9 / swing_s;
    println!(
        "migration {MIG_CHUNKS} chunks x {} KiB  best swing {:9.3} ms  {migration_gbs:7.2} GB/s",
        MIG_CHUNK_LEN / 1024,
        swing_s * 1e3,
    );

    // --- what the model charges for a paper-scale rebalance ----------------
    let placement = runtime
        .place(&AffinityPolicy::SingleSocket(0), 10)
        .expect("placement");
    let simulated = runtime
        .engine()
        .migration_cost(placement.cpus(), 0, 2, 16u64 << 30)
        .expect("cost");
    println!(
        "simulated 16 GiB DRAM->CXL rebalance: {:.2} s ({:.1} GB/s payload)",
        simulated.seconds, simulated.bandwidth_gbs
    );

    let json = format!(
        "{{\n  \"elements\": {ELEMENTS},\n  \"threads\": {THREADS},\n  \"ntimes\": {NTIMES},\n  \
         \"tracking\": {{\n    \"untracked_seconds\": {},\n    \"tracked_seconds\": {},\n    \
         \"overhead_pct\": {},\n    \"sampled_bytes\": {sampled}\n  }},\n  \
         \"migration\": {{\n    \"chunks\": {MIG_CHUNKS},\n    \"chunk_bytes\": {MIG_CHUNK_LEN},\n    \
         \"swing_seconds\": {},\n    \"throughput_gbs\": {}\n  }},\n  \
         \"simulated_migration\": {{\n    \"bytes\": {},\n    \"seconds\": {},\n    \
         \"payload_gbs\": {}\n  }}\n}}\n",
        json_number(untracked_s),
        json_number(tracked_s),
        json_number(overhead_pct),
        json_number(swing_s),
        json_number(migration_gbs),
        16u64 << 30,
        json_number(simulated.seconds),
        json_number(simulated.bandwidth_gbs),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tiering.json");
    std::fs::write(out, json).expect("write BENCH_tiering.json");
    println!("wrote {out}");

    // --- criterion timing output -------------------------------------------
    let mut group = c.benchmark_group("tiering_hotpath");
    group.sample_size(10);
    group.bench_function("stream_untracked", |b| {
        b.iter(|| black_box(sequence_seconds(&mut untracked, &pool)))
    });
    group.bench_function("stream_tracked", |b| {
        b.iter(|| black_box(sequence_seconds(&mut tracked, &pool)))
    });
    group.bench_function("migrate_full_swing", |b| {
        let mut target = 1usize;
        b.iter(|| {
            let stats = region
                .migrate_to(&all_on(target), &PooledChunkExecutor(&workers))
                .expect("migration");
            target = 1 - target;
            black_box(stats)
        })
    });
    group.finish();
}

criterion_group!(benches, tiering_hotpath);
criterion_main!(benches);
