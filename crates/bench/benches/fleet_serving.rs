//! Fleet serving: the QoS admission front door and the tail-latency report.
//!
//! Two things happen here. First, the full fleet scenario
//! ([`streamer::fleet::run_fleet`]) is executed once and its per-class
//! p50/p99/p999 distribution is written to `BENCH_fleet.json` at the
//! repository root, where the CI `bench-smoke` job gates the checkpoint
//! p99-over-uncontended ratio and the typed Background rejections. Second,
//! criterion times the two hot paths a serving front door actually has: the
//! admission `submit` fast path and a full scenario run.

use criterion::{criterion_group, criterion_main, Criterion};
use cxl_pmem::admission::{AdmissionController, ClassConfig, QosClass};
use std::hint::black_box;
use streamer::fleet;

const MIB: u64 = 1024 * 1024;

fn fleet_serving(c: &mut Criterion) {
    // --- the gated report --------------------------------------------------
    let report = fleet::run_fleet().expect("fleet scenario");
    for class in &report.classes {
        println!(
            "{:<10} {:>4} submitted  {:>4} served  {:>4} rejected  \
             p50 {:8.2} ms  p99 {:8.2} ms  p999 {:8.2} ms  (solo {:6.2} ms)",
            class.class.to_string(),
            class.submitted,
            class.served,
            class.rejected,
            class.p50_ms,
            class.p99_ms,
            class.p999_ms,
            class.uncontended_ms,
        );
    }
    println!(
        "checkpoint p99 over uncontended: {:.2}x (budget 2.0x)  pool conserved: {}",
        report.checkpoint_p99_ratio, report.pool_conserved
    );
    assert!(
        report.all_hold(),
        "the fleet acceptance gates failed — see the table above"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(out, fleet::report_json(&report)).expect("write BENCH_fleet.json");
    println!("wrote {out}");

    // --- criterion timing --------------------------------------------------
    let mut group = c.benchmark_group("fleet_serving");
    group.sample_size(10);
    group.bench_function("admission_submit", |b| {
        let controller = AdmissionController::new([
            ClassConfig {
                rate_bytes_per_sec: 1e12,
                burst_bytes: u64::MAX / 2,
                queue_depth: 64,
            },
            ClassConfig {
                rate_bytes_per_sec: 1e12,
                burst_bytes: u64::MAX / 2,
                queue_depth: 64,
            },
            ClassConfig {
                rate_bytes_per_sec: 1e12,
                burst_bytes: u64::MAX / 2,
                queue_depth: 64,
            },
        ]);
        let mut now = 0.0f64;
        b.iter(|| {
            now += 1e-6;
            black_box(controller.submit(QosClass::Checkpoint, MIB, now)).expect("admit")
        })
    });
    group.bench_function("run_fleet", |b| {
        b.iter(|| black_box(fleet::run_fleet()).expect("fleet scenario"))
    });
    group.finish();
}

criterion_group!(benches, fleet_serving);
criterion_main!(benches);
