//! Figure 6: ADD bandwidth vs thread count for test groups 1.(a)–2.(b).

use criterion::{criterion_group, criterion_main, Criterion};
use repro_bench::{generate_subfigure, print_figure};
use std::hint::black_box;
use stream_bench::Kernel;
use streamer::groups::TestGroup;

fn fig6_add(c: &mut Criterion) {
    print_figure(Kernel::Add);
    let mut group = c.benchmark_group("fig6_add");
    group.sample_size(10);
    for test_group in TestGroup::ALL {
        group.bench_function(format!("6{}", test_group.subfigure()), |b| {
            b.iter(|| black_box(generate_subfigure(Kernel::Add, test_group)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig6_add);
criterion_main!(benches);
