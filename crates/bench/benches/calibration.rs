//! Calibration: the silicon-validated machine-model gate and its hot paths.
//!
//! Two things happen here. First, the calibration table
//! ([`memsim::calibration::run_calibration`]) is computed once — every named
//! reference topology is ingested from its plain-text description and the
//! engine's predictions are compared against CXL-DMSim / published
//! measurements — and the result is written to `BENCH_calibration.json` at
//! the repository root, where the CI `bench-smoke` job gates the maximum
//! relative error against [`memsim::calibration::CALIBRATION_ERROR_BOUND`].
//! Second, criterion times the ingest hot paths: parsing + compiling a
//! description into a device graph, and a full calibration run.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim::calibration::{calibration_json, run_calibration, CALIBRATION_ERROR_BOUND};
use memsim::topology::{reference, TopologyDescription};
use std::hint::black_box;

fn calibration(c: &mut Criterion) {
    // --- the gated report --------------------------------------------------
    let report = run_calibration();
    print!("{}", report.render());
    assert!(
        report.all_hold(),
        "a calibration row drifted past the {:.0}% bound — see the table above",
        CALIBRATION_ERROR_BOUND * 100.0
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_calibration.json");
    std::fs::write(out, calibration_json(&report)).expect("write BENCH_calibration.json");
    println!("wrote {out}");

    // --- criterion timing --------------------------------------------------
    let mut group = c.benchmark_group("calibration");
    group.sample_size(10);
    group.bench_function("ingest_reference_topology", |b| {
        b.iter(|| {
            let description =
                TopologyDescription::parse(black_box(reference::SPR_DUAL_CXL_INTERLEAVE))
                    .expect("reference parses");
            black_box(description.compile()).expect("reference compiles")
        })
    });
    group.bench_function("run_calibration", |b| {
        b.iter(|| black_box(run_calibration()))
    });
    group.finish();
}

criterion_group!(benches, calibration);
criterion_main!(benches);
