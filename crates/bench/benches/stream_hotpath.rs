//! Hot-path comparison: the legacy copy-out/copy-back `RwLock` execution core
//! (reconstructed inline) vs the zero-copy partitioned engine, the
//! spawn-per-run dispatch vs the persistent epoch-barrier pool at small array
//! sizes (where per-invocation overhead dominates), plus the naive vs
//! memoised analytical sweep. Results land in `BENCH_stream.json` at the
//! repository root so regressions are diffable.

use criterion::{criterion_group, criterion_main, Criterion};
use cxl_pmem::{AccessMode, CxlPmemRuntime, RuntimeBuilder};
use numa::{AffinityPolicy, PinnedPool, ThreadPlacement, WorkerCtx};
use parking_lot::RwLock;
use std::hint::black_box;
use std::time::Instant;
use stream_bench::{ChunkedArrays, Kernel, SimulatedStream, StreamConfig, VolatileStream};

const ELEMENTS: usize = 1_000_000;
const THREADS: usize = 8;
const NTIMES: usize = 5;

/// Array sizes where per-invocation dispatch overhead dominates the kernel
/// work (the acceptance band is "≥1.2× at ≤64K elements").
const SMALL_SIZES: [usize; 3] = [4_096, 16_384, 65_536];
/// Repetitions per sequence and sequences per measurement for the small-array
/// dispatch comparison.
const SMALL_NTIMES: usize = 10;
const SMALL_REPS: usize = 5;

/// The pre-tentpole dispatch, reconstructed as the benchmark baseline: the
/// same zero-copy `ChunkedArrays` partitioning, but **scoped threads spawned
/// per invocation** instead of resident workers woken over the epoch barrier.
struct SpawnPerRunDispatch {
    workers: Vec<WorkerCtx>,
}

impl SpawnPerRunDispatch {
    fn new(pool: &PinnedPool) -> Self {
        SpawnPerRunDispatch {
            workers: pool.workers().to_vec(),
        }
    }

    fn run_kernel_once(
        &self,
        kernel: Kernel,
        a: &mut [f64],
        b: &mut [f64],
        c: &mut [f64],
        scalar: f64,
    ) -> f64 {
        let start = Instant::now();
        let arrays = ChunkedArrays::new(a, b, c, self.workers.len());
        std::thread::scope(|scope| {
            for ctx in self.workers.iter().copied() {
                let arrays = &arrays;
                scope.spawn(move || {
                    let chunk = arrays.chunk(ctx.thread);
                    kernel.apply(chunk.a, chunk.b, chunk.c, scalar);
                });
            }
        });
        start.elapsed().as_secs_f64()
    }

    /// Full `ntimes` × Copy→Scale→Add→Triad sequence; returns elapsed seconds.
    fn run_sequence(&self, config: StreamConfig, arrays: &mut SmallArrays) -> f64 {
        let mut total = 0.0;
        for _ in 0..config.ntimes {
            for kernel in Kernel::ALL {
                total +=
                    self.run_kernel_once(kernel, &mut arrays.a, &mut arrays.b, &mut arrays.c, 3.0);
            }
        }
        total
    }
}

struct SmallArrays {
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
}

impl SmallArrays {
    fn new(elements: usize) -> Self {
        SmallArrays {
            a: vec![2.0; elements],
            b: vec![2.0; elements],
            c: vec![0.0; elements],
        }
    }
}

/// The persistent-pool counterpart of [`SpawnPerRunDispatch::run_sequence`]:
/// identical kernels and partitioning, dispatched to the resident workers.
fn persistent_sequence(pool: &PinnedPool, config: StreamConfig, arrays: &mut SmallArrays) -> f64 {
    let mut total = 0.0;
    for _ in 0..config.ntimes {
        for kernel in Kernel::ALL {
            let start = Instant::now();
            stream_bench::exec::run_partitioned(
                pool,
                &mut arrays.a,
                &mut arrays.b,
                &mut arrays.c,
                |_ctx, chunk| kernel.apply(chunk.a, chunk.b, chunk.c, 3.0),
            );
            total += start.elapsed().as_secs_f64();
        }
    }
    total
}

/// The pre-rewrite execution core, kept verbatim as the benchmark baseline:
/// every worker copies its chunk of all three arrays out of a `RwLock`,
/// computes on the copies, and copies the written array back.
struct LegacyCopyPathStream {
    config: StreamConfig,
    a: RwLock<Vec<f64>>,
    b: RwLock<Vec<f64>>,
    c: RwLock<Vec<f64>>,
}

impl LegacyCopyPathStream {
    fn new(config: StreamConfig) -> Self {
        LegacyCopyPathStream {
            config,
            a: RwLock::new(vec![2.0; config.elements]),
            b: RwLock::new(vec![2.0; config.elements]),
            c: RwLock::new(vec![0.0; config.elements]),
        }
    }

    fn run_kernel_once(&self, kernel: Kernel, pool: &PinnedPool) -> f64 {
        let scalar = self.config.scalar;
        let elements = self.config.elements;
        let start = Instant::now();
        let (a, b, c) = (&self.a, &self.b, &self.c);
        pool.run(|ctx: WorkerCtx| {
            let (lo, hi) = ctx.chunk(elements);
            if lo == hi {
                return;
            }
            let mut a_chunk = a.read()[lo..hi].to_vec();
            let mut b_chunk = b.read()[lo..hi].to_vec();
            let mut c_chunk = c.read()[lo..hi].to_vec();
            kernel.apply(&mut a_chunk, &mut b_chunk, &mut c_chunk, scalar);
            match kernel {
                Kernel::Copy | Kernel::Add => c.write()[lo..hi].copy_from_slice(&c_chunk),
                Kernel::Scale => b.write()[lo..hi].copy_from_slice(&b_chunk),
                Kernel::Triad => a.write()[lo..hi].copy_from_slice(&a_chunk),
            }
        });
        start.elapsed().as_secs_f64()
    }

    /// Runs the full `ntimes` × Copy→Scale→Add→Triad sequence.
    fn run_sequence(&self, pool: &PinnedPool) {
        for _ in 0..self.config.ntimes {
            for kernel in Kernel::ALL {
                self.run_kernel_once(kernel, pool);
            }
        }
    }

    /// Best-of-N bandwidth (GB/s) for one kernel.
    fn best_bandwidth_gbs(&self, kernel: Kernel, pool: &PinnedPool) -> f64 {
        let bytes = self.config.bytes_per_invocation(kernel) as f64;
        (0..self.config.ntimes)
            .map(|_| bytes / 1e9 / self.run_kernel_once(kernel, pool))
            .fold(0.0, f64::max)
    }
}

fn worker_pool(threads: usize) -> PinnedPool {
    let topo = numa::topology::sapphire_rapids_cxl();
    let placement = AffinityPolicy::close()
        .place(&topo, threads)
        .expect("placement");
    PinnedPool::new(&topo, &placement)
}

fn placements(runtime: &CxlPmemRuntime, max: usize) -> Vec<ThreadPlacement> {
    (1..=max)
        .map(|t| {
            AffinityPolicy::SingleSocket(0)
                .place(runtime.topology(), t)
                .expect("placement")
        })
        .collect()
}

/// Walks the full figure grid (4 kernels × 10 thread counts × 3 nodes × 2
/// modes = 240 points) through either the naive per-call engine path or the
/// memoised one, on a caller-provided (possibly warm) runtime. Returns the
/// elapsed seconds.
fn walk_grid(stream: &SimulatedStream<'_>, placements: &[ThreadPlacement], cached: bool) -> f64 {
    let start = Instant::now();
    for kernel in Kernel::ALL {
        for node in 0..3usize {
            for mode in [AccessMode::AppDirect, AccessMode::MemoryMode] {
                for placement in placements {
                    if cached {
                        let report = stream
                            .simulate_report_cached(kernel, placement, node, mode)
                            .expect("simulation");
                        black_box(report.bandwidth_gbs);
                    } else {
                        let report = stream
                            .simulate_report(kernel, placement, node, mode)
                            .expect("simulation");
                        black_box(report.bandwidth_gbs);
                    }
                }
            }
        }
    }
    start.elapsed().as_secs_f64()
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

fn stream_hotpath(c: &mut Criterion) {
    let config = StreamConfig {
        elements: ELEMENTS,
        ntimes: NTIMES,
        scalar: 3.0,
    };
    let pool = worker_pool(THREADS);

    // --- headline numbers for BENCH_stream.json ----------------------------
    let mut zero_copy = VolatileStream::new(config);
    let zero_copy_report = zero_copy.run(&pool);
    let mut kernel_rows = Vec::new();
    for kernel in Kernel::ALL {
        let legacy = LegacyCopyPathStream::new(config).best_bandwidth_gbs(kernel, &pool);
        let fast = zero_copy_report
            .best_bandwidth_gbs(kernel)
            .expect("measured");
        let speedup = fast / legacy;
        println!(
            "{:<6} {THREADS}t {ELEMENTS}e  copy-path {legacy:7.2} GB/s  zero-copy {fast:7.2} GB/s  speedup {speedup:.2}x",
            kernel.name()
        );
        kernel_rows.push(format!(
            "    \"{}\": {{\"copy_path_gbs\": {}, \"zero_copy_gbs\": {}, \"speedup\": {}}}",
            kernel.name(),
            json_number(legacy),
            json_number(fast),
            json_number(speedup)
        ));
    }

    // --- spawn-per-run vs persistent pool at small sizes -------------------
    // Per-invocation dispatch overhead is amortised over fewer elements as
    // arrays shrink; this is where the persistent pool must earn its keep.
    let spawn_dispatch = SpawnPerRunDispatch::new(&pool);
    let mut small_rows = Vec::new();
    for elements in SMALL_SIZES {
        let small_config = StreamConfig {
            elements,
            ntimes: SMALL_NTIMES,
            scalar: 3.0,
        };
        let spawn_s = (0..SMALL_REPS)
            .map(|_| spawn_dispatch.run_sequence(small_config, &mut SmallArrays::new(elements)))
            .fold(f64::INFINITY, f64::min);
        let persistent_s = (0..SMALL_REPS)
            .map(|_| persistent_sequence(&pool, small_config, &mut SmallArrays::new(elements)))
            .fold(f64::INFINITY, f64::min);
        let speedup = spawn_s / persistent_s;
        println!(
            "dispatch {elements:>6}e {THREADS}t ({} invocations)  spawn-per-run {:9.1} µs  \
             persistent {:9.1} µs  speedup {speedup:.2}x",
            SMALL_NTIMES * Kernel::ALL.len(),
            spawn_s * 1e6,
            persistent_s * 1e6,
        );
        small_rows.push(format!(
            "    \"{elements}\": {{\"spawn_per_run_seconds\": {}, \"persistent_seconds\": {}, \
             \"speedup\": {}}}",
            json_number(spawn_s),
            json_number(persistent_s),
            json_number(speedup)
        ));
    }

    // Grid timings on one long-lived runtime — the shape the harness uses
    // (figures, tables and analysis all sweep the same engine repeatedly).
    let runtime = RuntimeBuilder::setup1().build();
    let stream = SimulatedStream::paper(&runtime);
    let grid_placements = placements(&runtime, 10);
    let naive_s = (0..NTIMES)
        .map(|_| walk_grid(&stream, &grid_placements, false))
        .fold(f64::INFINITY, f64::min);
    assert_eq!(
        runtime.engine().cache_stats(),
        (0, 0),
        "naive path must not touch the cache"
    );
    let cached_cold_s = walk_grid(&stream, &grid_placements, true);
    let (cold_hits, cold_misses) = runtime.engine().cache_stats();
    let cached_warm_s = (0..NTIMES)
        .map(|_| walk_grid(&stream, &grid_placements, true))
        .fold(f64::INFINITY, f64::min);
    println!(
        "sweep grid (240 points): naive {naive_s:.6}s, cached cold {cached_cold_s:.6}s \
         ({cold_hits} hits / {cold_misses} misses), cached warm {cached_warm_s:.6}s, \
         warm speedup {:.2}x",
        naive_s / cached_warm_s
    );

    let json = format!(
        "{{\n  \"elements\": {ELEMENTS},\n  \"threads\": {THREADS},\n  \"ntimes\": {NTIMES},\n  \
         \"kernels\": {{\n{}\n  }},\n  \"small_array_pool\": {{\n{}\n  }},\n  \
         \"sweep_grid\": {{\n    \"points\": 240,\n    \
         \"naive_seconds\": {},\n    \"cached_cold_seconds\": {},\n    \
         \"cached_warm_seconds\": {},\n    \"warm_speedup\": {},\n    \
         \"cold_cache_hits\": {cold_hits},\n    \"cold_cache_misses\": {cold_misses}\n  }}\n}}\n",
        kernel_rows.join(",\n"),
        small_rows.join(",\n"),
        json_number(naive_s),
        json_number(cached_cold_s),
        json_number(cached_warm_s),
        json_number(naive_s / cached_warm_s),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    std::fs::write(out, json).expect("write BENCH_stream.json");
    println!("wrote {out}");

    // --- criterion timing output -------------------------------------------
    let mut group = c.benchmark_group("stream_hotpath");
    group.sample_size(10);
    group.bench_function("copy_path_sequence", |b| {
        let stream = LegacyCopyPathStream::new(config);
        b.iter(|| stream.run_sequence(&pool))
    });
    group.bench_function("zero_copy_sequence", |b| {
        let mut stream = VolatileStream::new(config);
        b.iter(|| black_box(stream.run(&pool)))
    });
    for kernel in [Kernel::Copy, Kernel::Triad] {
        group.bench_function(format!("copy_path_{}", kernel.name()), |b| {
            let stream = LegacyCopyPathStream::new(config);
            b.iter(|| black_box(stream.run_kernel_once(kernel, &pool)))
        });
    }
    for elements in [4_096usize, 65_536] {
        let small_config = StreamConfig {
            elements,
            ntimes: SMALL_NTIMES,
            scalar: 3.0,
        };
        group.bench_function(format!("spawn_per_run_{elements}e"), |b| {
            let mut arrays = SmallArrays::new(elements);
            b.iter(|| black_box(spawn_dispatch.run_sequence(small_config, &mut arrays)))
        });
        group.bench_function(format!("persistent_pool_{elements}e"), |b| {
            let mut arrays = SmallArrays::new(elements);
            b.iter(|| black_box(persistent_sequence(&pool, small_config, &mut arrays)))
        });
    }
    group.bench_function("sweep_grid_naive", |b| {
        b.iter(|| black_box(walk_grid(&stream, &grid_placements, false)))
    });
    group.bench_function("sweep_grid_cached_warm", |b| {
        b.iter(|| black_box(walk_grid(&stream, &grid_placements, true)))
    });
    group.finish();
}

criterion_group!(benches, stream_hotpath);
criterion_main!(benches);
