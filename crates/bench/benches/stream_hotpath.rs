//! Hot-path comparison: the legacy copy-out/copy-back `RwLock` execution core
//! (reconstructed inline) vs the zero-copy partitioned engine, plus the naive
//! vs memoised analytical sweep. Results land in `BENCH_stream.json` at the
//! repository root so regressions are diffable.

use criterion::{criterion_group, criterion_main, Criterion};
use cxl_pmem::{AccessMode, CxlPmemRuntime};
use numa::{AffinityPolicy, PinnedPool, ThreadPlacement, WorkerCtx};
use parking_lot::RwLock;
use std::hint::black_box;
use std::time::Instant;
use stream_bench::{Kernel, SimulatedStream, StreamConfig, VolatileStream};

const ELEMENTS: usize = 1_000_000;
const THREADS: usize = 8;
const NTIMES: usize = 5;

/// The pre-rewrite execution core, kept verbatim as the benchmark baseline:
/// every worker copies its chunk of all three arrays out of a `RwLock`,
/// computes on the copies, and copies the written array back.
struct LegacyCopyPathStream {
    config: StreamConfig,
    a: RwLock<Vec<f64>>,
    b: RwLock<Vec<f64>>,
    c: RwLock<Vec<f64>>,
}

impl LegacyCopyPathStream {
    fn new(config: StreamConfig) -> Self {
        LegacyCopyPathStream {
            config,
            a: RwLock::new(vec![2.0; config.elements]),
            b: RwLock::new(vec![2.0; config.elements]),
            c: RwLock::new(vec![0.0; config.elements]),
        }
    }

    fn run_kernel_once(&self, kernel: Kernel, pool: &PinnedPool) -> f64 {
        let scalar = self.config.scalar;
        let elements = self.config.elements;
        let start = Instant::now();
        let (a, b, c) = (&self.a, &self.b, &self.c);
        pool.run(|ctx: WorkerCtx| {
            let (lo, hi) = ctx.chunk(elements);
            if lo == hi {
                return;
            }
            let mut a_chunk = a.read()[lo..hi].to_vec();
            let mut b_chunk = b.read()[lo..hi].to_vec();
            let mut c_chunk = c.read()[lo..hi].to_vec();
            kernel.apply(&mut a_chunk, &mut b_chunk, &mut c_chunk, scalar);
            match kernel {
                Kernel::Copy | Kernel::Add => c.write()[lo..hi].copy_from_slice(&c_chunk),
                Kernel::Scale => b.write()[lo..hi].copy_from_slice(&b_chunk),
                Kernel::Triad => a.write()[lo..hi].copy_from_slice(&a_chunk),
            }
        });
        start.elapsed().as_secs_f64()
    }

    /// Runs the full `ntimes` × Copy→Scale→Add→Triad sequence.
    fn run_sequence(&self, pool: &PinnedPool) {
        for _ in 0..self.config.ntimes {
            for kernel in Kernel::ALL {
                self.run_kernel_once(kernel, pool);
            }
        }
    }

    /// Best-of-N bandwidth (GB/s) for one kernel.
    fn best_bandwidth_gbs(&self, kernel: Kernel, pool: &PinnedPool) -> f64 {
        let bytes = self.config.bytes_per_invocation(kernel) as f64;
        (0..self.config.ntimes)
            .map(|_| bytes / 1e9 / self.run_kernel_once(kernel, pool))
            .fold(0.0, f64::max)
    }
}

fn worker_pool(threads: usize) -> PinnedPool {
    let topo = numa::topology::sapphire_rapids_cxl();
    let placement = AffinityPolicy::close()
        .place(&topo, threads)
        .expect("placement");
    PinnedPool::new(&topo, &placement)
}

fn placements(runtime: &CxlPmemRuntime, max: usize) -> Vec<ThreadPlacement> {
    (1..=max)
        .map(|t| {
            AffinityPolicy::SingleSocket(0)
                .place(runtime.topology(), t)
                .expect("placement")
        })
        .collect()
}

/// Walks the full figure grid (4 kernels × 10 thread counts × 3 nodes × 2
/// modes = 240 points) through either the naive per-call engine path or the
/// memoised one, on a caller-provided (possibly warm) runtime. Returns the
/// elapsed seconds.
fn walk_grid(stream: &SimulatedStream<'_>, placements: &[ThreadPlacement], cached: bool) -> f64 {
    let start = Instant::now();
    for kernel in Kernel::ALL {
        for node in 0..3usize {
            for mode in [AccessMode::AppDirect, AccessMode::MemoryMode] {
                for placement in placements {
                    if cached {
                        let report = stream
                            .simulate_report_cached(kernel, placement, node, mode)
                            .expect("simulation");
                        black_box(report.bandwidth_gbs);
                    } else {
                        let report = stream
                            .simulate_report(kernel, placement, node, mode)
                            .expect("simulation");
                        black_box(report.bandwidth_gbs);
                    }
                }
            }
        }
    }
    start.elapsed().as_secs_f64()
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

fn stream_hotpath(c: &mut Criterion) {
    let config = StreamConfig {
        elements: ELEMENTS,
        ntimes: NTIMES,
        scalar: 3.0,
    };
    let pool = worker_pool(THREADS);

    // --- headline numbers for BENCH_stream.json ----------------------------
    let mut zero_copy = VolatileStream::new(config);
    let zero_copy_report = zero_copy.run(&pool);
    let mut kernel_rows = Vec::new();
    for kernel in Kernel::ALL {
        let legacy = LegacyCopyPathStream::new(config).best_bandwidth_gbs(kernel, &pool);
        let fast = zero_copy_report
            .best_bandwidth_gbs(kernel)
            .expect("measured");
        let speedup = fast / legacy;
        println!(
            "{:<6} {THREADS}t {ELEMENTS}e  copy-path {legacy:7.2} GB/s  zero-copy {fast:7.2} GB/s  speedup {speedup:.2}x",
            kernel.name()
        );
        kernel_rows.push(format!(
            "    \"{}\": {{\"copy_path_gbs\": {}, \"zero_copy_gbs\": {}, \"speedup\": {}}}",
            kernel.name(),
            json_number(legacy),
            json_number(fast),
            json_number(speedup)
        ));
    }

    // Grid timings on one long-lived runtime — the shape the harness uses
    // (figures, tables and analysis all sweep the same engine repeatedly).
    let runtime = CxlPmemRuntime::setup1();
    let stream = SimulatedStream::paper(&runtime);
    let grid_placements = placements(&runtime, 10);
    let naive_s = (0..NTIMES)
        .map(|_| walk_grid(&stream, &grid_placements, false))
        .fold(f64::INFINITY, f64::min);
    assert_eq!(
        runtime.engine().cache_stats(),
        (0, 0),
        "naive path must not touch the cache"
    );
    let cached_cold_s = walk_grid(&stream, &grid_placements, true);
    let (cold_hits, cold_misses) = runtime.engine().cache_stats();
    let cached_warm_s = (0..NTIMES)
        .map(|_| walk_grid(&stream, &grid_placements, true))
        .fold(f64::INFINITY, f64::min);
    println!(
        "sweep grid (240 points): naive {naive_s:.6}s, cached cold {cached_cold_s:.6}s \
         ({cold_hits} hits / {cold_misses} misses), cached warm {cached_warm_s:.6}s, \
         warm speedup {:.2}x",
        naive_s / cached_warm_s
    );

    let json = format!(
        "{{\n  \"elements\": {ELEMENTS},\n  \"threads\": {THREADS},\n  \"ntimes\": {NTIMES},\n  \
         \"kernels\": {{\n{}\n  }},\n  \"sweep_grid\": {{\n    \"points\": 240,\n    \
         \"naive_seconds\": {},\n    \"cached_cold_seconds\": {},\n    \
         \"cached_warm_seconds\": {},\n    \"warm_speedup\": {},\n    \
         \"cold_cache_hits\": {cold_hits},\n    \"cold_cache_misses\": {cold_misses}\n  }}\n}}\n",
        kernel_rows.join(",\n"),
        json_number(naive_s),
        json_number(cached_cold_s),
        json_number(cached_warm_s),
        json_number(naive_s / cached_warm_s),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    std::fs::write(out, json).expect("write BENCH_stream.json");
    println!("wrote {out}");

    // --- criterion timing output -------------------------------------------
    let mut group = c.benchmark_group("stream_hotpath");
    group.sample_size(10);
    group.bench_function("copy_path_sequence", |b| {
        let stream = LegacyCopyPathStream::new(config);
        b.iter(|| stream.run_sequence(&pool))
    });
    group.bench_function("zero_copy_sequence", |b| {
        let mut stream = VolatileStream::new(config);
        b.iter(|| black_box(stream.run(&pool)))
    });
    for kernel in [Kernel::Copy, Kernel::Triad] {
        group.bench_function(format!("copy_path_{}", kernel.name()), |b| {
            let stream = LegacyCopyPathStream::new(config);
            b.iter(|| black_box(stream.run_kernel_once(kernel, &pool)))
        });
    }
    group.bench_function("sweep_grid_naive", |b| {
        b.iter(|| black_box(walk_grid(&stream, &grid_placements, false)))
    });
    group.bench_function("sweep_grid_cached_warm", |b| {
        b.iter(|| black_box(walk_grid(&stream, &grid_placements, true)))
    });
    group.finish();
}

criterion_group!(benches, stream_hotpath);
criterion_main!(benches);
