//! Figure 8: TRIAD bandwidth vs thread count for test groups 1.(a)–2.(b).

use criterion::{criterion_group, criterion_main, Criterion};
use repro_bench::{generate_subfigure, print_figure};
use std::hint::black_box;
use stream_bench::Kernel;
use streamer::groups::TestGroup;

fn fig8_triad(c: &mut Criterion) {
    print_figure(Kernel::Triad);
    let mut group = c.benchmark_group("fig8_triad");
    group.sample_size(10);
    for test_group in TestGroup::ALL {
        group.bench_function(format!("8{}", test_group.subfigure()), |b| {
            b.iter(|| black_box(generate_subfigure(Kernel::Triad, test_group)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig8_triad);
criterion_main!(benches);
