//! Tables 1 and 2: measured PMem-mode properties and the CXL-vs-NVRAM
//! comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use cxl_pmem::RuntimeBuilder;
use std::hint::black_box;
use streamer::{table1, table2};

fn tables(c: &mut Criterion) {
    let runtime = RuntimeBuilder::setup1().build();
    println!("{}", table1(&runtime).expect("table 1").to_markdown());
    println!("{}", table2().expect("table 2").to_markdown());
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1", |b| {
        b.iter(|| black_box(table1(&runtime).expect("table 1")))
    });
    group.bench_function("table2", |b| {
        b.iter(|| black_box(table2().expect("table 2")))
    });
    group.finish();
}

criterion_group!(benches, tables);
criterion_main!(benches);
