//! The §4 derived-claims analysis, including the 10–15 % PMDK overhead and the
//! 2–3 GB/s CXL fabric cost, plus a functional STREAM-PMem run that exercises
//! the real flush/transaction instrumentation of the object store.

use criterion::{criterion_group, criterion_main, Criterion};
use numa::{AffinityPolicy, PinnedPool};
use pmem::PmemPool;
use std::hint::black_box;
use stream_bench::{PmemStream, StreamConfig, VolatileStream};
use streamer::analysis::Analysis;

fn pmdk_overhead(c: &mut Criterion) {
    let analysis = Analysis::compute().expect("analysis");
    println!("{}", analysis.to_markdown());
    assert!(analysis.all_hold(), "paper claims must hold");

    let mut group = c.benchmark_group("pmdk_overhead");
    group.sample_size(10);
    group.bench_function("analysis_recompute", |b| {
        b.iter(|| black_box(Analysis::compute().expect("analysis")))
    });

    // Functional comparison: STREAM vs STREAM-PMem over the real object store
    // (small arrays — this measures the software path, not the paper machine).
    let topo = numa::topology::sapphire_rapids_cxl();
    let placement = AffinityPolicy::close().place(&topo, 4).expect("placement");
    let worker_pool = PinnedPool::new(&topo, &placement);
    let config = StreamConfig::small(100_000);
    group.bench_function("stream_volatile_functional", |b| {
        b.iter(|| {
            let mut stream = VolatileStream::new(config);
            black_box(stream.run(&worker_pool));
        })
    });
    group.bench_function("stream_pmem_functional", |b| {
        b.iter(|| {
            let pool = PmemPool::create_volatile("bench", 16 * 1024 * 1024).expect("pool");
            let mut stream = PmemStream::initiate(&pool, config).expect("arrays");
            black_box(stream.run(&worker_pool).expect("run"));
        })
    });
    group.finish();
}

criterion_group!(benches, pmdk_overhead);
criterion_main!(benches);
