//! Object store: the versioned-object hot paths and the gated objects report.
//!
//! Two things happen here. First, the full objects scenario
//! ([`streamer::objects::run_objects`]) is executed once at CI scale
//! (≥ 100k objects, 4 hosts, the cross-host tear matrix) and its verdict plus
//! per-op-class p50/p99 distribution is written to `BENCH_objects.json` at
//! the repository root, where the CI `bench-smoke` job gates the functional
//! booleans, the per-class `served + rejected == submitted` conservation and
//! the latency floor. Second, criterion times the KV hot paths themselves: a
//! raw [`ObjectStore`] `put_commit` (slot write + flush + drain + undo-log
//! commit record) and a committed `get` (entry + payload checksum
//! validation), plus a smoke-scale scenario run end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use pmem::{ObjectStore, PmemPool};
use std::hint::black_box;
use streamer::objects::{self, ObjectsConfig};

const CAPACITY: u64 = 1024;
const VALUE_LEN: u64 = 64;

fn object_store(c: &mut Criterion) {
    // --- the gated report --------------------------------------------------
    let report = objects::run_objects(&ObjectsConfig::full()).expect("objects scenario");
    for class in &report.classes {
        println!(
            "{:<10} {:>4} submitted  {:>4} served  {:>4} rejected  \
             p50 {:8.2} ms  p99 {:8.2} ms",
            class.op, class.submitted, class.served, class.rejected, class.p50_ms, class.p99_ms,
        );
    }
    println!(
        "{} objects on {} hosts  crash cells {}  survived {}  conserved {}  coherent {}",
        report.objects,
        report.hosts,
        report.crash_cells,
        report.crash_survived,
        report.store_conserved,
        report.coherence_enforced,
    );
    assert!(
        report.all_hold(),
        "the object-store acceptance gates failed — see the report above"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_objects.json");
    std::fs::write(out, objects::report_json(&report)).expect("write BENCH_objects.json");
    println!("wrote {out}");

    // --- criterion timing --------------------------------------------------
    let mut group = c.benchmark_group("object_store");
    group.sample_size(10);
    group.bench_function("put_commit", |b| {
        let pool = PmemPool::create_volatile(
            "bench-objects",
            ObjectStore::required_pool_size(CAPACITY, VALUE_LEN),
        )
        .expect("pool");
        let mut store = ObjectStore::format(&pool, CAPACITY, VALUE_LEN).expect("store");
        let value = [0xA5u8; VALUE_LEN as usize];
        let mut id = 0u64;
        b.iter(|| {
            id = (id + 1) % CAPACITY;
            black_box(store.put_commit(id, &value)).expect("put_commit")
        })
    });
    group.bench_function("get_committed", |b| {
        let pool = PmemPool::create_volatile(
            "bench-objects",
            ObjectStore::required_pool_size(CAPACITY, VALUE_LEN),
        )
        .expect("pool");
        let mut store = ObjectStore::format(&pool, CAPACITY, VALUE_LEN).expect("store");
        let value = [0x5Au8; VALUE_LEN as usize];
        for id in 0..CAPACITY {
            store.put_commit(id, &value).expect("populate");
        }
        let mut id = 0u64;
        b.iter(|| {
            id = (id + 1) % CAPACITY;
            black_box(store.get(id)).expect("get")
        })
    });
    group.bench_function("run_objects_smoke", |b| {
        b.iter(|| black_box(objects::run_objects(&ObjectsConfig::smoke())).expect("scenario"))
    });
    group.finish();
}

criterion_group!(benches, object_store);
criterion_main!(benches);
