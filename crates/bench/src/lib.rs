//! Shared helpers for the benchmark harness.
//!
//! Every Criterion target regenerates one of the paper's tables or figures:
//! it prints the series/rows (so the numbers are inspectable in the bench log
//! captured into `bench_output.txt`) and then times the generation itself so
//! `cargo bench` gives the usual statistical output.

#![forbid(unsafe_code)]

use stream_bench::Kernel;
use streamer::figures::FigureData;
use streamer::groups::TestGroup;

/// Generates and prints every sub-figure of a paper figure (5–8) for `kernel`,
/// returning the data so callers can also benchmark or assert on it.
pub fn print_figure(kernel: Kernel) -> Vec<FigureData> {
    let mut figures = Vec::new();
    for group in TestGroup::ALL {
        let figure = FigureData::generate(kernel, group).expect("figure generation");
        println!("{}", figure.to_markdown());
        figures.push(figure);
    }
    figures
}

/// Generates one sub-figure without printing (the timed body of the benches).
pub fn generate_subfigure(kernel: Kernel, group: TestGroup) -> FigureData {
    FigureData::generate(kernel, group).expect("figure generation")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subfigure_generation_works_for_every_kernel_and_group() {
        // Smoke test with the small config path exercised through the public API.
        let figure = generate_subfigure(Kernel::Scale, TestGroup::Class1bRemotePmem);
        assert_eq!(figure.figure, 5);
        assert!(!figure.trends.is_empty());
    }
}
