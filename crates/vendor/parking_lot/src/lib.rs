//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no network access to crates.io, so the exact
//! API subset the workspace uses — `Mutex::{new, lock, get_mut, into_inner}`
//! and `RwLock::{new, read, write, get_mut, into_inner}` with guards that do
//! not return poison `Result`s — is provided over `std::sync`. Poisoning is
//! neutralised with `PoisonError::into_inner`, matching `parking_lot`'s
//! semantics of never poisoning a lock.

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn locks_are_usable_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }
}
