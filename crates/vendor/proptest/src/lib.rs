//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests use a small slice of proptest: the
//! `proptest!` macro with `name in strategy` parameters, integer/float range
//! strategies, `any::<T>()`, and `proptest::collection::{vec, btree_set}`.
//! This crate reimplements exactly that slice with a deterministic splitmix64
//! generator. There is no shrinking, but failures are directly replayable:
//! every case draws from its own per-case seed, a failing case prints that
//! seed plus the exact rerun command, and setting `PROPTEST_SEED=<seed>`
//! (with `PROPTEST_CASES=1`) re-executes just that case — case 0 under an
//! explicit seed *is* the seed, so the printed command reproduces the failure
//! byte-for-byte. `PROPTEST_CASES` overrides the case count as before.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the heavier array/engine
        // properties fast while still covering the awkward boundary cases.
        // Like the real crate, `PROPTEST_CASES` overrides the default (the
        // Miri CI job uses it to keep interpreted property runs tractable)
        // and an invalid value is an error, not a silent fallback.
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(value) => match value.trim().parse::<u32>() {
                Ok(n) if n > 0 => n,
                _ => panic!("PROPTEST_CASES must be a positive integer, got {value:?}"),
            },
            Err(_) => 64,
        };
        ProptestConfig { cases }
    }
}

/// Deterministic splitmix64 generator; seeded from the property's name so
/// every test is reproducible run-to-run.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        TestRng(Self::name_seed(name))
    }

    /// Starts the generator at an explicit state (failure replay).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// The deterministic base seed for a property name.
    pub fn name_seed(name: &str) -> u64 {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        seed
    }

    /// The base seed for a property run: `PROPTEST_SEED` when set (so a
    /// printed failure seed replays exactly), the name-derived seed
    /// otherwise. An invalid value is an error, not a silent fallback.
    pub fn resolve_seed(name: &str) -> u64 {
        match std::env::var("PROPTEST_SEED") {
            Ok(value) => match parse_seed(&value) {
                Some(seed) => seed,
                None => panic!("PROPTEST_SEED must be a u64 (decimal or 0x-hex), got {value:?}"),
            },
            Err(_) => Self::name_seed(name),
        }
    }

    /// The seed of case `case` under `base`. Case 0 uses `base` verbatim —
    /// that is what makes `PROPTEST_SEED=<printed seed> PROPTEST_CASES=1`
    /// replay a failure exactly; later cases decorrelate through splitmix.
    pub fn case_seed(base: u64, case: u32) -> u64 {
        if case == 0 {
            return base;
        }
        let mut z = base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn parse_seed(value: &str) -> Option<u64> {
    let trimmed = value.trim();
    if let Some(hex) = trimmed
        .strip_prefix("0x")
        .or_else(|| trimmed.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        trimmed.parse::<u64>().ok()
    }
}

/// Formats the exact command that replays one failing case.
#[doc(hidden)]
pub fn rerun_command(name: &str, seed: u64) -> String {
    format!("PROPTEST_SEED={seed:#x} PROPTEST_CASES=1 cargo test {name}")
}

/// Why one test case did not pass: a genuine failure or a rejected
/// assumption (`prop_assume!`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for this input.
    Fail(String),
    /// The input does not satisfy the property's preconditions; skip it.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected assumption with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "test case failed: {reason}"),
            TestCaseError::Reject(reason) => write!(f, "test case rejected: {reason}"),
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $ty) * (self.end - self.start)
                }
            }
        )*
    };
}

impl_float_range_strategy!(f32, f64);

/// Types with a full-domain random generator (the `any::<T>()` strategy).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Full bit-pattern coverage (including NaN/inf): round-trip properties
        // compare via `to_bits`, so every pattern must be reachable.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy for an unconstrained value of `T` — see [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// An unconstrained strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Conversion of a sampled size value into `usize` — lets size strategies be
/// written as untyped integer ranges (`1..40` infers `i32`).
pub trait IntoSize {
    /// The value as a collection length.
    fn into_size(self) -> usize;
}

macro_rules! impl_into_size {
    ($($ty:ty),*) => {
        $(
            impl IntoSize for $ty {
                fn into_size(self) -> usize {
                    usize::try_from(self).expect("negative collection size")
                }
            }
        )*
    };
}

impl_into_size!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy over both boolean values.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either `true` or `false`, evenly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{IntoSize, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// A strategy producing `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<E, S> {
        element: E,
        size: S,
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<E, S>(element: E, size: S) -> VecStrategy<E, S>
    where
        E: Strategy,
        S: Strategy,
        S::Value: IntoSize,
    {
        VecStrategy { element, size }
    }

    impl<E, S> Strategy for VecStrategy<E, S>
    where
        E: Strategy,
        S: Strategy,
        S::Value: IntoSize,
    {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let n = self.size.sample(rng).into_size();
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing `BTreeSet`s of up to `size` drawn elements.
    pub struct BTreeSetStrategy<E, S> {
        element: E,
        size: S,
    }

    /// Sets of `element` values; up to `size` draws (duplicates collapse).
    pub fn btree_set<E, S>(element: E, size: S) -> BTreeSetStrategy<E, S>
    where
        E: Strategy,
        E::Value: Ord,
        S: Strategy,
        S::Value: IntoSize,
    {
        BTreeSetStrategy { element, size }
    }

    impl<E, S> Strategy for BTreeSetStrategy<E, S>
    where
        E: Strategy,
        E::Value: Ord,
        S: Strategy,
        S::Value: IntoSize,
    {
        type Value = BTreeSet<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
            let n = self.size.sample(rng).into_size();
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` runs
/// the body over `cases` random draws of every argument.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __base = $crate::TestRng::resolve_seed(stringify!($name));
                for __case in 0..__config.cases {
                    // Every case draws from its own seed so a failure can be
                    // replayed alone: PROPTEST_SEED=<seed> makes case 0 use
                    // the seed verbatim.
                    let __seed = $crate::TestRng::case_seed(__base, __case);
                    let mut __rng = $crate::TestRng::from_seed(__seed);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                    // The body runs in a `Result` closure so it can use
                    // `return Err(TestCaseError::...)` and `prop_assume!`,
                    // exactly like real proptest bodies; catch_unwind lets a
                    // prop_assert! panic carry the rerun command too.
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::core::result::Result<(), $crate::TestCaseError> {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    match __outcome {
                        Ok(Ok(())) => {}
                        Ok(Err($crate::TestCaseError::Reject(_))) => {}
                        Ok(Err($crate::TestCaseError::Fail(__reason))) => {
                            panic!(
                                "property {} failed at case {} (seed {:#x}): {}\n  rerun this case alone with: {}",
                                stringify!($name), __case, __seed, __reason,
                                $crate::rerun_command(stringify!($name), __seed),
                            );
                        }
                        Err(__payload) => {
                            eprintln!(
                                "property {} failed at case {} (seed {:#x})\n  rerun this case alone with: {}",
                                stringify!($name), __case, __seed,
                                $crate::rerun_command(stringify!($name), __seed),
                            );
                            ::std::panic::resume_unwind(__payload);
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::sample(&(5u64..=5), &mut rng);
            assert_eq!(w, 5);
            let f = Strategy::sample(&(0.5f64..4.0), &mut rng);
            assert!((0.5..4.0).contains(&f));
            let i = Strategy::sample(&(-10i32..10), &mut rng);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::deterministic("collections");
        for _ in 0..100 {
            let v = Strategy::sample(&collection::vec(any::<u8>(), 1..9), &mut rng);
            assert!(!v.is_empty() && v.len() < 9);
            let s = Strategy::sample(&collection::btree_set(0usize..4, 0..32), &mut rng);
            assert!(s.len() <= 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r2 = TestRng::deterministic("y");
        assert_ne!(a[0], r2.next_u64());
    }

    #[test]
    fn case_seeds_are_replayable_and_decorrelated() {
        let base = TestRng::name_seed("prop_example");
        // Case 0 is the base seed verbatim: replaying a printed seed via
        // PROPTEST_SEED runs the exact same draws as the failing case.
        assert_eq!(TestRng::case_seed(base, 0), base);
        let s1 = TestRng::case_seed(base, 1);
        let s2 = TestRng::case_seed(base, 2);
        assert_ne!(s1, base);
        assert_ne!(s1, s2);
        // A replay under the failing case's seed draws identical values.
        let failing = TestRng::case_seed(base, 7);
        let a: Vec<u64> = {
            let mut r = TestRng::from_seed(TestRng::case_seed(failing, 0));
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_seed(failing);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(crate::parse_seed("42"), Some(42));
        assert_eq!(
            crate::parse_seed(" 0xdead_beef".replace('_', "").as_str()),
            Some(0xdead_beef)
        );
        assert_eq!(crate::parse_seed("0Xff"), Some(255));
        assert_eq!(crate::parse_seed("nope"), None);
        assert_eq!(crate::parse_seed("-3"), None);
    }

    #[test]
    fn rerun_command_names_the_seed_and_the_test() {
        let cmd = crate::rerun_command("prop_foo", 0xabcd);
        assert_eq!(
            cmd,
            "PROPTEST_SEED=0xabcd PROPTEST_CASES=1 cargo test prop_foo"
        );
    }

    #[test]
    fn failing_case_panics_with_the_rerun_command() {
        // A property that fails only for even draws; the panic payload must
        // carry the per-case seed and the replay command.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[allow(unused)]
            fn prop_inner_fails(v in 0u64..1_000_000) {
                if v % 2 == 0 {
                    return Err(TestCaseError::fail("even draw"));
                }
            }
        }
        let payload = std::panic::catch_unwind(prop_inner_fails).unwrap_err();
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("prop_inner_fails"), "{message}");
        assert!(message.contains("seed 0x"), "{message}");
        assert!(
            message.contains("PROPTEST_SEED=0x") && message.contains("PROPTEST_CASES=1"),
            "{message}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_macro_round_trips(len in 1usize..50, bytes in collection::vec(any::<u8>(), 0..10)) {
            prop_assert!((1..50).contains(&len));
            prop_assert_eq!(bytes.len(), bytes.clone().len());
        }
    }
}
