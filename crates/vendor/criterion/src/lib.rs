//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use: `Criterion`,
//! `benchmark_group` → `sample_size` / `bench_function` / `finish`, a
//! `Bencher` with `iter`, and the `criterion_group!` / `criterion_main!`
//! macros. Each sample times one invocation of the closure passed to
//! [`Bencher::iter`]; min/mean/max over the samples are printed in a
//! criterion-like one-line format. Statistics (outlier rejection, regression
//! tracking, HTML reports) are out of scope.

#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmarking group `{name}`");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, f);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let samples = bencher.samples;
    if samples.is_empty() {
        eprintln!("{id:<40} (no samples — did the closure call iter()?)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    eprintln!(
        "{id:<40} time: [{} {} {}] ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        samples.len(),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Times the benchmark body: one warm-up call plus `sample_size` timed calls.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `body` once untimed (warm-up), then `sample_size` timed times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        black_box(body());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running every listed group (CLI flags are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn duration_formatting_covers_magnitudes() {
        assert!(format_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
