//! CXL 2.0 switching and memory pooling — concurrency-safe.
//!
//! CXL 2.0 "expands the specification – among other capabilities – to memory
//! pools using CXL switches on a device level" (paper §1.3). A [`CxlSwitch`]
//! has upstream ports (hosts) and downstream ports (Type-3 devices); devices
//! can be bound to hosts and their capacity carved into pool allocations with
//! dynamic-capacity semantics, which is the mechanism behind "adaptive memory
//! provisioning to compute nodes in real time".
//!
//! # Concurrency model (lock-striped free lists)
//!
//! A serving fleet multiplexes many hosts onto one switch, so allocation is a
//! contended hot path. The switch therefore takes `&self` everywhere and
//! stripes its state per downstream port:
//!
//! * each port owns one mutex guarding that device's **free list**
//!   (bump watermark + released holes) *and* its **live allocations** — so a
//!   carve moves bytes from free to assigned under a single lock acquisition,
//!   and no observer can catch a byte in neither column;
//! * allocation ids encode their port (`id = port << 40 | per-port sequence`),
//!   so `release` locks exactly the stripe that owns the allocation instead of
//!   a global registry;
//! * the port table and the port→host bindings sit behind `RwLock`s —
//!   `attach_device` is a rare topology change, and a binding read nests
//!   inside the port lock so a concurrent `bind_port` linearizes either
//!   before an in-flight carve (which then skips the port) or after it
//!   (the carve was already granted under the previous binding).
//!
//! The conservation invariant — `unassigned + Σ assigned == total` — is
//! per-port atomic, and capacity never moves between ports, so even a
//! [`accounting`](CxlSwitch::accounting) snapshot taken *during* a storm of
//! concurrent allocate/release/bind traffic sums to exactly the pool size.
//! `tests` pin this with both a random-sequence property and a multi-threaded
//! stress run with a concurrent auditor.

use crate::endpoint::Type3Device;
use crate::error::CxlError;
use crate::sharing::{CoherenceMode, SharedRegion};
use crate::Result;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a switch port.
pub type PortId = usize;
/// Identifier of a host (an upstream port owner).
pub type HostId = usize;

/// Allocation ids carry their port in the high bits so `release` can address
/// the owning stripe directly: `id = (port << PORT_SHIFT) | sequence`.
const PORT_SHIFT: u32 = 40;

/// A capacity allocation handed to a host from the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolAllocation {
    /// Allocation id (the owning port lives in the high bits).
    pub id: u64,
    /// Host owning the allocation.
    pub host: HostId,
    /// Downstream port (device) the capacity comes from.
    pub port: PortId,
    /// Offset within the device (DPA).
    pub dpa_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// One port's striped allocator state: the free list *and* the live
/// allocations move together under a single lock, so per-port conservation is
/// atomic.
#[derive(Debug)]
struct PortAlloc {
    /// Next free DPA (bump allocation above the holes).
    watermark: u64,
    /// Released-but-not-yet-coalesced ranges, sorted by offset and kept
    /// merged. Holes are reusable (first-fit) and count as unassigned.
    holes: Vec<(u64, u64)>,
    /// Live allocations carved from this port, keyed by full allocation id.
    live: HashMap<u64, PoolAllocation>,
    /// Per-port id sequence (starts at 1; 0 is never a valid id).
    next_seq: u64,
}

/// A downstream port: the attached device plus its striped allocator.
#[derive(Debug)]
struct Port {
    device: Arc<Type3Device>,
    alloc: Mutex<PortAlloc>,
}

/// A consistent capacity snapshot of the whole pool (see
/// [`CxlSwitch::accounting`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolAccounting {
    /// Total capacity across all downstream devices (bytes).
    pub total: u64,
    /// Bytes not assigned to any host.
    pub unassigned: u64,
    /// Bytes assigned per host (hosts with zero assignment are absent).
    pub assigned: HashMap<HostId, u64>,
}

impl PoolAccounting {
    /// Σ assigned across all hosts (bytes).
    pub fn assigned_total(&self) -> u64 {
        self.assigned.values().sum()
    }

    /// Whether conservation holds for this snapshot:
    /// `unassigned + Σ assigned == total`.
    pub fn conserves(&self) -> bool {
        self.unassigned + self.assigned_total() == self.total
    }
}

/// A CXL 2.0 switch with memory pooling. All operations take `&self`; see the
/// [module docs](self) for the lock-striping design.
#[derive(Debug)]
pub struct CxlSwitch {
    name: String,
    /// Downstream ports. Append-only; writers only on `attach_device`.
    ports: RwLock<Vec<Arc<Port>>>,
    /// Downstream port -> host binding.
    bindings: RwLock<HashMap<PortId, HostId>>,
}

impl CxlSwitch {
    /// Creates a switch with no attached devices.
    pub fn new(name: impl Into<String>) -> Self {
        CxlSwitch {
            name: name.into(),
            ports: RwLock::new(Vec::new()),
            bindings: RwLock::new(HashMap::new()),
        }
    }

    /// Switch name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches a Type-3 device to the next downstream port; returns the port id.
    pub fn attach_device(&self, device: Arc<Type3Device>) -> PortId {
        let mut ports = self.ports.write();
        ports.push(Arc::new(Port {
            device,
            alloc: Mutex::new(PortAlloc {
                watermark: 0,
                holes: Vec::new(),
                live: HashMap::new(),
                next_seq: 1,
            }),
        }));
        ports.len() - 1
    }

    /// Number of downstream ports.
    pub fn ports(&self) -> usize {
        self.ports.read().len()
    }

    /// The device on a port.
    pub fn device(&self, port: PortId) -> Result<Arc<Type3Device>> {
        self.ports
            .read()
            .get(port)
            .map(|p| Arc::clone(&p.device))
            .ok_or(CxlError::UnknownPort(port))
    }

    /// Binds a downstream port exclusively to a host (CXL 2.0 single-logical-
    /// device assignment). Fails if already bound. The binding governs
    /// allocations that linearize after it; a carve already granted keeps its
    /// capacity.
    pub fn bind_port(&self, port: PortId, host: HostId) -> Result<()> {
        if port >= self.ports.read().len() {
            return Err(CxlError::UnknownPort(port));
        }
        let mut bindings = self.bindings.write();
        if bindings.contains_key(&port) {
            return Err(CxlError::PortAlreadyBound(port));
        }
        bindings.insert(port, host);
        Ok(())
    }

    /// Unbinds a port (e.g. to re-provision it to another host).
    pub fn unbind_port(&self, port: PortId) -> Result<()> {
        if port >= self.ports.read().len() {
            return Err(CxlError::UnknownPort(port));
        }
        self.bindings.write().remove(&port);
        Ok(())
    }

    /// The host a port is bound to, if any.
    pub fn binding(&self, port: PortId) -> Option<HostId> {
        self.bindings.read().get(&port).copied()
    }

    /// Total capacity across all downstream devices (bytes).
    pub fn total_capacity(&self) -> u64 {
        self.ports
            .read()
            .iter()
            .map(|p| p.device.capacity_bytes())
            .sum()
    }

    /// Capacity not yet assigned to any host (bytes): the bump space above
    /// every port's watermark plus the released holes below it.
    pub fn unassigned_capacity(&self) -> u64 {
        self.ports
            .read()
            .iter()
            .map(|port| {
                let alloc = port.alloc.lock();
                let holes: u64 = alloc.holes.iter().map(|&(_, len)| len).sum();
                port.device.capacity_bytes() - alloc.watermark + holes
            })
            .sum()
    }

    /// A consistent capacity snapshot: total, unassigned and per-host assigned
    /// bytes, gathered under one lock acquisition per port. Because a carve or
    /// release mutates exactly one port's columns atomically — and capacity
    /// never migrates between ports — the snapshot conserves
    /// (`unassigned + Σ assigned == total`) even while other threads are
    /// allocating and releasing.
    pub fn accounting(&self) -> PoolAccounting {
        let mut total = 0u64;
        let mut unassigned = 0u64;
        let mut assigned: HashMap<HostId, u64> = HashMap::new();
        for port in self.ports.read().iter() {
            let capacity = port.device.capacity_bytes();
            let alloc = port.alloc.lock();
            let holes: u64 = alloc.holes.iter().map(|&(_, len)| len).sum();
            total += capacity;
            unassigned += capacity - alloc.watermark + holes;
            for a in alloc.live.values() {
                *assigned.entry(a.host).or_insert(0) += a.len;
            }
        }
        PoolAccounting {
            total,
            unassigned,
            assigned,
        }
    }

    /// Whether `host` may take capacity from `port`: unbound ports serve any
    /// host (multiple-logical-device pooling); a bound port serves only the
    /// host it is bound to.
    fn port_serves(&self, port: PortId, host: HostId) -> bool {
        self.bindings
            .read()
            .get(&port)
            .is_none_or(|&bound| bound == host)
    }

    /// Allocates `len` bytes from the pool to `host` (dynamic capacity add).
    /// Ports exclusively bound to a *different* host are skipped; on each
    /// eligible port a released hole is reused first (first fit), then the
    /// bump watermark. An allocation never spans devices.
    ///
    /// Thread-safe: concurrent callers contend only on the port stripe they
    /// are carving from, and the carve plus its registration happen under
    /// that one lock.
    pub fn allocate(&self, host: HostId, len: u64) -> Result<PoolAllocation> {
        let ports = self.ports.read();
        // Accumulated while scanning so the rejection can report the capacity
        // actually seen, without re-walking (and re-locking) every stripe.
        let mut available = 0u64;
        for (port_id, port) in ports.iter().enumerate() {
            let mut alloc = port.alloc.lock();
            // Binding check inside the stripe lock: a concurrent bind_port
            // linearizes before this carve (we skip) or after it (the carve
            // stands under the binding that was current when it was granted).
            if !self.port_serves(port_id, host) {
                continue;
            }
            let free_above = port.device.capacity_bytes() - alloc.watermark;
            let free_holes: u64 = alloc.holes.iter().map(|&(_, l)| l).sum();
            available += free_above + free_holes;
            let dpa_offset =
                if let Some(hole) = alloc.holes.iter_mut().find(|&&mut (_, l)| l >= len) {
                    let offset = hole.0;
                    hole.0 += len;
                    hole.1 -= len;
                    alloc.holes.retain(|&(_, l)| l > 0);
                    offset
                } else if free_above >= len {
                    let offset = alloc.watermark;
                    alloc.watermark += len;
                    offset
                } else {
                    continue;
                };
            let id = ((port_id as u64) << PORT_SHIFT) | alloc.next_seq;
            alloc.next_seq += 1;
            let allocation = PoolAllocation {
                id,
                host,
                port: port_id,
                dpa_offset,
                len,
            };
            alloc.live.insert(id, allocation.clone());
            return Ok(allocation);
        }
        Err(CxlError::InsufficientCapacity {
            requested: len,
            available,
        })
    }

    /// Releases an allocation (dynamic capacity release). The freed range
    /// becomes a reusable hole; when the range under the watermark is
    /// entirely free the watermark drops past **all** trailing free space, so
    /// releasing adjacent tail blocks out of order still reclaims the full
    /// bump range. Only the owning port's stripe is locked.
    pub fn release(&self, allocation_id: u64) -> Result<()> {
        let port_id = (allocation_id >> PORT_SHIFT) as usize;
        let ports = self.ports.read();
        let Some(port) = ports.get(port_id) else {
            return Err(CxlError::UnknownAllocation(allocation_id));
        };
        let mut alloc = port.alloc.lock();
        let Some(freed) = alloc.live.remove(&allocation_id) else {
            return Err(CxlError::UnknownAllocation(allocation_id));
        };
        let at = alloc
            .holes
            .partition_point(|&(offset, _)| offset < freed.dpa_offset);
        alloc.holes.insert(at, (freed.dpa_offset, freed.len));
        // Merge adjacent holes (releases of neighbouring allocations).
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(alloc.holes.len());
        for &(offset, len) in alloc.holes.iter() {
            match merged.last_mut() {
                Some(last) if last.0 + last.1 == offset => last.1 += len,
                _ => merged.push((offset, len)),
            }
        }
        // Coalesce: a merged hole ending at the watermark is trailing free
        // space — fold it back into the bump range.
        if let Some(&(offset, len)) = merged.last() {
            if offset + len == alloc.watermark {
                alloc.watermark = offset;
                merged.pop();
            }
        }
        alloc.holes = merged;
        Ok(())
    }

    /// Wraps a live allocation in a [`SharedRegion`] over its device window —
    /// the attach-by-allocation path multi-headed sharing uses: carve from the
    /// pool, then expose exactly that carve to several hosts.
    pub fn shared_region(
        &self,
        allocation: &PoolAllocation,
        mode: CoherenceMode,
    ) -> Result<SharedRegion> {
        let ports = self.ports.read();
        let port = ports
            .get(allocation.port)
            .ok_or(CxlError::UnknownAllocation(allocation.id))?;
        {
            let alloc = port.alloc.lock();
            if alloc.live.get(&allocation.id) != Some(allocation) {
                return Err(CxlError::UnknownAllocation(allocation.id));
            }
        }
        SharedRegion::new(
            Arc::clone(&port.device),
            allocation.dpa_offset,
            allocation.len,
            mode,
        )
    }

    /// All live allocations of a host (cloned out of the stripes; the pool
    /// may change the moment the locks drop).
    pub fn allocations_of(&self, host: HostId) -> Vec<PoolAllocation> {
        let mut out: Vec<PoolAllocation> = self
            .ports
            .read()
            .iter()
            .flat_map(|port| {
                port.alloc
                    .lock()
                    .live
                    .values()
                    .filter(|a| a.host == host)
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|a| a.id);
        out
    }

    /// Capacity currently assigned to a host (bytes).
    pub fn assigned_to(&self, host: HostId) -> u64 {
        self.ports
            .read()
            .iter()
            .map(|port| {
                port.alloc
                    .lock()
                    .live
                    .values()
                    .filter(|a| a.host == host)
                    .map(|a| a.len)
                    .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;
    use proptest::prelude::*;

    const GIB: u64 = 1024 * 1024 * 1024;

    fn switch_with_two_devices() -> CxlSwitch {
        let sw = CxlSwitch::new("rack-switch");
        sw.attach_device(Arc::new(Type3Device::new(
            "dev0",
            4 * GIB,
            LinkConfig::gen5_x16(),
        )));
        sw.attach_device(Arc::new(Type3Device::new(
            "dev1",
            4 * GIB,
            LinkConfig::gen5_x16(),
        )));
        sw
    }

    #[test]
    fn attach_and_capacity() {
        let sw = switch_with_two_devices();
        assert_eq!(sw.ports(), 2);
        assert_eq!(sw.total_capacity(), 8 * GIB);
        assert_eq!(sw.unassigned_capacity(), 8 * GIB);
        assert!(sw.device(0).is_ok());
        assert!(sw.device(5).is_err());
    }

    #[test]
    fn port_binding_is_exclusive() {
        let sw = switch_with_two_devices();
        sw.bind_port(0, 10).unwrap();
        assert_eq!(sw.binding(0), Some(10));
        assert_eq!(
            sw.bind_port(0, 11).unwrap_err(),
            CxlError::PortAlreadyBound(0)
        );
        sw.unbind_port(0).unwrap();
        sw.bind_port(0, 11).unwrap();
        assert!(sw.bind_port(7, 1).is_err());
    }

    #[test]
    fn pool_allocation_and_release() {
        let sw = switch_with_two_devices();
        let a = sw.allocate(1, 3 * GIB).unwrap();
        assert_eq!(a.port, 0);
        assert_eq!(a.dpa_offset, 0);
        // Next big allocation does not fit on device 0 and moves to device 1.
        let b = sw.allocate(2, 2 * GIB).unwrap();
        assert_eq!(b.port, 1);
        assert_eq!(sw.assigned_to(1), 3 * GIB);
        assert_eq!(sw.assigned_to(2), 2 * GIB);
        assert_eq!(sw.unassigned_capacity(), 3 * GIB);
        // Releasing the top allocation frees the capacity.
        sw.release(b.id).unwrap();
        assert_eq!(sw.unassigned_capacity(), 5 * GIB);
        assert!(sw.release(9999).is_err());
    }

    #[test]
    fn over_allocation_is_rejected_with_remaining_capacity() {
        let sw = switch_with_two_devices();
        sw.allocate(1, 4 * GIB).unwrap();
        let err = sw.allocate(1, 5 * GIB).unwrap_err();
        match err {
            CxlError::InsufficientCapacity {
                requested,
                available,
            } => {
                assert_eq!(requested, 5 * GIB);
                assert_eq!(available, 4 * GIB);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn allocate_skips_ports_bound_to_other_hosts() {
        // Regression: `allocate` used to ignore bindings entirely, handing
        // host 2 capacity from a device exclusively bound to host 1.
        let sw = switch_with_two_devices();
        sw.bind_port(0, 1).unwrap();
        let foreign = sw.allocate(2, GIB).unwrap();
        assert_eq!(foreign.port, 1, "host 2 must not land on host 1's port");
        // The bound host itself still allocates from its own port first.
        let own = sw.allocate(1, GIB).unwrap();
        assert_eq!(own.port, 0);
        // Bind the remaining port too: a third host has nowhere to go even
        // though bytes are free.
        sw.bind_port(1, 2).unwrap();
        assert!(matches!(
            sw.allocate(3, GIB).unwrap_err(),
            CxlError::InsufficientCapacity { .. }
        ));
        // Unbinding reopens the pool to everyone.
        sw.unbind_port(0).unwrap();
        assert_eq!(sw.allocate(3, GIB).unwrap().port, 0);
    }

    #[test]
    fn release_of_unknown_allocation_reports_the_full_id() {
        let sw = switch_with_two_devices();
        // Regression: this used to come back as InvalidRegister(id as u32),
        // a wrong variant whose truncating cast aliased ids ≥ 2^32.
        let id = (7u64 << 32) | 9;
        assert_eq!(sw.release(id).unwrap_err(), CxlError::UnknownAllocation(id));
        // An id whose encoded port does not exist is unknown too, not a panic.
        let wild = (99u64 << PORT_SHIFT) | 1;
        assert_eq!(
            sw.release(wild).unwrap_err(),
            CxlError::UnknownAllocation(wild)
        );
    }

    #[test]
    fn out_of_order_release_of_tail_blocks_reclaims_capacity() {
        let sw = switch_with_two_devices();
        let a = sw.allocate(1, GIB).unwrap();
        let b = sw.allocate(1, GIB).unwrap();
        let c = sw.allocate(1, GIB).unwrap();
        assert_eq!((a.port, b.port, c.port), (0, 0, 0));
        // Release the middle, then the top: the watermark must coalesce past
        // *both* (the old code only dropped it past the topmost allocation).
        sw.release(b.id).unwrap();
        sw.release(c.id).unwrap();
        assert_eq!(sw.unassigned_capacity(), 7 * GIB);
        // The whole 3 GiB tail is one bump range again.
        let big = sw.allocate(2, 3 * GIB).unwrap();
        assert_eq!(big.port, 0);
        assert_eq!(big.dpa_offset, GIB);
        sw.release(a.id).unwrap();
        sw.release(big.id).unwrap();
        assert_eq!(sw.unassigned_capacity(), 8 * GIB);
    }

    #[test]
    fn released_holes_are_reused_first_fit() {
        let sw = switch_with_two_devices();
        let a = sw.allocate(1, GIB).unwrap();
        let _b = sw.allocate(1, GIB).unwrap();
        sw.release(a.id).unwrap();
        // The hole below the live allocation is both counted and reusable.
        assert_eq!(sw.unassigned_capacity(), 7 * GIB);
        let again = sw.allocate(2, GIB / 2).unwrap();
        assert_eq!((again.port, again.dpa_offset), (0, 0));
        assert_eq!(sw.unassigned_capacity(), 7 * GIB - GIB / 2);
    }

    #[test]
    fn shared_region_wraps_a_live_allocation() {
        use crate::sharing::CoherenceMode;
        let sw = switch_with_two_devices();
        let alloc = sw.allocate(0, GIB).unwrap();
        let region = sw
            .shared_region(&alloc, CoherenceMode::SoftwareManaged)
            .unwrap();
        assert_eq!(region.len(), GIB);
        region.attach(0);
        region.write(0, 0, b"pooled").unwrap();
        // The bytes landed inside the allocation's device window.
        let mut raw = [0u8; 6];
        sw.device(alloc.port)
            .unwrap()
            .read_bulk(alloc.dpa_offset, &mut raw)
            .unwrap();
        assert_eq!(&raw, b"pooled");
        // A released (or never-issued) allocation cannot be shared.
        let stale = alloc.clone();
        sw.release(alloc.id).unwrap();
        assert_eq!(
            sw.shared_region(&stale, CoherenceMode::SoftwareManaged)
                .unwrap_err(),
            CxlError::UnknownAllocation(stale.id)
        );
    }

    #[test]
    fn allocations_of_lists_per_host() {
        let sw = switch_with_two_devices();
        sw.allocate(1, GIB).unwrap();
        sw.allocate(2, GIB).unwrap();
        sw.allocate(1, GIB).unwrap();
        assert_eq!(sw.allocations_of(1).len(), 2);
        assert_eq!(sw.allocations_of(2).len(), 1);
        assert_eq!(sw.allocations_of(3).len(), 0);
    }

    #[test]
    fn accounting_snapshot_conserves() {
        let sw = switch_with_two_devices();
        let a = sw.allocate(1, GIB).unwrap();
        sw.allocate(2, 2 * GIB).unwrap();
        let acct = sw.accounting();
        assert!(acct.conserves());
        assert_eq!(acct.total, 8 * GIB);
        assert_eq!(acct.assigned[&1], GIB);
        assert_eq!(acct.assigned[&2], 2 * GIB);
        sw.release(a.id).unwrap();
        let acct = sw.accounting();
        assert!(acct.conserves());
        assert!(!acct.assigned.contains_key(&1));
    }

    /// The fleet regime: many threads allocate, release and (un)bind at once
    /// while an auditor thread snapshots the accounting mid-flight. Every
    /// snapshot must conserve; after the storm the pool must drain back to
    /// fully unassigned.
    #[test]
    fn concurrent_allocate_release_conserves_capacity() {
        use std::sync::atomic::{AtomicBool, Ordering};

        const KIB: u64 = 1024;
        const THREADS: usize = 8;
        const OPS: usize = 300;

        let sw = Arc::new(CxlSwitch::new("fleet-switch"));
        for (i, cap) in [64 * KIB, 96 * KIB, 128 * KIB, 64 * KIB]
            .into_iter()
            .enumerate()
        {
            sw.attach_device(Arc::new(Type3Device::new(
                format!("stress-dev{i}"),
                cap,
                LinkConfig::gen5_x16(),
            )));
        }
        let total = sw.total_capacity();
        let done = Arc::new(AtomicBool::new(false));

        // Auditor: conservation must hold in *every* mid-flight snapshot.
        let auditor = {
            let sw = Arc::clone(&sw);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut snapshots = 0u32;
                while !done.load(Ordering::Relaxed) {
                    let acct = sw.accounting();
                    assert!(
                        acct.conserves(),
                        "mid-flight snapshot violated conservation: {} + {} != {}",
                        acct.unassigned,
                        acct.assigned_total(),
                        acct.total
                    );
                    snapshots += 1;
                    std::thread::yield_now();
                }
                snapshots
            })
        };

        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let sw = Arc::clone(&sw);
                std::thread::spawn(move || {
                    // Deterministic per-thread LCG so reruns are replayable.
                    let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1);
                    let mut rng = move || {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 16
                    };
                    let mut live: Vec<PoolAllocation> = Vec::new();
                    for _ in 0..OPS {
                        match rng() % 5 {
                            0..=2 => {
                                let len = (rng() % (24 * KIB)) + 1;
                                if let Ok(a) = sw.allocate(t, len) {
                                    live.push(a);
                                }
                            }
                            3 => {
                                if !live.is_empty() {
                                    let victim = rng() as usize % live.len();
                                    let a = live.swap_remove(victim);
                                    sw.release(a.id).unwrap();
                                }
                            }
                            _ => {
                                let port = rng() as usize % sw.ports();
                                if rng() % 2 == 0 {
                                    let _ = sw.bind_port(port, t);
                                } else {
                                    let _ = sw.unbind_port(port);
                                }
                            }
                        }
                    }
                    // Drain: everything this thread still holds goes back.
                    for a in live {
                        sw.release(a.id).unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        let snapshots = auditor.join().unwrap();
        assert!(snapshots > 0, "auditor never sampled");

        // Fully drained: every byte is unassigned again and no allocation
        // survived (double-release would have panicked a worker above).
        assert_eq!(sw.unassigned_capacity(), total);
        for host in 0..THREADS {
            assert_eq!(sw.assigned_to(host), 0);
        }
    }

    /// Two threads hammering the *same* stripe must never hand out
    /// overlapping ranges — the per-port lock covers carve + registration.
    #[test]
    fn concurrent_carves_on_one_port_never_overlap() {
        const KIB: u64 = 1024;
        let sw = Arc::new(CxlSwitch::new("one-port"));
        sw.attach_device(Arc::new(Type3Device::new(
            "solo",
            512 * KIB,
            LinkConfig::gen5_x16(),
        )));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let sw = Arc::clone(&sw);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..40 {
                        if let Ok(a) = sw.allocate(t, ((t + i) % 7 + 1) as u64 * KIB) {
                            mine.push(a);
                        }
                    }
                    mine
                })
            })
            .collect();
        let all: Vec<PoolAllocation> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        for a in &all {
            for b in &all {
                if a.id != b.id {
                    assert_ne!(a.id, b.id);
                    assert!(
                        a.dpa_offset + a.len <= b.dpa_offset
                            || b.dpa_offset + b.len <= a.dpa_offset,
                        "allocations {} and {} overlap",
                        a.id,
                        b.id
                    );
                }
            }
        }
        let acct = sw.accounting();
        assert!(acct.conserves());
    }

    proptest! {
        /// Pool accounting is conservation of capacity: after *any* sequence
        /// of allocate / release / bind / unbind operations, every byte of
        /// the pool is either assigned to exactly one host or unassigned —
        /// `unassigned_capacity() + Σ_host assigned_to(host) ==
        /// total_capacity()` — and live allocations never overlap. (The
        /// multi-threaded variant of this property is the stress test above.)
        #[test]
        fn accounting_invariant_holds_across_random_sequences(
            raw_ops in collection::vec(any::<u64>(), 1..60)
        ) {
            const KIB: u64 = 1024;
            const HOSTS: usize = 4;
            let sw = CxlSwitch::new("prop-switch");
            for (i, cap) in [64 * KIB, 32 * KIB, 96 * KIB].into_iter().enumerate() {
                sw.attach_device(Arc::new(Type3Device::new(
                    format!("prop-dev{i}"),
                    cap,
                    LinkConfig::gen5_x16(),
                )));
            }
            let total = sw.total_capacity();
            let mut live: Vec<PoolAllocation> = Vec::new();
            for op in raw_ops {
                let host = (op >> 8) as usize % HOSTS;
                match op % 4 {
                    // Allocation attempts dominate so the pool actually fills
                    // up and InsufficientCapacity paths are exercised too.
                    0 | 1 => {
                        let len = ((op >> 16) % (48 * KIB)) + 1;
                        if let Ok(alloc) = sw.allocate(host, len) {
                            if let Some(bound) = sw.binding(alloc.port) {
                                prop_assert_eq!(
                                    bound, host,
                                    "allocation landed on a port bound to another host"
                                );
                            }
                            live.push(alloc);
                        }
                    }
                    2 => {
                        if !live.is_empty() {
                            let victim = (op >> 16) as usize % live.len();
                            let alloc = live.swap_remove(victim);
                            sw.release(alloc.id).unwrap();
                        }
                    }
                    _ => {
                        let port = (op >> 16) as usize % sw.ports();
                        if (op >> 32) & 1 == 0 {
                            let _ = sw.bind_port(port, host);
                        } else {
                            let _ = sw.unbind_port(port);
                        }
                    }
                }
                let assigned: u64 = (0..HOSTS).map(|h| sw.assigned_to(h)).sum();
                prop_assert_eq!(sw.unassigned_capacity() + assigned, total);
                let acct = sw.accounting();
                prop_assert!(acct.conserves());
                for a in &live {
                    for b in &live {
                        if a.id != b.id && a.port == b.port {
                            prop_assert!(
                                a.dpa_offset + a.len <= b.dpa_offset
                                    || b.dpa_offset + b.len <= a.dpa_offset,
                                "live allocations {} and {} overlap",
                                a.id,
                                b.id
                            );
                        }
                    }
                }
            }
        }
    }
}
