//! CXL 2.0 switching and memory pooling.
//!
//! CXL 2.0 "expands the specification – among other capabilities – to memory
//! pools using CXL switches on a device level" (paper §1.3). A [`CxlSwitch`]
//! has upstream ports (hosts) and downstream ports (Type-3 devices); devices
//! can be bound to hosts and their capacity carved into pool allocations with
//! dynamic-capacity semantics, which is the mechanism behind "adaptive memory
//! provisioning to compute nodes in real time".

use crate::endpoint::Type3Device;
use crate::error::CxlError;
use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a switch port.
pub type PortId = usize;
/// Identifier of a host (an upstream port owner).
pub type HostId = usize;

/// A capacity allocation handed to a host from the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolAllocation {
    /// Allocation id.
    pub id: u64,
    /// Host owning the allocation.
    pub host: HostId,
    /// Downstream port (device) the capacity comes from.
    pub port: PortId,
    /// Offset within the device (DPA).
    pub dpa_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A CXL 2.0 switch with memory pooling.
#[derive(Debug)]
pub struct CxlSwitch {
    name: String,
    devices: Vec<Arc<Type3Device>>,
    /// Downstream port -> host binding.
    bindings: HashMap<PortId, HostId>,
    /// Next free DPA per downstream port (simple bump allocation).
    watermark: Vec<u64>,
    allocations: Vec<PoolAllocation>,
    next_alloc_id: u64,
}

impl CxlSwitch {
    /// Creates a switch with no attached devices.
    pub fn new(name: impl Into<String>) -> Self {
        CxlSwitch {
            name: name.into(),
            devices: Vec::new(),
            bindings: HashMap::new(),
            watermark: Vec::new(),
            allocations: Vec::new(),
            next_alloc_id: 1,
        }
    }

    /// Switch name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches a Type-3 device to the next downstream port; returns the port id.
    pub fn attach_device(&mut self, device: Arc<Type3Device>) -> PortId {
        self.devices.push(device);
        self.watermark.push(0);
        self.devices.len() - 1
    }

    /// Number of downstream ports.
    pub fn ports(&self) -> usize {
        self.devices.len()
    }

    /// The device on a port.
    pub fn device(&self, port: PortId) -> Result<&Arc<Type3Device>> {
        self.devices.get(port).ok_or(CxlError::UnknownPort(port))
    }

    /// Binds a downstream port exclusively to a host (CXL 2.0 single-logical-
    /// device assignment). Fails if already bound.
    pub fn bind_port(&mut self, port: PortId, host: HostId) -> Result<()> {
        if port >= self.devices.len() {
            return Err(CxlError::UnknownPort(port));
        }
        if self.bindings.contains_key(&port) {
            return Err(CxlError::PortAlreadyBound(port));
        }
        self.bindings.insert(port, host);
        Ok(())
    }

    /// Unbinds a port (e.g. to re-provision it to another host).
    pub fn unbind_port(&mut self, port: PortId) -> Result<()> {
        if port >= self.devices.len() {
            return Err(CxlError::UnknownPort(port));
        }
        self.bindings.remove(&port);
        Ok(())
    }

    /// The host a port is bound to, if any.
    pub fn binding(&self, port: PortId) -> Option<HostId> {
        self.bindings.get(&port).copied()
    }

    /// Total capacity across all downstream devices (bytes).
    pub fn total_capacity(&self) -> u64 {
        self.devices.iter().map(|d| d.capacity_bytes()).sum()
    }

    /// Capacity not yet handed out by the pool (bytes).
    pub fn unassigned_capacity(&self) -> u64 {
        self.devices
            .iter()
            .zip(self.watermark.iter())
            .map(|(d, &w)| d.capacity_bytes().saturating_sub(w))
            .sum()
    }

    /// Allocates `len` bytes from the pool to `host` (dynamic capacity add).
    /// Capacity is taken from the first device with room; an allocation never
    /// spans devices.
    pub fn allocate(&mut self, host: HostId, len: u64) -> Result<PoolAllocation> {
        for (port, device) in self.devices.iter().enumerate() {
            let free = device.capacity_bytes() - self.watermark[port];
            if free >= len {
                let alloc = PoolAllocation {
                    id: self.next_alloc_id,
                    host,
                    port,
                    dpa_offset: self.watermark[port],
                    len,
                };
                self.next_alloc_id += 1;
                self.watermark[port] += len;
                self.allocations.push(alloc.clone());
                return Ok(alloc);
            }
        }
        Err(CxlError::InsufficientCapacity {
            requested: len,
            available: self.unassigned_capacity(),
        })
    }

    /// Releases an allocation (dynamic capacity release). Freed capacity is
    /// only reusable once it is the most recent allocation on its device — the
    /// simple bump allocator mirrors how the prototype carves regions.
    pub fn release(&mut self, allocation_id: u64) -> Result<()> {
        let Some(pos) = self.allocations.iter().position(|a| a.id == allocation_id) else {
            return Err(CxlError::InvalidRegister(allocation_id as u32));
        };
        let alloc = self.allocations.remove(pos);
        if self.watermark[alloc.port] == alloc.dpa_offset + alloc.len {
            self.watermark[alloc.port] = alloc.dpa_offset;
        }
        Ok(())
    }

    /// All live allocations of a host.
    pub fn allocations_of(&self, host: HostId) -> Vec<&PoolAllocation> {
        self.allocations.iter().filter(|a| a.host == host).collect()
    }

    /// Capacity currently assigned to a host (bytes).
    pub fn assigned_to(&self, host: HostId) -> u64 {
        self.allocations_of(host).iter().map(|a| a.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;

    const GIB: u64 = 1024 * 1024 * 1024;

    fn switch_with_two_devices() -> CxlSwitch {
        let mut sw = CxlSwitch::new("rack-switch");
        sw.attach_device(Arc::new(Type3Device::new(
            "dev0",
            4 * GIB,
            LinkConfig::gen5_x16(),
        )));
        sw.attach_device(Arc::new(Type3Device::new(
            "dev1",
            4 * GIB,
            LinkConfig::gen5_x16(),
        )));
        sw
    }

    #[test]
    fn attach_and_capacity() {
        let sw = switch_with_two_devices();
        assert_eq!(sw.ports(), 2);
        assert_eq!(sw.total_capacity(), 8 * GIB);
        assert_eq!(sw.unassigned_capacity(), 8 * GIB);
        assert!(sw.device(0).is_ok());
        assert!(sw.device(5).is_err());
    }

    #[test]
    fn port_binding_is_exclusive() {
        let mut sw = switch_with_two_devices();
        sw.bind_port(0, 10).unwrap();
        assert_eq!(sw.binding(0), Some(10));
        assert_eq!(
            sw.bind_port(0, 11).unwrap_err(),
            CxlError::PortAlreadyBound(0)
        );
        sw.unbind_port(0).unwrap();
        sw.bind_port(0, 11).unwrap();
        assert!(sw.bind_port(7, 1).is_err());
    }

    #[test]
    fn pool_allocation_and_release() {
        let mut sw = switch_with_two_devices();
        let a = sw.allocate(1, 3 * GIB).unwrap();
        assert_eq!(a.port, 0);
        assert_eq!(a.dpa_offset, 0);
        // Next big allocation does not fit on device 0 and moves to device 1.
        let b = sw.allocate(2, 2 * GIB).unwrap();
        assert_eq!(b.port, 1);
        assert_eq!(sw.assigned_to(1), 3 * GIB);
        assert_eq!(sw.assigned_to(2), 2 * GIB);
        assert_eq!(sw.unassigned_capacity(), 3 * GIB);
        // Releasing the top allocation frees the capacity.
        sw.release(b.id).unwrap();
        assert_eq!(sw.unassigned_capacity(), 5 * GIB);
        assert!(sw.release(9999).is_err());
    }

    #[test]
    fn over_allocation_is_rejected_with_remaining_capacity() {
        let mut sw = switch_with_two_devices();
        sw.allocate(1, 4 * GIB).unwrap();
        let err = sw.allocate(1, 5 * GIB).unwrap_err();
        match err {
            CxlError::InsufficientCapacity {
                requested,
                available,
            } => {
                assert_eq!(requested, 5 * GIB);
                assert_eq!(available, 4 * GIB);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn allocations_of_lists_per_host() {
        let mut sw = switch_with_two_devices();
        sw.allocate(1, GIB).unwrap();
        sw.allocate(2, GIB).unwrap();
        sw.allocate(1, GIB).unwrap();
        assert_eq!(sw.allocations_of(1).len(), 2);
        assert_eq!(sw.allocations_of(2).len(), 1);
        assert_eq!(sw.allocations_of(3).len(), 0);
    }
}
