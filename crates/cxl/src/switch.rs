//! CXL 2.0 switching and memory pooling.
//!
//! CXL 2.0 "expands the specification – among other capabilities – to memory
//! pools using CXL switches on a device level" (paper §1.3). A [`CxlSwitch`]
//! has upstream ports (hosts) and downstream ports (Type-3 devices); devices
//! can be bound to hosts and their capacity carved into pool allocations with
//! dynamic-capacity semantics, which is the mechanism behind "adaptive memory
//! provisioning to compute nodes in real time".

use crate::endpoint::Type3Device;
use crate::error::CxlError;
use crate::sharing::{CoherenceMode, SharedRegion};
use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a switch port.
pub type PortId = usize;
/// Identifier of a host (an upstream port owner).
pub type HostId = usize;

/// A capacity allocation handed to a host from the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolAllocation {
    /// Allocation id.
    pub id: u64,
    /// Host owning the allocation.
    pub host: HostId,
    /// Downstream port (device) the capacity comes from.
    pub port: PortId,
    /// Offset within the device (DPA).
    pub dpa_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A CXL 2.0 switch with memory pooling.
#[derive(Debug)]
pub struct CxlSwitch {
    name: String,
    devices: Vec<Arc<Type3Device>>,
    /// Downstream port -> host binding.
    bindings: HashMap<PortId, HostId>,
    /// Next free DPA per downstream port (bump allocation above the holes).
    watermark: Vec<u64>,
    /// Released-but-not-yet-coalesced ranges per port, sorted by offset and
    /// kept merged. Holes are reusable (first-fit) and count as unassigned,
    /// so `unassigned + Σ assigned == total` holds at all times.
    holes: Vec<Vec<(u64, u64)>>,
    allocations: Vec<PoolAllocation>,
    next_alloc_id: u64,
}

impl CxlSwitch {
    /// Creates a switch with no attached devices.
    pub fn new(name: impl Into<String>) -> Self {
        CxlSwitch {
            name: name.into(),
            devices: Vec::new(),
            bindings: HashMap::new(),
            watermark: Vec::new(),
            holes: Vec::new(),
            allocations: Vec::new(),
            next_alloc_id: 1,
        }
    }

    /// Switch name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches a Type-3 device to the next downstream port; returns the port id.
    pub fn attach_device(&mut self, device: Arc<Type3Device>) -> PortId {
        self.devices.push(device);
        self.watermark.push(0);
        self.holes.push(Vec::new());
        self.devices.len() - 1
    }

    /// Number of downstream ports.
    pub fn ports(&self) -> usize {
        self.devices.len()
    }

    /// The device on a port.
    pub fn device(&self, port: PortId) -> Result<&Arc<Type3Device>> {
        self.devices.get(port).ok_or(CxlError::UnknownPort(port))
    }

    /// Binds a downstream port exclusively to a host (CXL 2.0 single-logical-
    /// device assignment). Fails if already bound.
    pub fn bind_port(&mut self, port: PortId, host: HostId) -> Result<()> {
        if port >= self.devices.len() {
            return Err(CxlError::UnknownPort(port));
        }
        if self.bindings.contains_key(&port) {
            return Err(CxlError::PortAlreadyBound(port));
        }
        self.bindings.insert(port, host);
        Ok(())
    }

    /// Unbinds a port (e.g. to re-provision it to another host).
    pub fn unbind_port(&mut self, port: PortId) -> Result<()> {
        if port >= self.devices.len() {
            return Err(CxlError::UnknownPort(port));
        }
        self.bindings.remove(&port);
        Ok(())
    }

    /// The host a port is bound to, if any.
    pub fn binding(&self, port: PortId) -> Option<HostId> {
        self.bindings.get(&port).copied()
    }

    /// Total capacity across all downstream devices (bytes).
    pub fn total_capacity(&self) -> u64 {
        self.devices.iter().map(|d| d.capacity_bytes()).sum()
    }

    /// Capacity not yet assigned to any host (bytes): the bump space above
    /// every port's watermark plus the released holes below it.
    pub fn unassigned_capacity(&self) -> u64 {
        let above: u64 = self
            .devices
            .iter()
            .zip(self.watermark.iter())
            .map(|(d, &w)| d.capacity_bytes().saturating_sub(w))
            .sum();
        let holes: u64 = self
            .holes
            .iter()
            .flat_map(|port| port.iter().map(|&(_, len)| len))
            .sum();
        above + holes
    }

    /// Whether `host` may take capacity from `port`: unbound ports serve any
    /// host (multiple-logical-device pooling); a bound port serves only the
    /// host it is bound to.
    fn port_serves(&self, port: PortId, host: HostId) -> bool {
        self.bindings.get(&port).is_none_or(|&bound| bound == host)
    }

    /// Allocates `len` bytes from the pool to `host` (dynamic capacity add).
    /// Ports exclusively bound to a *different* host are skipped; on each
    /// eligible port a released hole is reused first (first fit), then the
    /// bump watermark. An allocation never spans devices.
    pub fn allocate(&mut self, host: HostId, len: u64) -> Result<PoolAllocation> {
        for (port, device) in self.devices.iter().enumerate() {
            if !self.port_serves(port, host) {
                continue;
            }
            let dpa_offset =
                if let Some(hole) = self.holes[port].iter_mut().find(|&&mut (_, l)| l >= len) {
                    let offset = hole.0;
                    hole.0 += len;
                    hole.1 -= len;
                    self.holes[port].retain(|&(_, l)| l > 0);
                    offset
                } else if device.capacity_bytes() - self.watermark[port] >= len {
                    let offset = self.watermark[port];
                    self.watermark[port] += len;
                    offset
                } else {
                    continue;
                };
            let alloc = PoolAllocation {
                id: self.next_alloc_id,
                host,
                port,
                dpa_offset,
                len,
            };
            self.next_alloc_id += 1;
            self.allocations.push(alloc.clone());
            return Ok(alloc);
        }
        Err(CxlError::InsufficientCapacity {
            requested: len,
            available: self.unassigned_capacity(),
        })
    }

    /// Releases an allocation (dynamic capacity release). The freed range
    /// becomes a reusable hole; when the range under the watermark is
    /// entirely free the watermark drops past **all** trailing free space, so
    /// releasing adjacent tail blocks out of order still reclaims the full
    /// bump range.
    pub fn release(&mut self, allocation_id: u64) -> Result<()> {
        let Some(pos) = self.allocations.iter().position(|a| a.id == allocation_id) else {
            return Err(CxlError::UnknownAllocation(allocation_id));
        };
        let alloc = self.allocations.remove(pos);
        let holes = &mut self.holes[alloc.port];
        let at = holes.partition_point(|&(offset, _)| offset < alloc.dpa_offset);
        holes.insert(at, (alloc.dpa_offset, alloc.len));
        // Merge adjacent holes (releases of neighbouring allocations).
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(holes.len());
        for &(offset, len) in holes.iter() {
            match merged.last_mut() {
                Some(last) if last.0 + last.1 == offset => last.1 += len,
                _ => merged.push((offset, len)),
            }
        }
        // Coalesce: a merged hole ending at the watermark is trailing free
        // space — fold it back into the bump range.
        if let Some(&(offset, len)) = merged.last() {
            if offset + len == self.watermark[alloc.port] {
                self.watermark[alloc.port] = offset;
                merged.pop();
            }
        }
        self.holes[alloc.port] = merged;
        Ok(())
    }

    /// Wraps a live allocation in a [`SharedRegion`] over its device window —
    /// the attach-by-allocation path multi-headed sharing uses: carve from the
    /// pool, then expose exactly that carve to several hosts.
    pub fn shared_region(
        &self,
        allocation: &PoolAllocation,
        mode: CoherenceMode,
    ) -> Result<SharedRegion> {
        if !self.allocations.iter().any(|a| a == allocation) {
            return Err(CxlError::UnknownAllocation(allocation.id));
        }
        let device = self.device(allocation.port)?;
        SharedRegion::new(
            Arc::clone(device),
            allocation.dpa_offset,
            allocation.len,
            mode,
        )
    }

    /// All live allocations of a host.
    pub fn allocations_of(&self, host: HostId) -> Vec<&PoolAllocation> {
        self.allocations.iter().filter(|a| a.host == host).collect()
    }

    /// Capacity currently assigned to a host (bytes).
    pub fn assigned_to(&self, host: HostId) -> u64 {
        self.allocations_of(host).iter().map(|a| a.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;
    use proptest::prelude::*;

    const GIB: u64 = 1024 * 1024 * 1024;

    fn switch_with_two_devices() -> CxlSwitch {
        let mut sw = CxlSwitch::new("rack-switch");
        sw.attach_device(Arc::new(Type3Device::new(
            "dev0",
            4 * GIB,
            LinkConfig::gen5_x16(),
        )));
        sw.attach_device(Arc::new(Type3Device::new(
            "dev1",
            4 * GIB,
            LinkConfig::gen5_x16(),
        )));
        sw
    }

    #[test]
    fn attach_and_capacity() {
        let sw = switch_with_two_devices();
        assert_eq!(sw.ports(), 2);
        assert_eq!(sw.total_capacity(), 8 * GIB);
        assert_eq!(sw.unassigned_capacity(), 8 * GIB);
        assert!(sw.device(0).is_ok());
        assert!(sw.device(5).is_err());
    }

    #[test]
    fn port_binding_is_exclusive() {
        let mut sw = switch_with_two_devices();
        sw.bind_port(0, 10).unwrap();
        assert_eq!(sw.binding(0), Some(10));
        assert_eq!(
            sw.bind_port(0, 11).unwrap_err(),
            CxlError::PortAlreadyBound(0)
        );
        sw.unbind_port(0).unwrap();
        sw.bind_port(0, 11).unwrap();
        assert!(sw.bind_port(7, 1).is_err());
    }

    #[test]
    fn pool_allocation_and_release() {
        let mut sw = switch_with_two_devices();
        let a = sw.allocate(1, 3 * GIB).unwrap();
        assert_eq!(a.port, 0);
        assert_eq!(a.dpa_offset, 0);
        // Next big allocation does not fit on device 0 and moves to device 1.
        let b = sw.allocate(2, 2 * GIB).unwrap();
        assert_eq!(b.port, 1);
        assert_eq!(sw.assigned_to(1), 3 * GIB);
        assert_eq!(sw.assigned_to(2), 2 * GIB);
        assert_eq!(sw.unassigned_capacity(), 3 * GIB);
        // Releasing the top allocation frees the capacity.
        sw.release(b.id).unwrap();
        assert_eq!(sw.unassigned_capacity(), 5 * GIB);
        assert!(sw.release(9999).is_err());
    }

    #[test]
    fn over_allocation_is_rejected_with_remaining_capacity() {
        let mut sw = switch_with_two_devices();
        sw.allocate(1, 4 * GIB).unwrap();
        let err = sw.allocate(1, 5 * GIB).unwrap_err();
        match err {
            CxlError::InsufficientCapacity {
                requested,
                available,
            } => {
                assert_eq!(requested, 5 * GIB);
                assert_eq!(available, 4 * GIB);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn allocate_skips_ports_bound_to_other_hosts() {
        // Regression: `allocate` used to ignore bindings entirely, handing
        // host 2 capacity from a device exclusively bound to host 1.
        let mut sw = switch_with_two_devices();
        sw.bind_port(0, 1).unwrap();
        let foreign = sw.allocate(2, GIB).unwrap();
        assert_eq!(foreign.port, 1, "host 2 must not land on host 1's port");
        // The bound host itself still allocates from its own port first.
        let own = sw.allocate(1, GIB).unwrap();
        assert_eq!(own.port, 0);
        // Bind the remaining port too: a third host has nowhere to go even
        // though bytes are free.
        sw.bind_port(1, 2).unwrap();
        assert!(matches!(
            sw.allocate(3, GIB).unwrap_err(),
            CxlError::InsufficientCapacity { .. }
        ));
        // Unbinding reopens the pool to everyone.
        sw.unbind_port(0).unwrap();
        assert_eq!(sw.allocate(3, GIB).unwrap().port, 0);
    }

    #[test]
    fn release_of_unknown_allocation_reports_the_full_id() {
        let mut sw = switch_with_two_devices();
        // Regression: this used to come back as InvalidRegister(id as u32),
        // a wrong variant whose truncating cast aliased ids ≥ 2^32.
        let id = (7u64 << 32) | 9;
        assert_eq!(sw.release(id).unwrap_err(), CxlError::UnknownAllocation(id));
    }

    #[test]
    fn out_of_order_release_of_tail_blocks_reclaims_capacity() {
        let mut sw = switch_with_two_devices();
        let a = sw.allocate(1, GIB).unwrap();
        let b = sw.allocate(1, GIB).unwrap();
        let c = sw.allocate(1, GIB).unwrap();
        assert_eq!((a.port, b.port, c.port), (0, 0, 0));
        // Release the middle, then the top: the watermark must coalesce past
        // *both* (the old code only dropped it past the topmost allocation).
        sw.release(b.id).unwrap();
        sw.release(c.id).unwrap();
        assert_eq!(sw.unassigned_capacity(), 7 * GIB);
        // The whole 3 GiB tail is one bump range again.
        let big = sw.allocate(2, 3 * GIB).unwrap();
        assert_eq!(big.port, 0);
        assert_eq!(big.dpa_offset, GIB);
        sw.release(a.id).unwrap();
        sw.release(big.id).unwrap();
        assert_eq!(sw.unassigned_capacity(), 8 * GIB);
    }

    #[test]
    fn released_holes_are_reused_first_fit() {
        let mut sw = switch_with_two_devices();
        let a = sw.allocate(1, GIB).unwrap();
        let _b = sw.allocate(1, GIB).unwrap();
        sw.release(a.id).unwrap();
        // The hole below the live allocation is both counted and reusable.
        assert_eq!(sw.unassigned_capacity(), 7 * GIB);
        let again = sw.allocate(2, GIB / 2).unwrap();
        assert_eq!((again.port, again.dpa_offset), (0, 0));
        assert_eq!(sw.unassigned_capacity(), 7 * GIB - GIB / 2);
    }

    #[test]
    fn shared_region_wraps_a_live_allocation() {
        use crate::sharing::CoherenceMode;
        let mut sw = switch_with_two_devices();
        let alloc = sw.allocate(0, GIB).unwrap();
        let region = sw
            .shared_region(&alloc, CoherenceMode::SoftwareManaged)
            .unwrap();
        assert_eq!(region.len(), GIB);
        region.attach(0);
        region.write(0, 0, b"pooled").unwrap();
        // The bytes landed inside the allocation's device window.
        let mut raw = [0u8; 6];
        sw.device(alloc.port)
            .unwrap()
            .read_bulk(alloc.dpa_offset, &mut raw)
            .unwrap();
        assert_eq!(&raw, b"pooled");
        // A released (or never-issued) allocation cannot be shared.
        let stale = alloc.clone();
        sw.release(alloc.id).unwrap();
        assert_eq!(
            sw.shared_region(&stale, CoherenceMode::SoftwareManaged)
                .unwrap_err(),
            CxlError::UnknownAllocation(stale.id)
        );
    }

    #[test]
    fn allocations_of_lists_per_host() {
        let mut sw = switch_with_two_devices();
        sw.allocate(1, GIB).unwrap();
        sw.allocate(2, GIB).unwrap();
        sw.allocate(1, GIB).unwrap();
        assert_eq!(sw.allocations_of(1).len(), 2);
        assert_eq!(sw.allocations_of(2).len(), 1);
        assert_eq!(sw.allocations_of(3).len(), 0);
    }

    proptest! {
        /// Pool accounting is conservation of capacity: after *any* sequence
        /// of allocate / release / bind / unbind operations, every byte of
        /// the pool is either assigned to exactly one host or unassigned —
        /// `unassigned_capacity() + Σ_host assigned_to(host) ==
        /// total_capacity()` — and live allocations never overlap.
        #[test]
        fn accounting_invariant_holds_across_random_sequences(
            raw_ops in collection::vec(any::<u64>(), 1..60)
        ) {
            const KIB: u64 = 1024;
            const HOSTS: usize = 4;
            let mut sw = CxlSwitch::new("prop-switch");
            for (i, cap) in [64 * KIB, 32 * KIB, 96 * KIB].into_iter().enumerate() {
                sw.attach_device(Arc::new(Type3Device::new(
                    format!("prop-dev{i}"),
                    cap,
                    LinkConfig::gen5_x16(),
                )));
            }
            let total = sw.total_capacity();
            let mut live: Vec<PoolAllocation> = Vec::new();
            for op in raw_ops {
                let host = (op >> 8) as usize % HOSTS;
                match op % 4 {
                    // Allocation attempts dominate so the pool actually fills
                    // up and InsufficientCapacity paths are exercised too.
                    0 | 1 => {
                        let len = ((op >> 16) % (48 * KIB)) + 1;
                        if let Ok(alloc) = sw.allocate(host, len) {
                            if let Some(bound) = sw.binding(alloc.port) {
                                prop_assert_eq!(
                                    bound, host,
                                    "allocation landed on a port bound to another host"
                                );
                            }
                            live.push(alloc);
                        }
                    }
                    2 => {
                        if !live.is_empty() {
                            let victim = (op >> 16) as usize % live.len();
                            let alloc = live.swap_remove(victim);
                            sw.release(alloc.id).unwrap();
                        }
                    }
                    _ => {
                        let port = (op >> 16) as usize % sw.ports();
                        if (op >> 32) & 1 == 0 {
                            let _ = sw.bind_port(port, host);
                        } else {
                            let _ = sw.unbind_port(port);
                        }
                    }
                }
                let assigned: u64 = (0..HOSTS).map(|h| sw.assigned_to(h)).sum();
                prop_assert_eq!(sw.unassigned_capacity() + assigned, total);
                for a in &live {
                    for b in &live {
                        if a.id != b.id && a.port == b.port {
                            prop_assert!(
                                a.dpa_offset + a.len <= b.dpa_offset
                                    || b.dpa_offset + b.len <= a.dpa_offset,
                                "live allocations {} and {} overlap",
                                a.id,
                                b.id
                            );
                        }
                    }
                }
            }
        }
    }
}
