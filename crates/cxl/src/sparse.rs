//! Sparse byte store used as the backing memory of modelled devices.
//!
//! A real expander carries tens of GiB; allocating that eagerly in a test
//! process is wasteful and slow. [`SparseMemory`] provides the same semantics
//! as a zero-initialised `Vec<u8>` of the full capacity — reads of untouched
//! regions return zeros — while only materialising 64 KiB chunks that have
//! actually been written.

use std::collections::BTreeMap;

/// Chunk granularity of the sparse store.
pub const CHUNK_BYTES: usize = 64 * 1024;

/// A sparse, zero-default byte store with a fixed logical capacity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMemory {
    capacity: u64,
    chunks: BTreeMap<u64, Vec<u8>>,
}

impl SparseMemory {
    /// Creates a store with the given logical capacity.
    pub fn new(capacity: u64) -> Self {
        SparseMemory {
            capacity,
            chunks: BTreeMap::new(),
        }
    }

    /// Logical capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes of physical memory actually materialised.
    pub fn resident_bytes(&self) -> u64 {
        self.chunks.len() as u64 * CHUNK_BYTES as u64
    }

    /// Returns `true` if the range `[offset, offset + len)` fits in the store.
    pub fn in_bounds(&self, offset: u64, len: usize) -> bool {
        offset
            .checked_add(len as u64)
            .map(|end| end <= self.capacity)
            .unwrap_or(false)
    }

    /// Reads `buf.len()` bytes at `offset`. Untouched regions read as zero.
    /// Panics if out of bounds — callers bound-check first.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        assert!(
            self.in_bounds(offset, buf.len()),
            "sparse read out of bounds"
        );
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let chunk_index = pos / CHUNK_BYTES as u64;
            let within = (pos % CHUNK_BYTES as u64) as usize;
            let take = (CHUNK_BYTES - within).min(buf.len() - done);
            match self.chunks.get(&chunk_index) {
                Some(chunk) => {
                    buf[done..done + take].copy_from_slice(&chunk[within..within + take])
                }
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
    }

    /// Writes `data` at `offset`, materialising chunks as needed.
    /// Panics if out of bounds — callers bound-check first.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        assert!(
            self.in_bounds(offset, data.len()),
            "sparse write out of bounds"
        );
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let chunk_index = pos / CHUNK_BYTES as u64;
            let within = (pos % CHUNK_BYTES as u64) as usize;
            let take = (CHUNK_BYTES - within).min(data.len() - done);
            let chunk = self
                .chunks
                .entry(chunk_index)
                .or_insert_with(|| vec![0u8; CHUNK_BYTES]);
            chunk[within..within + take].copy_from_slice(&data[done..done + take]);
            done += take;
        }
    }

    /// Clears every byte back to zero (drops all chunks).
    pub fn clear(&mut self) {
        self.chunks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = SparseMemory::new(1 << 40); // a terabyte costs nothing
        let mut buf = [0xFFu8; 256];
        mem.read((1 << 39) + 17, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(mem.resident_bytes(), 0);
    }

    #[test]
    fn write_read_round_trip_across_chunk_boundary() {
        let mut mem = SparseMemory::new(1 << 20);
        let offset = CHUNK_BYTES as u64 - 10;
        let data: Vec<u8> = (0..64u8).collect();
        mem.write(offset, &data);
        let mut back = vec![0u8; 64];
        mem.read(offset, &mut back);
        assert_eq!(back, data);
        assert_eq!(mem.resident_bytes(), 2 * CHUNK_BYTES as u64);
    }

    #[test]
    fn bounds_checking() {
        let mem = SparseMemory::new(1024);
        assert!(mem.in_bounds(0, 1024));
        assert!(!mem.in_bounds(1, 1024));
        assert!(!mem.in_bounds(u64::MAX, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let mem = SparseMemory::new(16);
        let mut buf = [0u8; 32];
        mem.read(0, &mut buf);
    }

    #[test]
    fn clear_resets_to_zero() {
        let mut mem = SparseMemory::new(4096);
        mem.write(0, &[1u8; 128]);
        mem.clear();
        let mut buf = [9u8; 128];
        mem.read(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(mem.resident_bytes(), 0);
    }

    proptest! {
        #[test]
        fn prop_round_trip(offset in 0u64..500_000, data in proptest::collection::vec(any::<u8>(), 1..512)) {
            let mut mem = SparseMemory::new(1 << 20);
            if mem.in_bounds(offset, data.len()) {
                mem.write(offset, &data);
                let mut back = vec![0u8; data.len()];
                mem.read(offset, &mut back);
                prop_assert_eq!(back, data);
            }
        }

        #[test]
        fn prop_disjoint_writes_do_not_interfere(
            a_off in 0u64..1000u64,
            b_off in 2000u64..3000u64,
        ) {
            let mut mem = SparseMemory::new(1 << 20);
            mem.write(a_off, &[0xAA; 100]);
            mem.write(b_off, &[0xBB; 100]);
            let mut a = [0u8; 100];
            let mut b = [0u8; 100];
            mem.read(a_off, &mut a);
            mem.read(b_off, &mut b);
            prop_assert!(a.iter().all(|&x| x == 0xAA));
            prop_assert!(b.iter().all(|&x| x == 0xBB));
        }
    }
}
