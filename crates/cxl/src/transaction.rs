//! CXL.io and CXL.mem transaction-layer types.
//!
//! The paper's soft IP "adeptly handles incoming CXL.mem requests originating
//! from the CPU host" and "the CXL.io transaction layer undertakes the
//! responsibility of processing CXL.io requests … configuration and memory
//! space inquiries" (§2.2). This module defines those requests and responses
//! with enough fidelity to account flit bytes and to actually move data.

/// Size of a CXL.mem data transfer: always one 64-byte cache line.
pub const CACHE_LINE_BYTES: usize = 64;
/// Size of a CXL 68-byte flit (64 B payload + 4 B header/CRC) used on Gen5.
pub const FLIT_BYTES: usize = 68;

/// Master-to-Subordinate (host → device) CXL.mem opcodes, following the
/// M2S Req / M2S RwD message classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpcode {
    /// Read one cache line (M2S Req `MemRd`).
    MemRd,
    /// Read without data return, used for cache-coherence management (`MemInv`).
    MemInv,
    /// Write a full cache line (M2S RwD `MemWr`).
    MemWr,
    /// Partial write with byte enables (M2S RwD `MemWrPtl`).
    MemWrPtl,
}

impl MemOpcode {
    /// Whether the opcode carries a 64-byte payload from host to device.
    pub fn carries_write_data(&self) -> bool {
        matches!(self, MemOpcode::MemWr | MemOpcode::MemWrPtl)
    }

    /// Whether the device must return a 64-byte payload.
    pub fn returns_data(&self) -> bool {
        matches!(self, MemOpcode::MemRd)
    }
}

/// A host → device CXL.mem request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRequest {
    /// Operation.
    pub opcode: MemOpcode,
    /// Host physical address (cache-line aligned for full-line operations).
    pub hpa: u64,
    /// Payload for write operations (`None` for reads/invalidations).
    pub data: Option<[u8; CACHE_LINE_BYTES]>,
    /// Byte-enable mask for `MemWrPtl`; ignored otherwise.
    pub byte_enable: u64,
    /// Tag used to match the response.
    pub tag: u16,
}

impl MemRequest {
    /// A full-line read.
    pub fn read(hpa: u64, tag: u16) -> Self {
        MemRequest {
            opcode: MemOpcode::MemRd,
            hpa,
            data: None,
            byte_enable: u64::MAX,
            tag,
        }
    }

    /// A full-line write.
    pub fn write(hpa: u64, data: [u8; CACHE_LINE_BYTES], tag: u16) -> Self {
        MemRequest {
            opcode: MemOpcode::MemWr,
            hpa,
            data: Some(data),
            byte_enable: u64::MAX,
            tag,
        }
    }

    /// A partial write: only bytes whose bit is set in `byte_enable` are stored.
    pub fn write_partial(
        hpa: u64,
        data: [u8; CACHE_LINE_BYTES],
        byte_enable: u64,
        tag: u16,
    ) -> Self {
        MemRequest {
            opcode: MemOpcode::MemWrPtl,
            hpa,
            data: Some(data),
            byte_enable,
            tag,
        }
    }

    /// Number of flit bytes this request occupies on the link (request flit
    /// plus a data flit when carrying a payload).
    pub fn flit_bytes(&self) -> usize {
        if self.opcode.carries_write_data() {
            2 * FLIT_BYTES
        } else {
            FLIT_BYTES
        }
    }
}

/// A device → host CXL.mem response (S2M DRS for data, S2M NDR otherwise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemResponse {
    /// Tag of the matching request.
    pub tag: u16,
    /// Data returned for reads.
    pub data: Option<[u8; CACHE_LINE_BYTES]>,
    /// Whether the request completed successfully.
    pub success: bool,
}

impl MemResponse {
    /// Number of flit bytes this response occupies on the link.
    pub fn flit_bytes(&self) -> usize {
        if self.data.is_some() {
            2 * FLIT_BYTES
        } else {
            FLIT_BYTES
        }
    }
}

/// CXL.io (PCIe-semantics) requests: configuration and MMIO register access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoRequest {
    /// Configuration-space read of a 32-bit register at `offset`.
    ConfigRead {
        /// Register offset in configuration space.
        offset: u32,
    },
    /// Configuration-space write.
    ConfigWrite {
        /// Register offset in configuration space.
        offset: u32,
        /// Value to write.
        value: u32,
    },
    /// Memory-mapped register read (e.g. mailbox, HDM decoder programming).
    MmioRead {
        /// Register offset in the device's MMIO BAR.
        offset: u32,
    },
    /// Memory-mapped register write.
    MmioWrite {
        /// Register offset in the device's MMIO BAR.
        offset: u32,
        /// Value to write.
        value: u32,
    },
}

/// CXL.io response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoResponse {
    /// Value returned for reads; echoed value for writes.
    pub value: u32,
    /// Whether the access hit a valid register.
    pub success: bool,
}

/// Running counters of link traffic, maintained by endpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlitCounters {
    /// Flit bytes sent host → device.
    pub m2s_bytes: u64,
    /// Flit bytes sent device → host.
    pub s2m_bytes: u64,
    /// Number of CXL.mem requests processed.
    pub mem_requests: u64,
    /// Number of CXL.io requests processed.
    pub io_requests: u64,
}

impl FlitCounters {
    /// Records a request/response pair.
    pub fn record_mem(&mut self, request: &MemRequest, response: &MemResponse) {
        self.m2s_bytes += request.flit_bytes() as u64;
        self.s2m_bytes += response.flit_bytes() as u64;
        self.mem_requests += 1;
    }

    /// Records a CXL.io access.
    pub fn record_io(&mut self) {
        self.io_requests += 1;
        self.m2s_bytes += FLIT_BYTES as u64;
        self.s2m_bytes += FLIT_BYTES as u64;
    }

    /// Link protocol efficiency observed so far: payload bytes over flit bytes.
    pub fn payload_efficiency(&self) -> f64 {
        let flits = self.m2s_bytes + self.s2m_bytes;
        if flits == 0 {
            return 0.0;
        }
        let payload = self.mem_requests * CACHE_LINE_BYTES as u64;
        payload as f64 / flits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_request_has_no_payload_and_one_flit() {
        let r = MemRequest::read(0x1000, 7);
        assert_eq!(r.opcode, MemOpcode::MemRd);
        assert!(r.data.is_none());
        assert_eq!(r.flit_bytes(), FLIT_BYTES);
        assert!(r.opcode.returns_data());
        assert!(!r.opcode.carries_write_data());
    }

    #[test]
    fn write_request_occupies_two_flits() {
        let r = MemRequest::write(0x40, [0xAB; 64], 1);
        assert_eq!(r.flit_bytes(), 2 * FLIT_BYTES);
        assert!(r.opcode.carries_write_data());
        assert!(!r.opcode.returns_data());
    }

    #[test]
    fn partial_write_keeps_byte_enable() {
        let r = MemRequest::write_partial(0x80, [1; 64], 0x00FF, 3);
        assert_eq!(r.opcode, MemOpcode::MemWrPtl);
        assert_eq!(r.byte_enable, 0x00FF);
    }

    #[test]
    fn response_flit_size_depends_on_data() {
        let with_data = MemResponse {
            tag: 0,
            data: Some([0; 64]),
            success: true,
        };
        let without = MemResponse {
            tag: 0,
            data: None,
            success: true,
        };
        assert_eq!(with_data.flit_bytes(), 2 * FLIT_BYTES);
        assert_eq!(without.flit_bytes(), FLIT_BYTES);
    }

    #[test]
    fn counters_accumulate_and_compute_efficiency() {
        let mut counters = FlitCounters::default();
        let req = MemRequest::read(0, 0);
        let resp = MemResponse {
            tag: 0,
            data: Some([0; 64]),
            success: true,
        };
        counters.record_mem(&req, &resp);
        counters.record_io();
        assert_eq!(counters.mem_requests, 1);
        assert_eq!(counters.io_requests, 1);
        assert!(counters.m2s_bytes > 0 && counters.s2m_bytes > 0);
        let eff = counters.payload_efficiency();
        assert!(eff > 0.0 && eff < 1.0);
        assert_eq!(FlitCounters::default().payload_efficiency(), 0.0);
    }
}
