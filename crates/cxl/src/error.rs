//! Error type for the CXL model.

use std::fmt;

/// Errors produced by the CXL device model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CxlError {
    /// A host physical address did not match any HDM decoder range.
    AddressNotMapped(u64),
    /// An access crossed the end of the device's backing memory.
    OutOfBounds {
        /// Device-local address of the access.
        dpa: u64,
        /// Length of the access in bytes.
        len: usize,
        /// Size of the device memory.
        capacity: u64,
    },
    /// An HDM decoder was configured with an invalid range.
    InvalidHdmRange(String),
    /// The device is not in a state that allows the operation (e.g. memory
    /// access before the memory-enable bit is set).
    NotReady(&'static str),
    /// A switch port id was unknown.
    UnknownPort(usize),
    /// A switch port is already bound to another host.
    PortAlreadyBound(usize),
    /// Pooling: not enough unassigned capacity to satisfy an allocation.
    InsufficientCapacity {
        /// Requested bytes.
        requested: u64,
        /// Bytes still unassigned.
        available: u64,
    },
    /// A shared region was accessed by a host that has not attached it.
    NotAttached {
        /// Host id.
        host: usize,
    },
    /// A configuration register offset was invalid.
    InvalidRegister(u32),
    /// Pooling: the allocation id is not (or no longer) live on this switch.
    UnknownAllocation(u64),
}

impl fmt::Display for CxlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CxlError::AddressNotMapped(hpa) => {
                write!(
                    f,
                    "host physical address {hpa:#x} is not mapped by any HDM decoder"
                )
            }
            CxlError::OutOfBounds { dpa, len, capacity } => write!(
                f,
                "access of {len} bytes at device address {dpa:#x} exceeds capacity {capacity:#x}"
            ),
            CxlError::InvalidHdmRange(msg) => write!(f, "invalid HDM range: {msg}"),
            CxlError::NotReady(what) => write!(f, "device not ready: {what}"),
            CxlError::UnknownPort(p) => write!(f, "unknown switch port {p}"),
            CxlError::PortAlreadyBound(p) => write!(f, "switch port {p} already bound"),
            CxlError::InsufficientCapacity {
                requested,
                available,
            } => write!(
                f,
                "pool cannot satisfy {requested} bytes, only {available} unassigned"
            ),
            CxlError::NotAttached { host } => {
                write!(f, "host {host} has not attached the shared region")
            }
            CxlError::InvalidRegister(offset) => write!(f, "invalid register offset {offset:#x}"),
            CxlError::UnknownAllocation(id) => {
                write!(f, "pool allocation {id} is not live on this switch")
            }
        }
    }
}

impl std::error::Error for CxlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_addresses_in_hex() {
        let e = CxlError::AddressNotMapped(0x1000);
        assert!(e.to_string().contains("0x1000"));
        let e = CxlError::OutOfBounds {
            dpa: 0x20,
            len: 64,
            capacity: 0x40,
        };
        assert!(e.to_string().contains("0x20"));
    }
}
