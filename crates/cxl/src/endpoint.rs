//! The CXL Type-3 memory-expander endpoint.
//!
//! A [`Type3Device`] combines the CXL.io and CXL.mem transaction layers, an
//! HDM decoder set and a real backing store. It is the software equivalent of
//! the paper's FPGA endpoint: the host enumerates it, programs an HDM decoder,
//! sets the memory-enable bit and then reads and writes cache lines through
//! CXL.mem requests. Bulk helpers are provided for the persistent-memory layer,
//! which moves whole object ranges rather than single lines.

use crate::config::{CxlDeviceType, LinkConfig};
use crate::error::CxlError;
use crate::hdm::{HdmDecoder, HdmRange};
use crate::sparse::SparseMemory;
use crate::transaction::{
    FlitCounters, IoRequest, IoResponse, MemOpcode, MemRequest, MemResponse, CACHE_LINE_BYTES,
};
use crate::Result;
use parking_lot::{Mutex, RwLock};

/// Well-known CXL.io register offsets implemented by the model.
pub mod registers {
    /// Vendor/device identification (read-only).
    pub const REG_ID: u32 = 0x00;
    /// Device capacity in 256 MiB units (read-only).
    pub const REG_CAPACITY: u32 = 0x08;
    /// Memory-enable control bit (bit 0) — the HDM is inaccessible until set.
    pub const REG_MEM_ENABLE: u32 = 0x10;
    /// Device status: bit 0 = media ready, bit 1 = memory enabled.
    pub const REG_STATUS: u32 = 0x14;
    /// Global Persistent Flush doorbell: writing 1 requests a flush of all
    /// device buffers to the persistence domain.
    pub const REG_GPF_DOORBELL: u32 = 0x20;
}

/// Aggregate statistics of a device's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Cache lines read through CXL.mem.
    pub lines_read: u64,
    /// Cache lines written through CXL.mem.
    pub lines_written: u64,
    /// Bytes read (payload).
    pub bytes_read: u64,
    /// Bytes written (payload).
    pub bytes_written: u64,
    /// Global-persistent-flush requests handled.
    pub gpf_flushes: u64,
    /// Requests rejected (unmapped address, out of bounds, not ready).
    pub rejected: u64,
}

/// A CXL Type-3 (memory expander) endpoint with a functional backing store.
#[derive(Debug)]
pub struct Type3Device {
    name: String,
    link: LinkConfig,
    vendor_id: u16,
    device_id: u16,
    hdm: RwLock<HdmDecoder>,
    memory: RwLock<SparseMemory>,
    mem_enabled: RwLock<bool>,
    counters: Mutex<FlitCounters>,
    stats: Mutex<DeviceStats>,
}

impl Type3Device {
    /// Creates a device with `capacity_bytes` of zero-initialised memory.
    pub fn new(name: impl Into<String>, capacity_bytes: u64, link: LinkConfig) -> Self {
        Type3Device {
            name: name.into(),
            link,
            vendor_id: 0x8086,
            device_id: 0x0CF1,
            hdm: RwLock::new(HdmDecoder::new()),
            memory: RwLock::new(SparseMemory::new(capacity_bytes)),
            mem_enabled: RwLock::new(false),
            counters: Mutex::new(FlitCounters::default()),
            stats: Mutex::new(DeviceStats::default()),
        }
    }

    /// The device's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This is always a Type-3 device.
    pub fn device_type(&self) -> CxlDeviceType {
        CxlDeviceType::Type3
    }

    /// The negotiated link configuration.
    pub fn link(&self) -> LinkConfig {
        self.link
    }

    /// Capacity of the backing memory in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.memory.read().capacity()
    }

    /// Whether CXL.mem accesses are currently allowed.
    pub fn memory_enabled(&self) -> bool {
        *self.mem_enabled.read()
    }

    /// Programs an HDM decoder range.
    pub fn program_hdm(&self, range: HdmRange) -> Result<()> {
        if range.dpa_base + range.local_bytes() > self.capacity_bytes() {
            return Err(CxlError::InvalidHdmRange(format!(
                "range maps {} bytes beyond device capacity",
                range.dpa_base + range.local_bytes() - self.capacity_bytes()
            )));
        }
        self.hdm.write().program(range)
    }

    /// Total HPA bytes currently mapped.
    pub fn mapped_bytes(&self) -> u64 {
        self.hdm.read().mapped_bytes()
    }

    /// Enables or disables CXL.mem access (mirrors the DVSEC memory-enable bit).
    pub fn set_memory_enable(&self, enable: bool) {
        *self.mem_enabled.write() = enable;
    }

    /// Handles a CXL.io request (configuration / MMIO register access).
    pub fn handle_io(&self, request: &IoRequest) -> IoResponse {
        self.counters.lock().record_io();
        use registers::*;
        match request {
            IoRequest::ConfigRead { offset } | IoRequest::MmioRead { offset } => match *offset {
                REG_ID => IoResponse {
                    value: (self.device_id as u32) << 16 | self.vendor_id as u32,
                    success: true,
                },
                REG_CAPACITY => IoResponse {
                    value: (self.capacity_bytes() / (256 * 1024 * 1024)) as u32,
                    success: true,
                },
                REG_MEM_ENABLE => IoResponse {
                    value: u32::from(self.memory_enabled()),
                    success: true,
                },
                REG_STATUS => IoResponse {
                    value: 0b01 | (u32::from(self.memory_enabled()) << 1),
                    success: true,
                },
                _ => IoResponse {
                    value: 0,
                    success: false,
                },
            },
            IoRequest::ConfigWrite { offset, value } | IoRequest::MmioWrite { offset, value } => {
                match *offset {
                    REG_MEM_ENABLE => {
                        self.set_memory_enable(*value & 1 == 1);
                        IoResponse {
                            value: *value,
                            success: true,
                        }
                    }
                    REG_GPF_DOORBELL => {
                        self.stats.lock().gpf_flushes += 1;
                        IoResponse {
                            value: *value,
                            success: true,
                        }
                    }
                    _ => IoResponse {
                        value: 0,
                        success: false,
                    },
                }
            }
        }
    }

    /// Handles one CXL.mem request against the backing store.
    pub fn handle_mem(&self, request: &MemRequest) -> Result<MemResponse> {
        if !self.memory_enabled() {
            self.stats.lock().rejected += 1;
            return Err(CxlError::NotReady("memory enable bit is clear"));
        }
        let dpa = match self.hdm.read().translate(request.hpa) {
            Ok(dpa) => dpa,
            Err(e) => {
                self.stats.lock().rejected += 1;
                return Err(e);
            }
        };
        let response = match request.opcode {
            MemOpcode::MemRd => {
                let data = self.read_line_dpa(dpa)?;
                let mut stats = self.stats.lock();
                stats.lines_read += 1;
                stats.bytes_read += CACHE_LINE_BYTES as u64;
                MemResponse {
                    tag: request.tag,
                    data: Some(data),
                    success: true,
                }
            }
            MemOpcode::MemInv => MemResponse {
                tag: request.tag,
                data: None,
                success: true,
            },
            MemOpcode::MemWr | MemOpcode::MemWrPtl => {
                let data = request
                    .data
                    .ok_or(CxlError::NotReady("write without payload"))?;
                let enable = if request.opcode == MemOpcode::MemWr {
                    u64::MAX
                } else {
                    request.byte_enable
                };
                self.write_line_dpa(dpa, &data, enable)?;
                let mut stats = self.stats.lock();
                stats.lines_written += 1;
                stats.bytes_written += enable.count_ones() as u64;
                MemResponse {
                    tag: request.tag,
                    data: None,
                    success: true,
                }
            }
        };
        self.counters.lock().record_mem(request, &response);
        Ok(response)
    }

    fn read_line_dpa(&self, dpa: u64) -> Result<[u8; CACHE_LINE_BYTES]> {
        let memory = self.memory.read();
        if !memory.in_bounds(dpa, CACHE_LINE_BYTES) {
            return Err(CxlError::OutOfBounds {
                dpa,
                len: CACHE_LINE_BYTES,
                capacity: memory.capacity(),
            });
        }
        let mut line = [0u8; CACHE_LINE_BYTES];
        memory.read(dpa, &mut line);
        Ok(line)
    }

    fn write_line_dpa(
        &self,
        dpa: u64,
        data: &[u8; CACHE_LINE_BYTES],
        byte_enable: u64,
    ) -> Result<()> {
        let mut memory = self.memory.write();
        if !memory.in_bounds(dpa, CACHE_LINE_BYTES) {
            return Err(CxlError::OutOfBounds {
                dpa,
                len: CACHE_LINE_BYTES,
                capacity: memory.capacity(),
            });
        }
        // Merge with the existing line so partial writes honour byte enables.
        let mut line = [0u8; CACHE_LINE_BYTES];
        memory.read(dpa, &mut line);
        for (i, byte) in data.iter().enumerate() {
            if byte_enable & (1 << i) != 0 {
                line[i] = *byte;
            }
        }
        memory.write(dpa, &line);
        Ok(())
    }

    /// Bulk read of `buf.len()` bytes starting at device-local address `dpa`.
    ///
    /// This is the path the persistent-memory runtime uses: it addresses the
    /// device directly in DPA space (the pool owns its region) and lets the
    /// analytical simulator account the time.
    pub fn read_bulk(&self, dpa: u64, buf: &mut [u8]) -> Result<()> {
        let memory = self.memory.read();
        if !memory.in_bounds(dpa, buf.len()) {
            return Err(CxlError::OutOfBounds {
                dpa,
                len: buf.len(),
                capacity: memory.capacity(),
            });
        }
        memory.read(dpa, buf);
        let mut stats = self.stats.lock();
        stats.bytes_read += buf.len() as u64;
        stats.lines_read += (buf.len() as u64).div_ceil(CACHE_LINE_BYTES as u64);
        Ok(())
    }

    /// Bulk write of `buf` starting at device-local address `dpa`.
    pub fn write_bulk(&self, dpa: u64, buf: &[u8]) -> Result<()> {
        let mut memory = self.memory.write();
        if !memory.in_bounds(dpa, buf.len()) {
            return Err(CxlError::OutOfBounds {
                dpa,
                len: buf.len(),
                capacity: memory.capacity(),
            });
        }
        memory.write(dpa, buf);
        let mut stats = self.stats.lock();
        stats.bytes_written += buf.len() as u64;
        stats.lines_written += (buf.len() as u64).div_ceil(CACHE_LINE_BYTES as u64);
        Ok(())
    }

    /// Global Persistent Flush: on a battery-backed or persistent device this
    /// guarantees all accepted writes reach the persistence domain.
    pub fn global_persistent_flush(&self) {
        self.stats.lock().gpf_flushes += 1;
    }

    /// Activity statistics.
    pub fn stats(&self) -> DeviceStats {
        *self.stats.lock()
    }

    /// Link-level flit counters.
    pub fn flit_counters(&self) -> FlitCounters {
        *self.counters.lock()
    }

    /// Simulates a power cycle. Persistent devices (the premise of the paper:
    /// the expander is off-node and battery-backed) keep their contents;
    /// volatile ones lose them. Either way the memory-enable bit is cleared and
    /// HDM decoders must be reprogrammed, as after a real reboot.
    pub fn power_cycle(&self, persistent: bool) {
        if !persistent {
            self.memory.write().clear();
        }
        *self.mem_enabled.write() = false;
        self.hdm.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdm::HdmRange;

    const MIB: u64 = 1024 * 1024;

    fn enabled_device() -> Type3Device {
        let dev = Type3Device::new("test-cxl", 16 * MIB, LinkConfig::gen5_x16());
        dev.program_hdm(HdmRange::linear(0x1000_0000, 16 * MIB, 0))
            .unwrap();
        dev.set_memory_enable(true);
        dev
    }

    #[test]
    fn identification_registers_read_back() {
        let dev = Type3Device::new("id", 256 * MIB, LinkConfig::gen5_x16());
        let id = dev.handle_io(&IoRequest::ConfigRead {
            offset: registers::REG_ID,
        });
        assert!(id.success);
        assert_eq!(id.value & 0xFFFF, 0x8086);
        let cap = dev.handle_io(&IoRequest::ConfigRead {
            offset: registers::REG_CAPACITY,
        });
        assert_eq!(cap.value, 1); // 256 MiB = one capacity unit
        let bad = dev.handle_io(&IoRequest::ConfigRead { offset: 0xFFFF });
        assert!(!bad.success);
    }

    #[test]
    fn memory_access_requires_enable_bit() {
        let dev = Type3Device::new("gated", MIB, LinkConfig::gen5_x16());
        dev.program_hdm(HdmRange::linear(0, MIB, 0)).unwrap();
        let err = dev.handle_mem(&MemRequest::read(0, 0)).unwrap_err();
        assert!(matches!(err, CxlError::NotReady(_)));
        assert_eq!(dev.stats().rejected, 1);
        // Enable through the register interface, then it works.
        dev.handle_io(&IoRequest::MmioWrite {
            offset: registers::REG_MEM_ENABLE,
            value: 1,
        });
        assert!(dev.memory_enabled());
        assert!(dev.handle_mem(&MemRequest::read(0, 0)).is_ok());
    }

    #[test]
    fn write_then_read_round_trips_through_hdm() {
        let dev = enabled_device();
        let mut line = [0u8; CACHE_LINE_BYTES];
        for (i, b) in line.iter_mut().enumerate() {
            *b = i as u8;
        }
        let hpa = 0x1000_0000 + 128;
        dev.handle_mem(&MemRequest::write(hpa, line, 1)).unwrap();
        let resp = dev.handle_mem(&MemRequest::read(hpa, 2)).unwrap();
        assert_eq!(resp.data.unwrap(), line);
        assert_eq!(dev.stats().lines_written, 1);
        assert_eq!(dev.stats().lines_read, 1);
    }

    #[test]
    fn partial_write_honours_byte_enable() {
        let dev = enabled_device();
        let hpa = 0x1000_0000;
        dev.handle_mem(&MemRequest::write(hpa, [0xFF; 64], 0))
            .unwrap();
        // Overwrite only the first 4 bytes.
        dev.handle_mem(&MemRequest::write_partial(hpa, [0x00; 64], 0xF, 1))
            .unwrap();
        let data = dev
            .handle_mem(&MemRequest::read(hpa, 2))
            .unwrap()
            .data
            .unwrap();
        assert_eq!(&data[..4], &[0, 0, 0, 0]);
        assert_eq!(&data[4..8], &[0xFF; 4]);
    }

    #[test]
    fn unmapped_address_is_rejected() {
        let dev = enabled_device();
        let err = dev.handle_mem(&MemRequest::read(0x10, 0)).unwrap_err();
        assert!(matches!(err, CxlError::AddressNotMapped(_)));
    }

    #[test]
    fn hdm_range_beyond_capacity_is_rejected() {
        let dev = Type3Device::new("small", MIB, LinkConfig::gen5_x16());
        assert!(dev.program_hdm(HdmRange::linear(0, 2 * MIB, 0)).is_err());
    }

    #[test]
    fn bulk_round_trip_and_stats() {
        let dev = enabled_device();
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        dev.write_bulk(4096, &payload).unwrap();
        let mut back = vec![0u8; payload.len()];
        dev.read_bulk(4096, &mut back).unwrap();
        assert_eq!(back, payload);
        let stats = dev.stats();
        assert_eq!(stats.bytes_written, 8192);
        assert_eq!(stats.bytes_read, 8192);
        assert!(dev.read_bulk(16 * MIB - 10, &mut back).is_err());
        assert!(dev.write_bulk(16 * MIB - 10, &payload).is_err());
    }

    #[test]
    fn power_cycle_persistence_semantics() {
        let dev = enabled_device();
        dev.write_bulk(0, &[7u8; 64]).unwrap();
        // Persistent power cycle keeps contents but drops configuration.
        dev.power_cycle(true);
        assert!(!dev.memory_enabled());
        assert_eq!(dev.mapped_bytes(), 0);
        let mut buf = [0u8; 64];
        dev.read_bulk(0, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        // Volatile power cycle clears contents.
        dev.power_cycle(false);
        dev.read_bulk(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn gpf_doorbell_counts_flushes() {
        let dev = enabled_device();
        dev.handle_io(&IoRequest::MmioWrite {
            offset: registers::REG_GPF_DOORBELL,
            value: 1,
        });
        dev.global_persistent_flush();
        assert_eq!(dev.stats().gpf_flushes, 2);
    }

    #[test]
    fn flit_counters_track_link_traffic() {
        let dev = enabled_device();
        dev.handle_mem(&MemRequest::write(0x1000_0000, [1; 64], 0))
            .unwrap();
        dev.handle_mem(&MemRequest::read(0x1000_0000, 1)).unwrap();
        let counters = dev.flit_counters();
        assert_eq!(counters.mem_requests, 2);
        assert!(counters.m2s_bytes > 0);
        assert!(counters.payload_efficiency() > 0.0);
    }

    #[test]
    fn concurrent_bulk_writers_do_not_corrupt_disjoint_regions() {
        let dev = std::sync::Arc::new(enabled_device());
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let dev = dev.clone();
                scope.spawn(move || {
                    let data = vec![t + 1; 4096];
                    dev.write_bulk(t as u64 * 4096, &data).unwrap();
                });
            }
        });
        for t in 0..4u8 {
            let mut buf = vec![0u8; 4096];
            dev.read_bulk(t as u64 * 4096, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == t + 1));
        }
    }
}
