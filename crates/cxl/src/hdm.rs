//! Host-managed Device Memory (HDM) decoders.
//!
//! An HDM decoder maps a contiguous range of host physical addresses (HPA)
//! onto device-local physical addresses (DPA). CXL 2.0 allows several decoders
//! per device and interleaving a single HPA range across multiple devices; the
//! paper's prototype programs one decoder per NUMA-exposed region.

use crate::error::CxlError;
use crate::Result;

/// One programmed HDM decoder range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HdmRange {
    /// First host physical address covered.
    pub hpa_base: u64,
    /// Length of the window in bytes.
    pub len: u64,
    /// Device-local address the window starts at.
    pub dpa_base: u64,
    /// Interleave ways (1 = no interleave). With N ways, consecutive
    /// `interleave_granularity` blocks rotate across N devices and this decoder
    /// only owns every N-th block.
    pub interleave_ways: u8,
    /// Which of the interleave ways this device is (0-based).
    pub interleave_position: u8,
    /// Interleave granularity in bytes (256 B to 16 KiB per spec; 4 KiB here).
    pub interleave_granularity: u64,
}

impl HdmRange {
    /// A simple non-interleaved range.
    pub fn linear(hpa_base: u64, len: u64, dpa_base: u64) -> Self {
        HdmRange {
            hpa_base,
            len,
            dpa_base,
            interleave_ways: 1,
            interleave_position: 0,
            interleave_granularity: 4096,
        }
    }

    /// Whether an HPA falls inside this window.
    pub fn contains(&self, hpa: u64) -> bool {
        hpa >= self.hpa_base && hpa < self.hpa_base + self.len
    }

    /// Translates an HPA to a DPA if this decoder (and interleave way) owns it.
    pub fn translate(&self, hpa: u64) -> Option<u64> {
        if !self.contains(hpa) {
            return None;
        }
        let offset = hpa - self.hpa_base;
        if self.interleave_ways <= 1 {
            return Some(self.dpa_base + offset);
        }
        let ways = self.interleave_ways as u64;
        let gran = self.interleave_granularity;
        let block = offset / gran;
        if (block % ways) as u8 != self.interleave_position {
            return None;
        }
        // Device-local blocks are densely packed.
        let local_block = block / ways;
        Some(self.dpa_base + local_block * gran + offset % gran)
    }

    /// Bytes of the HPA window that this decoder actually backs (len / ways).
    pub fn local_bytes(&self) -> u64 {
        self.len / self.interleave_ways.max(1) as u64
    }
}

/// A set of HDM decoders belonging to one device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HdmDecoder {
    ranges: Vec<HdmRange>,
}

impl HdmDecoder {
    /// Creates an empty decoder set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs an additional decoder range. Ranges must not overlap in HPA
    /// space and must be cache-line aligned.
    pub fn program(&mut self, range: HdmRange) -> Result<()> {
        if range.len == 0 {
            return Err(CxlError::InvalidHdmRange("zero-length range".to_string()));
        }
        if !range.hpa_base.is_multiple_of(64) || !range.len.is_multiple_of(64) {
            return Err(CxlError::InvalidHdmRange(
                "range must be 64-byte aligned".to_string(),
            ));
        }
        if range.interleave_ways == 0 {
            return Err(CxlError::InvalidHdmRange(
                "zero interleave ways".to_string(),
            ));
        }
        if range.interleave_position >= range.interleave_ways {
            return Err(CxlError::InvalidHdmRange(format!(
                "interleave position {} out of {} ways",
                range.interleave_position, range.interleave_ways
            )));
        }
        for existing in &self.ranges {
            let overlap = range.hpa_base < existing.hpa_base + existing.len
                && existing.hpa_base < range.hpa_base + range.len;
            if overlap {
                return Err(CxlError::InvalidHdmRange(format!(
                    "range at {:#x} overlaps existing range at {:#x}",
                    range.hpa_base, existing.hpa_base
                )));
            }
        }
        self.ranges.push(range);
        Ok(())
    }

    /// All programmed ranges.
    pub fn ranges(&self) -> &[HdmRange] {
        &self.ranges
    }

    /// Translates an HPA to a DPA.
    pub fn translate(&self, hpa: u64) -> Result<u64> {
        for range in &self.ranges {
            if let Some(dpa) = range.translate(hpa) {
                return Ok(dpa);
            }
        }
        Err(CxlError::AddressNotMapped(hpa))
    }

    /// Total device-local bytes mapped by all decoders.
    pub fn mapped_bytes(&self) -> u64 {
        self.ranges.iter().map(|r| r.local_bytes()).sum()
    }

    /// Removes every programmed range.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }
}

/// A CEDT CFMWS-style interleave set: one host-physical window rotated across
/// `ways` devices at a fixed granularity.
///
/// This is the multi-expander decode the CXL spec expresses as a CXL Fixed
/// Memory Window Structure: consecutive granularity-sized blocks of the
/// window belong to devices 0, 1, …, N−1, 0, 1, … in turn. The set hands out
/// one [`HdmRange`] per way ([`InterleaveSet::way_range`]) so each device's
/// [`HdmDecoder`] can be programmed consistently, and resolves any HPA to the
/// `(way, dpa)` pair that owns it ([`InterleaveSet::translate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleaveSet {
    hpa_base: u64,
    len: u64,
    granularity: u64,
    ways: u8,
}

impl InterleaveSet {
    /// Builds a validated interleave set.
    ///
    /// Per the CXL spec, `ways` must be 1, 2, 4, 8 or 16 and `granularity` a
    /// power of two between 256 B and 16 KiB; `len` must be a whole number of
    /// full rotations (`ways × granularity`).
    pub fn new(hpa_base: u64, len: u64, granularity: u64, ways: u8) -> Result<Self> {
        if !matches!(ways, 1 | 2 | 4 | 8 | 16) {
            return Err(CxlError::InvalidHdmRange(format!(
                "interleave ways must be 1, 2, 4, 8 or 16, got {ways}"
            )));
        }
        if !granularity.is_power_of_two() || !(256..=16 * 1024).contains(&granularity) {
            return Err(CxlError::InvalidHdmRange(format!(
                "interleave granularity must be a power of two in 256..=16384, got {granularity}"
            )));
        }
        if len == 0 || !len.is_multiple_of(granularity * ways as u64) {
            return Err(CxlError::InvalidHdmRange(format!(
                "window length {len} is not a whole number of {ways}x{granularity} rotations"
            )));
        }
        if !hpa_base.is_multiple_of(64) {
            return Err(CxlError::InvalidHdmRange(
                "window base must be 64-byte aligned".to_string(),
            ));
        }
        Ok(InterleaveSet {
            hpa_base,
            len,
            granularity,
            ways,
        })
    }

    /// First host physical address of the window.
    pub fn hpa_base(&self) -> u64 {
        self.hpa_base
    }

    /// Window length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Interleave granularity in bytes.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Number of interleave ways (devices).
    pub fn ways(&self) -> u8 {
        self.ways
    }

    /// Bytes each way contributes (`len / ways`).
    pub fn local_bytes(&self) -> u64 {
        self.len / self.ways as u64
    }

    /// Whether an HPA falls inside the window.
    pub fn contains(&self, hpa: u64) -> bool {
        hpa >= self.hpa_base && hpa < self.hpa_base + self.len
    }

    /// The [`HdmRange`] the device at `position` must program (DPA base 0).
    pub fn way_range(&self, position: u8) -> Result<HdmRange> {
        if position >= self.ways {
            return Err(CxlError::InvalidHdmRange(format!(
                "interleave position {position} out of {} ways",
                self.ways
            )));
        }
        Ok(HdmRange {
            hpa_base: self.hpa_base,
            len: self.len,
            dpa_base: 0,
            interleave_ways: self.ways,
            interleave_position: position,
            interleave_granularity: self.granularity,
        })
    }

    /// Programs the way at `position` into a device's decoder.
    pub fn program_way(&self, decoder: &mut HdmDecoder, position: u8) -> Result<()> {
        decoder.program(self.way_range(position)?)
    }

    /// Resolves an HPA to the `(way, dpa)` pair that owns it.
    pub fn translate(&self, hpa: u64) -> Result<(u8, u64)> {
        if !self.contains(hpa) {
            return Err(CxlError::AddressNotMapped(hpa));
        }
        let offset = hpa - self.hpa_base;
        let way = ((offset / self.granularity) % self.ways as u64) as u8;
        // The owning way's range contains `hpa` by construction of `way`;
        // the decode path claims never to panic, so a breach of that
        // invariant surfaces as the typed miss it would be.
        let dpa = self
            .way_range(way)?
            .translate(hpa)
            .ok_or(CxlError::AddressNotMapped(hpa))?;
        Ok((way, dpa))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_translation_is_offset_preserving() {
        let mut dec = HdmDecoder::new();
        dec.program(HdmRange::linear(0x1_0000_0000, 1 << 30, 0))
            .unwrap();
        assert_eq!(dec.translate(0x1_0000_0000).unwrap(), 0);
        assert_eq!(dec.translate(0x1_0000_0040).unwrap(), 0x40);
        assert!(dec.translate(0x0).is_err());
        assert!(dec.translate(0x1_0000_0000 + (1 << 30)).is_err());
    }

    #[test]
    fn zero_length_and_misaligned_ranges_are_rejected() {
        let mut dec = HdmDecoder::new();
        assert!(dec.program(HdmRange::linear(0, 0, 0)).is_err());
        assert!(dec.program(HdmRange::linear(32, 128, 0)).is_err());
        assert!(dec.program(HdmRange::linear(0, 100, 0)).is_err());
    }

    #[test]
    fn overlapping_ranges_are_rejected() {
        let mut dec = HdmDecoder::new();
        dec.program(HdmRange::linear(0, 4096, 0)).unwrap();
        assert!(dec.program(HdmRange::linear(2048, 4096, 0)).is_err());
        // Adjacent is fine.
        dec.program(HdmRange::linear(4096, 4096, 4096)).unwrap();
        assert_eq!(dec.ranges().len(), 2);
    }

    #[test]
    fn two_way_interleave_splits_blocks() {
        let gran = 4096u64;
        let make = |pos| HdmRange {
            hpa_base: 0,
            len: 8 * gran,
            dpa_base: 0,
            interleave_ways: 2,
            interleave_position: pos,
            interleave_granularity: gran,
        };
        let dev0 = make(0);
        let dev1 = make(1);
        // Block 0 belongs to device 0, block 1 to device 1, etc.
        assert_eq!(dev0.translate(0), Some(0));
        assert_eq!(dev1.translate(0), None);
        assert_eq!(dev0.translate(gran), None);
        assert_eq!(dev1.translate(gran), Some(0));
        assert_eq!(dev0.translate(2 * gran), Some(gran));
        assert_eq!(dev1.translate(3 * gran), Some(gran));
        // Each device backs half the window.
        assert_eq!(dev0.local_bytes(), 4 * gran);
    }

    #[test]
    fn invalid_interleave_configs_rejected() {
        let mut dec = HdmDecoder::new();
        let mut r = HdmRange::linear(0, 4096, 0);
        r.interleave_ways = 0;
        assert!(dec.program(r).is_err());
        let mut r = HdmRange::linear(0, 4096, 0);
        r.interleave_ways = 2;
        r.interleave_position = 2;
        assert!(dec.program(r).is_err());
    }

    #[test]
    fn mapped_bytes_and_clear() {
        let mut dec = HdmDecoder::new();
        dec.program(HdmRange::linear(0, 1 << 20, 0)).unwrap();
        dec.program(HdmRange::linear(1 << 30, 1 << 20, 1 << 20))
            .unwrap();
        assert_eq!(dec.mapped_bytes(), 2 << 20);
        dec.clear();
        assert_eq!(dec.mapped_bytes(), 0);
    }

    #[test]
    fn interleave_set_rejects_bad_geometry() {
        assert!(InterleaveSet::new(0, 8 * 4096, 4096, 3).is_err());
        assert!(InterleaveSet::new(0, 8 * 4096, 3000, 2).is_err());
        assert!(InterleaveSet::new(0, 8 * 4096, 128, 2).is_err());
        assert!(InterleaveSet::new(0, 8 * 4096, 32 * 1024, 2).is_err());
        assert!(InterleaveSet::new(0, 4096, 4096, 2).is_err());
        assert!(InterleaveSet::new(0, 0, 4096, 2).is_err());
        assert!(InterleaveSet::new(32, 8 * 4096, 4096, 2).is_err());
        assert!(InterleaveSet::new(0, 8 * 4096, 4096, 2).is_ok());
    }

    #[test]
    fn interleave_set_partitions_the_window() {
        let gran = 4096u64;
        let set = InterleaveSet::new(0x2_0000_0000, 16 * gran, gran, 4).unwrap();
        // Consecutive blocks rotate across the four ways; device-local blocks
        // are densely packed.
        for block in 0..16u64 {
            let hpa = set.hpa_base() + block * gran;
            let (way, dpa) = set.translate(hpa).unwrap();
            assert_eq!(way as u64, block % 4);
            assert_eq!(dpa, (block / 4) * gran);
        }
        assert_eq!(set.local_bytes(), 4 * gran);
        assert!(set.translate(set.hpa_base() + set.len_bytes()).is_err());
        assert!(set.translate(0).is_err());
    }

    #[test]
    fn interleave_set_programs_consistent_decoders() {
        let gran = 4096u64;
        let set = InterleaveSet::new(0x1000, 8 * gran, gran, 2).unwrap();
        let mut decoders = vec![HdmDecoder::new(), HdmDecoder::new()];
        for (position, decoder) in decoders.iter_mut().enumerate() {
            set.program_way(decoder, position as u8).unwrap();
        }
        // Every granule resolves through exactly the decoder the set names.
        for block in 0..8u64 {
            let hpa = 0x1000 + block * gran;
            let (way, dpa) = set.translate(hpa).unwrap();
            assert_eq!(decoders[way as usize].translate(hpa).unwrap(), dpa);
            let other = &decoders[1 - way as usize];
            assert!(other.translate(hpa).is_err());
        }
        // And each decoder maps exactly its share of the window.
        for decoder in &decoders {
            assert_eq!(decoder.mapped_bytes(), set.local_bytes());
        }
    }

    #[test]
    fn interleave_set_way_range_bounds_position() {
        let set = InterleaveSet::new(0, 8 * 4096, 4096, 2).unwrap();
        assert!(set.way_range(0).is_ok());
        assert!(set.way_range(1).is_ok());
        assert!(set.way_range(2).is_err());
    }

    proptest! {
        #[test]
        fn prop_interleave_set_matches_per_way_ranges(
            block in 0u64..512,
            ways_index in 0usize..5,
        ) {
            let ways = [1u8, 2, 4, 8, 16][ways_index];
            let gran = 4096u64;
            let set = InterleaveSet::new(0, 512 * gran * 16, gran, ways).unwrap();
            let hpa = block * gran + 128;
            let (way, dpa) = set.translate(hpa).unwrap();
            prop_assert!(way < ways);
            // The owning way's HdmRange agrees; every other way declines.
            for pos in 0..ways {
                let translated = set.way_range(pos).unwrap().translate(hpa);
                if pos == way {
                    prop_assert_eq!(translated, Some(dpa));
                } else {
                    prop_assert_eq!(translated, None);
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_linear_round_trip(offset in 0u64..(1 << 24)) {
            let base = 0x2_0000_0000u64;
            let range = HdmRange::linear(base, 1 << 24, 0x100_0000);
            let aligned = offset & !63;
            if aligned < 1 << 24 {
                let dpa = range.translate(base + aligned).unwrap();
                prop_assert_eq!(dpa, 0x100_0000 + aligned);
            }
        }

        #[test]
        fn prop_interleave_ways_partition_address_space(
            block in 0u64..1024,
            ways in 2u8..5,
        ) {
            let gran = 4096u64;
            let hpa = block * gran;
            let mut owners = 0;
            for pos in 0..ways {
                let range = HdmRange {
                    hpa_base: 0,
                    len: 1024 * gran,
                    dpa_base: 0,
                    interleave_ways: ways,
                    interleave_position: pos,
                    interleave_granularity: gran,
                };
                if range.translate(hpa).is_some() {
                    owners += 1;
                }
            }
            // Exactly one interleave way owns any given block.
            prop_assert_eq!(owners, 1);
        }
    }
}
