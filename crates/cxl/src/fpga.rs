//! The Agilex-7 FPGA CXL prototype (paper §2.2).
//!
//! The prototype pairs the **R-Tile hard IP** (PCIe Gen5 x16 PHY + CXL link
//! layer) with a **soft-IP** pipeline in the FPGA fabric that implements the
//! CXL.io/CXL.mem transaction layers and drives two on-card DDR4-1333 modules.
//! [`FpgaPrototype`] models that split, exposes the functional Type-3 endpoint,
//! and produces the `memsim` device/link specifications the analytical engine
//! times traffic with — including the upgrade paths the paper lists (faster
//! DDR, more channels, more IP slices).

use crate::config::{CxlSpec, LinkConfig};
use crate::endpoint::Type3Device;
use crate::hdm::HdmRange;
use crate::Result;
use memsim::device::DeviceSpec;
use memsim::link::{LinkKind, LinkSpec, Path};
use std::sync::Arc;

/// Description of one on-card DDR channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrChannelSpec {
    /// Module capacity in bytes.
    pub capacity_bytes: u64,
    /// Transfer rate in MT/s (1333 on the prototype).
    pub speed_mts: u32,
}

impl DdrChannelSpec {
    /// Theoretical bandwidth of the channel in GB/s (8 bytes per transfer).
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        self.speed_mts as f64 * 8.0 / 1000.0
    }
}

/// Configuration of the soft-IP pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftIpConfig {
    /// Number of parallel CXL IP slices instantiated in the fabric.
    pub slices: u32,
    /// Sustained bandwidth one slice can push (GB/s). The prototype's single
    /// slice is what limits it to ≈ 11-12 GB/s.
    pub per_slice_bandwidth_gbs: f64,
    /// Latency added by the transaction-layer pipeline (ns).
    pub pipeline_latency_ns: f64,
}

impl Default for SoftIpConfig {
    fn default() -> Self {
        SoftIpConfig {
            slices: 1,
            per_slice_bandwidth_gbs: memsim::calibration::CXL_PROTOTYPE_CEILING_GBS,
            pipeline_latency_ns: memsim::calibration::CXL_FABRIC_LATENCY_NS - 95.0,
        }
    }
}

/// The complete FPGA prototype: hard IP + soft IP + DDR channels + endpoint.
#[derive(Debug)]
pub struct FpgaPrototype {
    name: String,
    link: LinkConfig,
    soft_ip: SoftIpConfig,
    channels: Vec<DdrChannelSpec>,
    device: Arc<Type3Device>,
}

impl FpgaPrototype {
    /// Builds the paper's prototype: CXL 1.1/2.0 over PCIe Gen5 x16, one active
    /// soft-IP slice, two 8 GB DDR4-1333 modules.
    pub fn paper_prototype() -> Self {
        let channels = vec![
            DdrChannelSpec {
                capacity_bytes: 8 * 1024 * 1024 * 1024,
                speed_mts: 1333,
            },
            DdrChannelSpec {
                capacity_bytes: 8 * 1024 * 1024 * 1024,
                speed_mts: 1333,
            },
        ];
        Self::custom(
            "Agilex-7 CXL prototype",
            LinkConfig::gen5_x16(),
            SoftIpConfig::default(),
            channels,
        )
    }

    /// Builds a prototype with explicit parameters (used by the upgrade
    /// ablations: DDR4-3200, DDR5-5600, four channels, more slices).
    pub fn custom(
        name: impl Into<String>,
        link: LinkConfig,
        soft_ip: SoftIpConfig,
        channels: Vec<DdrChannelSpec>,
    ) -> Self {
        let capacity: u64 = channels.iter().map(|c| c.capacity_bytes).sum();
        let device = Arc::new(Type3Device::new("type3-endpoint", capacity, link));
        FpgaPrototype {
            name: name.into(),
            link,
            soft_ip,
            channels,
            device,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional Type-3 endpoint (shared handle).
    pub fn endpoint(&self) -> Arc<Type3Device> {
        Arc::clone(&self.device)
    }

    /// Total capacity across DDR channels (bytes).
    pub fn capacity_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.capacity_bytes).sum()
    }

    /// The spec revision negotiated on the link.
    pub fn spec(&self) -> CxlSpec {
        self.link.spec
    }

    /// "Enumerates" the device as the host BIOS/OS would: programs a linear HDM
    /// decoder covering the whole capacity at `hpa_base` and sets the
    /// memory-enable bit, after which the device is usable as a CPU-less NUMA
    /// node. Returns the HPA range exposed.
    pub fn enumerate(&self, hpa_base: u64) -> Result<(u64, u64)> {
        let capacity = self.capacity_bytes();
        self.device
            .program_hdm(HdmRange::linear(hpa_base, capacity, 0))?;
        self.device.set_memory_enable(true);
        Ok((hpa_base, capacity))
    }

    /// Sustained bandwidth the card can deliver: the minimum of the DDR
    /// channels, the soft-IP pipeline and the link.
    pub fn effective_bandwidth_gbs(&self) -> f64 {
        let ddr: f64 = self
            .channels
            .iter()
            .map(|c| c.peak_bandwidth_gbs() * memsim::calibration::DDR_STREAM_EFFICIENCY)
            .sum();
        let soft_ip = self.soft_ip.per_slice_bandwidth_gbs * self.soft_ip.slices as f64;
        ddr.min(soft_ip).min(self.link.effective_bandwidth_gbs())
    }

    /// End-to-end added latency of the CXL path (link + pipeline), in ns.
    pub fn fabric_latency_ns(&self) -> f64 {
        95.0 + self.soft_ip.pipeline_latency_ns
    }

    /// The `memsim` device specification describing the card's memory
    /// subsystem as seen through the CXL endpoint.
    pub fn to_memsim_device(&self) -> DeviceSpec {
        DeviceSpec {
            name: self.name.clone(),
            kind: memsim::DeviceKind::CxlExpanderDram,
            read_bw_gbs: self.effective_bandwidth_gbs(),
            write_bw_gbs: self.effective_bandwidth_gbs(),
            idle_latency_ns: 110.0,
            capacity_bytes: self.capacity_bytes(),
            channels: self.channels.len() as u32,
        }
    }

    /// The `memsim` path (links) a host socket traverses to reach the card.
    pub fn to_memsim_path(&self) -> Path {
        let pcie = LinkSpec {
            name: format!("{} PCIe link", self.name),
            kind: if self.link.spec == CxlSpec::V3_0 {
                LinkKind::PcieGen6x16
            } else {
                LinkKind::PcieGen5x16
            },
            bandwidth_gbs: self.link.effective_bandwidth_gbs(),
            latency_ns: 95.0,
        };
        let controller = LinkSpec {
            name: format!("{} soft-IP pipeline", self.name),
            kind: LinkKind::FpgaCxlController,
            bandwidth_gbs: self.soft_ip.per_slice_bandwidth_gbs * self.soft_ip.slices as f64,
            latency_ns: self.soft_ip.pipeline_latency_ns,
        };
        Path::through(vec![pcie, controller])
    }

    /// Returns an upgraded copy per the paper's enhancement list (§2.2):
    /// `speed_mts` for the DDR modules, `channels` independent channels and
    /// `slices` CXL IP slices.
    pub fn upgraded(&self, speed_mts: u32, channels: u32, slices: u32) -> Self {
        let per_channel_capacity = self
            .channels
            .first()
            .map(|c| c.capacity_bytes)
            .unwrap_or(8 * 1024 * 1024 * 1024);
        let new_channels: Vec<DdrChannelSpec> = (0..channels)
            .map(|_| DdrChannelSpec {
                capacity_bytes: per_channel_capacity,
                speed_mts,
            })
            .collect();
        let soft_ip = SoftIpConfig {
            slices,
            ..self.soft_ip
        };
        Self::custom(
            format!("{} (DDR-{speed_mts} x{channels}ch x{slices}sl)", self.name),
            self.link,
            soft_ip,
            new_channels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::MemRequest;

    #[test]
    fn paper_prototype_matches_section_2_2() {
        let fpga = FpgaPrototype::paper_prototype();
        assert_eq!(fpga.capacity_bytes(), 16 * 1024 * 1024 * 1024);
        assert_eq!(fpga.channels.len(), 2);
        assert_eq!(fpga.spec(), CxlSpec::V2_0);
        // The prototype ceiling sits around 11-12 GB/s, well below the 64 GB/s link.
        let bw = fpga.effective_bandwidth_gbs();
        assert!(bw > 9.0 && bw < 13.0, "prototype bandwidth {bw}");
        // Fabric latency in the 300-450 ns band.
        assert!(fpga.fabric_latency_ns() > 250.0 && fpga.fabric_latency_ns() < 450.0);
    }

    #[test]
    fn enumeration_makes_memory_accessible() {
        let fpga = FpgaPrototype::paper_prototype();
        let endpoint = fpga.endpoint();
        assert!(endpoint
            .handle_mem(&MemRequest::read(0x2_0000_0000, 0))
            .is_err());
        let (base, len) = fpga.enumerate(0x2_0000_0000).unwrap();
        assert_eq!(base, 0x2_0000_0000);
        assert_eq!(len, fpga.capacity_bytes());
        assert!(endpoint.memory_enabled());
        assert!(endpoint
            .handle_mem(&MemRequest::read(0x2_0000_0000, 0))
            .is_ok());
    }

    #[test]
    fn memsim_views_are_consistent() {
        let fpga = FpgaPrototype::paper_prototype();
        let device = fpga.to_memsim_device();
        assert_eq!(device.kind, memsim::DeviceKind::CxlExpanderDram);
        assert!((device.read_bw_gbs - fpga.effective_bandwidth_gbs()).abs() < 1e-9);
        let path = fpga.to_memsim_path();
        assert!(path.crosses(LinkKind::PcieGen5x16));
        assert!(path.crosses(LinkKind::FpgaCxlController));
        assert!(path.added_latency_ns() > 250.0);
    }

    #[test]
    fn upgrades_increase_bandwidth_up_to_the_link_limit() {
        let base = FpgaPrototype::paper_prototype();
        let ddr3200 = base.upgraded(3200, 1, 1);
        // One DDR4-3200 channel: the DDR itself is ~20 GB/s but the single
        // soft-IP slice still caps the card.
        assert!(ddr3200.effective_bandwidth_gbs() <= base.soft_ip.per_slice_bandwidth_gbs + 1e-9);
        let big = base.upgraded(5600, 4, 4);
        assert!(big.effective_bandwidth_gbs() > 3.0 * base.effective_bandwidth_gbs());
        assert!(big.effective_bandwidth_gbs() <= base.link.effective_bandwidth_gbs() + 1e-9);
    }

    #[test]
    fn channel_peak_bandwidth_formula() {
        let ch = DdrChannelSpec {
            capacity_bytes: 8 << 30,
            speed_mts: 1333,
        };
        assert!((ch.peak_bandwidth_gbs() - 10.664).abs() < 1e-9);
    }
}
