//! CXL specification revisions, device types and link configuration.

/// CXL specification revision a device or link complies with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CxlSpec {
    /// CXL 1.1 — point-to-point device attachment below a root port.
    V1_1,
    /// CXL 2.0 — adds switches, memory pooling, persistent-memory support.
    V2_0,
    /// CXL 3.0 — PCIe 6.0 PHY, fabrics, enhanced sharing.
    V3_0,
}

impl CxlSpec {
    /// The PCIe generation the revision runs on.
    pub fn pcie_generation(&self) -> u8 {
        match self {
            CxlSpec::V1_1 | CxlSpec::V2_0 => 5,
            CxlSpec::V3_0 => 6,
        }
    }

    /// Transfer rate per lane in GT/s (§1.3 of the paper: 32 GT/s for 1.1/2.0,
    /// 64 GT/s for 3.0).
    pub fn transfer_rate_gts(&self) -> f64 {
        match self {
            CxlSpec::V1_1 | CxlSpec::V2_0 => 32.0,
            CxlSpec::V3_0 => 64.0,
        }
    }

    /// Whether switches (and therefore pooling) are defined by this revision.
    pub fn supports_switching(&self) -> bool {
        *self >= CxlSpec::V2_0
    }

    /// Whether multi-level fabrics are defined.
    pub fn supports_fabrics(&self) -> bool {
        *self >= CxlSpec::V3_0
    }

    /// Whether the Global Persistent Flush (GPF) flow is defined — the
    /// mechanism that makes "CXL memory as PMem" an architected capability
    /// rather than only a battery-backed arrangement.
    pub fn supports_global_persistent_flush(&self) -> bool {
        *self >= CxlSpec::V2_0
    }
}

/// CXL device types defined by the specification (§1.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CxlDeviceType {
    /// Type 1: caching device without device-attached memory (CXL.io + CXL.cache).
    Type1,
    /// Type 2: accelerator with device-attached memory (all three protocols).
    Type2,
    /// Type 3: memory expander (CXL.io + CXL.mem) — the paper's prototype.
    Type3,
}

impl CxlDeviceType {
    /// Whether the device type carries the CXL.cache protocol.
    pub fn uses_cache_protocol(&self) -> bool {
        matches!(self, CxlDeviceType::Type1 | CxlDeviceType::Type2)
    }

    /// Whether the device type carries the CXL.mem protocol.
    pub fn uses_mem_protocol(&self) -> bool {
        matches!(self, CxlDeviceType::Type2 | CxlDeviceType::Type3)
    }

    /// Whether the device type exposes host-managed device memory (HDM).
    pub fn has_hdm(&self) -> bool {
        self.uses_mem_protocol()
    }
}

/// Physical link configuration of a CXL port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Specification revision negotiated on the link.
    pub spec: CxlSpec,
    /// Number of PCIe lanes (x4, x8, x16).
    pub lanes: u8,
    /// Flit efficiency: fraction of raw link bandwidth available to payload
    /// after protocol framing (68-byte flits on Gen5, ~0.92 typical).
    pub flit_efficiency: f64,
}

impl LinkConfig {
    /// The paper's link: CXL 1.1/2.0 over PCIe Gen5 x16.
    pub fn gen5_x16() -> Self {
        LinkConfig {
            spec: CxlSpec::V2_0,
            lanes: 16,
            flit_efficiency: 0.92,
        }
    }

    /// A CXL 3.0 link over PCIe Gen6 x16 (used by forward-looking ablations).
    pub fn gen6_x16() -> Self {
        LinkConfig {
            spec: CxlSpec::V3_0,
            lanes: 16,
            flit_efficiency: 0.94,
        }
    }

    /// Raw unidirectional bandwidth in GB/s: `GT/s × lanes / 8` (PCIe encoding
    /// overhead is negligible at Gen5+ thanks to 128b/130b and FLIT modes).
    pub fn raw_bandwidth_gbs(&self) -> f64 {
        self.spec.transfer_rate_gts() * self.lanes as f64 / 8.0
    }

    /// Payload bandwidth after flit framing (GB/s).
    pub fn effective_bandwidth_gbs(&self) -> f64 {
        self.raw_bandwidth_gbs() * self.flit_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_capabilities_are_monotonic() {
        assert!(!CxlSpec::V1_1.supports_switching());
        assert!(CxlSpec::V2_0.supports_switching());
        assert!(CxlSpec::V3_0.supports_switching());
        assert!(!CxlSpec::V2_0.supports_fabrics());
        assert!(CxlSpec::V3_0.supports_fabrics());
        assert!(CxlSpec::V2_0.supports_global_persistent_flush());
    }

    #[test]
    fn gen5_x16_matches_paper_numbers() {
        // §1.3: "32 GT/s for transfers up to 64 GB/s in each direction via a
        // 16-lane link".
        let link = LinkConfig::gen5_x16();
        assert!((link.raw_bandwidth_gbs() - 64.0).abs() < 1e-9);
        assert!(link.effective_bandwidth_gbs() < 64.0);
        assert_eq!(link.spec.pcie_generation(), 5);
    }

    #[test]
    fn gen6_doubles_gen5() {
        let g5 = LinkConfig::gen5_x16();
        let g6 = LinkConfig::gen6_x16();
        assert!((g6.raw_bandwidth_gbs() - 2.0 * g5.raw_bandwidth_gbs()).abs() < 1e-9);
        assert_eq!(g6.spec.pcie_generation(), 6);
    }

    #[test]
    fn type3_is_a_mem_device_without_cache_protocol() {
        let t3 = CxlDeviceType::Type3;
        assert!(t3.uses_mem_protocol());
        assert!(t3.has_hdm());
        assert!(!t3.uses_cache_protocol());
        assert!(CxlDeviceType::Type1.uses_cache_protocol());
        assert!(!CxlDeviceType::Type1.has_hdm());
        assert!(CxlDeviceType::Type2.has_hdm());
    }
}
