//! Compute Express Link (CXL) device and protocol model.
//!
//! The paper's prototype (§2.2) is an Intel Agilex-7 FPGA card implementing a
//! CXL 1.1/2.0 **Type-3** (memory expander) endpoint: the R-Tile hard IP
//! terminates the PCIe Gen5 x16 link and the CXL link layer, a soft-IP
//! pipeline implements the CXL.mem and CXL.io transaction layers, an HDM
//! (host-managed device memory) decoder maps host physical addresses onto the
//! two on-card DDR4-1333 modules, and the whole device shows up to Linux as a
//! CPU-less NUMA node.
//!
//! This crate rebuilds that stack in software with a *functional* data path —
//! requests really read and write bytes in a backing store — plus the
//! performance parameters (`memsim` device/link specs) that the analytical
//! engine uses to time the traffic:
//!
//! * [`config`] — spec revisions, device types, link configuration.
//! * [`transaction`] — CXL.io and CXL.mem request/response types and opcode
//!   semantics, with flit-level byte accounting.
//! * [`hdm`] — HDM decoders: HPA range → device-local address, with interleave
//!   support.
//! * [`endpoint`] — the Type-3 device: transaction layers + HDM decoder +
//!   backing store + statistics.
//! * [`fpga`] — the Agilex-7 prototype: R-Tile/soft-IP split, DDR4 channels,
//!   enumeration, and its `memsim` performance model.
//! * [`switch`] — a CXL 2.0 switch with memory pooling (device → host binding,
//!   dynamic capacity).
//! * [`sharing`] — the multi-headed configuration of §2.2 where the *same*
//!   device memory is exposed to two hosts with software-managed coherence.
//!
//! # Example
//!
//! Pool two prototype cards behind a switch and carve capacity for a host;
//! the pool's accounting conserves at every step:
//!
//! ```
//! use cxl::{CxlSwitch, FpgaPrototype};
//!
//! let switch = CxlSwitch::new("rack");
//! switch.attach_device(FpgaPrototype::paper_prototype().endpoint());
//! switch.attach_device(FpgaPrototype::paper_prototype().endpoint());
//!
//! let grant = switch.allocate(0, 1 << 30).unwrap();
//! let accounting = switch.accounting();
//! assert!(accounting.conserves()); // unassigned + Σ assigned == total
//! assert_eq!(accounting.assigned.get(&0), Some(&(1 << 30)));
//!
//! switch.release(grant.id).unwrap();
//! assert_eq!(switch.accounting().assigned_total(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod endpoint;
pub mod error;
pub mod fpga;
pub mod hdm;
pub mod sharing;
pub mod sparse;
pub mod switch;
pub mod transaction;

pub use config::{CxlDeviceType, CxlSpec, LinkConfig};
pub use endpoint::{DeviceStats, Type3Device};
pub use error::CxlError;
pub use fpga::FpgaPrototype;
pub use hdm::{HdmDecoder, HdmRange, InterleaveSet};
pub use sharing::{CoherenceMode, SharedRegion};
pub use sparse::SparseMemory;
pub use switch::{CxlSwitch, HostId, PoolAccounting, PoolAllocation, PortId};
pub use transaction::{IoRequest, IoResponse, MemOpcode, MemRequest, MemResponse};

/// Result alias for CXL operations.
pub type Result<T> = std::result::Result<T, CxlError>;
