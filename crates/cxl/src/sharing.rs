//! Multi-headed sharing of device memory with software-managed coherence.
//!
//! Paper §2.2: "the CXL link facilitates access to an identical memory volume
//! … the same far memory segment can be made available to two distinct NUMA
//! nodes … However, due to the absence of a unified cache-coherent domain, the
//! onus of maintaining coherency between the two NUMA nodes assigned to the
//! shared far memory rests with the applications."
//!
//! [`SharedRegion`] models that arrangement: a window of a [`Type3Device`]
//! that several hosts attach. The device itself is a single store, so writes
//! are immediately visible at the media level — what is *not* guaranteed is
//! that another host's CPU caches observe them. The region therefore tracks a
//! per-host publication protocol (`publish`/`acquire`, i.e. flush + fence on
//! the writer and invalidate on the reader) and can detect unsafe access
//! sequences, which is exactly the discipline the paper expects applications
//! to follow.

use crate::endpoint::Type3Device;
use crate::error::CxlError;
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// How coherence across hosts is maintained for a shared region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceMode {
    /// No hardware coherence; applications publish/acquire explicitly
    /// (the prototype's only option).
    SoftwareManaged,
    /// Hardware back-invalidation (CXL 3.0 style) — visibility is automatic.
    HardwareBackInvalidate,
}

/// Statistics of one host's use of a shared region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostShareStats {
    /// Bytes written by the host.
    pub bytes_written: u64,
    /// Bytes read by the host.
    pub bytes_read: u64,
    /// Publish (flush + fence) operations.
    pub publishes: u64,
    /// Acquire (invalidate) operations.
    pub acquires: u64,
}

#[derive(Debug, Default)]
struct HostState {
    stats: HostShareStats,
    /// Version of the region this host last acquired.
    acquired_version: u64,
    /// Whether the host has unpublished writes.
    dirty: bool,
}

/// A window of a Type-3 device shared by multiple hosts.
#[derive(Debug)]
pub struct SharedRegion {
    device: Arc<Type3Device>,
    dpa_base: u64,
    len: u64,
    mode: CoherenceMode,
    state: Mutex<SharedState>,
}

#[derive(Debug, Default)]
struct SharedState {
    hosts: HashMap<usize, HostState>,
    /// Monotonic version, bumped by every publish.
    version: u64,
}

impl SharedRegion {
    /// Creates a shared region over `[dpa_base, dpa_base + len)` of `device`.
    pub fn new(
        device: Arc<Type3Device>,
        dpa_base: u64,
        len: u64,
        mode: CoherenceMode,
    ) -> Result<Self> {
        // `checked_add`: an adversarial (base, len) pair near u64::MAX must
        // not wrap around and slip past the capacity comparison.
        let end = dpa_base.checked_add(len).ok_or(CxlError::OutOfBounds {
            dpa: dpa_base,
            len: len as usize,
            capacity: device.capacity_bytes(),
        })?;
        if end > device.capacity_bytes() {
            return Err(CxlError::OutOfBounds {
                dpa: dpa_base,
                len: len as usize,
                capacity: device.capacity_bytes(),
            });
        }
        Ok(SharedRegion {
            device,
            dpa_base,
            len,
            mode,
            state: Mutex::new(SharedState::default()),
        })
    }

    /// Length of the shared window in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` for an empty window.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The coherence mode.
    pub fn mode(&self) -> CoherenceMode {
        self.mode
    }

    /// Attaches a host (maps the region into its address space).
    pub fn attach(&self, host: usize) {
        self.state.lock().hosts.entry(host).or_default();
    }

    /// Number of attached hosts.
    pub fn attached_hosts(&self) -> usize {
        self.state.lock().hosts.len()
    }

    fn check_attached(&self, host: usize) -> Result<()> {
        if self.state.lock().hosts.contains_key(&host) {
            Ok(())
        } else {
            Err(CxlError::NotAttached { host })
        }
    }

    /// Validates `[offset, offset + len)` against the window, with overflow-
    /// safe arithmetic: `offset + len` on adversarial inputs must not wrap
    /// below `self.len` and pass.
    fn check_window(&self, offset: u64, len: usize) -> Result<()> {
        let out_of_bounds = || CxlError::OutOfBounds {
            dpa: self.dpa_base.saturating_add(offset),
            len,
            capacity: self.dpa_base + self.len,
        };
        let end = offset.checked_add(len as u64).ok_or_else(out_of_bounds)?;
        if end > self.len {
            return Err(out_of_bounds());
        }
        Ok(())
    }

    /// Writes `data` at `offset` within the region on behalf of `host`.
    pub fn write(&self, host: usize, offset: u64, data: &[u8]) -> Result<()> {
        self.check_attached(host)?;
        self.check_window(offset, data.len())?;
        self.device.write_bulk(self.dpa_base + offset, data)?;
        let mut state = self.state.lock();
        let version = state.version;
        let host_state = state.hosts.get_mut(&host).expect("attached");
        host_state.stats.bytes_written += data.len() as u64;
        host_state.dirty = true;
        // Hardware coherence publishes implicitly.
        if self.mode == CoherenceMode::HardwareBackInvalidate {
            host_state.dirty = false;
            host_state.acquired_version = version + 1;
            state.version = version + 1;
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset` on behalf of `host`.
    pub fn read(&self, host: usize, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_attached(host)?;
        self.check_window(offset, buf.len())?;
        self.device.read_bulk(self.dpa_base + offset, buf)?;
        let mut state = self.state.lock();
        let host_state = state.hosts.get_mut(&host).expect("attached");
        host_state.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Publishes the host's writes: flush its caches to the device and bump the
    /// region version so other hosts can acquire it.
    pub fn publish(&self, host: usize) -> Result<u64> {
        self.check_attached(host)?;
        self.device.global_persistent_flush();
        let mut state = self.state.lock();
        state.version += 1;
        let version = state.version;
        let host_state = state.hosts.get_mut(&host).expect("attached");
        host_state.dirty = false;
        host_state.stats.publishes += 1;
        host_state.acquired_version = version;
        Ok(version)
    }

    /// Flushes the host's accepted writes into the device's persistence
    /// domain **without** publishing them: media durability (the GPF path a
    /// pool backend's `persist` maps to) is a weaker guarantee than
    /// cross-host visibility, which still requires [`publish`](Self::publish)
    /// under [`CoherenceMode::SoftwareManaged`].
    pub fn persist(&self, host: usize) -> Result<()> {
        self.check_attached(host)?;
        self.device.global_persistent_flush();
        Ok(())
    }

    /// The current publication version (0 = nothing ever published). Every
    /// [`publish`](Self::publish) — and, under hardware coherence, every
    /// write — bumps it.
    pub fn version(&self) -> u64 {
        self.state.lock().version
    }

    /// Acquires the latest published version: invalidate the host's stale
    /// cached copies so subsequent reads observe other hosts' publications.
    pub fn acquire(&self, host: usize) -> Result<u64> {
        self.check_attached(host)?;
        let mut state = self.state.lock();
        let version = state.version;
        let host_state = state.hosts.get_mut(&host).expect("attached");
        host_state.acquired_version = version;
        host_state.stats.acquires += 1;
        Ok(version)
    }

    /// Whether `host` is guaranteed (under the software protocol) to observe
    /// every publication made so far. With hardware coherence this is always
    /// `true` once attached.
    pub fn is_up_to_date(&self, host: usize) -> bool {
        let state = self.state.lock();
        match self.mode {
            CoherenceMode::HardwareBackInvalidate => state.hosts.contains_key(&host),
            CoherenceMode::SoftwareManaged => state
                .hosts
                .get(&host)
                .map(|h| h.acquired_version == state.version)
                .unwrap_or(false),
        }
    }

    /// Whether `host` has written data it has not yet published.
    pub fn has_unpublished_writes(&self, host: usize) -> bool {
        self.state
            .lock()
            .hosts
            .get(&host)
            .map(|h| h.dirty)
            .unwrap_or(false)
    }

    /// Per-host statistics.
    pub fn stats(&self, host: usize) -> Option<HostShareStats> {
        self.state.lock().hosts.get(&host).map(|h| h.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;

    const MIB: u64 = 1024 * 1024;

    fn region(mode: CoherenceMode) -> SharedRegion {
        let device = Arc::new(Type3Device::new(
            "shared-dev",
            16 * MIB,
            LinkConfig::gen5_x16(),
        ));
        SharedRegion::new(device, 0, 8 * MIB, mode).unwrap()
    }

    #[test]
    fn region_must_fit_in_device() {
        let device = Arc::new(Type3Device::new("small", MIB, LinkConfig::gen5_x16()));
        assert!(SharedRegion::new(device, 0, 2 * MIB, CoherenceMode::SoftwareManaged).is_err());
    }

    #[test]
    fn unattached_hosts_cannot_access() {
        let r = region(CoherenceMode::SoftwareManaged);
        assert!(matches!(
            r.write(0, 0, &[1, 2, 3]).unwrap_err(),
            CxlError::NotAttached { host: 0 }
        ));
        let mut buf = [0u8; 4];
        assert!(r.read(1, 0, &mut buf).is_err());
        assert!(r.publish(0).is_err());
    }

    #[test]
    fn two_hosts_see_each_others_data_after_publish_acquire() {
        let r = region(CoherenceMode::SoftwareManaged);
        r.attach(0);
        r.attach(1);
        assert_eq!(r.attached_hosts(), 2);

        r.write(0, 1024, b"checkpoint-from-node-0").unwrap();
        assert!(r.has_unpublished_writes(0));
        r.publish(0).unwrap();
        assert!(!r.has_unpublished_writes(0));
        // Host 1 has not yet acquired the new publication.
        assert!(!r.is_up_to_date(1));

        r.acquire(1).unwrap();
        assert!(r.is_up_to_date(1));
        let mut buf = [0u8; 22];
        r.read(1, 1024, &mut buf).unwrap();
        assert_eq!(&buf, b"checkpoint-from-node-0");
    }

    #[test]
    fn hardware_coherence_needs_no_explicit_protocol() {
        let r = region(CoherenceMode::HardwareBackInvalidate);
        r.attach(0);
        r.attach(1);
        r.write(0, 0, &[42; 64]).unwrap();
        assert!(!r.has_unpublished_writes(0));
        assert!(r.is_up_to_date(1));
    }

    #[test]
    fn out_of_window_access_is_rejected() {
        let r = region(CoherenceMode::SoftwareManaged);
        r.attach(0);
        assert!(r.write(0, 8 * MIB - 2, &[1, 2, 3, 4]).is_err());
        let mut buf = [0u8; 16];
        assert!(r.read(0, 8 * MIB, &mut buf).is_err());
    }

    #[test]
    fn overflowing_window_arithmetic_is_rejected() {
        // Region construction: dpa_base + len wrapping past u64::MAX used to
        // pass the capacity check.
        let device = Arc::new(Type3Device::new("small", MIB, LinkConfig::gen5_x16()));
        assert!(matches!(
            SharedRegion::new(
                Arc::clone(&device),
                u64::MAX - 4,
                8,
                CoherenceMode::SoftwareManaged
            )
            .unwrap_err(),
            CxlError::OutOfBounds { .. }
        ));
        // Accesses: offset + data.len() wrapping used to pass the window check
        // and only fail (or worse, alias) at the device layer.
        let r = SharedRegion::new(device, 0, MIB, CoherenceMode::SoftwareManaged).unwrap();
        r.attach(0);
        assert!(matches!(
            r.write(0, u64::MAX - 2, &[1, 2, 3, 4]).unwrap_err(),
            CxlError::OutOfBounds { .. }
        ));
        let mut buf = [0u8; 8];
        assert!(matches!(
            r.read(0, u64::MAX - 2, &mut buf).unwrap_err(),
            CxlError::OutOfBounds { .. }
        ));
        // In-bounds traffic still works after the rejections.
        r.write(0, 0, &[9; 8]).unwrap();
        r.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [9; 8]);
    }

    #[test]
    fn persist_is_durability_without_publication() {
        let r = region(CoherenceMode::SoftwareManaged);
        r.attach(0);
        r.attach(1);
        r.write(0, 0, &[7; 32]).unwrap();
        r.persist(0).unwrap();
        // The bytes are durable but host 0 still owes a publish.
        assert_eq!(r.version(), 0);
        assert!(r.has_unpublished_writes(0));
        assert!(r.persist(9).is_err(), "unattached hosts cannot persist");
        let v = r.publish(0).unwrap();
        assert_eq!(r.version(), v);
        assert!(!r.has_unpublished_writes(0));
    }

    #[test]
    fn stats_track_traffic_and_protocol_ops() {
        let r = region(CoherenceMode::SoftwareManaged);
        r.attach(0);
        r.write(0, 0, &[1; 128]).unwrap();
        r.publish(0).unwrap();
        let mut buf = [0u8; 64];
        r.read(0, 0, &mut buf).unwrap();
        r.acquire(0).unwrap();
        let stats = r.stats(0).unwrap();
        assert_eq!(stats.bytes_written, 128);
        assert_eq!(stats.bytes_read, 64);
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.acquires, 1);
        assert!(r.stats(9).is_none());
    }

    #[test]
    fn versions_advance_monotonically() {
        let r = region(CoherenceMode::SoftwareManaged);
        r.attach(0);
        let v1 = r.publish(0).unwrap();
        let v2 = r.publish(0).unwrap();
        assert!(v2 > v1);
        let acquired = r.acquire(0).unwrap();
        assert_eq!(acquired, v2);
    }
}
