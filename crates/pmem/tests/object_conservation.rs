//! Conservation property for the object directory: random put/commit/delete
//! interleavings — with a reboot at the end — never lose, duplicate or tear
//! an object, and the directory plus free list always conserve.
//!
//! A shadow model (plain hash maps for staged and committed state) replays
//! the same interleaving; after every prefix the store must agree with the
//! model on liveness, and after the reboot (reopen over the same persistent
//! bytes, which reruns undo-log recovery) every committed object must read
//! back bit-exact at the model's epoch, every deleted/never-committed id
//! must be a typed miss, and `live + free` must equal the capacity.

use pmem::{ObjectStore, PmemError, PmemPool, SharedBackend, VolatileBackend};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const CAPACITY: u64 = 8;
const VALUE_LEN: u64 = 48;
const LAYOUT: &str = "object-conservation";

/// Deterministic payload derived from an op code; length varies from 1 to
/// the slot length so the directory's per-entry length is exercised too.
fn payload(code: u64) -> Vec<u8> {
    let len = 1 + (code % VALUE_LEN) as usize;
    (0..len)
        .map(|i| (code.wrapping_mul(97).wrapping_add(i as u64 * 13) >> 3) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Each op code encodes (kind, id, payload): kind = code % 3
    /// (put / commit / delete), id = (code / 3) % capacity.
    #[test]
    fn prop_directory_conserves_under_random_interleavings(
        codes in proptest::collection::vec(0u64..30_000, 1..60)
    ) {
        let backend = VolatileBackend::new_persistent(
            ObjectStore::required_pool_size(CAPACITY, VALUE_LEN),
        );
        let shared: SharedBackend = Arc::new(backend.clone());
        let pool = PmemPool::create_with_backend(shared, LAYOUT).unwrap();
        let mut store = ObjectStore::format(&pool, CAPACITY, VALUE_LEN).unwrap();
        pool.set_root(store.oid(), ObjectStore::region_size(CAPACITY, VALUE_LEN))
            .unwrap();

        // The shadow model.
        let mut staged: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut committed: HashMap<u64, (u64, Vec<u8>)> = HashMap::new();

        for &code in &codes {
            let id = (code / 3) % CAPACITY;
            match code % 3 {
                0 => {
                    let value = payload(code);
                    store.put(id, &value).unwrap();
                    staged.insert(id, value);
                }
                1 => match staged.remove(&id) {
                    Some(value) => {
                        let epoch = committed.get(&id).map_or(0, |&(e, _)| e) + 1;
                        prop_assert_eq!(store.commit(id).unwrap(), epoch);
                        committed.insert(id, (epoch, value));
                    }
                    None => {
                        let err = store.commit(id).unwrap_err();
                        prop_assert!(
                            matches!(err, PmemError::ObjectStore(_)),
                            "commit without a staged put must be typed: {}", err
                        );
                    }
                },
                _ => {
                    if committed.remove(&id).is_some() {
                        store.delete(id).unwrap();
                        // A delete also discards any staged put for the id.
                        staged.remove(&id);
                    } else {
                        let err = store.delete(id).unwrap_err();
                        prop_assert!(
                            matches!(err, PmemError::NoSuchObject(_)),
                            "deleting a missing object must be typed: {}", err
                        );
                    }
                }
            }
            // After every prefix: no object lost, none duplicated.
            prop_assert_eq!(store.live(), committed.len() as u64);
        }

        let check = store.verify().unwrap();
        prop_assert_eq!(check.live, committed.len() as u64);
        prop_assert_eq!(check.live + check.free, CAPACITY);

        // "Reboot": reopen over the same persistent bytes (recovery runs) and
        // audit the full directory against the model.
        drop(store);
        drop(pool);
        let shared: SharedBackend = Arc::new(backend);
        let pool = PmemPool::open_with_backend(shared, LAYOUT).unwrap();
        let store = ObjectStore::open_root(&pool).unwrap();
        for id in 0..CAPACITY {
            match committed.get(&id) {
                Some((epoch, value)) => {
                    prop_assert_eq!(&store.get(id).unwrap(), value);
                    prop_assert_eq!(store.committed_version(id).unwrap(), *epoch);
                }
                None => {
                    prop_assert!(matches!(
                        store.get(id).unwrap_err(),
                        PmemError::NoSuchObject(_)
                    ));
                }
            }
        }
        let check = store.verify().unwrap();
        prop_assert_eq!(check.live, committed.len() as u64);
        prop_assert_eq!(check.live + check.free, CAPACITY);
    }
}
