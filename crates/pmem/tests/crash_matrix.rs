//! The exhaustive crash matrix: every [`CrashPoint`] × [`CheckpointPhase`] ×
//! slot parity, deterministically enumerated (no sampling).
//!
//! Each case builds a fresh pool, commits baseline epochs until the next
//! checkpoint targets the required slot parity, injects the case's crash into
//! a checkpoint attempt, then simulates a reboot (reopen the pool over the
//! same bytes, which runs undo-log recovery) and asserts the restored state is
//! **bit-exact** for a committed epoch — either the pre-crash baseline or, when
//! the commit record landed before the crash, the attempted epoch. Never a
//! torn mixture.
//!
//! The phase picks the pipeline stage; the crash point picks the sub-position
//! within it (chunk ordinal, header-write step, transaction site, or the
//! recovery pass). See `checkpoint.rs` module docs for the mapping.

use pmem::{
    CheckpointCrash, CheckpointPhase, CheckpointRegion, CrashPoint, PmemPool, SharedBackend,
    VolatileBackend,
};
use std::sync::Arc;

const POOL_SIZE: u64 = 2 * 1024 * 1024;
const CHUNK: u64 = 256;
/// One chunk per crash-point ordinal, so every `ChunkFlush` sub-position
/// (crash while writing dirty chunk k, k in 0..4) is reachable.
const CHUNKS: usize = CrashPoint::ALL.len();
const DATA: u64 = CHUNK * CHUNKS as u64;
const LAYOUT: &str = "crash-matrix";

/// Deterministic full-region image for an epoch; every chunk changes between
/// epochs, so a crashing attempt always has all chunks dirty.
fn image(epoch: u64) -> Vec<u8> {
    (0..DATA)
        .map(|i| (i.wrapping_mul(31) ^ epoch.wrapping_mul(131)) as u8)
        .collect()
}

/// Whether the injected crash is expected to surface as an error from the
/// checkpoint attempt.
fn expect_crash(phase: CheckpointPhase, point: CrashPoint) -> bool {
    match phase {
        // Pipeline-level injections always fire.
        CheckpointPhase::ChunkFlush | CheckpointPhase::HeaderWrite | CheckpointPhase::Recovery => {
            true
        }
        // `DuringRecovery` never fires inside a transaction: that cell is the
        // control — a clean commit.
        CheckpointPhase::Commit => point != CrashPoint::DuringRecovery,
    }
}

/// The epoch the post-reboot open must restore.
fn expected_epoch(phase: CheckpointPhase, point: CrashPoint, baseline: u64, attempt: u64) -> u64 {
    match phase {
        CheckpointPhase::ChunkFlush | CheckpointPhase::HeaderWrite | CheckpointPhase::Recovery => {
            baseline
        }
        CheckpointPhase::Commit => match point {
            // The undo log rolls the commit record back on reopen.
            CrashPoint::AfterLogAppend | CrashPoint::BeforeCommit => baseline,
            // The commit record cleared the log before the crash: durable.
            CrashPoint::AfterCommit => attempt,
            // Control cell: no crash, clean commit.
            CrashPoint::DuringRecovery => attempt,
        },
    }
}

/// Runs one matrix case end to end; returns the epoch the reboot restored.
fn run_case(phase: CheckpointPhase, point: CrashPoint, parity: usize) -> u64 {
    let case = format!("{phase:?} × {point:?} × slot{parity}");
    let backend = VolatileBackend::new_persistent(POOL_SIZE);
    let shared: SharedBackend = Arc::new(backend.clone());
    let pool = PmemPool::create_with_backend(shared, LAYOUT).unwrap();
    let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
    pool.set_root(region.oid(), DATA).unwrap();

    // Commit baseline epochs until the next attempt lands on `parity`
    // (epoch e lives in slot e % 2), with at least one committed epoch to
    // fall back to. baseline ∈ {1, 2}.
    let mut baseline = 0u64;
    while baseline == 0 || ((baseline + 1) % 2) as usize != parity {
        baseline += 1;
        region.checkpoint(&image(baseline)).unwrap();
    }
    assert_eq!(region.next_slot(), parity, "{case}: parity setup");
    let attempt = baseline + 1;

    // The crashing attempt.
    region.set_crash(Some(CheckpointCrash { phase, point }));
    let result = region.checkpoint(&image(attempt));
    if expect_crash(phase, point) {
        let err = result.expect_err(&case);
        assert!(err.is_injected_crash(), "{case}: {err}");
    } else {
        assert_eq!(result.unwrap().epoch, attempt, "{case}");
    }

    // Recovery-phase cases additionally crash (or complete) an explicit
    // recovery pass before the reboot: only `DuringRecovery` fires there.
    if phase == CheckpointPhase::Recovery {
        assert!(
            pool.tx_log_active().unwrap(),
            "{case}: log must be stranded"
        );
        let recovered = pool.recover();
        if point == CrashPoint::DuringRecovery {
            assert!(recovered.unwrap_err().is_injected_crash(), "{case}");
            assert!(
                pool.tx_log_active().unwrap(),
                "{case}: interrupted recovery leaves the log active"
            );
        } else {
            assert!(recovered.unwrap(), "{case}: recovery rolls the commit back");
        }
    }
    drop(region);
    drop(pool);

    // "Reboot": reopen over the same bytes. Open replays the undo log (the
    // slot-commit record) and the region validates its slots.
    let shared: SharedBackend = Arc::new(backend);
    let reopened = PmemPool::open_with_backend(shared, LAYOUT).unwrap();
    assert!(
        !reopened.tx_log_active().unwrap(),
        "{case}: open must finish recovery"
    );
    let region = CheckpointRegion::open_root(&reopened).unwrap();
    let restored_epoch = region.committed_epoch();
    assert!(
        restored_epoch == baseline || restored_epoch == attempt,
        "{case}: restored epoch {restored_epoch} is neither baseline nor attempt"
    );
    let mut restored = vec![0u8; DATA as usize];
    assert_eq!(region.restore(&mut restored).unwrap(), restored_epoch);
    assert_eq!(
        restored,
        image(restored_epoch),
        "{case}: restored image is torn"
    );

    // The reopened region must accept new checkpoints (full liveness, not
    // just read-back): the next epoch commits and restores cleanly.
    let mut region = region;
    let next = restored_epoch + 1;
    region.checkpoint(&image(next)).unwrap();
    let mut after = vec![0u8; DATA as usize];
    assert_eq!(region.restore(&mut after).unwrap(), next);
    assert_eq!(after, image(next), "{case}: post-recovery checkpoint");

    restored_epoch
}

#[test]
fn crash_matrix_is_exhaustive_and_never_restores_torn_state() {
    let mut cases = 0usize;
    for phase in CheckpointPhase::ALL {
        for point in CrashPoint::ALL {
            for parity in 0..2usize {
                // baseline is 1 when the attempt targets slot 0, 2 when it
                // targets slot 1 — derived, then verified inside run_case.
                let baseline = if parity == 0 { 1 } else { 2 };
                let attempt = baseline + 1;
                let restored = run_case(phase, point, parity);
                assert_eq!(
                    restored,
                    expected_epoch(phase, point, baseline, attempt),
                    "case {phase:?} × {point:?} × slot{parity}"
                );
                cases += 1;
            }
        }
    }
    // Exhaustiveness: every CrashPoint × CheckpointPhase × slot-parity
    // combination ran. Adding a variant to either enum grows this product —
    // the assertion then forces the matrix (and its oracle) to cover it.
    assert_eq!(
        cases,
        CrashPoint::ALL.len() * CheckpointPhase::ALL.len() * 2
    );
    assert_eq!(cases, 32);
}

#[test]
fn crash_matrix_cases_are_deterministic() {
    // Same case, three runs: identical restored epoch every time (the matrix
    // enumerates, it does not sample).
    for _ in 0..3 {
        assert_eq!(
            run_case(CheckpointPhase::Commit, CrashPoint::BeforeCommit, 0),
            1
        );
        assert_eq!(
            run_case(CheckpointPhase::Recovery, CrashPoint::DuringRecovery, 1),
            2
        );
    }
}
