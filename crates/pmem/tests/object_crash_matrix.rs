//! The exhaustive object-store crash matrix: every [`ObjectPhase`] ×
//! [`CrashPoint`] × recovering host, deterministically enumerated (no
//! sampling), over a *shared* far-memory window.
//!
//! Each case builds a fresh pooled window, has host 0 format an
//! [`ObjectStore`], commit a baseline version of every object and publish,
//! then injects the case's tear into an update of one target object. The
//! writer host "dies"; the case then reboots — either the same host
//! reattaching, or a spare host acquiring the window — which reruns undo-log
//! recovery over the shared bytes. The restored target must be **bit-exact**
//! for a committed version (the baseline, or the attempt when the commit
//! record landed first), every bystander object must be untouched, and the
//! directory must conserve. Never a torn mixture, on any host.
//!
//! The phase picks the pipeline stage (staging-slot write, directory-entry
//! commit, or the recovery pass itself); the crash point picks the
//! sub-position within it. See `object.rs` module docs for the mapping.

use pmem::{CrashPoint, ObjectCrash, ObjectPhase, ObjectStore, PmemPool, SharedRegionBackend};
use std::sync::Arc;

const CAPACITY: u64 = 8;
const VALUE_LEN: u64 = 64;
const TARGET: u64 = 3;
const LAYOUT: &str = "object-matrix";
const WINDOW: u64 = 4 * 1024 * 1024;

/// Deterministic payload for object `id` at committed epoch `epoch`.
fn value_for(id: u64, epoch: u64) -> Vec<u8> {
    (0..VALUE_LEN)
        .map(|i| (i.wrapping_mul(37) ^ id.wrapping_mul(131) ^ epoch.wrapping_mul(17)) as u8)
        .collect()
}

/// Whether the injected tear is expected to surface as an error from the
/// put/commit attempt.
fn expect_crash(phase: ObjectPhase, point: CrashPoint) -> bool {
    match phase {
        // Slot-write injections fire at every sub-position; Recovery-phase
        // cells strand the commit record at `BeforeCommit` first.
        ObjectPhase::SlotWrite | ObjectPhase::Recovery => true,
        // `DuringRecovery` never fires inside a transaction: that cell is
        // the control — a clean commit.
        ObjectPhase::EntryCommit => point != CrashPoint::DuringRecovery,
    }
}

/// The epoch the post-reboot open must read for the target object.
fn expected_epoch(phase: ObjectPhase, point: CrashPoint, baseline: u64, attempt: u64) -> u64 {
    match phase {
        // The torn staging slot is invisible; the committed entry still
        // names the baseline.
        ObjectPhase::SlotWrite => baseline,
        ObjectPhase::EntryCommit => match point {
            // The undo log rolls the commit record back on reopen.
            CrashPoint::AfterLogAppend | CrashPoint::BeforeCommit => baseline,
            // The commit record cleared the log before the crash: durable.
            CrashPoint::AfterCommit => attempt,
            // Control cell: no crash, clean commit.
            CrashPoint::DuringRecovery => attempt,
        },
        // The commit record was stranded mid-transaction; recovery (however
        // many passes it takes) rolls it back.
        ObjectPhase::Recovery => baseline,
    }
}

/// Runs one matrix case end to end; returns the epoch the reboot restored
/// for the target object.
fn run_case(phase: ObjectPhase, point: CrashPoint, reboot_host: usize) -> u64 {
    let case = format!("{phase:?} × {point:?} × host{reboot_host}");
    let device = Arc::new(cxl::Type3Device::new(
        "pooled-expander",
        8 * 1024 * 1024,
        cxl::LinkConfig::gen5_x16(),
    ));
    let window = Arc::new(
        cxl::SharedRegion::new(device, 0, WINDOW, cxl::CoherenceMode::SoftwareManaged).unwrap(),
    );

    // Host 0 formats the store, commits a baseline version of every object,
    // bumps the target once more (so its slots have both parities in play)
    // and publishes.
    let baseline = 2u64;
    let attempt = baseline + 1;
    {
        let backend = SharedRegionBackend::new(Arc::clone(&window), 0);
        let pool = PmemPool::create_with_backend(Arc::new(backend), LAYOUT).unwrap();
        let mut store = ObjectStore::format(&pool, CAPACITY, VALUE_LEN).unwrap();
        pool.set_root(store.oid(), ObjectStore::region_size(CAPACITY, VALUE_LEN))
            .unwrap();
        for id in 0..CAPACITY {
            store.put_commit(id, &value_for(id, 1)).unwrap();
        }
        store
            .put_commit(TARGET, &value_for(TARGET, baseline))
            .unwrap();
        window.publish(0).unwrap();

        // The tearing attempt on the target object.
        store.set_crash(Some(ObjectCrash { phase, point }));
        let result = match phase {
            ObjectPhase::SlotWrite => store.put(TARGET, &value_for(TARGET, attempt)).map(|_| 0),
            _ => {
                store.put(TARGET, &value_for(TARGET, attempt)).unwrap();
                store.commit(TARGET)
            }
        };
        if expect_crash(phase, point) {
            let err = result.expect_err(&case);
            assert!(err.is_injected_crash(), "{case}: {err}");
        } else {
            assert_eq!(result.unwrap(), attempt, "{case}");
        }

        // Recovery-phase cases additionally crash (or complete) an explicit
        // recovery pass before the reboot: only `DuringRecovery` fires there.
        if phase == ObjectPhase::Recovery {
            assert!(
                pool.tx_log_active().unwrap(),
                "{case}: log must be stranded"
            );
            let recovered = pool.recover();
            if point == CrashPoint::DuringRecovery {
                assert!(recovered.unwrap_err().is_injected_crash(), "{case}");
                assert!(
                    pool.tx_log_active().unwrap(),
                    "{case}: interrupted recovery leaves the log active"
                );
            } else {
                assert!(recovered.unwrap(), "{case}: recovery rolls the commit back");
            }
        }
    } // the writer host dies: its pool handle and volatile state are gone

    // "Reboot": reattach over the same shared bytes — as the same host or as
    // a spare host acquiring the window. Open replays the undo log.
    let backend = SharedRegionBackend::new(Arc::clone(&window), reboot_host);
    if reboot_host != 0 {
        window.acquire(reboot_host).unwrap();
    }
    let pool = PmemPool::open_with_backend(Arc::new(backend), LAYOUT).unwrap();
    let store = ObjectStore::open_root(&pool).unwrap();

    let expected = expected_epoch(phase, point, baseline, attempt);
    assert_eq!(
        store.get(TARGET).unwrap(),
        value_for(TARGET, expected),
        "{case}: the target must restore a committed version bit-exact"
    );
    assert_eq!(store.committed_version(TARGET).unwrap(), expected, "{case}");
    for id in (0..CAPACITY).filter(|&id| id != TARGET) {
        assert_eq!(
            store.get(id).unwrap(),
            value_for(id, 1),
            "{case}: bystander object {id} must be untouched"
        );
    }
    let check = store.verify().unwrap();
    assert_eq!(check.live, CAPACITY, "{case}: every object stays live");
    assert_eq!(
        check.live + check.free,
        CAPACITY,
        "{case}: directory conservation"
    );
    expected
}

#[test]
fn object_crash_matrix_is_exhaustive_and_never_restores_torn_state() {
    let mut cells = 0usize;
    let mut rolled_back = 0usize;
    let mut committed = 0usize;
    for phase in ObjectPhase::ALL {
        for point in CrashPoint::ALL {
            for reboot_host in [0usize, 1] {
                let restored = run_case(phase, point, reboot_host);
                cells += 1;
                if restored == 2 {
                    rolled_back += 1;
                } else {
                    committed += 1;
                }
            }
        }
    }
    // Counted coverage: the matrix must not silently shrink when a variant
    // is added or an arm is skipped.
    assert_eq!(
        cells,
        ObjectPhase::ALL.len() * CrashPoint::ALL.len() * 2,
        "every phase × point × host cell must run"
    );
    // Exactly the two landed-commit points (per host) keep the attempt; every
    // other cell rolls back to the baseline.
    assert_eq!(committed, 4);
    assert_eq!(rolled_back, cells - 4);
}

#[test]
fn object_crash_matrix_cases_are_deterministic() {
    for phase in ObjectPhase::ALL {
        for point in CrashPoint::ALL {
            assert_eq!(
                run_case(phase, point, 1),
                run_case(phase, point, 1),
                "{phase:?} × {point:?} must restore the same epoch every run"
            );
        }
    }
}
