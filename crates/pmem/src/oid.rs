//! Object identifiers — the equivalents of PMDK's `PMEMoid` and `TOID(type)`.
//!
//! A persistent pointer cannot be a raw address: the pool may be mapped at a
//! different address (or opened by a different process, or served by a device)
//! every time. PMDK therefore represents object references as
//! `(pool uuid, offset)` pairs; typed wrappers add compile-time element types.

use std::marker::PhantomData;

/// An untyped persistent object identifier: pool UUID + offset within the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PmemOid {
    /// UUID of the pool the object lives in.
    pub pool_uuid: u64,
    /// Byte offset of the object's payload within the pool.
    pub offset: u64,
}

impl PmemOid {
    /// The null object id (`OID_NULL`).
    pub const NULL: PmemOid = PmemOid {
        pool_uuid: 0,
        offset: 0,
    };

    /// Creates an oid.
    pub fn new(pool_uuid: u64, offset: u64) -> Self {
        PmemOid { pool_uuid, offset }
    }

    /// Whether this is the null id.
    pub fn is_null(&self) -> bool {
        *self == Self::NULL
    }
}

impl Default for PmemOid {
    fn default() -> Self {
        Self::NULL
    }
}

/// A typed persistent object identifier, the `TOID(type)` equivalent.
///
/// The type parameter is purely a compile-time tag: it records what the
/// allocation holds so reads and writes go through the right element size.
#[derive(Debug)]
pub struct TypedOid<T> {
    oid: PmemOid,
    /// Number of `T` elements in the allocation.
    len: u64,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls so `T` does not need to be Clone/Copy/PartialEq itself.
impl<T> Clone for TypedOid<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TypedOid<T> {}
impl<T> PartialEq for TypedOid<T> {
    fn eq(&self, other: &Self) -> bool {
        self.oid == other.oid && self.len == other.len
    }
}
impl<T> Eq for TypedOid<T> {}

impl<T> TypedOid<T> {
    /// Wraps an untyped oid with a length in elements.
    pub fn new(oid: PmemOid, len: u64) -> Self {
        TypedOid {
            oid,
            len,
            _marker: PhantomData,
        }
    }

    /// The null typed oid.
    pub fn null() -> Self {
        Self::new(PmemOid::NULL, 0)
    }

    /// The untyped oid.
    pub fn oid(&self) -> PmemOid {
        self.oid
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the allocation holds zero elements (or is null).
    pub fn is_empty(&self) -> bool {
        self.len == 0 || self.oid.is_null()
    }

    /// Byte offset of element `index` within the pool, if in range.
    pub fn element_offset(&self, index: u64, element_size: u64) -> Option<u64> {
        if index >= self.len {
            return None;
        }
        Some(self.oid.offset + index * element_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_oid_is_default_and_detectable() {
        assert!(PmemOid::NULL.is_null());
        assert!(PmemOid::default().is_null());
        assert!(!PmemOid::new(1, 64).is_null());
        assert!(TypedOid::<f64>::null().is_empty());
    }

    #[test]
    fn typed_oid_is_copy_even_for_non_copy_types() {
        let oid = TypedOid::<String>::new(PmemOid::new(7, 128), 4);
        let copy = oid;
        assert_eq!(oid, copy);
        assert_eq!(copy.len(), 4);
        assert_eq!(copy.oid().offset, 128);
    }

    #[test]
    fn element_offsets_respect_bounds() {
        let oid = TypedOid::<f64>::new(PmemOid::new(1, 1000), 10);
        assert_eq!(oid.element_offset(0, 8), Some(1000));
        assert_eq!(oid.element_offset(9, 8), Some(1072));
        assert_eq!(oid.element_offset(10, 8), None);
    }

    #[test]
    fn oids_compare_by_pool_and_offset() {
        let a = PmemOid::new(1, 64);
        let b = PmemOid::new(1, 64);
        let c = PmemOid::new(2, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
