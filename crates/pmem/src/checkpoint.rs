//! Versioned checkpoint/restart: double-buffered, epoch-versioned snapshot
//! slots inside a pool.
//!
//! The paper's premise is that CXL memory can serve as the persistent tier HPC
//! applications checkpoint into — far cheaper than a parallel filesystem. This
//! module turns that premise into a reusable subsystem: a [`CheckpointRegion`]
//! holds **two slots**, each capable of one full snapshot, and commits new
//! epochs with a protocol that guarantees a reopen after *any* crash restores
//! either the pre-crash committed epoch or the newly committed one — never a
//! torn mixture. The exhaustive proof lives in `tests/crash_matrix.rs`.
//!
//! # On-pool layout
//!
//! One allocation, carved as:
//!
//! ```text
//! base ┌──────────────────────────────────────────────────────────┐
//!      │ descriptor (64 B): magic, version, data_len, chunk_len,  │
//!      │                    committed_epoch  ◄── undo-log guarded │
//!      ├──────────────────────────────────────────────────────────┤
//!      │ slot-0 header (64 B): magic, epoch, data_hash, checksum  │
//!      ├──────────────────────────────────────────────────────────┤
//!      │ slot-1 header (64 B): magic, epoch, data_hash, checksum  │
//!      ├──────────────────────────────────────────────────────────┤
//!      │ slot-0 data  (chunk_count × chunk_len bytes)             │
//!      ├──────────────────────────────────────────────────────────┤
//!      │ slot-1 data  (chunk_count × chunk_len bytes)             │
//!      └──────────────────────────────────────────────────────────┘
//! ```
//!
//! Epoch `e` lives in slot `e % 2`, so committing epoch `e + 1` never touches
//! the slot holding epoch `e`.
//!
//! # Two-slot commit protocol
//!
//! A checkpoint of epoch `e + 1` (current committed epoch `e`) runs three
//! phases against slot `s = (e + 1) % 2`:
//!
//! 1. **Chunk flush** — every *dirty* chunk (content hash differs from what
//!    slot `s` already holds) is written into the slot and flushed without a
//!    fence; the phase ends with a **single drain**. Fan-out across workers is
//!    pluggable via [`ChunkExecutor`]: each lane issues one flush batch, the
//!    submitter drains once — the `PersistStats` discipline of the STREAM-PMem
//!    hot path.
//! 2. **Header write** — the slot header (epoch, combined data hash, header
//!    checksum) is written and persisted. The slot is now *valid but
//!    uncommitted*: the descriptor still names epoch `e`.
//! 3. **Commit** — the descriptor's `committed_epoch` is advanced to `e + 1`
//!    inside a pool **transaction**, so the existing [`TxLog`] machinery is the
//!    slot-commit record: a crash before the commit record clears leaves an
//!    active undo log, and pool-open recovery rolls the descriptor back to
//!    epoch `e`.
//!
//! On [`open`](CheckpointRegion::open), the descriptor (post-recovery, hence
//! never torn) names the committed epoch; the slot holding it is validated
//! (header checksum + recomputed data hash). A slot torn by a crash mid-phase
//! either is not the committed one (phases 1–2 crash) or cannot exist (the
//! drain in phase 1 and the persist in phase 2 order all slot bytes before the
//! commit record). Defensively, a committed slot that fails validation falls
//! back to the other valid slot and repairs the descriptor.
//!
//! Incremental checkpoints track per-chunk content hashes per slot (recomputed
//! on open), so an unchanged region performs **zero** chunk flushes and a
//! one-chunk change flushes exactly one chunk plus the header.
//!
//! Crash injection composes [`CrashPoint`] with [`CheckpointPhase`]: the phase
//! picks the pipeline stage, the point picks the sub-position within it (or
//! the transaction-level site for the commit phase). Injection is
//! deterministic under [`SerialExecutor`].
//!
//! [`TxLog`]: crate::tx::TxLog

use crate::array::PmemScalar;
use crate::error::PmemError;
use crate::oid::PmemOid;
use crate::pool::{fnv1a, PmemPool, MIN_POOL_SIZE};
use crate::tx::CrashPoint;
use crate::Result;
use std::sync::Arc;

/// Region descriptor magic ("CKPTRGN1").
pub const REGION_MAGIC: u64 = 0x434B_5054_5247_4E31;
/// Slot header magic ("CKPTSLT1").
pub const SLOT_MAGIC: u64 = 0x434B_5054_534C_5431;
/// Region format version.
pub const REGION_VERSION: u32 = 1;
/// Bytes reserved for the descriptor.
const DESC_SIZE: u64 = 64;
/// Bytes reserved per slot header.
const SLOT_HEADER_SIZE: u64 = 64;
/// Offset of `committed_epoch` within the descriptor.
const COMMITTED_AT: u64 = 32;
/// Bytes actually written for a slot header (magic, epoch, data_hash, checksum).
const SLOT_HEADER_LEN: usize = 32;

/// Which pipeline stage of a checkpoint an injected crash fires in.
///
/// Together with [`CrashPoint`] (the sub-position within the stage) and the
/// target-slot parity this spans the crash matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPhase {
    /// While dirty chunks are written + flushed into the target slot. The
    /// [`CrashPoint`] ordinal `k` selects "die when writing dirty chunk `k`"
    /// (chunks `0..k` already written, `k..` never written). When fewer than
    /// `k + 1` chunks are dirty the crash fires at the end of the phase,
    /// after every dirty chunk but before the drain — a `ChunkFlush`
    /// injection always aborts the checkpoint.
    ChunkFlush,
    /// While the slot header is written. The [`CrashPoint`] ordinal selects:
    /// 0 = before any header byte, 1 = after half the header (torn header,
    /// caught by the checksum), 2 = after the header bytes but before the
    /// persist, 3 = after the persist (valid but uncommitted slot).
    HeaderWrite,
    /// Inside the descriptor-update transaction — the slot-commit record. The
    /// [`CrashPoint`] is armed on the pool and fires at its native
    /// transaction site ([`CrashPoint::DuringRecovery`] never fires inside a
    /// transaction, so that cell commits cleanly).
    Commit,
    /// During the recovery that follows an interrupted commit: the commit
    /// transaction is crashed at [`CrashPoint::BeforeCommit`] to strand the
    /// undo log, and the [`CrashPoint`] is left armed on the pool so the next
    /// [`PmemPool::recover`] call hits it (only
    /// [`CrashPoint::DuringRecovery`] actually fires there).
    Recovery,
}

impl CheckpointPhase {
    /// Every phase, in pipeline order — the crash matrix iterates this.
    pub const ALL: [CheckpointPhase; 4] = [
        CheckpointPhase::ChunkFlush,
        CheckpointPhase::HeaderWrite,
        CheckpointPhase::Commit,
        CheckpointPhase::Recovery,
    ];
}

/// A crash to inject into the *next* checkpoint attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointCrash {
    /// Pipeline stage the crash fires in.
    pub phase: CheckpointPhase,
    /// Sub-position within the stage (see [`CheckpointPhase`]).
    pub point: CrashPoint,
}

/// Ordinal of a crash point, used as the deterministic sub-position inside
/// the chunk-flush and header-write phases.
pub(crate) fn point_ordinal(point: CrashPoint) -> usize {
    match point {
        CrashPoint::AfterLogAppend => 0,
        CrashPoint::BeforeCommit => 1,
        CrashPoint::AfterCommit => 2,
        CrashPoint::DuringRecovery => 3,
    }
}

/// Outcome counters of one committed checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// The epoch that was committed.
    pub epoch: u64,
    /// Total chunks in the region.
    pub chunks_total: usize,
    /// Chunks actually written + flushed (the dirty set).
    pub chunks_written: usize,
    /// Payload bytes written into the slot (excludes the header).
    pub bytes_written: u64,
}

/// Something that can be snapshotted into a byte image and restored from one.
///
/// The snapshot length must be stable across calls — it is the region's
/// `data_len`.
pub trait Checkpointable {
    /// Serialises the current state into a byte image.
    fn snapshot(&self) -> Vec<u8>;
    /// Restores state from a committed byte image.
    fn restore(&mut self, bytes: &[u8]) -> Result<()>;
}

impl<T: PmemScalar> Checkpointable for Vec<T> {
    fn snapshot(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len() * T::SIZE];
        for (i, value) in self.iter().enumerate() {
            // in-bounds: i < self.len() and out holds self.len() * SIZE bytes.
            value.write_le(&mut out[i * T::SIZE..]);
        }
        out
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        if !bytes.len().is_multiple_of(T::SIZE) {
            return Err(PmemError::Checkpoint(
                "snapshot length is not a multiple of the scalar size",
            ));
        }
        self.clear();
        self.extend(bytes.chunks_exact(T::SIZE).map(T::read_le));
        Ok(())
    }
}

/// Executes the independent chunk-write jobs of one checkpoint, possibly in
/// parallel.
///
/// Implementations must invoke `job(i)` exactly once for every `i` in
/// `0..jobs` (distinct `i` may run concurrently — the jobs touch disjoint
/// byte ranges) and return the first error, if any. The `cxl-pmem` runtime
/// adapts the resident `PinnedPool` to this trait so each worker issues one
/// flush batch; the region then drains once.
pub trait ChunkExecutor {
    /// Runs `job(0) .. job(jobs - 1)`, returning the first error.
    fn run_chunks(&self, jobs: usize, job: &(dyn Fn(usize) -> Result<()> + Sync)) -> Result<()>;
}

/// Runs the chunk jobs on the calling thread, in index order. Crash injection
/// is deterministic under this executor (the crash matrix uses it).
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl ChunkExecutor for SerialExecutor {
    fn run_chunks(&self, jobs: usize, job: &(dyn Fn(usize) -> Result<()> + Sync)) -> Result<()> {
        (0..jobs).try_for_each(job)
    }
}

/// One validated slot header.
#[derive(Debug, Clone, Copy)]
struct SlotHeader {
    epoch: u64,
    data_hash: u64,
}

impl SlotHeader {
    fn to_bytes(self) -> [u8; SLOT_HEADER_LEN] {
        let mut out = [0u8; SLOT_HEADER_LEN];
        out[0..8].copy_from_slice(&SLOT_MAGIC.to_le_bytes());
        out[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        out[16..24].copy_from_slice(&self.data_hash.to_le_bytes());
        let checksum = fnv1a(&out[..24]);
        out[24..32].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses and validates a header; `None` for anything torn or foreign.
    fn from_bytes(bytes: &[u8]) -> Option<SlotHeader> {
        let read = |at: usize| {
            let mut buf = [0u8; 8];
            // in-bounds: at ∈ {0, 8, 16, 24}; callers pass SLOT_HEADER_LEN bytes.
            buf.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(buf)
        };
        if read(0) != SLOT_MAGIC || fnv1a(&bytes[..24]) != read(24) {
            return None;
        }
        Some(SlotHeader {
            epoch: read(8),
            data_hash: read(16),
        })
    }
}

/// How a region addresses its pool: borrowed for the classic in-stack use,
/// or shared ownership for long-lived handles (the disaggregated cluster
/// keeps one region per host segment, preserving the incremental chunk-hash
/// cache across checkpoint calls instead of re-validating both slots each
/// time).
#[derive(Debug)]
pub(crate) enum PoolRef<'p> {
    Borrowed(&'p PmemPool),
    Shared(Arc<PmemPool>),
}

impl std::ops::Deref for PoolRef<'_> {
    type Target = PmemPool;
    fn deref(&self) -> &PmemPool {
        match self {
            PoolRef::Borrowed(pool) => pool,
            PoolRef::Shared(pool) => pool,
        }
    }
}

/// A double-buffered, epoch-versioned checkpoint region inside a pool.
///
/// See the [module docs](self) for the layout and the commit protocol.
pub struct CheckpointRegion<'p> {
    pool: PoolRef<'p>,
    base: u64,
    data_len: u64,
    chunk_len: u64,
    chunk_count: usize,
    committed: u64,
    /// Per-slot content hash of every chunk; `None` = unknown (always dirty).
    hashes: [Vec<Option<u64>>; 2],
    crash: Option<CheckpointCrash>,
}

impl std::fmt::Debug for CheckpointRegion<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointRegion")
            .field("base", &self.base)
            .field("data_len", &self.data_len)
            .field("chunk_len", &self.chunk_len)
            .field("chunk_count", &self.chunk_count)
            .field("committed", &self.committed)
            .finish()
    }
}

impl<'p> CheckpointRegion<'p> {
    // ---------------------------------------------------------------- sizing

    /// Bytes the region occupies inside a pool.
    pub fn region_size(data_len: u64, chunk_len: u64) -> u64 {
        let stride = data_len.div_ceil(chunk_len.max(1)) * chunk_len.max(1);
        DESC_SIZE + 2 * SLOT_HEADER_SIZE + 2 * stride
    }

    /// A pool size comfortably fitting one region of this shape
    /// ([`MIN_POOL_SIZE`] covers the pool header and undo log; the slack
    /// covers heap bookkeeping) — what the runtime's `checkpoint_region`
    /// helper provisions.
    pub fn required_pool_size(data_len: u64, chunk_len: u64) -> u64 {
        MIN_POOL_SIZE + Self::region_size(data_len, chunk_len) + 64 * 1024
    }

    // ---------------------------------------------------------------- create

    /// Formats a fresh region for snapshots of exactly `data_len` bytes,
    /// persisted at `chunk_len` granularity. Nothing is committed yet.
    pub fn format(pool: &'p PmemPool, data_len: u64, chunk_len: u64) -> Result<Self> {
        if data_len == 0 || chunk_len == 0 {
            return Err(PmemError::Checkpoint(
                "data_len and chunk_len must be non-zero",
            ));
        }
        let chunk_count = data_len.div_ceil(chunk_len);
        let oid = pool.alloc_bytes(Self::region_size(data_len, chunk_len))?;
        let base = oid.offset;
        // Descriptor: magic, version, data_len, chunk_len, committed_epoch=0.
        let mut desc = [0u8; DESC_SIZE as usize];
        desc[0..8].copy_from_slice(&REGION_MAGIC.to_le_bytes());
        desc[8..12].copy_from_slice(&REGION_VERSION.to_le_bytes());
        desc[16..24].copy_from_slice(&data_len.to_le_bytes());
        desc[24..32].copy_from_slice(&chunk_len.to_le_bytes());
        desc[32..40].copy_from_slice(&0u64.to_le_bytes());
        pool.write(base, &desc)?;
        // Slot headers: explicitly invalidated (the heap may hand back a
        // recycled block still carrying an old region's headers).
        let zeros = [0u8; SLOT_HEADER_LEN];
        pool.write(base + DESC_SIZE, &zeros)?;
        pool.write(base + DESC_SIZE + SLOT_HEADER_SIZE, &zeros)?;
        pool.persist(base, DESC_SIZE + 2 * SLOT_HEADER_SIZE)?;
        Ok(CheckpointRegion {
            pool: PoolRef::Borrowed(pool),
            base,
            data_len,
            chunk_len,
            chunk_count: chunk_count as usize,
            committed: 0,
            hashes: [
                vec![None; chunk_count as usize],
                vec![None; chunk_count as usize],
            ],
            crash: None,
        })
    }

    /// Opens an existing region at `oid` (typically after a pool reopen),
    /// validating the committed slot and rebuilding the chunk-hash caches.
    pub fn open(pool: &'p PmemPool, oid: PmemOid) -> Result<Self> {
        Self::open_at(PoolRef::Borrowed(pool), oid)
    }

    fn open_at(pool: PoolRef<'p>, oid: PmemOid) -> Result<Self> {
        let base = oid.offset;
        let mut desc = [0u8; DESC_SIZE as usize];
        pool.read(base, &mut desc)?;
        let read = |at: usize| {
            let mut buf = [0u8; 8];
            // in-bounds: at ∈ {0, 16, 24, 32} and desc is DESC_SIZE = 64 bytes.
            buf.copy_from_slice(&desc[at..at + 8]);
            u64::from_le_bytes(buf)
        };
        if read(0) != REGION_MAGIC {
            return Err(PmemError::Checkpoint("region descriptor magic mismatch"));
        }
        let version = u32::from_le_bytes([desc[8], desc[9], desc[10], desc[11]]);
        if version != REGION_VERSION {
            return Err(PmemError::Checkpoint("unsupported region version"));
        }
        let data_len = read(16);
        let chunk_len = read(24);
        let committed = read(32);
        if data_len == 0 || chunk_len == 0 {
            return Err(PmemError::Checkpoint("corrupt region descriptor"));
        }
        let chunk_count = data_len.div_ceil(chunk_len) as usize;
        let mut region = CheckpointRegion {
            pool,
            base,
            data_len,
            chunk_len,
            chunk_count,
            committed,
            hashes: [vec![None; chunk_count], vec![None; chunk_count]],
            crash: None,
        };
        // Validate both slots; a valid slot seeds the incremental hash cache.
        let mut valid_epoch = [None::<u64>; 2];
        for (slot, valid) in valid_epoch.iter_mut().enumerate() {
            if let Some((header, chunk_hashes)) = region.validate_slot(slot)? {
                *valid = Some(header.epoch);
                // in-bounds: slot enumerates the two-element hashes array.
                region.hashes[slot] = chunk_hashes.into_iter().map(Some).collect();
            }
        }
        if committed > 0 {
            let slot = Self::slot_for(committed);
            // in-bounds: slot_for returns epoch % 2, valid_epoch has two slots.
            if valid_epoch[slot] != Some(committed) {
                // The protocol never lets the committed slot tear (its bytes
                // are drained before the commit record); this path handles
                // external corruption by falling back to the other valid slot
                // and repairing the descriptor.
                let other = 1 - slot;
                // in-bounds: other ∈ {0, 1} because slot is.
                match valid_epoch[other] {
                    Some(epoch) if epoch < committed => {
                        region
                            .pool
                            .run_tx(|tx| tx.write(base + COMMITTED_AT, &epoch.to_le_bytes()))?;
                        region.committed = epoch;
                    }
                    _ => {
                        return Err(PmemError::Checkpoint(
                            "committed slot failed validation and no fallback slot is valid",
                        ))
                    }
                }
            }
        }
        Ok(region)
    }

    /// Opens the pool's root region with **shared ownership** of the pool,
    /// so the region can outlive the caller's stack frame. Long-lived
    /// handles (e.g. the disaggregated cluster's per-host segments) use this
    /// to keep one region — and its incremental chunk-hash cache — alive
    /// across checkpoint calls instead of re-validating both slots per call.
    pub fn open_root_shared(pool: Arc<PmemPool>) -> Result<CheckpointRegion<'static>> {
        let (oid, _) = pool
            .root()
            .ok_or(PmemError::Checkpoint("pool has no root region"))?;
        CheckpointRegion::open_at(PoolRef::Shared(pool), oid)
    }

    /// Opens the region registered as the pool's root object.
    pub fn open_root(pool: &'p PmemPool) -> Result<Self> {
        let (oid, _) = pool
            .root()
            .ok_or(PmemError::Checkpoint("pool has no root region"))?;
        Self::open(pool, oid)
    }

    /// Reads a slot header and, when it validates, recomputes the slot's
    /// per-chunk hashes and checks them against the header's combined hash.
    fn validate_slot(&self, slot: usize) -> Result<Option<(SlotHeader, Vec<u64>)>> {
        let mut bytes = [0u8; SLOT_HEADER_LEN];
        self.pool.read(self.header_off(slot), &mut bytes)?;
        let header = match SlotHeader::from_bytes(&bytes) {
            Some(h) if h.epoch > 0 && Self::slot_for(h.epoch) == slot => h,
            _ => return Ok(None),
        };
        let mut data = vec![0u8; self.data_len as usize];
        self.pool.read(self.data_off(slot, 0), &mut data)?;
        let chunk_hashes = self.chunk_hashes_of(&data);
        if combine_hashes(&chunk_hashes) != header.data_hash {
            return Ok(None);
        }
        Ok(Some((header, chunk_hashes)))
    }

    // ---------------------------------------------------------------- info

    /// The region's object id (store it in the pool root to reopen later).
    pub fn oid(&self) -> PmemOid {
        PmemOid::new(self.pool.uuid(), self.base)
    }

    /// Snapshot payload size in bytes.
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Persist granularity in bytes.
    pub fn chunk_len(&self) -> u64 {
        self.chunk_len
    }

    /// Number of chunks per slot.
    pub fn chunk_count(&self) -> usize {
        self.chunk_count
    }

    /// The last committed epoch (0 = nothing committed yet).
    pub fn committed_epoch(&self) -> u64 {
        self.committed
    }

    /// The slot the *next* checkpoint will target.
    pub fn next_slot(&self) -> usize {
        Self::slot_for(self.committed + 1)
    }

    fn slot_for(epoch: u64) -> usize {
        (epoch % 2) as usize
    }

    fn header_off(&self, slot: usize) -> u64 {
        self.base + DESC_SIZE + slot as u64 * SLOT_HEADER_SIZE
    }

    fn data_off(&self, slot: usize, chunk: usize) -> u64 {
        let stride = self.chunk_count as u64 * self.chunk_len;
        self.base
            + DESC_SIZE
            + 2 * SLOT_HEADER_SIZE
            + slot as u64 * stride
            + chunk as u64 * self.chunk_len
    }

    /// Byte range of chunk `i` within a snapshot image.
    fn chunk_range(&self, chunk: usize) -> std::ops::Range<usize> {
        let start = chunk * self.chunk_len as usize;
        let end = (start + self.chunk_len as usize).min(self.data_len as usize);
        start..end
    }

    fn chunk_hashes_of(&self, data: &[u8]) -> Vec<u64> {
        (0..self.chunk_count)
            // in-bounds: chunk_range is clamped to data_len == data.len().
            .map(|i| fnv1a(&data[self.chunk_range(i)]))
            .collect()
    }

    // ---------------------------------------------------------------- crash

    /// Arms a crash to be injected into the *next* checkpoint attempt (taken
    /// exactly once, like [`PmemPool::set_crash_point`]).
    pub fn set_crash(&mut self, crash: Option<CheckpointCrash>) {
        self.crash = crash;
    }

    // ---------------------------------------------------------------- write

    /// Serial convenience wrapper around
    /// [`checkpoint_with`](Self::checkpoint_with).
    pub fn checkpoint(&mut self, data: &[u8]) -> Result<CheckpointStats> {
        self.checkpoint_with(data, &SerialExecutor)
    }

    /// Snapshots `obj` and checkpoints the image.
    pub fn checkpoint_object(
        &mut self,
        obj: &impl Checkpointable,
        exec: &impl ChunkExecutor,
    ) -> Result<CheckpointStats> {
        self.checkpoint_with(&obj.snapshot(), exec)
    }

    /// Commits `data` as the next epoch: dirty chunks are written + flushed
    /// through `exec` (one flush per chunk, one drain total), the slot header
    /// is persisted, and the descriptor advances inside a pool transaction.
    ///
    /// On an injected crash the region's in-memory caches for the target slot
    /// are pessimised (every touched chunk is re-written next time); the
    /// durable state is exactly what the crash left, ready for reopen.
    pub fn checkpoint_with(
        &mut self,
        data: &[u8],
        exec: &impl ChunkExecutor,
    ) -> Result<CheckpointStats> {
        if data.len() as u64 != self.data_len {
            return Err(PmemError::Checkpoint(
                "snapshot length does not match the region's data_len",
            ));
        }
        let crash = self.crash.take();
        let epoch = self.committed + 1;
        let slot = Self::slot_for(epoch);

        // Dirty set: chunks whose content differs from what the slot holds.
        let new_hashes = self.chunk_hashes_of(data);
        let dirty: Vec<usize> = (0..self.chunk_count)
            // in-bounds: slot ∈ {0, 1}; both hash vecs hold chunk_count slots.
            .filter(|&i| self.hashes[slot][i] != Some(new_hashes[i]))
            .collect();
        // Pessimise the cache up front: if we crash mid-write the slot's
        // dirty chunks are in an unknown state.
        for &i in &dirty {
            // in-bounds: dirty indexes were drawn from 0..chunk_count above.
            self.hashes[slot][i] = None;
        }

        // Phase 1: chunk flush (fan-out), then a single drain.
        let crash_at_chunk = match crash {
            Some(c) if c.phase == CheckpointPhase::ChunkFlush => Some(point_ordinal(c.point)),
            _ => None,
        };
        let bytes_written: u64 = dirty
            .iter()
            .map(|&i| self.chunk_range(i).len() as u64)
            .sum();
        exec.run_chunks(dirty.len(), &|j| {
            if crash_at_chunk == Some(j) {
                return Err(PmemError::InjectedCrash("checkpoint-chunk-flush"));
            }
            // in-bounds: run_chunks invokes j ∈ 0..dirty.len() by contract.
            let i = dirty[j];
            let range = self.chunk_range(i);
            let off = self.data_off(slot, i);
            // in-bounds: chunk_range is clamped to data_len == data.len().
            self.pool.write(off, &data[range.clone()])?;
            self.pool.flush(off, range.len() as u64)
        })?;
        // An ordinal past the dirty set still aborts the phase (after every
        // dirty chunk, before the drain): ChunkFlush injections always fire.
        if crash_at_chunk.is_some_and(|k| k >= dirty.len()) {
            return Err(PmemError::InjectedCrash("checkpoint-chunk-flush"));
        }
        if !dirty.is_empty() {
            self.pool.drain();
        }

        // Phase 2: slot header write + persist.
        let header = SlotHeader {
            epoch,
            data_hash: combine_hashes(&new_hashes),
        }
        .to_bytes();
        let header_off = self.header_off(slot);
        if let Some(c) = crash {
            if c.phase == CheckpointPhase::HeaderWrite {
                match point_ordinal(c.point) {
                    0 => {}
                    1 => self
                        .pool
                        .write(header_off, &header[..SLOT_HEADER_LEN / 2])?,
                    2 => self.pool.write(header_off, &header)?,
                    _ => {
                        self.pool.write(header_off, &header)?;
                        self.pool.persist(header_off, SLOT_HEADER_LEN as u64)?;
                    }
                }
                return Err(PmemError::InjectedCrash("checkpoint-header-write"));
            }
        }
        self.pool.write(header_off, &header)?;
        self.pool.persist(header_off, SLOT_HEADER_LEN as u64)?;

        // Phase 3: the commit record — descriptor update under the undo log.
        match crash {
            Some(c) if c.phase == CheckpointPhase::Commit => {
                self.pool.set_crash_point(Some(c.point));
            }
            Some(c) if c.phase == CheckpointPhase::Recovery => {
                // Strand the log mid-commit; the caller's next recover() run
                // then hits the armed point (re-armed below).
                self.pool.set_crash_point(Some(CrashPoint::BeforeCommit));
            }
            _ => {}
        }
        let committed_at = self.base + COMMITTED_AT;
        let result = self
            .pool
            .run_tx(|tx| tx.write(committed_at, &epoch.to_le_bytes()));
        match result {
            Ok(()) => {
                self.committed = epoch;
                // in-bounds: slot_for keeps slot ∈ {0, 1}.
                self.hashes[slot] = new_hashes.into_iter().map(Some).collect();
                Ok(CheckpointStats {
                    epoch,
                    chunks_total: self.chunk_count,
                    chunks_written: dirty.len(),
                    bytes_written,
                })
            }
            Err(e) => {
                if let Some(c) = crash {
                    if c.phase == CheckpointPhase::Recovery && e.is_injected_crash() {
                        self.pool.set_crash_point(Some(c.point));
                    }
                }
                Err(e)
            }
        }
    }

    // ---------------------------------------------------------------- read

    /// Reads the committed snapshot into `out` and returns its epoch.
    pub fn restore(&self, out: &mut [u8]) -> Result<u64> {
        if self.committed == 0 {
            return Err(PmemError::Checkpoint("no committed checkpoint to restore"));
        }
        if out.len() as u64 != self.data_len {
            return Err(PmemError::Checkpoint(
                "restore buffer does not match the region's data_len",
            ));
        }
        let slot = Self::slot_for(self.committed);
        self.pool.read(self.data_off(slot, 0), out)?;
        Ok(self.committed)
    }

    /// Restores `obj` from the committed snapshot and returns the epoch.
    pub fn restore_object(&self, obj: &mut impl Checkpointable) -> Result<u64> {
        let mut bytes = vec![0u8; self.data_len as usize];
        let epoch = self.restore(&mut bytes)?;
        obj.restore(&bytes)?;
        Ok(epoch)
    }
}

/// Combines per-chunk hashes into the slot header's data hash.
fn combine_hashes(chunk_hashes: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(chunk_hashes.len() * 8);
    for h in chunk_hashes {
        bytes.extend_from_slice(&h.to_le_bytes());
    }
    fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SharedBackend, VolatileBackend};
    use crate::pool::PmemPool;
    use std::sync::Arc;

    const POOL_SIZE: u64 = 2 * 1024 * 1024;
    const CHUNK: u64 = 256;
    const CHUNKS: usize = 8;
    const DATA: u64 = CHUNK * CHUNKS as u64;

    fn pool_pair() -> (VolatileBackend, PmemPool) {
        let backend = VolatileBackend::new_persistent(POOL_SIZE);
        let shared: SharedBackend = Arc::new(backend.clone());
        let pool = PmemPool::create_with_backend(shared, "ckpt").unwrap();
        (backend, pool)
    }

    fn image(tag: u8) -> Vec<u8> {
        (0..DATA as usize)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag))
            .collect()
    }

    #[test]
    fn format_checkpoint_restore_round_trip() {
        let (_, pool) = pool_pair();
        let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
        assert_eq!(region.committed_epoch(), 0);
        assert_eq!(region.chunk_count(), CHUNKS);
        let mut out = vec![0u8; DATA as usize];
        assert!(region.restore(&mut out).is_err(), "nothing committed yet");

        let data = image(1);
        let stats = region.checkpoint(&data).unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.chunks_written, CHUNKS, "first epoch writes all");
        assert_eq!(stats.bytes_written, DATA);
        assert_eq!(region.restore(&mut out).unwrap(), 1);
        assert_eq!(out, data);
    }

    #[test]
    fn reopen_restores_committed_epoch() {
        let (backend, pool) = pool_pair();
        let oid = {
            let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
            pool.set_root(region.oid(), DATA).unwrap();
            region.checkpoint(&image(1)).unwrap();
            region.checkpoint(&image(2)).unwrap();
            region.oid()
        };
        drop(pool);
        let shared: SharedBackend = Arc::new(backend);
        let reopened = PmemPool::open_with_backend(shared, "ckpt").unwrap();
        let region = CheckpointRegion::open_root(&reopened).unwrap();
        assert_eq!(region.oid(), oid);
        assert_eq!(region.committed_epoch(), 2);
        let mut out = vec![0u8; DATA as usize];
        region.restore(&mut out).unwrap();
        assert_eq!(out, image(2));
    }

    #[test]
    fn open_root_shared_owns_the_pool_and_keeps_incremental_state() {
        let (backend, pool) = pool_pair();
        {
            let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
            pool.set_root(region.oid(), DATA).unwrap();
            region.checkpoint(&image(1)).unwrap();
            region.checkpoint(&image(1)).unwrap();
        }
        drop(pool);
        let shared: SharedBackend = Arc::new(backend);
        let reopened = Arc::new(PmemPool::open_with_backend(shared, "ckpt").unwrap());
        let mut region = CheckpointRegion::open_root_shared(Arc::clone(&reopened)).unwrap();
        // The region co-owns the pool: dropping the caller's Arc is fine.
        drop(reopened);
        assert_eq!(region.committed_epoch(), 2);
        // Open seeded the hash caches, so an unchanged epoch is still the
        // zero-chunk-flush no-op.
        let stats = region.checkpoint(&image(1)).unwrap();
        assert_eq!(stats.chunks_written, 0);
        let mut out = vec![0u8; DATA as usize];
        assert_eq!(region.restore(&mut out).unwrap(), 3);
        assert_eq!(out, image(1));
    }

    #[test]
    fn epochs_alternate_slots() {
        let (_, pool) = pool_pair();
        let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
        assert_eq!(region.next_slot(), 1);
        region.checkpoint(&image(1)).unwrap();
        assert_eq!(region.next_slot(), 0);
        region.checkpoint(&image(2)).unwrap();
        assert_eq!(region.next_slot(), 1);
        assert_eq!(region.committed_epoch(), 2);
    }

    #[test]
    fn unchanged_checkpoint_flushes_zero_chunks() {
        let (_, pool) = pool_pair();
        let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
        let data = image(7);
        // Epochs 1 and 2 populate both slots with `data`.
        region.checkpoint(&data).unwrap();
        region.checkpoint(&data).unwrap();

        // From here on the target slot already holds `data`: zero chunk
        // writes, zero chunk flushes, no chunk-batch drain — only the fixed
        // header + commit-record persists remain.
        let before3 = pool.persist_stats();
        let stats3 = region.checkpoint(&data).unwrap();
        let delta3 = pool.persist_stats() - before3;
        assert_eq!(stats3.chunks_written, 0);
        assert_eq!(stats3.bytes_written, 0);

        let before4 = pool.persist_stats();
        let stats4 = region.checkpoint(&data).unwrap();
        let delta4 = pool.persist_stats() - before4;
        assert_eq!(stats4.chunks_written, 0);
        assert_eq!(
            delta3, delta4,
            "two unchanged checkpoints cost exactly the same fixed overhead"
        );
        // The fixed overhead contains zero chunk flushes: flushing even one
        // chunk would add a flush and CHUNK bytes (the one-chunk test below
        // proves the increment); here the bytes are header + commit metadata
        // only, strictly less than one chunk.
        assert!(delta3.bytes_persisted < CHUNK);
    }

    #[test]
    fn one_changed_chunk_flushes_exactly_one_chunk_plus_header() {
        let (_, pool) = pool_pair();
        let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
        let data = image(7);
        region.checkpoint(&data).unwrap();
        region.checkpoint(&data).unwrap();

        // Baseline: an unchanged checkpoint's fixed overhead.
        let before = pool.persist_stats();
        region.checkpoint(&data).unwrap();
        let fixed = pool.persist_stats() - before;

        // Change exactly one chunk (chunk 3).
        let mut changed = data.clone();
        changed[3 * CHUNK as usize] ^= 0xFF;
        let before = pool.persist_stats();
        let stats = region.checkpoint(&changed).unwrap();
        let delta = pool.persist_stats() - before;
        assert_eq!(stats.chunks_written, 1);
        assert_eq!(stats.bytes_written, CHUNK);
        assert_eq!(
            delta.flushes,
            fixed.flushes + 1,
            "exactly one chunk flush on top of the header/commit overhead"
        );
        assert_eq!(delta.bytes_persisted, fixed.bytes_persisted + CHUNK);
        assert_eq!(
            delta.drains,
            fixed.drains + 1,
            "the chunk batch adds its single drain"
        );

        // And the restored image is the changed one.
        let mut out = vec![0u8; DATA as usize];
        region.restore(&mut out).unwrap();
        assert_eq!(out, changed);
    }

    #[test]
    fn parallel_executor_matches_serial() {
        // A scoped-thread executor standing in for the runtime's PinnedPool
        // adapter: every job must run exactly once, on any thread.
        struct Threaded(usize);
        impl ChunkExecutor for Threaded {
            fn run_chunks(
                &self,
                jobs: usize,
                job: &(dyn Fn(usize) -> crate::Result<()> + Sync),
            ) -> crate::Result<()> {
                let lanes = self.0.max(1);
                let results = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..lanes)
                        .map(|lane| {
                            scope.spawn(move || (lane..jobs).step_by(lanes).try_for_each(job))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("executor lane panicked"))
                        .collect::<Vec<_>>()
                });
                results.into_iter().collect()
            }
        }

        let (_, serial_pool) = pool_pair();
        let mut serial = CheckpointRegion::format(&serial_pool, DATA, CHUNK).unwrap();
        let (_, parallel_pool) = pool_pair();
        let mut parallel = CheckpointRegion::format(&parallel_pool, DATA, CHUNK).unwrap();
        for tag in 1..=3u8 {
            let data = image(tag);
            let s = serial.checkpoint(&data).unwrap();
            let p = parallel.checkpoint_with(&data, &Threaded(4)).unwrap();
            assert_eq!(s, p, "stats identical regardless of executor");
        }
        let mut a = vec![0u8; DATA as usize];
        let mut b = vec![0u8; DATA as usize];
        assert_eq!(
            serial.restore(&mut a).unwrap(),
            parallel.restore(&mut b).unwrap()
        );
        assert_eq!(a, b);
        // Flush accounting is executor-independent: one flush per dirty chunk.
        assert_eq!(
            serial_pool.persist_stats().flushes,
            parallel_pool.persist_stats().flushes
        );
    }

    #[test]
    fn chunk_flush_injection_fires_even_with_no_dirty_chunks() {
        let (_, pool) = pool_pair();
        let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
        let data = image(5);
        region.checkpoint(&data).unwrap();
        region.checkpoint(&data).unwrap();
        // Third checkpoint of the same image has zero dirty chunks; the
        // ChunkFlush injection (any ordinal) must still abort it.
        region.set_crash(Some(CheckpointCrash {
            phase: CheckpointPhase::ChunkFlush,
            point: CrashPoint::DuringRecovery, // ordinal 3 > 0 dirty chunks
        }));
        assert!(region.checkpoint(&data).unwrap_err().is_injected_crash());
        assert_eq!(region.committed_epoch(), 2, "nothing committed");
        // The region stays usable.
        region.checkpoint(&data).unwrap();
        assert_eq!(region.committed_epoch(), 3);
    }

    #[test]
    fn recover_leaves_transaction_crash_points_armed() {
        let (_, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        pool.write(a.offset, b"original").unwrap();
        // Arm a transaction-site crash, then run recovery first: the armed
        // point must survive for the next transaction.
        pool.set_crash_point(Some(CrashPoint::BeforeCommit));
        assert!(!pool.recover().unwrap());
        let result = pool.run_tx(|tx| tx.write(a.offset, b"mutated!"));
        assert!(result.unwrap_err().is_injected_crash());
    }

    #[test]
    fn corrupted_committed_slot_falls_back_to_previous_epoch() {
        let (backend, pool) = pool_pair();
        let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
        pool.set_root(region.oid(), DATA).unwrap();
        region.checkpoint(&image(1)).unwrap();
        region.checkpoint(&image(2)).unwrap();
        // Corrupt one byte of epoch 2's slot data behind the region's back.
        let slot = CheckpointRegion::slot_for(2);
        let off = region.data_off(slot, 0);
        drop(region);
        pool.write(off, &[0xAB]).unwrap();
        drop(pool);

        let shared: SharedBackend = Arc::new(backend);
        let reopened = PmemPool::open_with_backend(shared, "ckpt").unwrap();
        let region = CheckpointRegion::open_root(&reopened).unwrap();
        assert_eq!(
            region.committed_epoch(),
            1,
            "fallback to the previous valid slot"
        );
        let mut out = vec![0u8; DATA as usize];
        region.restore(&mut out).unwrap();
        assert_eq!(out, image(1));
        // The descriptor was repaired durably: a second open agrees.
        let region2 = CheckpointRegion::open_root(&reopened).unwrap();
        assert_eq!(region2.committed_epoch(), 1);
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let (_, pool) = pool_pair();
        let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
        let short_image = vec![0u8; DATA as usize - 1];
        assert!(region.checkpoint(&short_image).is_err());
        region.checkpoint(&image(1)).unwrap();
        let mut short = vec![0u8; DATA as usize - 1];
        assert!(region.restore(&mut short).is_err());
        assert!(CheckpointRegion::format(&pool, 0, CHUNK).is_err());
        assert!(CheckpointRegion::format(&pool, DATA, 0).is_err());
    }

    #[test]
    fn checkpointable_vec_round_trips_through_a_region() {
        let (_, pool) = pool_pair();
        let values: Vec<f64> = (0..256).map(|i| i as f64 * 0.5).collect();
        let len = values.snapshot().len() as u64;
        let mut region = CheckpointRegion::format(&pool, len, 128).unwrap();
        let stats = region.checkpoint_object(&values, &SerialExecutor).unwrap();
        assert_eq!(stats.epoch, 1);
        let mut back: Vec<f64> = Vec::new();
        assert_eq!(region.restore_object(&mut back).unwrap(), 1);
        assert_eq!(back, values);
    }

    #[test]
    fn partial_last_chunk_is_handled() {
        let (_, pool) = pool_pair();
        // 2.5 chunks of payload: the last chunk is half-length.
        let len = 2 * CHUNK + CHUNK / 2;
        let mut region = CheckpointRegion::format(&pool, len, CHUNK).unwrap();
        assert_eq!(region.chunk_count(), 3);
        let data: Vec<u8> = (0..len as usize).map(|i| i as u8).collect();
        let stats = region.checkpoint(&data).unwrap();
        assert_eq!(stats.bytes_written, len);
        // Change only the partial tail chunk.
        let mut changed = data.clone();
        *changed.last_mut().unwrap() ^= 0xFF;
        let stats = region.checkpoint(&changed).unwrap();
        assert_eq!(stats.chunks_written, 3, "second epoch's slot starts empty");
        // Epoch 3 targets the slot holding epoch 1 (`data`): only the tail
        // chunk differs, and it flushes at its true (half) length.
        let stats = region.checkpoint(&changed).unwrap();
        assert_eq!(stats.chunks_written, 1);
        assert_eq!(stats.bytes_written, CHUNK / 2);
        // Epoch 4 targets the slot holding epoch 2 (`changed`): unchanged.
        let stats = region.checkpoint(&changed).unwrap();
        assert_eq!(stats.chunks_written, 0);
        let mut tail_only = changed.clone();
        *tail_only.last_mut().unwrap() ^= 0x0F;
        let stats = region.checkpoint(&tail_only).unwrap();
        assert_eq!(stats.chunks_written, 1);
        assert_eq!(stats.bytes_written, CHUNK / 2);
        let mut out = vec![0u8; len as usize];
        region.restore(&mut out).unwrap();
        assert_eq!(out, tail_only);
    }

    #[test]
    fn checkpoint_survives_a_cross_host_handoff_through_a_shared_window() {
        use crate::backend::SharedRegionBackend;
        use cxl::{CoherenceMode, LinkConfig, SharedRegion, Type3Device};

        let device = Arc::new(Type3Device::new(
            "pooled-expander",
            8 * 1024 * 1024,
            LinkConfig::gen5_x16(),
        ));
        let window = Arc::new(
            SharedRegion::new(device, 0, POOL_SIZE, CoherenceMode::SoftwareManaged).unwrap(),
        );

        // Host 0 formats a pool + region inside the shared window, commits
        // two epochs and crashes with a stranded commit record on the third.
        {
            let backend = SharedRegionBackend::new(Arc::clone(&window), 0);
            let pool = PmemPool::create_with_backend(Arc::new(backend), "xhost").unwrap();
            let mut region = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
            pool.set_root(region.oid(), DATA).unwrap();
            region.checkpoint(&image(1)).unwrap();
            region.checkpoint(&image(2)).unwrap();
            window.publish(0).unwrap();
            region.set_crash(Some(CheckpointCrash {
                phase: CheckpointPhase::Commit,
                point: CrashPoint::BeforeCommit,
            }));
            assert!(region
                .checkpoint(&image(3))
                .unwrap_err()
                .is_injected_crash());
        }

        // Host 1 attaches the same window with its *own* pool handle: open
        // recovery rolls the torn epoch-3 commit back and epoch 2 restores
        // bit-exact.
        let backend = SharedRegionBackend::new(Arc::clone(&window), 1);
        window.acquire(1).unwrap();
        let pool = PmemPool::open_with_backend(Arc::new(backend), "xhost").unwrap();
        let region = CheckpointRegion::open_root(&pool).unwrap();
        assert_eq!(region.committed_epoch(), 2);
        let mut out = vec![0u8; DATA as usize];
        region.restore(&mut out).unwrap();
        assert_eq!(out, image(2));
        // Both hosts' traffic went through the one shared window.
        assert!(window.stats(0).unwrap().bytes_written > 0);
        assert!(window.stats(1).unwrap().bytes_read > 0);
    }

    #[test]
    fn two_regions_coexist_in_one_pool() {
        let (_, pool) = pool_pair();
        let mut a = CheckpointRegion::format(&pool, DATA, CHUNK).unwrap();
        let mut b = CheckpointRegion::format(&pool, CHUNK, CHUNK).unwrap();
        let small = vec![0x55u8; CHUNK as usize];
        a.checkpoint(&image(1)).unwrap();
        b.checkpoint(&small).unwrap();
        a.checkpoint(&image(2)).unwrap();
        let mut out_a = vec![0u8; DATA as usize];
        let mut out_b = vec![0u8; CHUNK as usize];
        assert_eq!(a.restore(&mut out_a).unwrap(), 2);
        assert_eq!(b.restore(&mut out_b).unwrap(), 1);
        assert_eq!(out_a, image(2));
        assert_eq!(out_b, small);
    }
}
