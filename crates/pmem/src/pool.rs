//! Persistent memory pools — the `pmemobj_create` / `pmemobj_open` equivalent.
//!
//! A pool is a fixed-size region (a file on a DAX filesystem, a battery-backed
//! buffer, or a CXL expander region) with:
//!
//! * a checksummed **header** carrying a magic number, a UUID and the layout
//!   name (Listing 2 of the paper opens the pool with `LAYOUT_NAME` and falls
//!   back from `pmemobj_create` to `pmemobj_open`),
//! * a **root object** slot (`pmemobj_root`),
//! * an **undo-log area** used by transactions,
//! * a **persistent heap** serving `POBJ_ALLOC`-style allocations.

use crate::alloc::{AllocStats, PersistentHeap};
use crate::backend::{FileBackend, SharedBackend, VolatileBackend};
use crate::error::PmemError;
use crate::oid::PmemOid;
use crate::persist::{PersistStats, PersistTracker};
use crate::tx::{CrashPoint, Transaction, TxLog};
use crate::Result;
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;

/// Pool format magic number ("CXLPMEM1").
pub const POOL_MAGIC: u64 = 0x4358_4C50_4D45_4D31;
/// Pool format version.
pub const POOL_VERSION: u32 = 1;
/// Size reserved for the pool header.
pub const HEADER_SIZE: u64 = 4096;
/// Size reserved for the transaction undo log.
pub const LOG_SIZE: u64 = 256 * 1024;
/// Minimum pool size.
pub const MIN_POOL_SIZE: u64 = HEADER_SIZE + LOG_SIZE + 64 * 1024;
/// Maximum length of a layout name.
pub const MAX_LAYOUT: usize = 64;

/// Creation-time configuration of a pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Layout name — must match on open, exactly like PMDK's `LAYOUT_NAME`.
    pub layout: String,
    /// Total pool size in bytes (only used when the backend is created by us).
    pub size: u64,
}

impl PoolConfig {
    /// A config with the given layout and size.
    pub fn new(layout: impl Into<String>, size: u64) -> Self {
        PoolConfig {
            layout: layout.into(),
            size,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Header {
    magic: u64,
    version: u32,
    uuid: u64,
    pool_size: u64,
    layout: String,
    root_offset: u64,
    root_len: u64,
    heap_start: u64,
    heap_end: u64,
    log_start: u64,
    log_end: u64,
}

impl Header {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_SIZE as usize);
        out.extend_from_slice(&self.magic.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // padding
        out.extend_from_slice(&self.uuid.to_le_bytes());
        out.extend_from_slice(&self.pool_size.to_le_bytes());
        let mut layout_bytes = [0u8; MAX_LAYOUT];
        let src = self.layout.as_bytes();
        layout_bytes[..src.len().min(MAX_LAYOUT)]
            .copy_from_slice(&src[..src.len().min(MAX_LAYOUT)]);
        out.extend_from_slice(&layout_bytes);
        out.extend_from_slice(&self.root_offset.to_le_bytes());
        out.extend_from_slice(&self.root_len.to_le_bytes());
        out.extend_from_slice(&self.heap_start.to_le_bytes());
        out.extend_from_slice(&self.heap_end.to_le_bytes());
        out.extend_from_slice(&self.log_start.to_le_bytes());
        out.extend_from_slice(&self.log_end.to_le_bytes());
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        // Fixed offsets matching `to_bytes`.
        let read_u64 = |at: usize| -> u64 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(buf)
        };
        let read_u32 = |at: usize| -> u32 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[at..at + 4]);
            u32::from_le_bytes(buf)
        };
        let magic = read_u64(0);
        if magic != POOL_MAGIC {
            return Err(PmemError::BadMagic);
        }
        let body_len = 8 + 4 + 4 + 8 + 8 + MAX_LAYOUT + 8 * 6;
        let stored_checksum = read_u64(body_len);
        if fnv1a(&bytes[..body_len]) != stored_checksum {
            return Err(PmemError::BadChecksum);
        }
        let layout_raw = &bytes[32..32 + MAX_LAYOUT];
        let layout_end = layout_raw
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(MAX_LAYOUT);
        let layout = String::from_utf8_lossy(&layout_raw[..layout_end]).to_string();
        let tail = 32 + MAX_LAYOUT;
        Ok(Header {
            magic,
            version: read_u32(8),
            uuid: read_u64(16),
            pool_size: read_u64(24),
            layout,
            root_offset: read_u64(tail),
            root_len: read_u64(tail + 8),
            heap_start: read_u64(tail + 16),
            heap_end: read_u64(tail + 24),
            log_start: read_u64(tail + 32),
            log_end: read_u64(tail + 40),
        })
    }
}

/// FNV-1a hash used for the header checksum, the checkpoint module's
/// slot-header checksums and chunk content hashes, and the tiering engine's
/// chunk-conservation hashes — one definition for every on-pool content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// A persistent memory pool.
pub struct PmemPool {
    backend: SharedBackend,
    tracker: Arc<PersistTracker>,
    header: Mutex<Header>,
    heap: PersistentHeap,
    log: TxLog,
    tx_lock: Mutex<()>,
    crash_point: Mutex<Option<CrashPoint>>,
}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemPool")
            .field("layout", &self.layout())
            .field("uuid", &self.uuid())
            .field("capacity", &self.capacity())
            .field("backend", &self.backend.describe())
            .finish()
    }
}

impl PmemPool {
    // ------------------------------------------------------------------ create

    /// Creates a pool on a caller-provided backend (CXL endpoint region,
    /// battery-backed buffer, ...).
    pub fn create_with_backend(backend: SharedBackend, layout: &str) -> Result<Self> {
        let size = backend.capacity();
        if size < MIN_POOL_SIZE {
            return Err(PmemError::PoolTooSmall {
                bytes: size,
                minimum: MIN_POOL_SIZE,
            });
        }
        let tracker = Arc::new(PersistTracker::new());
        let header = Header {
            magic: POOL_MAGIC,
            version: POOL_VERSION,
            uuid: derive_uuid(layout, size),
            pool_size: size,
            layout: layout.chars().take(MAX_LAYOUT).collect(),
            root_offset: 0,
            root_len: 0,
            heap_start: HEADER_SIZE + LOG_SIZE,
            heap_end: size,
            log_start: HEADER_SIZE,
            log_end: HEADER_SIZE + LOG_SIZE,
        };
        let heap = PersistentHeap::new(
            Arc::clone(&backend),
            Arc::clone(&tracker),
            header.heap_start,
            header.heap_end,
        );
        heap.format()?;
        let log = TxLog::new(
            Arc::clone(&backend),
            Arc::clone(&tracker),
            header.log_start,
            header.log_end,
        );
        log.format()?;
        let pool = PmemPool {
            backend,
            tracker,
            header: Mutex::new(header),
            heap,
            log,
            tx_lock: Mutex::new(()),
            crash_point: Mutex::new(None),
        };
        pool.write_header()?;
        Ok(pool)
    }

    /// Opens an existing pool from a backend, validating the header and
    /// running transaction recovery.
    pub fn open_with_backend(backend: SharedBackend, layout: &str) -> Result<Self> {
        let mut header_bytes = vec![0u8; HEADER_SIZE as usize];
        backend.read_at(0, &mut header_bytes)?;
        let header = Header::from_bytes(&header_bytes)?;
        if header.layout != layout {
            return Err(PmemError::LayoutMismatch {
                found: header.layout,
                expected: layout.to_string(),
            });
        }
        let tracker = Arc::new(PersistTracker::new());
        let heap = PersistentHeap::new(
            Arc::clone(&backend),
            Arc::clone(&tracker),
            header.heap_start,
            header.heap_end,
        );
        let log = TxLog::new(
            Arc::clone(&backend),
            Arc::clone(&tracker),
            header.log_start,
            header.log_end,
        );
        // Recovery: roll back any transaction that did not commit.
        log.recover()?;
        heap.validate()?;
        Ok(PmemPool {
            backend,
            tracker,
            header: Mutex::new(header),
            heap,
            log,
            tx_lock: Mutex::new(()),
            crash_point: Mutex::new(None),
        })
    }

    /// Creates a pool backed by a file (the `/mnt/pmemN/pool.obj` case).
    pub fn create_file(path: impl AsRef<Path>, layout: &str, size: u64) -> Result<Self> {
        let backend: SharedBackend = Arc::new(FileBackend::create(path, size)?);
        Self::create_with_backend(backend, layout)
    }

    /// Opens a pool from an existing file.
    pub fn open_file(path: impl AsRef<Path>, layout: &str) -> Result<Self> {
        let backend: SharedBackend = Arc::new(FileBackend::open(path)?);
        Self::open_with_backend(backend, layout)
    }

    /// Creates (or opens if it already exists and is a valid pool) a file pool —
    /// the exact fallback sequence of Listing 2 in the paper.
    pub fn create_or_open_file(path: impl AsRef<Path>, layout: &str, size: u64) -> Result<Self> {
        let path = path.as_ref();
        if path.exists() {
            Self::open_file(path, layout)
        } else {
            Self::create_file(path, layout, size)
        }
    }

    /// Creates an in-memory pool (useful for tests and volatile Memory-Mode
    /// style usage).
    pub fn create_volatile(layout: &str, size: u64) -> Result<Self> {
        let backend: SharedBackend = Arc::new(VolatileBackend::new_persistent(size));
        Self::create_with_backend(backend, layout)
    }

    fn write_header(&self) -> Result<()> {
        let header = self.header.lock();
        let bytes = header.to_bytes();
        self.backend.write_at(0, &bytes)?;
        self.tracker.persist(&self.backend, 0, bytes.len() as u64)?;
        Ok(())
    }

    // ------------------------------------------------------------------ info

    /// The pool's UUID.
    pub fn uuid(&self) -> u64 {
        self.header.lock().uuid
    }

    /// The layout name the pool was created with.
    pub fn layout(&self) -> String {
        self.header.lock().layout.clone()
    }

    /// Total pool size in bytes.
    pub fn capacity(&self) -> u64 {
        self.header.lock().pool_size
    }

    /// Whether the backing store is persistent.
    pub fn is_persistent(&self) -> bool {
        self.backend.is_persistent()
    }

    /// A description of where the pool lives.
    pub fn describe(&self) -> String {
        self.backend.describe()
    }

    /// Heap statistics.
    pub fn alloc_stats(&self) -> Result<AllocStats> {
        self.heap.stats()
    }

    /// Persist (flush/drain) statistics.
    pub fn persist_stats(&self) -> PersistStats {
        self.tracker.stats()
    }

    /// The shared backend (used by the runtime for traffic accounting).
    pub fn backend(&self) -> SharedBackend {
        Arc::clone(&self.backend)
    }

    // ------------------------------------------------------------------ objects

    /// Allocates `bytes` from the persistent heap (`POBJ_ALLOC` equivalent).
    pub fn alloc_bytes(&self, bytes: u64) -> Result<PmemOid> {
        let offset = self.heap.alloc(bytes)?;
        Ok(PmemOid::new(self.uuid(), offset))
    }

    /// Frees an object (`POBJ_FREE` equivalent).
    pub fn free(&self, oid: PmemOid) -> Result<()> {
        self.check_oid(oid)?;
        self.heap.free(oid.offset)
    }

    /// Usable payload size of an allocated object.
    pub fn usable_size(&self, oid: PmemOid) -> Result<u64> {
        self.check_oid(oid)?;
        self.heap.usable_size(oid.offset)
    }

    fn check_oid(&self, oid: PmemOid) -> Result<()> {
        if oid.is_null() || oid.pool_uuid != self.uuid() {
            return Err(PmemError::InvalidOid);
        }
        Ok(())
    }

    /// Reads raw bytes at a pool offset.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.backend.read_at(offset, buf)
    }

    /// Writes raw bytes at a pool offset (non-transactional).
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.backend.write_at(offset, data)
    }

    /// Makes a byte range durable (`pmem_persist` equivalent).
    pub fn persist(&self, offset: u64, len: u64) -> Result<()> {
        self.tracker.persist(&self.backend, offset, len)
    }

    /// Flushes a byte range without the trailing fence (`pmem_flush`
    /// equivalent). Callers batching several ranges issue one flush per range
    /// and a single [`drain`](Self::drain) at the end — the chunk-granularity
    /// persist pattern the STREAM-PMem hot path uses.
    pub fn flush(&self, offset: u64, len: u64) -> Result<()> {
        self.tracker.flush(&self.backend, offset, len)
    }

    /// Store fence draining all previously flushed ranges (`pmem_drain`
    /// equivalent).
    pub fn drain(&self) {
        self.tracker.drain();
    }

    // ------------------------------------------------------------------ root

    /// Sets the root object (`pmemobj_root` equivalent): records which
    /// allocation the application treats as its entry point.
    pub fn set_root(&self, oid: PmemOid, len: u64) -> Result<()> {
        self.check_oid(oid)?;
        {
            let mut header = self.header.lock();
            header.root_offset = oid.offset;
            header.root_len = len;
        }
        self.write_header()
    }

    /// The root object, if one has been set.
    pub fn root(&self) -> Option<(PmemOid, u64)> {
        let header = self.header.lock();
        if header.root_offset == 0 {
            None
        } else {
            Some((
                PmemOid::new(header.uuid, header.root_offset),
                header.root_len,
            ))
        }
    }

    // ------------------------------------------------------------------ tx

    /// Arms a crash-injection point for the *next* transaction (test harness).
    pub fn set_crash_point(&self, point: Option<CrashPoint>) {
        *self.crash_point.lock() = point;
    }

    /// Runs `body` inside a transaction. All ranges registered with
    /// [`Transaction::add_range`] (and all writes made through
    /// [`Transaction::write`]) are rolled back if `body` returns an error, if
    /// it panics, or if the process crashes before commit.
    pub fn run_tx<T>(&self, body: impl FnOnce(&mut Transaction<'_>) -> Result<T>) -> Result<T> {
        let _guard = self.tx_lock.lock();
        let crash = self.crash_point.lock().take();
        let mut tx = Transaction::begin(&self.backend, &self.tracker, &self.log, crash)?;
        match body(&mut tx) {
            Ok(value) => {
                tx.commit()?;
                Ok(value)
            }
            Err(e) => {
                // An injected crash leaves state exactly as it is — the test
                // then reopens the pool and relies on recovery.
                if !e.is_injected_crash() {
                    tx.abort()?;
                }
                Err(e)
            }
        }
    }

    /// Runs transaction recovery explicitly (normally done by
    /// [`open_with_backend`](Self::open_with_backend)). Returns `true` if an
    /// interrupted transaction was rolled back.
    ///
    /// An armed [`CrashPoint::DuringRecovery`] (see
    /// [`set_crash_point`](Self::set_crash_point)) is consumed here and makes
    /// the pass die mid-replay with the log still active — the crash matrix
    /// uses this to prove recovery is idempotent. Crash points targeting
    /// transaction sites stay armed for the next transaction.
    pub fn recover(&self) -> Result<bool> {
        let crash = {
            let mut armed = self.crash_point.lock();
            if *armed == Some(CrashPoint::DuringRecovery) {
                armed.take()
            } else {
                None
            }
        };
        self.log.recover_with(crash)
    }

    /// Whether an interrupted transaction's undo log is still active (i.e.
    /// recovery has work to do). After a successful recovery this is `false`.
    pub fn tx_log_active(&self) -> Result<bool> {
        self.log.is_active()
    }
}

fn derive_uuid(layout: &str, size: u64) -> u64 {
    // Deterministic UUID: good enough for tests and reproducible runs, while
    // still distinguishing pools of different layouts/sizes.
    let mut bytes = layout.as_bytes().to_vec();
    bytes.extend_from_slice(&size.to_le_bytes());
    bytes.extend_from_slice(&std::process::id().to_le_bytes());
    fnv1a(&bytes) | 1 // never zero
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PoolBackend;

    const POOL_SIZE: u64 = 2 * 1024 * 1024;

    fn volatile_pool() -> (VolatileBackend, PmemPool) {
        let backend = VolatileBackend::new_persistent(POOL_SIZE);
        let shared: SharedBackend = Arc::new(backend.clone());
        let pool = PmemPool::create_with_backend(shared, "stream").unwrap();
        (backend, pool)
    }

    #[test]
    fn create_sets_header_and_heap() {
        let (_, pool) = volatile_pool();
        assert_eq!(pool.layout(), "stream");
        assert_eq!(pool.capacity(), POOL_SIZE);
        assert!(pool.uuid() != 0);
        assert!(pool.is_persistent());
        let stats = pool.alloc_stats().unwrap();
        assert_eq!(stats.allocated_blocks, 0);
        assert!(stats.free > POOL_SIZE / 2);
    }

    #[test]
    fn too_small_backend_is_rejected() {
        let backend: SharedBackend = Arc::new(VolatileBackend::new(1024));
        assert!(matches!(
            PmemPool::create_with_backend(backend, "x").unwrap_err(),
            PmemError::PoolTooSmall { .. }
        ));
    }

    #[test]
    fn alloc_write_read_free() {
        let (_, pool) = volatile_pool();
        let oid = pool.alloc_bytes(1000).unwrap();
        assert!(pool.usable_size(oid).unwrap() >= 1000);
        pool.write(oid.offset, b"persistent payload").unwrap();
        pool.persist(oid.offset, 18).unwrap();
        let mut buf = [0u8; 18];
        pool.read(oid.offset, &mut buf).unwrap();
        assert_eq!(&buf, b"persistent payload");
        pool.free(oid).unwrap();
        assert!(pool.free(oid).is_err());
    }

    #[test]
    fn foreign_and_null_oids_are_rejected() {
        let (_, pool) = volatile_pool();
        assert!(pool.free(PmemOid::NULL).is_err());
        assert!(pool.free(PmemOid::new(12345, 8192)).is_err());
        assert!(pool.usable_size(PmemOid::new(12345, 8192)).is_err());
    }

    #[test]
    fn reopen_preserves_objects_and_root() {
        let (backend, pool) = volatile_pool();
        let oid = pool.alloc_bytes(256).unwrap();
        pool.write(oid.offset, b"root object state").unwrap();
        pool.persist(oid.offset, 17).unwrap();
        pool.set_root(oid, 256).unwrap();
        let uuid = pool.uuid();
        drop(pool);

        let shared: SharedBackend = Arc::new(backend);
        let reopened = PmemPool::open_with_backend(shared, "stream").unwrap();
        assert_eq!(reopened.uuid(), uuid);
        let (root, len) = reopened.root().unwrap();
        assert_eq!(len, 256);
        let mut buf = [0u8; 17];
        reopened.read(root.offset, &mut buf).unwrap();
        assert_eq!(&buf, b"root object state");
        // Heap still knows about the allocation.
        assert_eq!(reopened.alloc_stats().unwrap().allocated_blocks, 1);
    }

    #[test]
    fn open_with_wrong_layout_fails() {
        let (backend, pool) = volatile_pool();
        drop(pool);
        let shared: SharedBackend = Arc::new(backend);
        assert!(matches!(
            PmemPool::open_with_backend(shared, "different").unwrap_err(),
            PmemError::LayoutMismatch { .. }
        ));
    }

    #[test]
    fn open_of_garbage_fails_cleanly() {
        let backend = VolatileBackend::new(POOL_SIZE);
        backend.write_at(0, &[0xAB; 128]).unwrap();
        let shared: SharedBackend = Arc::new(backend);
        assert!(matches!(
            PmemPool::open_with_backend(shared, "stream").unwrap_err(),
            PmemError::BadMagic
        ));
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let (backend, pool) = volatile_pool();
        drop(pool);
        // Flip a byte in the layout field (offset 40) without fixing the checksum.
        backend.write_at(40, &[0xFF]).unwrap();
        let shared: SharedBackend = Arc::new(backend);
        assert!(matches!(
            PmemPool::open_with_backend(shared, "stream").unwrap_err(),
            PmemError::BadChecksum
        ));
    }

    #[test]
    fn file_pool_create_or_open_round_trip() {
        let dir = std::env::temp_dir().join(format!("pmem-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.obj");
        let _ = std::fs::remove_file(&path);
        {
            let pool = PmemPool::create_or_open_file(&path, "array", POOL_SIZE).unwrap();
            let oid = pool.alloc_bytes(128).unwrap();
            pool.write(oid.offset, b"on disk").unwrap();
            pool.persist(oid.offset, 7).unwrap();
            pool.set_root(oid, 128).unwrap();
        }
        {
            // Second call takes the `pmemobj_open` branch of Listing 2.
            let pool = PmemPool::create_or_open_file(&path, "array", POOL_SIZE).unwrap();
            let (root, _) = pool.root().unwrap();
            let mut buf = [0u8; 7];
            pool.read(root.offset, &mut buf).unwrap();
            assert_eq!(&buf, b"on disk");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn volatile_pool_constructor_works() {
        let pool = PmemPool::create_volatile("scratch", POOL_SIZE).unwrap();
        let oid = pool.alloc_bytes(64).unwrap();
        assert!(!oid.is_null());
    }

    #[test]
    fn persist_stats_accumulate() {
        let (_, pool) = volatile_pool();
        let before = pool.persist_stats();
        let oid = pool.alloc_bytes(64).unwrap();
        pool.write(oid.offset, &[1u8; 64]).unwrap();
        pool.persist(oid.offset, 64).unwrap();
        let after = pool.persist_stats();
        assert!(after.flushes > before.flushes);
        assert!(after.bytes_persisted > before.bytes_persisted);
    }
}
