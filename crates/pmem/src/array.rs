//! Typed persistent arrays — the STREAM-PMem `a`, `b`, `c` vectors.
//!
//! Listing 2 of the paper replaces STREAM's three static arrays with
//! `POBJ_ALLOC`ed arrays of `double`. [`PersistentArray`] provides the same
//! facility: an array of a fixed-width scalar type living entirely inside a
//! pool, with element accessors, bulk slice transfers (what the kernels use)
//! and explicit persist calls.

use crate::error::PmemError;
use crate::oid::TypedOid;
use crate::pool::PmemPool;
use crate::Result;

/// Scalar element types that can live in a persistent array.
///
/// The trait is deliberately small: fixed size, little-endian byte conversion.
pub trait PmemScalar: Copy + Default + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Size of the scalar in bytes.
    const SIZE: usize;
    /// Encodes the value into `out` (little endian).
    fn write_le(&self, out: &mut [u8]);
    /// Decodes a value from `bytes` (little endian).
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_pmem_scalar {
    ($($ty:ty),*) => {
        $(
            impl PmemScalar for $ty {
                const SIZE: usize = std::mem::size_of::<$ty>();
                fn write_le(&self, out: &mut [u8]) {
                    out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
                }
                fn read_le(bytes: &[u8]) -> Self {
                    let mut buf = [0u8; std::mem::size_of::<$ty>()];
                    buf.copy_from_slice(&bytes[..Self::SIZE]);
                    <$ty>::from_le_bytes(buf)
                }
            }
        )*
    };
}

impl_pmem_scalar!(f64, f32, u64, u32, i64, i32);

/// A typed array allocated inside a pool.
pub struct PersistentArray<'p, T: PmemScalar> {
    pool: &'p PmemPool,
    oid: TypedOid<T>,
}

impl<'p, T: PmemScalar> PersistentArray<'p, T> {
    /// Allocates an array of `len` elements (`POBJ_ALLOC` equivalent). The
    /// contents start zeroed (all-default).
    pub fn allocate(pool: &'p PmemPool, len: u64) -> Result<Self> {
        let bytes = len
            .checked_mul(T::SIZE as u64)
            .ok_or(PmemError::SizeOverflow)?;
        let oid = pool.alloc_bytes(bytes.max(T::SIZE as u64))?;
        Ok(PersistentArray {
            pool,
            oid: TypedOid::new(oid, len),
        })
    }

    /// Re-attaches to an existing allocation (after reopening a pool).
    pub fn from_oid(pool: &'p PmemPool, oid: TypedOid<T>) -> Self {
        PersistentArray { pool, oid }
    }

    /// The typed oid, to be stored in the pool root for later reattachment.
    pub fn typed_oid(&self) -> TypedOid<T> {
        self.oid
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.oid.len()
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.oid.is_empty()
    }

    /// Total payload size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.len() * T::SIZE as u64
    }

    fn offset_of(&self, index: u64) -> Result<u64> {
        self.oid
            .element_offset(index, T::SIZE as u64)
            .ok_or(PmemError::OutOfBounds {
                offset: index,
                len: T::SIZE as u64,
                pool_size: self.len(),
            })
    }

    /// Reads element `index`.
    pub fn get(&self, index: u64) -> Result<T> {
        let offset = self.offset_of(index)?;
        let mut buf = vec![0u8; T::SIZE];
        self.pool.read(offset, &mut buf)?;
        Ok(T::read_le(&buf))
    }

    /// Writes element `index` (non-transactional; call [`persist`](Self::persist)
    /// or wrap in a pool transaction for durability/atomicity).
    pub fn set(&self, index: u64, value: T) -> Result<()> {
        let offset = self.offset_of(index)?;
        let mut buf = vec![0u8; T::SIZE];
        value.write_le(&mut buf);
        self.pool.write(offset, &buf)
    }

    /// Fills the whole array with `value`.
    pub fn fill(&self, value: T) -> Result<()> {
        // Chunked fill: keeps buffers modest for very large arrays.
        const CHUNK_ELEMS: u64 = 64 * 1024;
        let mut template = vec![0u8; (CHUNK_ELEMS as usize) * T::SIZE];
        for i in 0..CHUNK_ELEMS as usize {
            value.write_le(&mut template[i * T::SIZE..]);
        }
        let mut written = 0u64;
        while written < self.len() {
            let n = CHUNK_ELEMS.min(self.len() - written);
            let offset = self.offset_of(written)?;
            self.pool
                .write(offset, &template[..(n as usize) * T::SIZE])?;
            written += n;
        }
        Ok(())
    }

    /// Reads elements `[start, start + out.len())` into `out`.
    pub fn load_slice(&self, start: u64, out: &mut [T]) -> Result<()> {
        if out.is_empty() {
            return Ok(());
        }
        let last = start + out.len() as u64 - 1;
        self.offset_of(last)?; // bounds check
        let offset = self.offset_of(start)?;
        let mut buf = vec![0u8; out.len() * T::SIZE];
        self.pool.read(offset, &mut buf)?;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = T::read_le(&buf[i * T::SIZE..]);
        }
        Ok(())
    }

    /// Reads the whole array into a freshly allocated vector.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let mut out = vec![T::default(); self.len() as usize];
        self.load_slice(0, &mut out)?;
        Ok(out)
    }

    /// Writes `values` starting at element `start`.
    pub fn store_slice(&self, start: u64, values: &[T]) -> Result<()> {
        if values.is_empty() {
            return Ok(());
        }
        let last = start + values.len() as u64 - 1;
        self.offset_of(last)?; // bounds check
        let offset = self.offset_of(start)?;
        let mut buf = vec![0u8; values.len() * T::SIZE];
        for (i, value) in values.iter().enumerate() {
            value.write_le(&mut buf[i * T::SIZE..]);
        }
        self.pool.write(offset, &buf)
    }

    /// Makes the element range `[start, start+len)` durable.
    pub fn persist(&self, start: u64, len: u64) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let offset = self.offset_of(start)?;
        self.pool.persist(offset, len * T::SIZE as u64)
    }

    /// Flushes the element range `[start, start+len)` without a fence
    /// (`pmem_flush`). Pair with [`PmemPool::drain`] after batching all
    /// chunks of an update — one fence then covers every flushed range.
    pub fn flush(&self, start: u64, len: u64) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let offset = self.offset_of(start)?;
        self.pool.flush(offset, len * T::SIZE as u64)
    }

    /// Makes the whole array durable.
    pub fn persist_all(&self) -> Result<()> {
        self.persist(0, self.len())
    }

    /// Transactionally updates the element range `[start, start + values.len())`:
    /// either every element is updated and durable, or none are.
    pub fn store_slice_tx(&self, start: u64, values: &[T]) -> Result<()> {
        if values.is_empty() {
            return Ok(());
        }
        let last = start + values.len() as u64 - 1;
        self.offset_of(last)?;
        let offset = self.offset_of(start)?;
        let mut buf = vec![0u8; values.len() * T::SIZE];
        for (i, value) in values.iter().enumerate() {
            value.write_le(&mut buf[i * T::SIZE..]);
        }
        self.pool.run_tx(|tx| tx.write(offset, &buf))
    }

    /// Frees the array's allocation. Consumes the handle.
    pub fn free(self) -> Result<()> {
        self.pool.free(self.oid.oid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SharedBackend, VolatileBackend};
    use crate::tx::CrashPoint;
    use proptest::prelude::*;
    use std::sync::Arc;

    const POOL_SIZE: u64 = 4 * 1024 * 1024;

    fn pool() -> PmemPool {
        PmemPool::create_volatile("array", POOL_SIZE).unwrap()
    }

    #[test]
    fn allocate_zeroed_and_set_get() {
        let pool = pool();
        let array = PersistentArray::<f64>::allocate(&pool, 1000).unwrap();
        assert_eq!(array.len(), 1000);
        assert_eq!(array.byte_len(), 8000);
        assert_eq!(array.get(0).unwrap(), 0.0);
        array.set(500, 3.5).unwrap();
        assert_eq!(array.get(500).unwrap(), 3.5);
        assert!(array.get(1000).is_err());
        assert!(array.set(1000, 1.0).is_err());
    }

    #[test]
    fn fill_sets_every_element() {
        let pool = pool();
        let array = PersistentArray::<f64>::allocate(&pool, 10_000).unwrap();
        array.fill(2.0).unwrap();
        assert_eq!(array.get(0).unwrap(), 2.0);
        assert_eq!(array.get(9_999).unwrap(), 2.0);
        assert_eq!(array.get(5_000).unwrap(), 2.0);
    }

    #[test]
    fn slice_round_trip() {
        let pool = pool();
        let array = PersistentArray::<u64>::allocate(&pool, 256).unwrap();
        let values: Vec<u64> = (0..100).collect();
        array.store_slice(50, &values).unwrap();
        let mut back = vec![0u64; 100];
        array.load_slice(50, &mut back).unwrap();
        assert_eq!(back, values);
        let all = array.to_vec().unwrap();
        assert_eq!(all.len(), 256);
        assert_eq!(&all[50..150], &values[..]);
        // Out-of-range slices are rejected.
        assert!(array.store_slice(200, &values).is_err());
        let mut too_big = vec![0u64; 300];
        assert!(array.load_slice(0, &mut too_big).is_err());
        // Empty slices are no-ops.
        array.store_slice(0, &[]).unwrap();
        array.load_slice(0, &mut []).unwrap();
    }

    #[test]
    fn persist_ranges_and_stats() {
        let pool = pool();
        let array = PersistentArray::<f64>::allocate(&pool, 128).unwrap();
        array.store_slice(0, &[1.0; 128]).unwrap();
        let before = pool.persist_stats();
        array.persist(0, 64).unwrap();
        array.persist_all().unwrap();
        array.persist(0, 0).unwrap();
        let after = pool.persist_stats();
        assert!(after.bytes_persisted >= before.bytes_persisted + 64 * 8 + 128 * 8);
    }

    #[test]
    fn reattach_after_reopen() {
        let backend = VolatileBackend::new_persistent(POOL_SIZE);
        let shared: SharedBackend = Arc::new(backend.clone());
        let pool1 = PmemPool::create_with_backend(shared, "array").unwrap();
        let oid = {
            let array = PersistentArray::<f64>::allocate(&pool1, 64).unwrap();
            array.store_slice(0, &[42.0; 64]).unwrap();
            array.persist_all().unwrap();
            array.typed_oid()
        };
        pool1.set_root(oid.oid(), oid.len()).unwrap();
        drop(pool1);

        let shared2: SharedBackend = Arc::new(backend);
        let pool2 = PmemPool::open_with_backend(shared2, "array").unwrap();
        let (root, len) = pool2.root().unwrap();
        let array = PersistentArray::<f64>::from_oid(&pool2, TypedOid::new(root, len));
        assert_eq!(array.get(63).unwrap(), 42.0);
    }

    #[test]
    fn transactional_store_rolls_back_on_crash() {
        let backend = VolatileBackend::new_persistent(POOL_SIZE);
        let shared: SharedBackend = Arc::new(backend.clone());
        let pool1 = PmemPool::create_with_backend(shared, "array").unwrap();
        let array = PersistentArray::<u64>::allocate(&pool1, 64).unwrap();
        array.store_slice(0, &[7u64; 64]).unwrap();
        array.persist_all().unwrap();
        let oid = array.typed_oid();
        pool1.set_root(oid.oid(), oid.len()).unwrap();

        pool1.set_crash_point(Some(CrashPoint::BeforeCommit));
        assert!(array.store_slice_tx(0, &[9u64; 64]).is_err());
        drop(pool1);

        let shared2: SharedBackend = Arc::new(backend);
        let pool2 = PmemPool::open_with_backend(shared2, "array").unwrap();
        let (root, len) = pool2.root().unwrap();
        let array = PersistentArray::<u64>::from_oid(&pool2, TypedOid::new(root, len));
        let mut values = vec![0u64; 64];
        array.load_slice(0, &mut values).unwrap();
        assert!(values.iter().all(|&v| v == 7), "rollback must restore 7s");
        // A committed transaction sticks.
        array.store_slice_tx(0, &[9u64; 64]).unwrap();
        array.load_slice(0, &mut values).unwrap();
        assert!(values.iter().all(|&v| v == 9));
    }

    #[test]
    fn free_releases_heap_space() {
        let pool = pool();
        let before = pool.alloc_stats().unwrap();
        let array = PersistentArray::<f64>::allocate(&pool, 1024).unwrap();
        assert!(pool.alloc_stats().unwrap().allocated > before.allocated);
        array.free().unwrap();
        assert_eq!(pool.alloc_stats().unwrap().allocated, before.allocated);
    }

    #[test]
    fn different_scalar_types_coexist() {
        let pool = pool();
        let doubles = PersistentArray::<f64>::allocate(&pool, 16).unwrap();
        let ints = PersistentArray::<i32>::allocate(&pool, 16).unwrap();
        doubles.set(0, 1.5).unwrap();
        ints.set(0, -7).unwrap();
        assert_eq!(doubles.get(0).unwrap(), 1.5);
        assert_eq!(ints.get(0).unwrap(), -7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_store_load_round_trip(values in proptest::collection::vec(any::<f64>(), 1..200),
                                      start in 0u64..100) {
            let pool = pool();
            let array = PersistentArray::<f64>::allocate(&pool, 400).unwrap();
            array.store_slice(start, &values).unwrap();
            let mut back = vec![0.0f64; values.len()];
            array.load_slice(start, &mut back).unwrap();
            for (a, b) in values.iter().zip(back.iter()) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }

        #[test]
        fn prop_scalar_encoding_round_trips(v in any::<f64>(), w in any::<u64>(), x in any::<i32>()) {
            let mut buf = [0u8; 8];
            v.write_le(&mut buf);
            prop_assert_eq!(f64::read_le(&buf).to_bits(), v.to_bits());
            w.write_le(&mut buf);
            prop_assert_eq!(u64::read_le(&buf), w);
            let mut buf4 = [0u8; 4];
            x.write_le(&mut buf4);
            prop_assert_eq!(i32::read_le(&buf4), x);
        }
    }
}
