//! Versioned transactional object store: a durable directory of small,
//! epoch-versioned objects inside one pool allocation.
//!
//! The [`crate::checkpoint`] module versions one *region*; this module
//! versions millions of *objects* with the same discipline, so a shared far
//! memory segment can serve KV-style traffic instead of bulk snapshots. Every
//! object gets two payload slots (double buffering, committed slot =
//! `epoch % 2`) and one 40-byte directory entry that acts as its commit
//! record. Entry updates ride the pool's undo log, so a torn commit rolls
//! back to the previous version on recovery; payload bytes are drained
//! *before* the entry transaction, so the version named by a committed entry
//! is always bit-exact.
//!
//! # Layout
//!
//! ```text
//! base ┌──────────────────────────────────────────────────────────────┐
//!      │ store descriptor (64 B)                                      │
//!      │   magic "OBJSTOR1" · version · capacity · value_len          │
//!      │   commit_seq ◄─ undo log   live ◄─ undo log                  │
//!      ├──────────────────────────────────────────────────────────────┤
//!      │ directory: capacity × entry (40 B)                           │
//!      │   tag (id+1, 0 = free) · epoch · len · value_hash · checksum │
//!      ├──────────────────────────────────────────────────────────────┤
//!      │ slots: capacity × 2 × value_len (slot epoch % 2 = committed) │
//!      └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! # Commit protocol (per object)
//!
//! 1. **Slot write** — [`ObjectStore::put`] writes the new payload into the
//!    object's *staging* slot (`(epoch + 1) % 2`) and flushes it. The
//!    committed slot is never touched.
//! 2. **Drain** — [`ObjectStore::commit`] issues one `drain()`, making the
//!    staged payload durable before any commit record can name it.
//! 3. **Entry commit** — the new directory entry (epoch + 1, length, payload
//!    hash, entry checksum) and the descriptor counters are written inside
//!    one undo-log transaction. A crash before the log commit rolls the
//!    entry back; a crash after it leaves the new version fully durable.
//!
//! Readers validate the entry checksum and the payload hash on every
//! [`ObjectStore::get`], so external corruption (or a bug in the protocol)
//! surfaces as a typed error, never as silently torn bytes.
//!
//! Crash injection mirrors the checkpoint pipeline: [`ObjectPhase`] names the
//! commit stage, [`CrashPoint`] the sub-position, and the exhaustive product
//! is exercised by the `object_crash_matrix` integration suite.

use crate::checkpoint::{point_ordinal, PoolRef};
use crate::error::PmemError;
use crate::oid::PmemOid;
use crate::pool::{fnv1a, PmemPool, MIN_POOL_SIZE};
use crate::tx::CrashPoint;
use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// Magic tag of a store descriptor ("OBJSTOR1").
const STORE_MAGIC: u64 = 0x4F42_4A53_544F_5231;
/// On-media format version.
const STORE_VERSION: u32 = 1;
/// Bytes reserved for the store descriptor.
const DESC_SIZE: u64 = 64;
/// Bytes per directory entry.
const ENTRY_SIZE: u64 = 40;
/// Checksummed prefix of a directory entry.
const ENTRY_BODY: usize = 32;
/// Descriptor offset of the commit-sequence counter.
const COMMIT_SEQ_AT: u64 = 32;
/// Descriptor offset of the live-object counter.
const LIVE_AT: u64 = 40;

/// Pipeline stage an [`ObjectCrash`] fires in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectPhase {
    /// While the staged payload is written + flushed into the staging slot.
    /// The [`CrashPoint`] ordinal selects: 0 = before any payload byte,
    /// 1 = after half the payload (torn slot), 2 = after the payload bytes
    /// but before the flush, 3 = after the payload is fully persisted (a
    /// complete but uncommitted version).
    SlotWrite,
    /// Inside the directory-entry transaction — the per-object commit
    /// record. The [`CrashPoint`] is armed on the pool and fires at its
    /// native transaction site ([`CrashPoint::DuringRecovery`] never fires
    /// inside a transaction, so that cell commits cleanly).
    EntryCommit,
    /// During the recovery that follows an interrupted commit: the commit
    /// transaction is crashed at [`CrashPoint::BeforeCommit`] to strand the
    /// undo log, and the [`CrashPoint`] is left armed on the pool so the
    /// next [`PmemPool::recover`] call hits it (only
    /// [`CrashPoint::DuringRecovery`] actually fires there).
    Recovery,
}

impl ObjectPhase {
    /// Every phase, in pipeline order — the crash matrix iterates this.
    pub const ALL: [ObjectPhase; 3] = [
        ObjectPhase::SlotWrite,
        ObjectPhase::EntryCommit,
        ObjectPhase::Recovery,
    ];
}

/// A crash to inject into the *next* put/commit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectCrash {
    /// Pipeline stage the crash fires in.
    pub phase: ObjectPhase,
    /// Sub-position within the stage (see [`ObjectPhase`]).
    pub point: CrashPoint,
}

/// A decoded, validated directory entry for a live object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    epoch: u64,
    len: u64,
    value_hash: u64,
}

impl Entry {
    /// Serialises the entry for object `id`: tag, epoch, length, payload
    /// hash, then an FNV-1a checksum of those 32 bytes.
    fn to_bytes(self, id: u64) -> [u8; ENTRY_SIZE as usize] {
        let mut bytes = [0u8; ENTRY_SIZE as usize];
        bytes[0..8].copy_from_slice(&(id + 1).to_le_bytes());
        bytes[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        bytes[16..24].copy_from_slice(&self.len.to_le_bytes());
        bytes[24..32].copy_from_slice(&self.value_hash.to_le_bytes());
        let checksum = fnv1a(&bytes[..ENTRY_BODY]);
        bytes[32..40].copy_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Decodes an entry. `Ok(None)` = free slot; tag or checksum mismatches
    /// surface as typed errors (the entry is tx-guarded, so a mismatch means
    /// external corruption, not a protocol tear).
    fn from_bytes(bytes: &[u8; ENTRY_SIZE as usize], id: u64) -> Result<Option<Entry>> {
        let word = |at: usize| {
            let mut buf = [0u8; 8];
            // in-bounds: at ∈ {0, 8, 16, 24, 32}; the entry is 40 bytes.
            buf.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(buf)
        };
        let tag = word(0);
        if tag == 0 {
            return Ok(None);
        }
        if word(32) != fnv1a(&bytes[..ENTRY_BODY]) {
            return Err(PmemError::ObjectStore("directory entry checksum mismatch"));
        }
        if tag != id + 1 {
            return Err(PmemError::ObjectStore("directory entry tag mismatch"));
        }
        Ok(Some(Entry {
            epoch: word(8),
            len: word(16),
            value_hash: word(24),
        }))
    }
}

/// A payload staged by [`ObjectStore::put`], waiting for its commit record.
#[derive(Debug, Clone, Copy)]
struct Staged {
    len: u64,
    hash: u64,
    /// Committed epoch the staging observed (0 = none). The staging slot is
    /// `(basis + 1) % 2`; if another handle commits in between, the slot
    /// parity flips and this stage can never be committed.
    basis: u64,
}

/// Point-in-time health counters from a full directory scan
/// ([`ObjectStore::verify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreCheck {
    /// Entries holding a committed version whose payload validated.
    pub live: u64,
    /// Free directory entries.
    pub free: u64,
    /// Highest committed epoch seen across all objects.
    pub max_epoch: u64,
}

/// A versioned transactional object store inside a pool.
///
/// See the [module docs](self) for the layout and the commit protocol.
pub struct ObjectStore<'p> {
    pool: PoolRef<'p>,
    base: u64,
    capacity: u64,
    value_len: u64,
    commit_seq: u64,
    live: u64,
    staged: HashMap<u64, Staged>,
    crash: Option<ObjectCrash>,
}

impl std::fmt::Debug for ObjectStore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("base", &self.base)
            .field("capacity", &self.capacity)
            .field("value_len", &self.value_len)
            .field("commit_seq", &self.commit_seq)
            .field("live", &self.live)
            .finish()
    }
}

impl<'p> ObjectStore<'p> {
    // ---------------------------------------------------------------- sizing

    /// Bytes the store occupies inside a pool: descriptor + directory + two
    /// payload slots per object.
    pub fn region_size(capacity: u64, value_len: u64) -> u64 {
        DESC_SIZE + capacity * ENTRY_SIZE + 2 * capacity * value_len
    }

    /// A pool size comfortably fitting one store of this shape
    /// ([`MIN_POOL_SIZE`] covers the pool header and undo log; the slack
    /// covers heap bookkeeping) — what the cluster's `create_store`
    /// provisions.
    pub fn required_pool_size(capacity: u64, value_len: u64) -> u64 {
        MIN_POOL_SIZE + Self::region_size(capacity, value_len) + 64 * 1024
    }

    // ---------------------------------------------------------------- create

    /// Formats a fresh store for up to `capacity` objects of at most
    /// `value_len` bytes each. Every directory entry starts free.
    pub fn format(pool: &'p PmemPool, capacity: u64, value_len: u64) -> Result<Self> {
        if capacity == 0 || value_len == 0 {
            return Err(PmemError::ObjectStore(
                "capacity and value_len must be non-zero",
            ));
        }
        let dir_len = capacity
            .checked_mul(ENTRY_SIZE)
            .ok_or(PmemError::SizeOverflow)?;
        let slots_len = capacity
            .checked_mul(2 * value_len)
            .ok_or(PmemError::SizeOverflow)?;
        let region = DESC_SIZE
            .checked_add(dir_len)
            .and_then(|n| n.checked_add(slots_len))
            .ok_or(PmemError::SizeOverflow)?;
        let oid = pool.alloc_bytes(region)?;
        let base = oid.offset;
        let mut desc = [0u8; DESC_SIZE as usize];
        desc[0..8].copy_from_slice(&STORE_MAGIC.to_le_bytes());
        desc[8..12].copy_from_slice(&STORE_VERSION.to_le_bytes());
        desc[16..24].copy_from_slice(&capacity.to_le_bytes());
        desc[24..32].copy_from_slice(&value_len.to_le_bytes());
        // commit_seq and live start at zero (already zeroed above).
        pool.write(base, &desc)?;
        // The directory must be explicitly freed: the heap may hand back a
        // recycled block still carrying another store's entries. Payload
        // slots need no scrub — only a committed entry makes one visible.
        let zeros = vec![0u8; 64 * 1024];
        let mut written = 0u64;
        while written < dir_len {
            let step = (dir_len - written).min(zeros.len() as u64);
            // in-bounds: step ≤ zeros.len() by the min above.
            pool.write(base + DESC_SIZE + written, &zeros[..step as usize])?;
            written += step;
        }
        pool.persist(base, DESC_SIZE + dir_len)?;
        Ok(ObjectStore {
            pool: PoolRef::Borrowed(pool),
            base,
            capacity,
            value_len,
            commit_seq: 0,
            live: 0,
            staged: HashMap::new(),
            crash: None,
        })
    }

    /// Opens an existing store at `oid` (typically after a pool reopen),
    /// validating the descriptor.
    pub fn open(pool: &'p PmemPool, oid: PmemOid) -> Result<Self> {
        Self::open_at(PoolRef::Borrowed(pool), oid)
    }

    fn open_at(pool: PoolRef<'p>, oid: PmemOid) -> Result<Self> {
        let base = oid.offset;
        let mut desc = [0u8; DESC_SIZE as usize];
        pool.read(base, &mut desc)?;
        let word = |at: usize| {
            let mut buf = [0u8; 8];
            // in-bounds: at ∈ {0, 16, 24, 32, 40}; desc is 64 bytes.
            buf.copy_from_slice(&desc[at..at + 8]);
            u64::from_le_bytes(buf)
        };
        if word(0) != STORE_MAGIC {
            return Err(PmemError::ObjectStore("store descriptor magic mismatch"));
        }
        let version = u32::from_le_bytes([desc[8], desc[9], desc[10], desc[11]]);
        if version != STORE_VERSION {
            return Err(PmemError::ObjectStore("unsupported store version"));
        }
        let capacity = word(16);
        let value_len = word(24);
        if capacity == 0 || value_len == 0 {
            return Err(PmemError::ObjectStore("corrupt store descriptor"));
        }
        Ok(ObjectStore {
            pool,
            base,
            capacity,
            value_len,
            commit_seq: word(32),
            live: word(40),
            staged: HashMap::new(),
            crash: None,
        })
    }

    /// Opens the pool's root store with **shared ownership** of the pool, so
    /// the store can outlive the caller's stack frame — the disaggregated
    /// cluster's per-host store handles use this.
    pub fn open_root_shared(pool: Arc<PmemPool>) -> Result<ObjectStore<'static>> {
        let (oid, _) = pool
            .root()
            .ok_or(PmemError::ObjectStore("pool has no root store"))?;
        ObjectStore::open_at(PoolRef::Shared(pool), oid)
    }

    /// Opens the store registered as the pool's root object.
    pub fn open_root(pool: &'p PmemPool) -> Result<Self> {
        let (oid, _) = pool
            .root()
            .ok_or(PmemError::ObjectStore("pool has no root store"))?;
        Self::open(pool, oid)
    }

    // ------------------------------------------------------------- accessors

    /// This store's object id — hand it to [`PmemPool::set_root`] so the
    /// store survives a pool reopen.
    pub fn oid(&self) -> PmemOid {
        PmemOid::new(self.pool.uuid(), self.base)
    }

    /// Maximum number of objects the store can hold.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Maximum payload bytes per object.
    pub fn value_len(&self) -> u64 {
        self.value_len
    }

    /// Number of objects holding a committed version, as observed by this
    /// handle's last open or mutation (another handle on the same media may
    /// have committed since; mutations always re-read the durable counter).
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Monotone count of committed directory mutations (commits + deletes),
    /// as observed by this handle's last open or mutation.
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// Arms a crash for the next put/commit (consumed by the phase it names,
    /// exactly once, like [`PmemPool::set_crash_point`]).
    pub fn set_crash(&mut self, crash: Option<ObjectCrash>) {
        self.crash = crash;
    }

    // --------------------------------------------------------------- offsets

    fn entry_off(&self, id: u64) -> u64 {
        self.base + DESC_SIZE + id * ENTRY_SIZE
    }

    fn slot_off(&self, id: u64, slot: u64) -> u64 {
        self.base + DESC_SIZE + self.capacity * ENTRY_SIZE + (id * 2 + slot) * self.value_len
    }

    /// Which payload slot holds epoch `e` (for `e ≥ 1`).
    fn slot_for(epoch: u64) -> u64 {
        epoch % 2
    }

    fn check_id(&self, id: u64) -> Result<()> {
        if id >= self.capacity {
            return Err(PmemError::ObjectStore("object id beyond store capacity"));
        }
        Ok(())
    }

    fn read_entry(&self, id: u64) -> Result<Option<Entry>> {
        let mut bytes = [0u8; ENTRY_SIZE as usize];
        self.pool.read(self.entry_off(id), &mut bytes)?;
        Entry::from_bytes(&bytes, id)
    }

    /// Reads a descriptor counter (`COMMIT_SEQ_AT` / `LIVE_AT`) from media.
    /// Mutations base their new counter values on this durable truth, not on
    /// the handle's volatile snapshot — another handle on the same media
    /// (e.g. another host of a shared segment) may have committed since this
    /// one was opened.
    fn desc_counter(&self, at: u64) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.pool.read(self.base + at, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    // ----------------------------------------------------------------- write

    /// Stages a new version of object `id`: writes `value` into the object's
    /// staging slot and flushes it. Nothing is visible to readers until
    /// [`commit`](Self::commit); the committed version (if any) is untouched.
    pub fn put(&mut self, id: u64, value: &[u8]) -> Result<()> {
        self.check_id(id)?;
        if value.len() as u64 > self.value_len {
            return Err(PmemError::ObjectStore(
                "value exceeds the store's slot length",
            ));
        }
        let epoch = self.read_entry(id)?.map_or(0, |e| e.epoch);
        let off = self.slot_off(id, Self::slot_for(epoch + 1));
        if let Some(c) = self.crash {
            if c.phase == ObjectPhase::SlotWrite {
                self.crash = None;
                match point_ordinal(c.point) {
                    0 => {}
                    // in-bounds: value.len() / 2 ≤ value.len().
                    1 => self.pool.write(off, &value[..value.len() / 2])?,
                    2 => self.pool.write(off, value)?,
                    _ => {
                        self.pool.write(off, value)?;
                        self.pool.persist(off, value.len() as u64)?;
                    }
                }
                return Err(PmemError::InjectedCrash("object-slot-write"));
            }
        }
        self.pool.write(off, value)?;
        self.pool.flush(off, value.len() as u64)?;
        self.staged.insert(
            id,
            Staged {
                len: value.len() as u64,
                hash: fnv1a(value),
                basis: epoch,
            },
        );
        Ok(())
    }

    /// Whether object `id` has a staged, not-yet-committed put.
    pub fn has_staged(&self, id: u64) -> bool {
        self.staged.contains_key(&id)
    }

    /// Commits the staged version of object `id` and returns its new epoch.
    ///
    /// Issues one `drain()` (making the staged payload durable), then writes
    /// the object's directory entry and the descriptor counters inside one
    /// undo-log transaction — the per-object commit record. The new counter
    /// values are based on the durable descriptor, not this handle's
    /// snapshot, and a put staged against a committed epoch that another
    /// handle has since superseded is refused with a typed error. After an
    /// error the media may hold a stranded transaction; reopen the store
    /// (running pool recovery) before further writes, as the cluster layer
    /// does.
    pub fn commit(&mut self, id: u64) -> Result<u64> {
        self.check_id(id)?;
        let crash = self.crash.take();
        let staged = self
            .staged
            .get(&id)
            .copied()
            .ok_or(PmemError::ObjectStore("commit without a staged put"))?;
        let previous = self.read_entry(id)?;
        let current = previous.map_or(0, |e| e.epoch);
        if staged.basis != current {
            // Another handle committed this object after the put: the staged
            // payload sits in what is now the *committed* slot's twin for a
            // different epoch parity, so a commit record naming it would
            // point at stale bytes. The stage can never become valid.
            self.staged.remove(&id);
            return Err(PmemError::ObjectStore(
                "staged put superseded by a newer commit",
            ));
        }
        let epoch = current + 1;
        // The staged payload must be durable before any commit record can
        // name it: one drain for the flushes the put fan-out issued.
        self.pool.drain();
        let entry = Entry {
            epoch,
            len: staged.len,
            value_hash: staged.hash,
        }
        .to_bytes(id);
        match crash {
            Some(c) if c.phase == ObjectPhase::EntryCommit => {
                self.pool.set_crash_point(Some(c.point));
            }
            Some(c) if c.phase == ObjectPhase::Recovery => {
                // Strand the log mid-commit; the caller's next recover() run
                // then hits the armed point (re-armed below).
                self.pool.set_crash_point(Some(CrashPoint::BeforeCommit));
            }
            _ => {}
        }
        let entry_off = self.entry_off(id);
        let seq = self.desc_counter(COMMIT_SEQ_AT)? + 1;
        let live = self.desc_counter(LIVE_AT)? + u64::from(previous.is_none());
        let result = self.pool.run_tx(|tx| {
            tx.write(entry_off, &entry)?;
            tx.write(self.base + COMMIT_SEQ_AT, &seq.to_le_bytes())?;
            tx.write(self.base + LIVE_AT, &live.to_le_bytes())
        });
        match result {
            Ok(()) => {
                self.commit_seq = seq;
                self.live = live;
                self.staged.remove(&id);
                Ok(epoch)
            }
            Err(e) => {
                if let Some(c) = crash {
                    if c.phase == ObjectPhase::Recovery && e.is_injected_crash() {
                        self.pool.set_crash_point(Some(c.point));
                    }
                }
                Err(e)
            }
        }
    }

    /// Stages and commits `value` as the next version of object `id`.
    pub fn put_commit(&mut self, id: u64, value: &[u8]) -> Result<u64> {
        self.put(id, value)?;
        self.commit(id)
    }

    /// Deletes object `id`: frees its directory entry inside one undo-log
    /// transaction. Any staged put for the id is discarded.
    pub fn delete(&mut self, id: u64) -> Result<()> {
        self.check_id(id)?;
        if self.read_entry(id)?.is_none() {
            return Err(PmemError::NoSuchObject(id));
        }
        let entry_off = self.entry_off(id);
        let seq = self.desc_counter(COMMIT_SEQ_AT)? + 1;
        // A desynced counter must surface as a typed error, never wrap.
        let live = self
            .desc_counter(LIVE_AT)?
            .checked_sub(1)
            .ok_or(PmemError::ObjectStore("descriptor live counter desynced"))?;
        let zeros = [0u8; ENTRY_SIZE as usize];
        self.pool.run_tx(|tx| {
            tx.write(entry_off, &zeros)?;
            tx.write(self.base + COMMIT_SEQ_AT, &seq.to_le_bytes())?;
            tx.write(self.base + LIVE_AT, &live.to_le_bytes())
        })?;
        self.commit_seq = seq;
        self.live = live;
        self.staged.remove(&id);
        Ok(())
    }

    // ------------------------------------------------------------------ read

    /// Whether object `id` currently holds a committed version.
    pub fn contains(&self, id: u64) -> Result<bool> {
        self.check_id(id)?;
        Ok(self.read_entry(id)?.is_some())
    }

    /// The committed epoch of object `id`.
    pub fn committed_version(&self, id: u64) -> Result<u64> {
        self.check_id(id)?;
        self.read_entry(id)?
            .map(|e| e.epoch)
            .ok_or(PmemError::NoSuchObject(id))
    }

    /// Reads the committed version of object `id`, validating the directory
    /// entry's checksum and the payload's content hash — a reader gets the
    /// exact committed bytes or a typed error, never a torn mix.
    pub fn get(&self, id: u64) -> Result<Vec<u8>> {
        self.check_id(id)?;
        let entry = self.read_entry(id)?.ok_or(PmemError::NoSuchObject(id))?;
        if entry.len > self.value_len {
            return Err(PmemError::ObjectStore("directory entry length corrupt"));
        }
        let mut value = vec![0u8; entry.len as usize];
        self.pool
            .read(self.slot_off(id, Self::slot_for(entry.epoch)), &mut value)?;
        if fnv1a(&value) != entry.value_hash {
            return Err(PmemError::ObjectStore(
                "payload bytes do not match the committed content hash",
            ));
        }
        Ok(value)
    }

    // ---------------------------------------------------------------- verify

    /// Full-directory audit: validates every live entry and its payload,
    /// recounts the population and cross-checks the descriptor counters.
    /// O(capacity) — a test/recovery aid, not a hot-path call.
    pub fn verify(&self) -> Result<StoreCheck> {
        let mut live = 0u64;
        let mut max_epoch = 0u64;
        for id in 0..self.capacity {
            if let Some(entry) = self.read_entry(id)? {
                self.get(id)?;
                live += 1;
                max_epoch = max_epoch.max(entry.epoch);
            }
        }
        if live != self.desc_counter(LIVE_AT)? {
            return Err(PmemError::ObjectStore(
                "descriptor live counter disagrees with the directory",
            ));
        }
        Ok(StoreCheck {
            live,
            free: self.capacity - live,
            max_epoch,
        })
    }

    /// Ids of every object holding a committed version (O(capacity) scan).
    pub fn live_ids(&self) -> Result<Vec<u64>> {
        let mut ids = Vec::new();
        for id in 0..self.capacity {
            if self.read_entry(id)?.is_some() {
                ids.push(id);
            }
        }
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::VolatileBackend;

    fn pool_pair(capacity: u64, value_len: u64) -> (PmemPool, VolatileBackend) {
        let backend =
            VolatileBackend::new_persistent(ObjectStore::required_pool_size(capacity, value_len));
        let pool = PmemPool::create_with_backend(Arc::new(backend.clone()), "objects").unwrap();
        (pool, backend)
    }

    fn value_for(id: u64, epoch: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (id as u8).wrapping_mul(31) ^ (epoch as u8).wrapping_mul(7) ^ i as u8)
            .collect()
    }

    #[test]
    fn put_commit_get_roundtrip_and_versioning() {
        let (pool, _backend) = pool_pair(64, 128);
        let mut store = ObjectStore::format(&pool, 64, 128).unwrap();
        assert_eq!(store.live(), 0);
        assert!(matches!(store.get(3), Err(PmemError::NoSuchObject(3))));

        let v1 = value_for(3, 1, 100);
        assert_eq!(store.put_commit(3, &v1).unwrap(), 1);
        assert_eq!(store.get(3).unwrap(), v1);
        assert_eq!(store.committed_version(3).unwrap(), 1);
        assert_eq!(store.live(), 1);

        // A staged put is invisible until commit.
        let v2 = value_for(3, 2, 80);
        store.put(3, &v2).unwrap();
        assert!(store.has_staged(3));
        assert_eq!(store.get(3).unwrap(), v1);
        assert_eq!(store.commit(3).unwrap(), 2);
        assert_eq!(store.get(3).unwrap(), v2);
        assert_eq!(store.commit_seq(), 2);
    }

    #[test]
    fn typed_errors_for_misuse() {
        let (pool, _backend) = pool_pair(8, 32);
        let mut store = ObjectStore::format(&pool, 8, 32).unwrap();
        assert!(matches!(
            store.put(8, b"x"),
            Err(PmemError::ObjectStore("object id beyond store capacity"))
        ));
        assert!(matches!(
            store.put(0, &[0u8; 33]),
            Err(PmemError::ObjectStore(_))
        ));
        assert!(matches!(
            store.commit(0),
            Err(PmemError::ObjectStore("commit without a staged put"))
        ));
        assert!(matches!(store.delete(0), Err(PmemError::NoSuchObject(0))));
    }

    #[test]
    fn delete_frees_and_epochs_restart() {
        let (pool, _backend) = pool_pair(8, 32);
        let mut store = ObjectStore::format(&pool, 8, 32).unwrap();
        store.put_commit(5, b"alpha").unwrap();
        store.put_commit(5, b"beta").unwrap();
        assert_eq!(store.committed_version(5).unwrap(), 2);
        store.delete(5).unwrap();
        assert_eq!(store.live(), 0);
        assert!(matches!(store.get(5), Err(PmemError::NoSuchObject(5))));
        // Re-creating the object starts a fresh version history.
        assert_eq!(store.put_commit(5, b"gamma").unwrap(), 1);
        assert_eq!(store.get(5).unwrap(), b"gamma");
        let check = store.verify().unwrap();
        assert_eq!(check.live, 1);
        assert_eq!(check.free, 7);
    }

    #[test]
    fn stale_staged_put_is_refused_after_a_foreign_commit() {
        let (pool, _backend) = pool_pair(8, 64);
        let mut a = ObjectStore::format(&pool, 8, 64).unwrap();
        let oid = a.oid();
        a.put_commit(4, b"epoch-1").unwrap();

        // Handle A stages epoch 2; handle B (same media) commits epoch 2
        // first, claiming the very slot A's stage was written into.
        a.put(4, b"staged by a").unwrap();
        let mut b = ObjectStore::open(&pool, oid).unwrap();
        assert_eq!(b.put_commit(4, b"committed by b").unwrap(), 2);

        // Committing A's stage would name epoch 3 → the slot still holding
        // the epoch-1 bytes, with A's hash: a permanently torn object. The
        // basis check refuses with a typed error and drops the stage.
        assert!(matches!(
            a.commit(4),
            Err(PmemError::ObjectStore(
                "staged put superseded by a newer commit"
            ))
        ));
        assert!(!a.has_staged(4));
        assert_eq!(a.get(4).unwrap(), b"committed by b");
        b.verify().unwrap();

        // Re-staging against the refreshed committed epoch works.
        a.put(4, b"epoch-3").unwrap();
        assert_eq!(a.commit(4).unwrap(), 3);
        assert_eq!(b.get(4).unwrap(), b"epoch-3");
    }

    #[test]
    fn foreign_commits_keep_descriptor_counters_exact() {
        let (pool, _backend) = pool_pair(8, 64);
        let mut a = ObjectStore::format(&pool, 8, 64).unwrap();
        let oid = a.oid();
        a.put_commit(0, b"a-0").unwrap();

        // A second handle over the same media commits a new object; handle
        // A then commits another. Both must extend the durable counters —
        // basing them on A's stale snapshot would desync the descriptor.
        let mut b = ObjectStore::open(&pool, oid).unwrap();
        b.put_commit(1, b"b-1").unwrap();
        a.put_commit(2, b"a-2").unwrap();
        assert_eq!(a.verify().unwrap().live, 3);
        assert_eq!(b.verify().unwrap().live, 3);

        // Delete ping-pong between desynced-snapshot handles stays exact
        // down to zero — no counter underflow.
        b.delete(1).unwrap();
        a.delete(0).unwrap();
        a.delete(2).unwrap();
        assert_eq!(a.verify().unwrap().live, 0);
        assert!(matches!(a.delete(0), Err(PmemError::NoSuchObject(0))));
    }

    #[test]
    fn survives_reopen_with_recovery() {
        let (pool, backend) = pool_pair(16, 64);
        let mut store = ObjectStore::format(&pool, 16, 64).unwrap();
        for id in 0..10u64 {
            store.put_commit(id, &value_for(id, 1, 48)).unwrap();
        }
        pool.set_root(store.oid(), ObjectStore::region_size(16, 64))
            .unwrap();
        drop(store);
        drop(pool);

        let pool = PmemPool::open_with_backend(Arc::new(backend.clone()), "objects").unwrap();
        let store = ObjectStore::open_root(&pool).unwrap();
        assert_eq!(store.live(), 10);
        for id in 0..10u64 {
            assert_eq!(store.get(id).unwrap(), value_for(id, 1, 48));
        }
        store.verify().unwrap();
    }

    #[test]
    fn injected_slot_write_crash_leaves_committed_version_intact() {
        let (pool, _backend) = pool_pair(8, 64);
        let mut store = ObjectStore::format(&pool, 8, 64).unwrap();
        let v1 = value_for(2, 1, 64);
        store.put_commit(2, &v1).unwrap();
        for point in CrashPoint::ALL {
            store.set_crash(Some(ObjectCrash {
                phase: ObjectPhase::SlotWrite,
                point,
            }));
            let err = store.put(2, &value_for(2, 9, 64)).unwrap_err();
            assert!(err.is_injected_crash());
            assert_eq!(store.get(2).unwrap(), v1, "torn at {point:?}");
        }
    }

    #[test]
    fn injected_commit_crash_rolls_back_or_commits_atomically() {
        for point in CrashPoint::ALL {
            let (pool, backend) = pool_pair(8, 64);
            let mut store = ObjectStore::format(&pool, 8, 64).unwrap();
            pool.set_root(store.oid(), ObjectStore::region_size(8, 64))
                .unwrap();
            let v1 = value_for(4, 1, 64);
            store.put_commit(4, &v1).unwrap();
            let v2 = value_for(4, 2, 64);
            store.put(4, &v2).unwrap();
            store.set_crash(Some(ObjectCrash {
                phase: ObjectPhase::EntryCommit,
                point,
            }));
            let outcome = store.commit(4);
            drop(store);
            drop(pool);
            let pool = PmemPool::open_with_backend(Arc::new(backend.clone()), "objects").unwrap();
            let store = ObjectStore::open_root(&pool).unwrap();
            let bytes = store.get(4).unwrap();
            match outcome {
                // DuringRecovery never fires inside a transaction.
                Ok(epoch) => {
                    assert_eq!(epoch, 2);
                    assert_eq!(bytes, v2);
                }
                Err(e) => {
                    assert!(e.is_injected_crash());
                    // Atomic: either rolled back to v1 or fully committed v2.
                    if store.committed_version(4).unwrap() == 2 {
                        assert_eq!(bytes, v2);
                    } else {
                        assert_eq!(bytes, v1);
                    }
                }
            }
            store.verify().unwrap();
        }
    }

    #[test]
    fn region_sizing_is_consistent() {
        assert_eq!(
            ObjectStore::region_size(10, 100),
            DESC_SIZE + 10 * ENTRY_SIZE + 2 * 10 * 100
        );
        assert!(ObjectStore::required_pool_size(10, 100) > ObjectStore::region_size(10, 100));
    }
}
