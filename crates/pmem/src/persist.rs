//! Flush/drain primitives and their instrumentation.
//!
//! On real PMem (and on CXL memory used as PMem) stores only become durable
//! once the cache lines are flushed (`CLWB`/`CLFLUSHOPT`) and a fence
//! (`SFENCE`) has drained the write-pending queues — or, with eADR/GPF, once
//! the store reaches the memory controller. `libpmem` wraps this as
//! `pmem_persist`. [`PersistTracker`] mirrors that API, forwards the actual
//! durability request to the pool backend and counts everything so tests and
//! benchmarks can assert on flush behaviour (this is where the PMDK overhead
//! the paper quantifies comes from).

use crate::backend::SharedBackend;
use crate::Result;
use std::sync::atomic::{AtomicU64, Ordering};

/// Size of a flush granule (one cache line).
pub const FLUSH_GRANULE: u64 = 64;

/// Counters describing persist activity.
///
/// Snapshots subtract (`after - before` via [`std::ops::Sub`]) so tests can
/// assert on the flush cost of a single operation — the checkpoint suite uses
/// this to prove an unchanged incremental checkpoint flushes zero chunks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Number of `flush` calls.
    pub flushes: u64,
    /// Number of cache lines flushed (a flush of N bytes touches ⌈N/64⌉ lines).
    pub lines_flushed: u64,
    /// Number of `drain` (fence) calls.
    pub drains: u64,
    /// Total bytes made durable.
    pub bytes_persisted: u64,
}

impl std::ops::Sub for PersistStats {
    type Output = PersistStats;

    /// Counter-wise difference (saturating, so an out-of-order subtraction
    /// yields zeros instead of wrapping).
    fn sub(self, earlier: PersistStats) -> PersistStats {
        PersistStats {
            flushes: self.flushes.saturating_sub(earlier.flushes),
            lines_flushed: self.lines_flushed.saturating_sub(earlier.lines_flushed),
            drains: self.drains.saturating_sub(earlier.drains),
            bytes_persisted: self.bytes_persisted.saturating_sub(earlier.bytes_persisted),
        }
    }
}

/// Tracks flush/drain activity for one pool.
#[derive(Debug, Default)]
pub struct PersistTracker {
    flushes: AtomicU64,
    lines_flushed: AtomicU64,
    drains: AtomicU64,
    bytes_persisted: AtomicU64,
}

impl PersistTracker {
    /// Creates a tracker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flushes a byte range of the pool: the range becomes durable on the
    /// backend and the counters are updated. Equivalent to
    /// `pmem_flush` + `pmem_drain` (i.e. `pmem_persist`).
    pub fn persist(&self, backend: &SharedBackend, offset: u64, len: u64) -> Result<()> {
        self.flush(backend, offset, len)?;
        self.drain();
        Ok(())
    }

    /// Flush without the trailing fence (`pmem_flush`).
    pub fn flush(&self, backend: &SharedBackend, offset: u64, len: u64) -> Result<()> {
        backend.persist(offset, len)?;
        let lines = len.div_ceil(FLUSH_GRANULE);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.lines_flushed.fetch_add(lines, Ordering::Relaxed);
        self.bytes_persisted.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    /// Store fence (`pmem_drain`).
    pub fn drain(&self) {
        self.drains.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            flushes: self.flushes.load(Ordering::Relaxed),
            lines_flushed: self.lines_flushed.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            bytes_persisted: self.bytes_persisted.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.flushes.store(0, Ordering::Relaxed);
        self.lines_flushed.store(0, Ordering::Relaxed);
        self.drains.store(0, Ordering::Relaxed);
        self.bytes_persisted.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::VolatileBackend;
    use std::sync::Arc;

    fn backend() -> SharedBackend {
        Arc::new(VolatileBackend::new(1 << 20))
    }

    #[test]
    fn persist_counts_lines_and_bytes() {
        let tracker = PersistTracker::new();
        let backend = backend();
        tracker.persist(&backend, 0, 100).unwrap();
        let stats = tracker.stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.lines_flushed, 2); // 100 bytes = 2 cache lines
        assert_eq!(stats.drains, 1);
        assert_eq!(stats.bytes_persisted, 100);
    }

    #[test]
    fn flush_without_drain() {
        let tracker = PersistTracker::new();
        let backend = backend();
        tracker.flush(&backend, 64, 64).unwrap();
        tracker.flush(&backend, 128, 64).unwrap();
        tracker.drain();
        let stats = tracker.stats();
        assert_eq!(stats.flushes, 2);
        assert_eq!(stats.drains, 1);
        assert_eq!(stats.lines_flushed, 2);
    }

    #[test]
    fn chunk_batching_fences_once_for_many_flushes() {
        // The STREAM-PMem hot path: N workers each flush their chunk, then a
        // single drain makes the whole invocation durable. The batched
        // pattern must cost N flushes + 1 drain, vs N of each for the
        // per-range persist() pattern it replaced.
        let workers = 8u64;
        let batched = PersistTracker::new();
        let backend = backend();
        for w in 0..workers {
            batched.flush(&backend, w * 4096, 4096).unwrap();
        }
        batched.drain();
        assert_eq!(batched.stats().flushes, workers);
        assert_eq!(batched.stats().drains, 1);

        let unbatched = PersistTracker::new();
        for w in 0..workers {
            unbatched.persist(&backend, w * 4096, 4096).unwrap();
        }
        assert_eq!(unbatched.stats().drains, workers);
        // Same durability coverage either way.
        assert_eq!(
            batched.stats().bytes_persisted,
            unbatched.stats().bytes_persisted
        );
    }

    #[test]
    fn out_of_range_persist_fails_without_counting() {
        let tracker = PersistTracker::new();
        let backend = backend();
        assert!(tracker.persist(&backend, (1 << 20) - 10, 100).is_err());
        assert_eq!(tracker.stats().flushes, 0);
    }

    #[test]
    fn stats_subtract_counterwise() {
        let tracker = PersistTracker::new();
        let backend = backend();
        tracker.persist(&backend, 0, 4096).unwrap();
        let before = tracker.stats();
        tracker.flush(&backend, 0, 128).unwrap();
        tracker.drain();
        let delta = tracker.stats() - before;
        assert_eq!(delta.flushes, 1);
        assert_eq!(delta.lines_flushed, 2);
        assert_eq!(delta.drains, 1);
        assert_eq!(delta.bytes_persisted, 128);
        // Saturating: subtracting a later snapshot from an earlier one is zero.
        assert_eq!(before - tracker.stats(), PersistStats::default());
    }

    #[test]
    fn reset_clears_counters() {
        let tracker = PersistTracker::new();
        let backend = backend();
        tracker.persist(&backend, 0, 4096).unwrap();
        tracker.reset();
        assert_eq!(tracker.stats(), PersistStats::default());
    }
}
