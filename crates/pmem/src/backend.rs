//! Pool backends: where the pool's bytes physically live.
//!
//! PMDK pools live on a DAX filesystem backed by the PMem device. Here the
//! same pool code runs over any [`PoolBackend`]:
//!
//! * [`VolatileBackend`] — an in-memory buffer; shared clones survive a
//!   simulated process crash, which is what the crash-injection tests use.
//! * [`FileBackend`] — a real file (the `/mnt/pmemN/pool.obj` stand-in);
//!   `persist` maps to `File::sync_data`, giving genuine durability across
//!   process restarts.
//! * [`SharedRegionBackend`] — a window of switch-pooled CXL memory shared by
//!   several hosts (`cxl::SharedRegion`): the pool lives in the far-memory
//!   segment one host checkpoints into and another restores from. `persist`
//!   is media durability (Global Persistent Flush); cross-host *visibility*
//!   stays with the region's software-managed `publish`/`acquire` protocol,
//!   which the disaggregated-cluster layer drives explicitly.
//! * Any other implementation supplied by a caller — the `cxl-pmem` crate
//!   provides one that stores bytes on a whole `cxl::Type3Device`, which is
//!   the paper's single-host configuration (a pool living on the expander).

use crate::error::PmemError;
use crate::Result;
use cxl::SharedRegion;
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where a pool's bytes live. All offsets are pool-relative.
pub trait PoolBackend: Send + Sync {
    /// Total size of the backing store in bytes.
    fn capacity(&self) -> u64;
    /// Reads `buf.len()` bytes at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;
    /// Writes `data` at `offset`.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;
    /// Makes the byte range durable (CLWB+SFENCE / `msync` equivalent).
    fn persist(&self, offset: u64, len: u64) -> Result<()>;
    /// Whether the store survives power loss.
    fn is_persistent(&self) -> bool;
    /// Human-readable description (path, device name...).
    fn describe(&self) -> String;
}

/// A cheaply clonable shared handle to a backend.
pub type SharedBackend = Arc<dyn PoolBackend>;

fn check_bounds(capacity: u64, offset: u64, len: usize) -> Result<()> {
    let end = offset
        .checked_add(len as u64)
        .ok_or(PmemError::SizeOverflow)?;
    if end > capacity {
        return Err(PmemError::OutOfBounds {
            offset,
            len: len as u64,
            pool_size: capacity,
        });
    }
    Ok(())
}

/// An in-memory backend. Clones share the same storage, so a "crashed" pool
/// can be reopened over the same bytes — emulating a machine whose DRAM-based
/// PMem (battery-backed or CXL expander) retained its content.
#[derive(Clone)]
pub struct VolatileBackend {
    bytes: Arc<RwLock<Vec<u8>>>,
    persistent: bool,
}

impl VolatileBackend {
    /// Creates a zeroed in-memory backend of the given size, reported as
    /// non-persistent.
    pub fn new(capacity: u64) -> Self {
        VolatileBackend {
            bytes: Arc::new(RwLock::new(vec![0u8; capacity as usize])),
            persistent: false,
        }
    }

    /// Same storage, but reported as persistent — models battery-backed DRAM
    /// or the off-node CXL expander of the paper.
    pub fn new_persistent(capacity: u64) -> Self {
        VolatileBackend {
            persistent: true,
            ..Self::new(capacity)
        }
    }

    /// Number of independent handles to this storage.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.bytes)
    }
}

impl PoolBackend for VolatileBackend {
    fn capacity(&self) -> u64 {
        self.bytes.read().len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let bytes = self.bytes.read();
        check_bounds(bytes.len() as u64, offset, buf.len())?;
        buf.copy_from_slice(&bytes[offset as usize..offset as usize + buf.len()]);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut bytes = self.bytes.write();
        check_bounds(bytes.len() as u64, offset, data.len())?;
        bytes[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn persist(&self, offset: u64, len: u64) -> Result<()> {
        check_bounds(self.capacity(), offset, len as usize)?;
        Ok(())
    }

    fn is_persistent(&self) -> bool {
        self.persistent
    }

    fn describe(&self) -> String {
        format!(
            "volatile[{} bytes, {}]",
            self.capacity(),
            if self.persistent {
                "battery-backed"
            } else {
                "dram"
            }
        )
    }
}

/// A file-backed pool, the stand-in for a pool file on a DAX filesystem.
///
/// Every read and write goes to the file through a shared handle;
/// [`PoolBackend::persist`] issues `sync_data`, so data really survives
/// process restarts.
pub struct FileBackend {
    file: RwLock<File>,
    path: PathBuf,
    capacity: u64,
}

impl FileBackend {
    /// Creates (or truncates) a pool file of `capacity` bytes.
    pub fn create(path: impl AsRef<Path>, capacity: u64) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len(capacity)?;
        Ok(FileBackend {
            file: RwLock::new(file),
            path,
            capacity,
        })
    }

    /// Opens an existing pool file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let capacity = file.metadata()?.len();
        Ok(FileBackend {
            file: RwLock::new(file),
            path,
            capacity,
        })
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl PoolBackend for FileBackend {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        check_bounds(self.capacity, offset, buf.len())?;
        let mut file = self.file.write();
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        check_bounds(self.capacity, offset, data.len())?;
        let mut file = self.file.write();
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)?;
        Ok(())
    }

    fn persist(&self, offset: u64, len: u64) -> Result<()> {
        check_bounds(self.capacity, offset, len as usize)?;
        self.file.read().sync_data()?;
        Ok(())
    }

    fn is_persistent(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        format!("file[{} , {} bytes]", self.path.display(), self.capacity)
    }
}

/// A pool living inside a multi-headed shared far-memory window, accessed on
/// behalf of one host.
///
/// This is the disaggregated-HPC configuration of the paper's §2.2: the pool
/// bytes sit in a `cxl::SharedRegion` carved out of a switch-managed memory
/// pool, and *which host* is doing the access matters — the region tracks
/// per-host traffic and the publish/acquire coherence protocol. The backend
/// attaches its host on construction; every read/write goes through the
/// region under that host id, and `persist` maps to the region's
/// media-durability flush (GPF), **not** to `publish` — a checkpoint becomes
/// visible to other hosts only when the owning layer publishes explicitly
/// after the commit record is durable.
pub struct SharedRegionBackend {
    region: Arc<SharedRegion>,
    host: usize,
}

impl SharedRegionBackend {
    /// Creates a backend over `region` acting as `host` (attaching the host
    /// to the region if it is not attached yet).
    pub fn new(region: Arc<SharedRegion>, host: usize) -> Self {
        region.attach(host);
        SharedRegionBackend { region, host }
    }

    /// The shared region the pool bytes live in.
    pub fn region(&self) -> Arc<SharedRegion> {
        Arc::clone(&self.region)
    }

    /// The host this backend accesses the region as.
    pub fn host(&self) -> usize {
        self.host
    }
}

fn cxl_io(e: cxl::CxlError) -> PmemError {
    PmemError::Io(std::io::Error::other(e.to_string()))
}

impl PoolBackend for SharedRegionBackend {
    fn capacity(&self) -> u64 {
        self.region.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        check_bounds(self.region.len(), offset, buf.len())?;
        self.region.read(self.host, offset, buf).map_err(cxl_io)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        check_bounds(self.region.len(), offset, data.len())?;
        self.region.write(self.host, offset, data).map_err(cxl_io)
    }

    fn persist(&self, offset: u64, len: u64) -> Result<()> {
        check_bounds(self.region.len(), offset, len as usize)?;
        self.region.persist(self.host).map_err(cxl_io)
    }

    fn is_persistent(&self) -> bool {
        // The premise of the paper: the pooled expander is off-node and
        // battery-backed, so it survives any single compute node's failure.
        true
    }

    fn describe(&self) -> String {
        format!(
            "shared-cxl[host {}, {} bytes, {:?}]",
            self.host,
            self.region.len(),
            self.region.mode()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_round_trip_and_bounds() {
        let backend = VolatileBackend::new(4096);
        backend.write_at(100, b"hello pmem").unwrap();
        let mut buf = [0u8; 10];
        backend.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello pmem");
        assert!(backend.write_at(4090, &[0u8; 16]).is_err());
        assert!(backend.read_at(5000, &mut buf).is_err());
        assert!(backend.persist(0, 4096).is_ok());
        assert!(backend.persist(0, 5000).is_err());
        assert!(!backend.is_persistent());
        assert!(VolatileBackend::new_persistent(64).is_persistent());
    }

    #[test]
    fn volatile_clones_share_storage() {
        let a = VolatileBackend::new(1024);
        let b = a.clone();
        a.write_at(0, b"shared").unwrap();
        let mut buf = [0u8; 6];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
        assert_eq!(a.handle_count(), 2);
    }

    #[test]
    fn file_backend_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("pmem-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool-backend.obj");
        {
            let backend = FileBackend::create(&path, 8192).unwrap();
            backend.write_at(1000, b"durable bytes").unwrap();
            backend.persist(1000, 13).unwrap();
            assert_eq!(backend.capacity(), 8192);
            assert!(backend.is_persistent());
            assert!(backend.describe().contains("pool-backend.obj"));
        }
        {
            let backend = FileBackend::open(&path).unwrap();
            let mut buf = [0u8; 13];
            backend.read_at(1000, &mut buf).unwrap();
            assert_eq!(&buf, b"durable bytes");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_bounds_check() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pmem-bounds-{}.obj", std::process::id()));
        let backend = FileBackend::create(&path, 128).unwrap();
        assert!(backend.write_at(120, &[0u8; 16]).is_err());
        let mut buf = [0u8; 16];
        assert!(backend.read_at(120, &mut buf).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_region_backend_round_trips_between_hosts() {
        use cxl::{CoherenceMode, LinkConfig, SharedRegion, Type3Device};
        const MIB: u64 = 1024 * 1024;
        let device = Arc::new(Type3Device::new("pooled", 8 * MIB, LinkConfig::gen5_x16()));
        let region = Arc::new(
            SharedRegion::new(device, 1024, 4 * MIB, CoherenceMode::SoftwareManaged).unwrap(),
        );
        let a = SharedRegionBackend::new(Arc::clone(&region), 0);
        assert_eq!(a.capacity(), 4 * MIB);
        assert_eq!(a.host(), 0);
        a.write_at(64, b"far memory").unwrap();
        a.persist(64, 10).unwrap();
        // `persist` is media durability, not publication: host 1 still needs
        // the software-coherence handshake to be entitled to the bytes.
        assert_eq!(region.version(), 0);
        region.publish(0).unwrap();
        let b = SharedRegionBackend::new(Arc::clone(&region), 1);
        region.acquire(1).unwrap();
        let mut buf = [0u8; 10];
        b.read_at(64, &mut buf).unwrap();
        assert_eq!(&buf, b"far memory");
        // Bounds are the window, not the device.
        assert!(a.write_at(4 * MIB - 4, &[0u8; 8]).is_err());
        let mut big = vec![0u8; 16];
        assert!(b.read_at(4 * MIB - 8, &mut big).is_err());
        assert!(a.is_persistent());
        assert!(b.describe().contains("host 1"));
    }

    #[test]
    fn overflow_offsets_are_rejected() {
        let backend = VolatileBackend::new(128);
        let mut buf = [0u8; 8];
        assert!(matches!(
            backend.read_at(u64::MAX - 2, &mut buf).unwrap_err(),
            PmemError::SizeOverflow
        ));
    }
}
