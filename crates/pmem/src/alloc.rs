//! The persistent heap allocator.
//!
//! PMDK's `POBJ_ALLOC` hands out blocks from a heap whose metadata lives in
//! the pool itself, so allocations survive restarts. [`PersistentHeap`] does
//! the same with a deliberately simple design: every block is preceded by a
//! 16-byte header (`size`, `state`) written and flushed before the allocation
//! is returned; a first-fit scan with forward coalescing services requests;
//! recovery is a linear scan of the headers, which also doubles as a
//! consistency check.

use crate::backend::SharedBackend;
use crate::error::PmemError;
use crate::persist::PersistTracker;
use crate::Result;
use std::sync::Arc;

/// Size of a block header in bytes.
pub const BLOCK_HEADER: u64 = 16;
/// Allocation granule: payloads are rounded up to this.
pub const ALLOC_ALIGN: u64 = 64;
/// Minimum payload worth splitting a block for.
const MIN_SPLIT_PAYLOAD: u64 = ALLOC_ALIGN;

const STATE_FREE: u64 = 0xF4EE_F4EE_F4EE_F4EE;
const STATE_ALLOCATED: u64 = 0xA110_CA7E_A110_CA7E;

/// Aggregate statistics of the persistent heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Total heap payload capacity in bytes (excluding headers).
    pub capacity: u64,
    /// Bytes currently allocated (payload only).
    pub allocated: u64,
    /// Bytes currently free (payload only).
    pub free: u64,
    /// Largest single free payload.
    pub largest_free: u64,
    /// Number of allocated blocks.
    pub allocated_blocks: u64,
    /// Number of free blocks (fragmentation indicator).
    pub free_blocks: u64,
}

/// A first-fit persistent heap over a byte range of the pool.
pub struct PersistentHeap {
    backend: SharedBackend,
    tracker: Arc<PersistTracker>,
    heap_start: u64,
    heap_end: u64,
}

impl PersistentHeap {
    /// Creates a handle over `[heap_start, heap_end)`. Call [`format`](Self::format)
    /// on a brand new pool or [`validate`](Self::validate) on an existing one.
    pub fn new(
        backend: SharedBackend,
        tracker: Arc<PersistTracker>,
        heap_start: u64,
        heap_end: u64,
    ) -> Self {
        PersistentHeap {
            backend,
            tracker,
            heap_start,
            heap_end,
        }
    }

    /// Formats the heap as one big free block.
    pub fn format(&self) -> Result<()> {
        let size = self.heap_end - self.heap_start;
        if size < BLOCK_HEADER + ALLOC_ALIGN {
            return Err(PmemError::PoolTooSmall {
                bytes: size,
                minimum: BLOCK_HEADER + ALLOC_ALIGN,
            });
        }
        self.write_header(self.heap_start, size, STATE_FREE)?;
        Ok(())
    }

    /// Start of the heap region.
    pub fn heap_start(&self) -> u64 {
        self.heap_start
    }

    /// End of the heap region.
    pub fn heap_end(&self) -> u64 {
        self.heap_end
    }

    fn read_u64(&self, offset: u64) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.backend.read_at(offset, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn write_u64(&self, offset: u64, value: u64) -> Result<()> {
        self.backend.write_at(offset, &value.to_le_bytes())
    }

    fn read_header(&self, block: u64) -> Result<(u64, u64)> {
        let size = self.read_u64(block)?;
        let state = self.read_u64(block + 8)?;
        Ok((size, state))
    }

    fn write_header(&self, block: u64, size: u64, state: u64) -> Result<()> {
        self.write_u64(block, size)?;
        self.write_u64(block + 8, state)?;
        self.tracker.persist(&self.backend, block, BLOCK_HEADER)?;
        Ok(())
    }

    /// Allocates `bytes` of payload; returns the payload offset.
    pub fn alloc(&self, bytes: u64) -> Result<u64> {
        if bytes == 0 {
            return Err(PmemError::SizeOverflow);
        }
        let payload = bytes.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let needed = payload
            .checked_add(BLOCK_HEADER)
            .ok_or(PmemError::SizeOverflow)?;
        let mut cursor = self.heap_start;
        let mut largest_free = 0u64;
        while cursor + BLOCK_HEADER <= self.heap_end {
            let (mut size, state) = self.read_header(cursor)?;
            if size == 0 || cursor + size > self.heap_end {
                // Corrupted or never-formatted tail; stop scanning.
                break;
            }
            if state == STATE_FREE {
                // Forward-coalesce adjacent free blocks while we are here.
                loop {
                    let next = cursor + size;
                    if next + BLOCK_HEADER > self.heap_end {
                        break;
                    }
                    let (next_size, next_state) = self.read_header(next)?;
                    if next_state == STATE_FREE
                        && next_size > 0
                        && next + next_size <= self.heap_end
                    {
                        size += next_size;
                        self.write_header(cursor, size, STATE_FREE)?;
                    } else {
                        break;
                    }
                }
                let available_payload = size - BLOCK_HEADER;
                largest_free = largest_free.max(available_payload);
                if size >= needed {
                    let remainder = size - needed;
                    if remainder >= BLOCK_HEADER + MIN_SPLIT_PAYLOAD {
                        // Split: write the new free block header first so a
                        // crash between the two writes never loses heap space
                        // permanently (recovery re-coalesces).
                        self.write_header(cursor + needed, remainder, STATE_FREE)?;
                        self.write_header(cursor, needed, STATE_ALLOCATED)?;
                    } else {
                        self.write_header(cursor, size, STATE_ALLOCATED)?;
                    }
                    return Ok(cursor + BLOCK_HEADER);
                }
            }
            cursor += size;
        }
        Err(PmemError::OutOfMemory {
            requested: bytes,
            largest_free,
        })
    }

    /// Frees a payload offset previously returned by [`alloc`](Self::alloc).
    pub fn free(&self, payload_offset: u64) -> Result<()> {
        if payload_offset < self.heap_start + BLOCK_HEADER || payload_offset >= self.heap_end {
            return Err(PmemError::InvalidOid);
        }
        let block = payload_offset - BLOCK_HEADER;
        let (size, state) = self.read_header(block)?;
        if state != STATE_ALLOCATED || size == 0 {
            return Err(PmemError::NotAllocated(payload_offset));
        }
        self.write_header(block, size, STATE_FREE)?;
        Ok(())
    }

    /// Payload size of an allocated block.
    pub fn usable_size(&self, payload_offset: u64) -> Result<u64> {
        let block = payload_offset
            .checked_sub(BLOCK_HEADER)
            .ok_or(PmemError::InvalidOid)?;
        let (size, state) = self.read_header(block)?;
        if state != STATE_ALLOCATED {
            return Err(PmemError::NotAllocated(payload_offset));
        }
        Ok(size - BLOCK_HEADER)
    }

    /// Walks the heap and returns aggregate statistics; also serves as the
    /// recovery-time consistency check (every byte must be covered by a valid
    /// block).
    pub fn stats(&self) -> Result<AllocStats> {
        let mut stats = AllocStats::default();
        let mut cursor = self.heap_start;
        while cursor + BLOCK_HEADER <= self.heap_end {
            let (size, state) = self.read_header(cursor)?;
            if size == 0 {
                break;
            }
            if cursor + size > self.heap_end {
                return Err(PmemError::NotAllocated(cursor));
            }
            let payload = size - BLOCK_HEADER;
            stats.capacity += payload;
            match state {
                STATE_ALLOCATED => {
                    stats.allocated += payload;
                    stats.allocated_blocks += 1;
                }
                STATE_FREE => {
                    stats.free += payload;
                    stats.free_blocks += 1;
                    stats.largest_free = stats.largest_free.max(payload);
                }
                _ => return Err(PmemError::NotAllocated(cursor)),
            }
            cursor += size;
        }
        Ok(stats)
    }

    /// Validates the heap structure (used when reopening a pool).
    pub fn validate(&self) -> Result<()> {
        self.stats().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::VolatileBackend;
    use proptest::prelude::*;

    fn heap(capacity: u64) -> PersistentHeap {
        let backend: SharedBackend = Arc::new(VolatileBackend::new(capacity));
        let tracker = Arc::new(PersistTracker::new());
        let heap = PersistentHeap::new(backend, tracker, 0, capacity);
        heap.format().unwrap();
        heap
    }

    #[test]
    fn format_creates_single_free_block() {
        let h = heap(64 * 1024);
        let stats = h.stats().unwrap();
        assert_eq!(stats.free_blocks, 1);
        assert_eq!(stats.allocated_blocks, 0);
        assert_eq!(stats.free, 64 * 1024 - BLOCK_HEADER);
        assert_eq!(stats.largest_free, stats.free);
    }

    #[test]
    fn tiny_heap_is_rejected() {
        let backend: SharedBackend = Arc::new(VolatileBackend::new(32));
        let h = PersistentHeap::new(backend, Arc::new(PersistTracker::new()), 0, 32);
        assert!(matches!(
            h.format().unwrap_err(),
            PmemError::PoolTooSmall { .. }
        ));
    }

    #[test]
    fn alloc_free_round_trip() {
        let h = heap(64 * 1024);
        let a = h.alloc(100).unwrap();
        let b = h.alloc(200).unwrap();
        assert_ne!(a, b);
        assert!(h.usable_size(a).unwrap() >= 100);
        assert!(h.usable_size(b).unwrap() >= 200);
        let stats = h.stats().unwrap();
        assert_eq!(stats.allocated_blocks, 2);
        h.free(a).unwrap();
        h.free(b).unwrap();
        let stats = h.stats().unwrap();
        assert_eq!(stats.allocated_blocks, 0);
        assert_eq!(stats.allocated, 0);
    }

    #[test]
    fn double_free_is_detected() {
        let h = heap(16 * 1024);
        let a = h.alloc(64).unwrap();
        h.free(a).unwrap();
        assert!(matches!(h.free(a).unwrap_err(), PmemError::NotAllocated(_)));
        assert!(h.free(12).is_err());
        assert!(h.free(1 << 40).is_err());
    }

    #[test]
    fn zero_byte_alloc_is_rejected() {
        let h = heap(16 * 1024);
        assert!(h.alloc(0).is_err());
    }

    #[test]
    fn out_of_memory_reports_largest_free() {
        let h = heap(4 * 1024);
        let err = h.alloc(1 << 20).unwrap_err();
        match err {
            PmemError::OutOfMemory { largest_free, .. } => {
                assert!(largest_free > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn freed_space_is_coalesced_and_reused() {
        let h = heap(8 * 1024);
        // Fill the heap with several allocations.
        let blocks: Vec<u64> = (0..4).map(|_| h.alloc(1024).unwrap()).collect();
        assert!(h.alloc(4096).is_err());
        // Free two adjacent blocks: a 2 KiB allocation must fit again.
        h.free(blocks[1]).unwrap();
        h.free(blocks[2]).unwrap();
        let merged = h.alloc(2048).unwrap();
        assert!(merged >= blocks[1] && merged < blocks[3]);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let h = heap(64 * 1024);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for i in 1..=20u64 {
            let size = i * 30;
            let offset = h.alloc(size).unwrap();
            let usable = h.usable_size(offset).unwrap();
            for &(start, end) in &ranges {
                assert!(
                    offset + usable <= start || offset >= end,
                    "overlap detected"
                );
            }
            ranges.push((offset, offset + usable));
        }
    }

    #[test]
    fn heap_state_survives_reopen_via_shared_backend() {
        let backend = VolatileBackend::new(32 * 1024);
        let shared: SharedBackend = Arc::new(backend.clone());
        let tracker = Arc::new(PersistTracker::new());
        let h1 = PersistentHeap::new(shared, tracker, 0, 32 * 1024);
        h1.format().unwrap();
        let a = h1.alloc(500).unwrap();
        drop(h1);
        // "Reopen" the heap over the same bytes — like a process restart.
        let shared2: SharedBackend = Arc::new(backend);
        let h2 = PersistentHeap::new(shared2, Arc::new(PersistTracker::new()), 0, 32 * 1024);
        h2.validate().unwrap();
        let stats = h2.stats().unwrap();
        assert_eq!(stats.allocated_blocks, 1);
        assert!(h2.usable_size(a).unwrap() >= 500);
        h2.free(a).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_alloc_free_never_corrupts_heap(sizes in proptest::collection::vec(1u64..2000, 1..40)) {
            let h = heap(1 << 20);
            let mut live: Vec<u64> = Vec::new();
            for (i, &size) in sizes.iter().enumerate() {
                match h.alloc(size) {
                    Ok(offset) => live.push(offset),
                    Err(PmemError::OutOfMemory { .. }) => {}
                    Err(other) => return Err(TestCaseError::fail(format!("alloc failed: {other}"))),
                }
                // Periodically free the oldest live allocation.
                if i % 3 == 2 {
                    if let Some(first) = live.first().copied() {
                        h.free(first).unwrap();
                        live.remove(0);
                    }
                }
                h.validate().unwrap();
            }
            let stats = h.stats().unwrap();
            prop_assert_eq!(stats.allocated_blocks as usize, live.len());
        }

        #[test]
        fn prop_capacity_is_conserved(sizes in proptest::collection::vec(64u64..4096, 1..16)) {
            let h = heap(1 << 20);
            let initial = h.stats().unwrap();
            let offsets: Vec<u64> = sizes.iter().filter_map(|&s| h.alloc(s).ok()).collect();
            for offset in offsets {
                h.free(offset).unwrap();
            }
            // Allocate once more to force coalescing, then free it.
            if let Ok(big) = h.alloc(initial.largest_free / 2) {
                h.free(big).unwrap();
            }
            let end = h.stats().unwrap();
            // Payload capacity can only shrink by header fragmentation, never grow.
            prop_assert!(end.capacity <= initial.capacity);
            prop_assert_eq!(end.allocated, 0);
        }
    }
}
