//! A PMDK-style persistent object store.
//!
//! The paper's App-Direct experiments replace STREAM's static arrays with
//! `libpmemobj` allocations: a pool is created (or reopened) on a DAX
//! filesystem (`/mnt/pmem{0,1,2}`), the three arrays are `POBJ_ALLOC`ed from
//! it, and all updates can be wrapped in transactions so that "either all of
//! the modifications are successfully applied or none of them take effect"
//! (§1.4, Listing 2). This crate rebuilds that programming model from scratch:
//!
//! * [`pool::PmemPool`] — pool create/open with a checksummed header and a
//!   layout name, a root object, and close/reopen semantics.
//! * [`alloc`] — a persistent heap allocator whose block headers live *inside*
//!   the pool, so the heap state survives restarts and is recovered by
//!   scanning.
//! * [`oid::PmemOid`] / [`oid::TypedOid`] — pool-relative object identifiers,
//!   the equivalent of `PMEMoid` / `TOID(type)`.
//! * [`tx`] — undo-log transactions with crash injection: `tx_begin`,
//!   `add_range`, `commit`, `abort`, and recovery on pool open.
//! * [`array::PersistentArray`] — typed persistent arrays (the STREAM-PMem
//!   `a`, `b`, `c` vectors).
//! * [`checkpoint`] — versioned checkpoint/restart: double-buffered,
//!   epoch-versioned snapshot slots with incremental dirty-chunk persists and
//!   a transactional commit record; validated by an exhaustive crash matrix
//!   (`tests/crash_matrix.rs`).
//! * [`object`] — a versioned transactional object store: a durable directory
//!   of millions of small epoch-versioned objects whose per-object commit
//!   records ride the undo log (double-buffered payload slots, checksummed
//!   entries, its own crash-injection phases and tear matrix).
//! * [`residency`] — the durable chunk → tier table the adaptive tiering
//!   engine commits its migrations through (the undo log is the migration
//!   record, so a crash mid-migration rolls back to the source tier).
//! * [`persist`] — flush/drain primitives with instrumentation counters, the
//!   stand-ins for `CLWB`/`SFENCE` (or the `pmem_persist` libpmem call).
//! * [`backend`] — where the bytes actually live: a volatile buffer, a file
//!   (the DAX-filesystem stand-in), a multi-headed shared far-memory window
//!   ([`backend::SharedRegionBackend`], the pooled-CXL tier cross-host
//!   checkpoint/restart runs on), or any caller-provided store such as the
//!   CXL Type-3 endpoint from the `cxl` crate (wired up in `cxl-pmem`).
//!
//! The store is **functional**: bytes really are written, checksums really are
//! validated, transactions really roll back after a simulated crash. What is
//! *not* claimed is cycle-accurate performance — timing belongs to `memsim`.
//!
//! # Example
//!
//! Checkpoint an 8 KiB state image into a double-buffered
//! [`CheckpointRegion`] and restore the committed epoch bit-exact:
//!
//! ```
//! use pmem::{CheckpointRegion, PmemPool};
//!
//! let size = CheckpointRegion::required_pool_size(8192, 1024).max(1 << 20);
//! let pool = PmemPool::create_volatile("doc", size).unwrap();
//! let mut region = CheckpointRegion::format(&pool, 8192, 1024).unwrap();
//!
//! let state = vec![7u8; 8192];
//! region.checkpoint(&state).unwrap();
//!
//! let mut restored = vec![0u8; 8192];
//! assert_eq!(region.restore(&mut restored).unwrap(), 1); // epoch 1
//! assert_eq!(restored, state);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod array;
pub mod backend;
pub mod checkpoint;
pub mod error;
pub mod object;
pub mod oid;
pub mod persist;
pub mod pool;
pub mod residency;
pub mod tx;

pub use alloc::AllocStats;
pub use array::{PersistentArray, PmemScalar};
pub use backend::{FileBackend, PoolBackend, SharedBackend, SharedRegionBackend, VolatileBackend};
pub use checkpoint::{
    CheckpointCrash, CheckpointPhase, CheckpointRegion, CheckpointStats, Checkpointable,
    ChunkExecutor, SerialExecutor,
};
pub use error::PmemError;
pub use object::{ObjectCrash, ObjectPhase, ObjectStore, StoreCheck};
pub use oid::{PmemOid, TypedOid};
pub use persist::PersistStats;
pub use pool::{PmemPool, PoolConfig};
pub use residency::ResidencyMap;
pub use tx::{CrashPoint, Transaction};

/// Result alias for persistent-memory operations.
pub type Result<T> = std::result::Result<T, PmemError>;
