//! Error type for the persistent object store.

use std::fmt;

/// Errors produced by pools, allocators and transactions.
#[derive(Debug)]
pub enum PmemError {
    /// The pool header's magic number did not match — not a pool, or corrupted.
    BadMagic,
    /// The pool header checksum did not validate.
    BadChecksum,
    /// The pool was created with a different layout name.
    LayoutMismatch {
        /// Layout recorded in the pool header.
        found: String,
        /// Layout the caller asked for.
        expected: String,
    },
    /// The pool file/backend is smaller than the minimum pool size.
    PoolTooSmall {
        /// Bytes available.
        bytes: u64,
        /// Minimum required.
        minimum: u64,
    },
    /// The persistent heap has no free block large enough.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Largest free block available.
        largest_free: u64,
    },
    /// An object identifier did not belong to this pool or was out of range.
    InvalidOid,
    /// Freeing an object that is not currently allocated (double free or
    /// corrupted heap).
    NotAllocated(u64),
    /// An access fell outside the pool.
    OutOfBounds {
        /// Offset of the access.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// Pool size.
        pool_size: u64,
    },
    /// A transaction operation was attempted outside a transaction, or a
    /// nested transaction was started where that is not allowed.
    TransactionState(&'static str),
    /// The undo log area is full.
    LogFull,
    /// A crash was injected at the given point (test harness only).
    InjectedCrash(&'static str),
    /// Underlying I/O error (file backend).
    Io(std::io::Error),
    /// The requested element count would overflow the addressable range.
    SizeOverflow,
    /// A checkpoint region operation failed (bad descriptor, no committed
    /// epoch, snapshot length mismatch, ...).
    Checkpoint(&'static str),
    /// A chunk-residency map operation failed (bad header, out-of-range tier,
    /// stale migration source, ...).
    Residency(&'static str),
    /// An object-store operation failed (bad descriptor, id beyond capacity,
    /// value longer than the slot, commit without a staged put, ...).
    ObjectStore(&'static str),
    /// A lookup named an object id with no committed version in the store's
    /// directory.
    NoSuchObject(u64),
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::BadMagic => write!(f, "pool magic number mismatch"),
            PmemError::BadChecksum => write!(f, "pool header checksum mismatch"),
            PmemError::LayoutMismatch { found, expected } => {
                write!(f, "pool layout is '{found}', expected '{expected}'")
            }
            PmemError::PoolTooSmall { bytes, minimum } => {
                write!(f, "pool of {bytes} bytes is below the minimum {minimum}")
            }
            PmemError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "persistent heap exhausted: requested {requested}, largest free block {largest_free}"
            ),
            PmemError::InvalidOid => write!(f, "object id does not belong to this pool"),
            PmemError::NotAllocated(offset) => {
                write!(f, "offset {offset:#x} is not an allocated object")
            }
            PmemError::OutOfBounds {
                offset,
                len,
                pool_size,
            } => write!(
                f,
                "access of {len} bytes at {offset:#x} exceeds pool size {pool_size:#x}"
            ),
            PmemError::TransactionState(msg) => write!(f, "transaction state error: {msg}"),
            PmemError::LogFull => write!(f, "transaction undo log is full"),
            PmemError::InjectedCrash(point) => write!(f, "injected crash at {point}"),
            PmemError::Io(e) => write!(f, "I/O error: {e}"),
            PmemError::SizeOverflow => write!(f, "requested size overflows the pool address space"),
            PmemError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            PmemError::Residency(msg) => write!(f, "residency error: {msg}"),
            PmemError::ObjectStore(msg) => write!(f, "object store error: {msg}"),
            PmemError::NoSuchObject(id) => {
                write!(f, "object {id} has no committed version in this store")
            }
        }
    }
}

impl std::error::Error for PmemError {}

impl From<std::io::Error> for PmemError {
    fn from(e: std::io::Error) -> Self {
        PmemError::Io(e)
    }
}

impl PmemError {
    /// Whether this error is the crash-injection sentinel.
    pub fn is_injected_crash(&self) -> bool {
        matches!(self, PmemError::InjectedCrash(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = PmemError::LayoutMismatch {
            found: "stream".into(),
            expected: "array".into(),
        };
        assert!(e.to_string().contains("stream"));
        assert!(e.to_string().contains("array"));
        assert!(PmemError::InjectedCrash("pre-commit").is_injected_crash());
        assert!(!PmemError::BadMagic.is_injected_crash());
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: PmemError = io.into();
        assert!(matches!(e, PmemError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }
}
