//! Undo-log transactions.
//!
//! `pmemobj` transactions guarantee that "either all of the modifications are
//! successfully applied or none of them take effect" (paper §1.4). The
//! mechanism reproduced here is the classic undo log:
//!
//! 1. before a range is modified inside a transaction, its *old* contents are
//!    appended to a log area inside the pool and flushed;
//! 2. the modification is applied in place;
//! 3. on commit the modified ranges are flushed and the log is invalidated;
//! 4. on abort — or on pool open after a crash — the log is replayed in
//!    reverse, restoring the old contents.
//!
//! [`CrashPoint`] lets tests "pull the power cord" at the interesting moments
//! and verify that recovery restores a consistent state.

use crate::backend::SharedBackend;
use crate::error::PmemError;
use crate::persist::PersistTracker;
use crate::Result;
use std::sync::Arc;

/// Where an injected crash fires during a transaction (or during the recovery
/// that follows one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the undo-log entries are durable but before any data is modified.
    AfterLogAppend,
    /// After data has been modified but before the commit record clears the log.
    BeforeCommit,
    /// After the commit completed (the transaction's effects must survive).
    AfterCommit,
    /// Mid-way through [`TxLog`] recovery: after the first undo entry has been
    /// replayed but before the log header is cleared. Recovery must be
    /// idempotent, so a second recovery pass finishes the job.
    DuringRecovery,
}

impl CrashPoint {
    /// Every crash point, in a fixed order — the crash matrix iterates this so
    /// adding a variant automatically grows the matrix.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::AfterLogAppend,
        CrashPoint::BeforeCommit,
        CrashPoint::AfterCommit,
        CrashPoint::DuringRecovery,
    ];
}

const LOG_ACTIVE: u64 = 1;
const LOG_IDLE: u64 = 0;
/// Bytes reserved at the start of the log area for the (active, entry_count) header.
const LOG_HEADER: u64 = 16;
/// Per-entry header: target offset + length.
const ENTRY_HEADER: u64 = 16;

/// The undo-log area of a pool.
pub struct TxLog {
    backend: SharedBackend,
    tracker: Arc<PersistTracker>,
    start: u64,
    end: u64,
}

impl TxLog {
    /// Creates a handle over `[start, end)` of the pool.
    pub fn new(backend: SharedBackend, tracker: Arc<PersistTracker>, start: u64, end: u64) -> Self {
        TxLog {
            backend,
            tracker,
            start,
            end,
        }
    }

    /// Formats the log as idle/empty.
    pub fn format(&self) -> Result<()> {
        self.write_header(LOG_IDLE, 0)
    }

    fn read_u64(&self, offset: u64) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.backend.read_at(offset, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn write_header(&self, active: u64, count: u64) -> Result<()> {
        self.backend.write_at(self.start, &active.to_le_bytes())?;
        self.backend
            .write_at(self.start + 8, &count.to_le_bytes())?;
        self.tracker
            .persist(&self.backend, self.start, LOG_HEADER)?;
        Ok(())
    }

    fn header(&self) -> Result<(u64, u64)> {
        Ok((self.read_u64(self.start)?, self.read_u64(self.start + 8)?))
    }

    /// Whether an uncommitted transaction's log is present.
    pub fn is_active(&self) -> Result<bool> {
        Ok(self.header()?.0 == LOG_ACTIVE)
    }

    /// Appends an undo entry containing the *current* contents of
    /// `[offset, offset+len)` and returns the log cursor after the entry.
    fn append(&self, cursor: u64, entry_index: u64, offset: u64, len: u64) -> Result<u64> {
        let needed = ENTRY_HEADER + len;
        if cursor + needed > self.end {
            return Err(PmemError::LogFull);
        }
        let mut old = vec![0u8; len as usize];
        self.backend.read_at(offset, &mut old)?;
        self.backend.write_at(cursor, &offset.to_le_bytes())?;
        self.backend.write_at(cursor + 8, &len.to_le_bytes())?;
        self.backend.write_at(cursor + ENTRY_HEADER, &old)?;
        self.tracker.persist(&self.backend, cursor, needed)?;
        // Publish the entry: bump the count (and mark active) only after the
        // entry body is durable, so recovery never replays a torn entry.
        self.write_header(LOG_ACTIVE, entry_index + 1)?;
        Ok(cursor + needed)
    }

    /// Replays the log in reverse, restoring pre-transaction contents, then
    /// clears it. Returns `true` if anything was rolled back.
    pub fn recover(&self) -> Result<bool> {
        self.recover_with(None)
    }

    /// [`recover`](Self::recover) with crash injection: if `crash` is
    /// [`CrashPoint::DuringRecovery`], the pass dies after replaying the first
    /// undo entry (or, for an entry-less active log, before the header is
    /// cleared), leaving the log active. Undo entries hold absolute old
    /// contents, so a subsequent full pass replays them again and converges —
    /// the idempotency the crash matrix relies on.
    pub fn recover_with(&self, crash: Option<CrashPoint>) -> Result<bool> {
        let injected = crash == Some(CrashPoint::DuringRecovery);
        let (active, count) = self.header()?;
        if active != LOG_ACTIVE || count == 0 {
            if active == LOG_ACTIVE {
                if injected {
                    return Err(PmemError::InjectedCrash("during-recovery"));
                }
                self.write_header(LOG_IDLE, 0)?;
            }
            return Ok(false);
        }
        // Walk the entries forward collecting their positions, then undo in reverse.
        let mut entries = Vec::with_capacity(count as usize);
        let mut cursor = self.start + LOG_HEADER;
        for _ in 0..count {
            let offset = self.read_u64(cursor)?;
            let len = self.read_u64(cursor + 8)?;
            entries.push((cursor + ENTRY_HEADER, offset, len));
            cursor += ENTRY_HEADER + len;
        }
        for (replayed, &(data_at, offset, len)) in entries.iter().rev().enumerate() {
            let mut old = vec![0u8; len as usize];
            self.backend.read_at(data_at, &mut old)?;
            self.backend.write_at(offset, &old)?;
            self.tracker.persist(&self.backend, offset, len)?;
            if injected && replayed == 0 {
                // The header still says ACTIVE with the full entry count, so
                // the next recovery starts over from entry 0.
                return Err(PmemError::InjectedCrash("during-recovery"));
            }
        }
        self.write_header(LOG_IDLE, 0)?;
        Ok(true)
    }

    fn clear(&self) -> Result<()> {
        self.write_header(LOG_IDLE, 0)
    }
}

/// An in-flight transaction (obtained from [`crate::PmemPool::run_tx`]).
pub struct Transaction<'a> {
    backend: &'a SharedBackend,
    tracker: &'a Arc<PersistTracker>,
    log: &'a TxLog,
    crash: Option<CrashPoint>,
    cursor: u64,
    entries: u64,
    modified: Vec<(u64, u64)>,
    finished: bool,
}

impl<'a> Transaction<'a> {
    pub(crate) fn begin(
        backend: &'a SharedBackend,
        tracker: &'a Arc<PersistTracker>,
        log: &'a TxLog,
        crash: Option<CrashPoint>,
    ) -> Result<Self> {
        if log.is_active()? {
            return Err(PmemError::TransactionState(
                "another transaction's log is still active (recovery required)",
            ));
        }
        Ok(Transaction {
            backend,
            tracker,
            log,
            crash,
            cursor: log.start + LOG_HEADER,
            entries: 0,
            modified: Vec::new(),
            finished: false,
        })
    }

    fn maybe_crash(&self, point: CrashPoint) -> Result<()> {
        if self.crash == Some(point) {
            return Err(PmemError::InjectedCrash(match point {
                CrashPoint::AfterLogAppend => "after-log-append",
                CrashPoint::BeforeCommit => "before-commit",
                CrashPoint::AfterCommit => "after-commit",
                // Never armed at a transaction site; recovery checks it.
                CrashPoint::DuringRecovery => "during-recovery",
            }));
        }
        Ok(())
    }

    /// Registers `[offset, offset+len)` for rollback: its current contents are
    /// appended to the undo log (the `TX_ADD_RANGE` equivalent).
    pub fn add_range(&mut self, offset: u64, len: u64) -> Result<()> {
        if self.finished {
            return Err(PmemError::TransactionState("transaction already finished"));
        }
        self.cursor = self.log.append(self.cursor, self.entries, offset, len)?;
        self.entries += 1;
        self.modified.push((offset, len));
        self.maybe_crash(CrashPoint::AfterLogAppend)?;
        Ok(())
    }

    /// Transactionally writes `data` at `offset`: the old contents are logged
    /// first, then the new data is written in place.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        self.add_range(offset, data.len() as u64)?;
        self.backend.write_at(offset, data)?;
        Ok(())
    }

    /// Reads within the transaction (sees its own writes).
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.backend.read_at(offset, buf)
    }

    /// Number of ranges registered so far.
    pub fn ranges(&self) -> usize {
        self.modified.len()
    }

    /// Commits: flush every modified range, then invalidate the log.
    pub(crate) fn commit(mut self) -> Result<()> {
        for &(offset, len) in &self.modified {
            self.tracker.persist(self.backend, offset, len)?;
        }
        self.maybe_crash(CrashPoint::BeforeCommit)?;
        self.log.clear()?;
        self.finished = true;
        self.maybe_crash(CrashPoint::AfterCommit)?;
        Ok(())
    }

    /// Aborts: restore old contents from the log and invalidate it.
    pub(crate) fn abort(mut self) -> Result<()> {
        self.log.recover()?;
        self.finished = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SharedBackend, VolatileBackend};
    use crate::pool::PmemPool;
    use std::sync::Arc;

    const POOL_SIZE: u64 = 2 * 1024 * 1024;

    fn pool_pair() -> (VolatileBackend, PmemPool) {
        let backend = VolatileBackend::new_persistent(POOL_SIZE);
        let shared: SharedBackend = Arc::new(backend.clone());
        let pool = PmemPool::create_with_backend(shared, "tx-test").unwrap();
        (backend, pool)
    }

    fn read8(pool: &PmemPool, offset: u64) -> [u8; 8] {
        let mut buf = [0u8; 8];
        pool.read(offset, &mut buf).unwrap();
        buf
    }

    #[test]
    fn committed_transaction_applies_all_writes() {
        let (_, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        let b = pool.alloc_bytes(64).unwrap();
        pool.run_tx(|tx| {
            tx.write(a.offset, b"AAAAAAAA")?;
            tx.write(b.offset, b"BBBBBBBB")?;
            assert_eq!(tx.ranges(), 2);
            Ok(())
        })
        .unwrap();
        assert_eq!(&read8(&pool, a.offset), b"AAAAAAAA");
        assert_eq!(&read8(&pool, b.offset), b"BBBBBBBB");
    }

    #[test]
    fn failed_transaction_rolls_back_all_writes() {
        let (_, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        let b = pool.alloc_bytes(64).unwrap();
        pool.write(a.offset, b"original").unwrap();
        pool.write(b.offset, b"unchangd").unwrap();
        let result: Result<()> = pool.run_tx(|tx| {
            tx.write(a.offset, b"mutated!")?;
            tx.write(b.offset, b"mutated!")?;
            Err(PmemError::TransactionState("application-level failure"))
        });
        assert!(result.is_err());
        assert_eq!(&read8(&pool, a.offset), b"original");
        assert_eq!(&read8(&pool, b.offset), b"unchangd");
    }

    #[test]
    fn transaction_reads_see_own_writes() {
        let (_, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        pool.run_tx(|tx| {
            tx.write(a.offset, b"visible!")?;
            let mut buf = [0u8; 8];
            tx.read(a.offset, &mut buf)?;
            assert_eq!(&buf, b"visible!");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn crash_before_commit_is_rolled_back_on_reopen() {
        let (backend, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        pool.write(a.offset, b"checkpnt").unwrap();
        pool.persist(a.offset, 8).unwrap();

        pool.set_crash_point(Some(CrashPoint::BeforeCommit));
        let result: Result<()> = pool.run_tx(|tx| {
            tx.write(a.offset, b"halfdone")?;
            Ok(())
        });
        assert!(matches!(result.unwrap_err(), PmemError::InjectedCrash(_)));
        drop(pool);

        // Reopen over the same bytes: recovery must restore the old contents.
        let shared: SharedBackend = Arc::new(backend);
        let reopened = PmemPool::open_with_backend(shared, "tx-test").unwrap();
        assert_eq!(&read8(&reopened, a.offset), b"checkpnt");
        // And the log must be clean so new transactions can run.
        reopened
            .run_tx(|tx| tx.write(a.offset, b"newvalue"))
            .unwrap();
        assert_eq!(&read8(&reopened, a.offset), b"newvalue");
    }

    #[test]
    fn crash_after_log_append_preserves_old_data() {
        let (backend, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        pool.write(a.offset, b"original").unwrap();
        pool.set_crash_point(Some(CrashPoint::AfterLogAppend));
        let result: Result<()> = pool.run_tx(|tx| {
            tx.add_range(a.offset, 8)?;
            // The crash fires inside add_range, so this write never happens.
            unreachable!("crash point must fire before this closure continues");
        });
        assert!(result.unwrap_err().is_injected_crash());
        drop(pool);
        let shared: SharedBackend = Arc::new(backend);
        let reopened = PmemPool::open_with_backend(shared, "tx-test").unwrap();
        assert_eq!(&read8(&reopened, a.offset), b"original");
    }

    #[test]
    fn crash_after_commit_keeps_new_data() {
        let (backend, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        pool.write(a.offset, b"original").unwrap();
        pool.set_crash_point(Some(CrashPoint::AfterCommit));
        let result: Result<()> = pool.run_tx(|tx| tx.write(a.offset, b"durable!"));
        assert!(result.unwrap_err().is_injected_crash());
        drop(pool);
        let shared: SharedBackend = Arc::new(backend);
        let reopened = PmemPool::open_with_backend(shared, "tx-test").unwrap();
        assert_eq!(&read8(&reopened, a.offset), b"durable!");
    }

    #[test]
    fn recovery_is_idempotent() {
        let (backend, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        pool.write(a.offset, b"original").unwrap();
        pool.set_crash_point(Some(CrashPoint::BeforeCommit));
        let _ = pool.run_tx(|tx| tx.write(a.offset, b"mutated!"));
        drop(pool);
        let shared: SharedBackend = Arc::new(backend);
        let reopened = PmemPool::open_with_backend(shared, "tx-test").unwrap();
        assert!(!reopened.recover().unwrap());
        assert!(!reopened.recover().unwrap());
        assert_eq!(&read8(&reopened, a.offset), b"original");
    }

    #[test]
    fn crash_during_recovery_then_reopen_converges() {
        let (backend, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        let b = pool.alloc_bytes(64).unwrap();
        pool.write(a.offset, b"original").unwrap();
        pool.write(b.offset, b"untouchd").unwrap();
        pool.persist(a.offset, 8).unwrap();
        pool.persist(b.offset, 8).unwrap();

        // Strand an active log with two undo entries.
        pool.set_crash_point(Some(CrashPoint::BeforeCommit));
        let _ = pool.run_tx(|tx| {
            tx.write(a.offset, b"mutatedA")?;
            tx.write(b.offset, b"mutatedB")?;
            Ok(())
        });
        assert!(pool.tx_log_active().unwrap());

        // First recovery pass dies after replaying one entry: the log stays
        // active and the pool is mid-rollback (b restored, a still mutated).
        pool.set_crash_point(Some(CrashPoint::DuringRecovery));
        assert!(pool.recover().unwrap_err().is_injected_crash());
        assert!(pool.tx_log_active().unwrap());
        assert_eq!(&read8(&pool, b.offset), b"untouchd");
        assert_eq!(&read8(&pool, a.offset), b"mutatedA");
        drop(pool);

        // "Reboot": open runs a full recovery pass, which replays every entry
        // again (re-restoring b is harmless — entries hold absolute contents).
        let shared: SharedBackend = Arc::new(backend);
        let reopened = PmemPool::open_with_backend(shared, "tx-test").unwrap();
        assert_eq!(&read8(&reopened, a.offset), b"original");
        assert_eq!(&read8(&reopened, b.offset), b"untouchd");
        // Recovery run again (twice) must be a no-op and leave the log idle.
        assert!(!reopened.recover().unwrap());
        assert!(!reopened.recover().unwrap());
        assert!(!reopened.tx_log_active().unwrap());
        assert_eq!(&read8(&reopened, a.offset), b"original");
        // And new transactions run normally.
        reopened
            .run_tx(|tx| tx.write(a.offset, b"newvalue"))
            .unwrap();
        assert_eq!(&read8(&reopened, a.offset), b"newvalue");
    }

    #[test]
    fn recovery_crash_point_is_inert_when_log_is_idle() {
        let (_, pool) = pool_pair();
        pool.set_crash_point(Some(CrashPoint::DuringRecovery));
        // Nothing to recover: the injection site is never reached.
        assert!(!pool.recover().unwrap());
        assert!(!pool.tx_log_active().unwrap());
    }

    #[test]
    fn log_overflow_is_reported() {
        let (_, pool) = pool_pair();
        let big = pool.alloc_bytes(1024 * 1024).unwrap();
        let result: Result<()> = pool.run_tx(|tx| {
            // The log area is 256 KiB: snapshotting 1 MiB cannot fit.
            tx.add_range(big.offset, 1024 * 1024)?;
            Ok(())
        });
        assert!(matches!(result.unwrap_err(), PmemError::LogFull));
        // Pool remains usable.
        pool.run_tx(|tx| tx.write(big.offset, b"still ok")).unwrap();
    }

    #[test]
    fn multiple_sequential_transactions() {
        let (_, pool) = pool_pair();
        let a = pool.alloc_bytes(64).unwrap();
        for i in 0..10u64 {
            pool.run_tx(|tx| tx.write(a.offset, &i.to_le_bytes()))
                .unwrap();
        }
        let mut buf = [0u8; 8];
        pool.read(a.offset, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 9);
    }
}
