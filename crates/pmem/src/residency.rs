//! Durable chunk-residency map: which tier each chunk of a tiered data set
//! lives on, with migration records committed through the existing undo log.
//!
//! The adaptive tiering engine (`cxl-pmem`'s `tiering` module) moves chunks
//! between tier pools while the application keeps reading them. The one piece
//! of state that must never tear is the answer to "which tier holds chunk
//! `i` right now?" — a torn answer would make a chunk readable from zero or
//! two tiers. [`ResidencyMap`] stores that answer inside a pool (in practice
//! the persistent spill tier, so it survives a crash together with the data),
//! and commits every migration through [`PmemPool::run_tx`]:
//!
//! 1. the migrator copies the chunk's bytes into the destination tier and
//!    makes them durable (`flush` batches + one `drain`) — the destination is
//!    a *shadow* copy, invisible to readers;
//! 2. the residency entry is flipped from the source to the destination tier
//!    inside a pool transaction, so the existing [`TxLog`] machinery is the
//!    migration record: a crash before the commit record clears leaves an
//!    active undo log, and recovery rolls the entry back to the source tier.
//!
//! At every instant, committed state names **exactly one** tier per chunk and
//! that tier holds the chunk's committed bytes: before the flip the source is
//! authoritative (the shadow copy is ignored), after the flip the destination
//! is. There is no in-between.
//!
//! [`TxLog`]: crate::tx::TxLog

use crate::error::PmemError;
use crate::oid::PmemOid;
use crate::pool::PmemPool;
use crate::Result;
use std::sync::Arc;

/// Residency-map magic ("TIERRMAP").
pub const RESIDENCY_MAGIC: u64 = 0x5449_4552_524D_4150;
/// Residency-map format version.
pub const RESIDENCY_VERSION: u32 = 1;
/// Bytes of the map header (magic, version, chunk_count, tier_count).
const MAP_HEADER: u64 = 32;
/// Bytes per chunk entry (a little-endian `u32` tier index).
const ENTRY: u64 = 4;

/// A durable chunk → tier table living inside a pool.
///
/// The map owns a shared handle on its pool (like
/// [`CheckpointRegion::open_root_shared`](crate::CheckpointRegion::open_root_shared))
/// so long-lived tiering state can hold the map and the pool together.
pub struct ResidencyMap {
    pool: Arc<PmemPool>,
    base: u64,
    chunks: usize,
    tier_count: u32,
}

impl std::fmt::Debug for ResidencyMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidencyMap")
            .field("base", &self.base)
            .field("chunks", &self.chunks)
            .field("tier_count", &self.tier_count)
            .finish()
    }
}

impl ResidencyMap {
    /// Bytes the map occupies inside a pool for `chunks` entries.
    pub fn map_size(chunks: usize) -> u64 {
        MAP_HEADER + chunks as u64 * ENTRY
    }

    /// Formats a fresh map holding `initial[i]` as chunk `i`'s tier; every
    /// entry must be below `tier_count`.
    pub fn format(pool: Arc<PmemPool>, tier_count: u32, initial: &[u32]) -> Result<Self> {
        if tier_count == 0 || initial.is_empty() {
            return Err(PmemError::Residency(
                "residency map needs at least one tier and one chunk",
            ));
        }
        if initial.iter().any(|&t| t >= tier_count) {
            return Err(PmemError::Residency("initial tier index out of range"));
        }
        let oid = pool.alloc_bytes(Self::map_size(initial.len()))?;
        let base = oid.offset;
        let mut header = [0u8; MAP_HEADER as usize];
        header[0..8].copy_from_slice(&RESIDENCY_MAGIC.to_le_bytes());
        header[8..12].copy_from_slice(&RESIDENCY_VERSION.to_le_bytes());
        header[16..24].copy_from_slice(&(initial.len() as u64).to_le_bytes());
        header[24..28].copy_from_slice(&tier_count.to_le_bytes());
        pool.write(base, &header)?;
        let mut entries = vec![0u8; initial.len() * ENTRY as usize];
        for (i, &tier) in initial.iter().enumerate() {
            entries[i * 4..i * 4 + 4].copy_from_slice(&tier.to_le_bytes());
        }
        pool.write(base + MAP_HEADER, &entries)?;
        pool.persist(base, Self::map_size(initial.len()))?;
        Ok(ResidencyMap {
            pool,
            base,
            chunks: initial.len(),
            tier_count,
        })
    }

    /// Opens an existing map at `oid` (typically after a pool reopen —
    /// [`PmemPool::open_with_backend`] has already replayed any interrupted
    /// migration record by then).
    pub fn open(pool: Arc<PmemPool>, oid: PmemOid) -> Result<Self> {
        let base = oid.offset;
        let mut header = [0u8; MAP_HEADER as usize];
        pool.read(base, &mut header)?;
        let read64 = |at: usize| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&header[at..at + 8]);
            u64::from_le_bytes(buf)
        };
        if read64(0) != RESIDENCY_MAGIC {
            return Err(PmemError::Residency("residency map magic mismatch"));
        }
        let version = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if version != RESIDENCY_VERSION {
            return Err(PmemError::Residency("unsupported residency map version"));
        }
        let chunks = read64(16) as usize;
        let tier_count = u32::from_le_bytes([header[24], header[25], header[26], header[27]]);
        if chunks == 0 || tier_count == 0 {
            return Err(PmemError::Residency("corrupt residency map header"));
        }
        Ok(ResidencyMap {
            pool,
            base,
            chunks,
            tier_count,
        })
    }

    /// Opens the map registered as the pool's root object.
    pub fn open_root(pool: Arc<PmemPool>) -> Result<Self> {
        let (oid, _) = pool
            .root()
            .ok_or(PmemError::Residency("pool has no root residency map"))?;
        Self::open(pool, oid)
    }

    /// The map's object id (store it in the pool root to reopen later).
    pub fn oid(&self) -> PmemOid {
        PmemOid::new(self.pool.uuid(), self.base)
    }

    /// The pool holding the map.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    /// Number of chunks tracked.
    pub fn chunk_count(&self) -> usize {
        self.chunks
    }

    /// Number of tiers entries may name.
    pub fn tier_count(&self) -> u32 {
        self.tier_count
    }

    fn entry_off(&self, chunk: usize) -> Result<u64> {
        if chunk >= self.chunks {
            return Err(PmemError::Residency("chunk index out of range"));
        }
        Ok(self.base + MAP_HEADER + chunk as u64 * ENTRY)
    }

    /// The tier currently holding `chunk`.
    pub fn tier_of(&self, chunk: usize) -> Result<u32> {
        let off = self.entry_off(chunk)?;
        let mut buf = [0u8; 4];
        self.pool.read(off, &mut buf)?;
        let tier = u32::from_le_bytes(buf);
        if tier >= self.tier_count {
            return Err(PmemError::Residency("residency entry out of range"));
        }
        Ok(tier)
    }

    /// Every chunk's tier, in chunk order.
    pub fn tiers(&self) -> Result<Vec<u32>> {
        (0..self.chunks).map(|c| self.tier_of(c)).collect()
    }

    /// Chunks resident on each tier (index = tier).
    pub fn counts(&self) -> Result<Vec<usize>> {
        let mut counts = vec![0usize; self.tier_count as usize];
        for tier in self.tiers()? {
            counts[tier as usize] += 1;
        }
        Ok(counts)
    }

    /// Commits one migration record: chunk `chunk` moves `from → to`. The
    /// update runs inside a pool transaction, so a crash mid-commit is rolled
    /// back to `from` by recovery — the chunk is never resident on zero or
    /// two tiers. Fails if the entry no longer names `from` (a stale plan).
    pub fn commit_move(&self, chunk: usize, from: u32, to: u32) -> Result<()> {
        if to >= self.tier_count {
            return Err(PmemError::Residency("destination tier out of range"));
        }
        let current = self.tier_of(chunk)?;
        if current != from {
            return Err(PmemError::Residency(
                "migration source does not match current residency",
            ));
        }
        let off = self.entry_off(chunk)?;
        self.pool.run_tx(|tx| tx.write(off, &to.to_le_bytes()))
    }

    /// Runs undo-log recovery on the underlying pool (normally done by pool
    /// open); a migration record stranded by a crash rolls the entry back to
    /// its source tier. Returns `true` if there was anything to roll back.
    pub fn recover(&self) -> Result<bool> {
        self.pool.recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SharedBackend, VolatileBackend};
    use crate::tx::CrashPoint;
    use proptest::prelude::*;

    const POOL_SIZE: u64 = 2 * 1024 * 1024;

    fn shared_pool() -> (VolatileBackend, Arc<PmemPool>) {
        let backend = VolatileBackend::new_persistent(POOL_SIZE);
        let shared: SharedBackend = Arc::new(backend.clone());
        let pool = Arc::new(PmemPool::create_with_backend(shared, "tier").unwrap());
        (backend, pool)
    }

    #[test]
    fn format_open_round_trip() {
        let (backend, pool) = shared_pool();
        let initial = [0u32, 0, 1, 2, 1, 0];
        let map = ResidencyMap::format(Arc::clone(&pool), 3, &initial).unwrap();
        pool.set_root(map.oid(), ResidencyMap::map_size(initial.len()))
            .unwrap();
        assert_eq!(map.chunk_count(), 6);
        assert_eq!(map.tier_count(), 3);
        assert_eq!(map.tiers().unwrap(), initial);
        assert_eq!(map.counts().unwrap(), vec![3, 2, 1]);
        drop(map);
        drop(pool);

        let shared: SharedBackend = Arc::new(backend);
        let reopened = Arc::new(PmemPool::open_with_backend(shared, "tier").unwrap());
        let map = ResidencyMap::open_root(reopened).unwrap();
        assert_eq!(map.tiers().unwrap(), initial);
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let (_, pool) = shared_pool();
        assert!(ResidencyMap::format(Arc::clone(&pool), 0, &[0]).is_err());
        assert!(ResidencyMap::format(Arc::clone(&pool), 2, &[]).is_err());
        assert!(ResidencyMap::format(Arc::clone(&pool), 2, &[0, 2]).is_err());
        let map = ResidencyMap::format(Arc::clone(&pool), 2, &[0, 1]).unwrap();
        assert!(map.tier_of(2).is_err());
        assert!(map.commit_move(0, 0, 2).is_err());
    }

    #[test]
    fn commit_move_flips_exactly_one_entry_and_validates_the_source() {
        let (_, pool) = shared_pool();
        let map = ResidencyMap::format(Arc::clone(&pool), 3, &[0, 0, 0, 0]).unwrap();
        map.commit_move(2, 0, 1).unwrap();
        assert_eq!(map.tiers().unwrap(), vec![0, 0, 1, 0]);
        // A plan computed against stale residency is refused.
        assert!(map.commit_move(2, 0, 2).is_err());
        assert_eq!(map.tier_of(2).unwrap(), 1);
    }

    #[test]
    fn crash_mid_commit_rolls_the_record_back() {
        let (_, pool) = shared_pool();
        let map = ResidencyMap::format(Arc::clone(&pool), 2, &[0, 0]).unwrap();
        map.commit_move(0, 0, 1).unwrap();
        // Tear the next migration record before its commit clears the log.
        pool.set_crash_point(Some(CrashPoint::BeforeCommit));
        assert!(map.commit_move(1, 0, 1).unwrap_err().is_injected_crash());
        assert!(pool.tx_log_active().unwrap(), "stranded migration record");
        assert!(map.recover().unwrap());
        // The torn move rolled back; the earlier committed one survives.
        assert_eq!(map.tiers().unwrap(), vec![1, 0]);
        // The map stays usable: the same move now commits cleanly.
        map.commit_move(1, 0, 1).unwrap();
        assert_eq!(map.tiers().unwrap(), vec![1, 1]);
    }

    #[test]
    fn committed_move_survives_reopen() {
        let (backend, pool) = shared_pool();
        let map = ResidencyMap::format(Arc::clone(&pool), 2, &[0, 0, 0]).unwrap();
        pool.set_root(map.oid(), ResidencyMap::map_size(3)).unwrap();
        map.commit_move(1, 0, 1).unwrap();
        pool.set_crash_point(Some(CrashPoint::BeforeCommit));
        assert!(map.commit_move(2, 0, 1).unwrap_err().is_injected_crash());
        drop(map);
        drop(pool);

        // Pool open replays the stranded record: chunk 2 is back on tier 0,
        // chunk 1 keeps its committed destination.
        let shared: SharedBackend = Arc::new(backend);
        let reopened = Arc::new(PmemPool::open_with_backend(shared, "tier").unwrap());
        let map = ResidencyMap::open_root(reopened).unwrap();
        assert_eq!(map.tiers().unwrap(), vec![0, 1, 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_moves_conserve_chunks(
            chunks in 1usize..24,
            tiers in 1u32..5,
            moves in proptest::collection::vec(any::<u64>(), 0..32),
        ) {
            let (_, pool) = shared_pool();
            let initial: Vec<u32> = (0..chunks).map(|i| i as u32 % tiers).collect();
            let map = ResidencyMap::format(Arc::clone(&pool), tiers, &initial).unwrap();
            for seed in moves {
                let chunk = (seed % chunks as u64) as usize;
                let to = ((seed >> 8) % tiers as u64) as u32;
                let from = map.tier_of(chunk).unwrap();
                map.commit_move(chunk, from, to).unwrap();
            }
            // Every chunk still resident on exactly one in-range tier.
            let all = map.tiers().unwrap();
            prop_assert_eq!(all.len(), chunks);
            prop_assert!(all.iter().all(|&t| t < tiers));
            prop_assert_eq!(map.counts().unwrap().iter().sum::<usize>(), chunks);
        }
    }
}
