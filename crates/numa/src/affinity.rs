//! Thread-placement (affinity) policies.
//!
//! Test group 1.(c) of the paper compares two OpenMP-style affinities when both
//! sockets take part in the STREAM run:
//!
//! * **close** — fill socket 0 entirely before adding cores from socket 1
//!   (`OMP_PROC_BIND=close`);
//! * **spread** — alternate cores between the two sockets
//!   (`OMP_PROC_BIND=spread`).
//!
//! [`AffinityPolicy::place`] converts a policy plus a thread count into a
//! concrete [`ThreadPlacement`]: an ordered list of logical CPUs, one per
//! software thread. The ordering matters because the paper sweeps the thread
//! count from 1 to 20 and each added thread lands on the next CPU of the
//! placement.

use crate::cpuset::CpuSet;
use crate::error::NumaError;
use crate::topology::{SocketId, Topology};
use crate::Result;

/// How software threads are bound to logical CPUs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffinityPolicy {
    /// Fill sockets one after the other, in the given socket order.
    /// `Close { sockets: vec![0, 1] }` reproduces the paper's *close* runs.
    Close {
        /// Sockets in fill order.
        sockets: Vec<SocketId>,
    },
    /// Round-robin threads across the given sockets (the paper's *spread*).
    Spread {
        /// Sockets receiving threads alternately.
        sockets: Vec<SocketId>,
    },
    /// Restrict to a single socket (groups 1.(a), 1.(b), 2.(a)).
    SingleSocket(SocketId),
    /// Explicit CPU list, used verbatim (trailing threads wrap around).
    Explicit(Vec<usize>),
    /// No binding: threads take CPUs 0, 1, 2… in machine order.
    Unbound,
}

impl AffinityPolicy {
    /// Convenience constructor for the paper's two-socket close policy.
    pub fn close() -> Self {
        AffinityPolicy::Close {
            sockets: vec![0, 1],
        }
    }

    /// Convenience constructor for the paper's two-socket spread policy.
    pub fn spread() -> Self {
        AffinityPolicy::Spread {
            sockets: vec![0, 1],
        }
    }

    /// Human-readable label used by the harness legends.
    pub fn label(&self) -> String {
        match self {
            AffinityPolicy::Close { .. } => "close".to_string(),
            AffinityPolicy::Spread { .. } => "spread".to_string(),
            AffinityPolicy::SingleSocket(s) => format!("socket{s}"),
            AffinityPolicy::Explicit(_) => "explicit".to_string(),
            AffinityPolicy::Unbound => "unbound".to_string(),
        }
    }

    /// Produces the placement of `threads` software threads on `topo`.
    ///
    /// Placement uses one hardware thread per physical core first (the paper
    /// runs STREAM with at most one thread per core), and only falls back to
    /// SMT siblings when the request exceeds the physical core count.
    pub fn place(&self, topo: &Topology, threads: usize) -> Result<ThreadPlacement> {
        if threads == 0 {
            return Ok(ThreadPlacement {
                cpus: Vec::new(),
                policy: self.clone(),
            });
        }
        let order = self.cpu_order(topo)?;
        if order.is_empty() {
            return Err(NumaError::EmptyTopology);
        }
        if threads > order.len() {
            return Err(NumaError::PlacementOverflow {
                requested: threads,
                available: order.len(),
            });
        }
        Ok(ThreadPlacement {
            cpus: order[..threads].to_vec(),
            policy: self.clone(),
        })
    }

    /// The full CPU visitation order implied by the policy.
    fn cpu_order(&self, topo: &Topology) -> Result<Vec<usize>> {
        match self {
            AffinityPolicy::Close { sockets } => {
                let mut primaries = Vec::new();
                let mut siblings = Vec::new();
                for &sid in sockets {
                    let socket = topo.socket(sid)?;
                    for &core_id in &socket.cores {
                        let core = topo.core(core_id)?;
                        if let Some((&first, rest)) = core.hw_threads.split_first() {
                            primaries.push(first);
                            siblings.extend_from_slice(rest);
                        }
                    }
                }
                primaries.extend(siblings);
                Ok(primaries)
            }
            AffinityPolicy::Spread { sockets } => {
                // Interleave the per-socket close orders.
                let per_socket: Vec<Vec<usize>> = sockets
                    .iter()
                    .map(|&sid| AffinityPolicy::Close { sockets: vec![sid] }.cpu_order(topo))
                    .collect::<Result<_>>()?;
                let max_len = per_socket.iter().map(|v| v.len()).max().unwrap_or(0);
                let mut out = Vec::new();
                for i in 0..max_len {
                    for socket_order in &per_socket {
                        if let Some(&cpu) = socket_order.get(i) {
                            out.push(cpu);
                        }
                    }
                }
                Ok(out)
            }
            AffinityPolicy::SingleSocket(sid) => AffinityPolicy::Close {
                sockets: vec![*sid],
            }
            .cpu_order(topo),
            AffinityPolicy::Explicit(cpus) => Ok(cpus.clone()),
            AffinityPolicy::Unbound => {
                let mut cpus: Vec<usize> = topo.machine_cpuset().iter().collect();
                cpus.sort_unstable();
                Ok(cpus)
            }
        }
    }
}

/// The result of placing N software threads: one logical CPU per thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPlacement {
    cpus: Vec<usize>,
    policy: AffinityPolicy,
}

impl ThreadPlacement {
    /// Number of placed threads.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Returns `true` when no threads are placed.
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// The logical CPU of thread `i`.
    pub fn cpu_of(&self, thread: usize) -> Option<usize> {
        self.cpus.get(thread).copied()
    }

    /// All CPUs in thread order.
    pub fn cpus(&self) -> &[usize] {
        &self.cpus
    }

    /// The policy this placement was derived from.
    pub fn policy(&self) -> &AffinityPolicy {
        &self.policy
    }

    /// The set of distinct CPUs used.
    pub fn cpuset(&self) -> CpuSet {
        self.cpus.iter().copied().collect()
    }

    /// Number of threads that landed on each socket of `topo`.
    pub fn threads_per_socket(&self, topo: &Topology) -> Vec<usize> {
        let mut counts = vec![0usize; topo.sockets().len()];
        for &cpu in &self.cpus {
            if let Some(sid) = topo.socket_of_cpu(cpu) {
                counts[sid] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::sapphire_rapids_cxl;
    use proptest::prelude::*;

    #[test]
    fn close_fills_socket0_first() {
        let topo = sapphire_rapids_cxl();
        let p = AffinityPolicy::close().place(&topo, 12).unwrap();
        let per_socket = p.threads_per_socket(&topo);
        assert_eq!(per_socket, vec![10, 2]);
        assert_eq!(p.cpu_of(0), Some(0));
        assert_eq!(p.cpu_of(9), Some(9));
        assert_eq!(p.cpu_of(10), Some(10));
    }

    #[test]
    fn spread_alternates_sockets() {
        let topo = sapphire_rapids_cxl();
        let p = AffinityPolicy::spread().place(&topo, 6).unwrap();
        let per_socket = p.threads_per_socket(&topo);
        assert_eq!(per_socket, vec![3, 3]);
        assert_eq!(topo.socket_of_cpu(p.cpu_of(0).unwrap()), Some(0));
        assert_eq!(topo.socket_of_cpu(p.cpu_of(1).unwrap()), Some(1));
        assert_eq!(topo.socket_of_cpu(p.cpu_of(2).unwrap()), Some(0));
    }

    #[test]
    fn single_socket_never_leaves_socket() {
        let topo = sapphire_rapids_cxl();
        let p = AffinityPolicy::SingleSocket(1).place(&topo, 10).unwrap();
        assert!(p
            .cpus()
            .iter()
            .all(|&cpu| topo.socket_of_cpu(cpu) == Some(1)));
    }

    #[test]
    fn physical_cores_used_before_smt_siblings() {
        let topo = sapphire_rapids_cxl();
        let p = AffinityPolicy::close().place(&topo, 20).unwrap();
        // First 20 threads must land on 20 distinct physical cores.
        let mut cores: Vec<_> = p
            .cpus()
            .iter()
            .map(|&cpu| topo.core_of_cpu(cpu).unwrap().id)
            .collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 20);
    }

    #[test]
    fn smt_siblings_are_used_beyond_core_count() {
        let topo = sapphire_rapids_cxl();
        let p = AffinityPolicy::close().place(&topo, 25).unwrap();
        assert_eq!(p.len(), 25);
        let distinct: CpuSet = p.cpus().iter().copied().collect();
        assert_eq!(distinct.len(), 25);
    }

    #[test]
    fn placement_overflow_is_reported() {
        let topo = sapphire_rapids_cxl();
        let err = AffinityPolicy::close().place(&topo, 100).unwrap_err();
        assert!(matches!(err, NumaError::PlacementOverflow { .. }));
    }

    #[test]
    fn zero_threads_is_empty_placement() {
        let topo = sapphire_rapids_cxl();
        let p = AffinityPolicy::close().place(&topo, 0).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn explicit_placement_is_verbatim() {
        let topo = sapphire_rapids_cxl();
        let p = AffinityPolicy::Explicit(vec![3, 17, 5])
            .place(&topo, 3)
            .unwrap();
        assert_eq!(p.cpus(), &[3, 17, 5]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AffinityPolicy::close().label(), "close");
        assert_eq!(AffinityPolicy::spread().label(), "spread");
        assert_eq!(AffinityPolicy::SingleSocket(1).label(), "socket1");
    }

    proptest! {
        #[test]
        fn prop_placement_len_matches_request(threads in 0usize..40) {
            let topo = sapphire_rapids_cxl();
            let p = AffinityPolicy::close().place(&topo, threads).unwrap();
            prop_assert_eq!(p.len(), threads);
        }

        #[test]
        fn prop_no_duplicate_cpus(threads in 1usize..40,
                                  spread in proptest::bool::ANY) {
            let topo = sapphire_rapids_cxl();
            let policy = if spread { AffinityPolicy::spread() } else { AffinityPolicy::close() };
            let p = policy.place(&topo, threads).unwrap();
            prop_assert_eq!(p.cpuset().len(), threads);
        }

        #[test]
        fn prop_spread_is_balanced(threads in 1usize..=20) {
            let topo = sapphire_rapids_cxl();
            let p = AffinityPolicy::spread().place(&topo, threads).unwrap();
            let counts = p.threads_per_socket(&topo);
            let diff = counts[0].abs_diff(counts[1]);
            prop_assert!(diff <= 1, "spread imbalance {counts:?}");
        }
    }
}
