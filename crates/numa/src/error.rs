//! Error type shared by the NUMA model.

use std::fmt;

/// Errors produced while building or querying a NUMA topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumaError {
    /// A socket id referenced a socket that does not exist.
    UnknownSocket(usize),
    /// A NUMA node id referenced a node that does not exist.
    UnknownNode(usize),
    /// A core id referenced a core that does not exist.
    UnknownCore(usize),
    /// A topology was constructed with no compute cores at all.
    EmptyTopology,
    /// The requested thread count cannot be placed with the given policy
    /// (for example more threads than hardware threads with binding enabled).
    PlacementOverflow {
        /// Number of threads requested.
        requested: usize,
        /// Number of placement slots available.
        available: usize,
    },
    /// A distance matrix was given with dimensions that do not match the
    /// number of NUMA nodes.
    MalformedDistanceMatrix {
        /// Number of nodes in the topology.
        nodes: usize,
        /// Number of rows provided.
        rows: usize,
    },
    /// An interleave policy was created with an empty node set.
    EmptyNodeSet,
}

impl fmt::Display for NumaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumaError::UnknownSocket(id) => write!(f, "unknown socket id {id}"),
            NumaError::UnknownNode(id) => write!(f, "unknown NUMA node id {id}"),
            NumaError::UnknownCore(id) => write!(f, "unknown core id {id}"),
            NumaError::EmptyTopology => write!(f, "topology has no compute cores"),
            NumaError::PlacementOverflow {
                requested,
                available,
            } => write!(
                f,
                "cannot place {requested} threads on {available} available hardware threads"
            ),
            NumaError::MalformedDistanceMatrix { nodes, rows } => write!(
                f,
                "distance matrix has {rows} rows but the topology has {nodes} NUMA nodes"
            ),
            NumaError::EmptyNodeSet => write!(f, "memory policy requires a non-empty node set"),
        }
    }
}

impl std::error::Error for NumaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = NumaError::PlacementOverflow {
            requested: 40,
            available: 20,
        };
        let msg = err.to_string();
        assert!(msg.contains("40"));
        assert!(msg.contains("20"));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(NumaError::UnknownNode(2), NumaError::UnknownNode(2));
        assert_ne!(NumaError::UnknownNode(2), NumaError::UnknownNode(3));
    }
}
