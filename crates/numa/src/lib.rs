//! NUMA topology modelling, CPU sets, thread affinity and memory-binding policies.
//!
//! The evaluation in *CXL Memory as Persistent Memory for Disaggregated HPC*
//! (SC'23) is entirely organised around **where threads run** and **where memory
//! lives**: compute cores on socket 0, socket 1 or both, memory on the local
//! socket, the remote socket, or the CXL-attached expander (exposed as a
//! CPU-less NUMA node), with `numactl --membind` selecting the node and
//! OpenMP-style *close*/*spread* affinities selecting the thread placement.
//!
//! This crate provides those concepts as a small, dependency-free model that the
//! rest of the workspace (the memory simulator, the persistent-memory runtime and
//! the STREAM harness) builds on:
//!
//! * [`topology::Topology`] — sockets, cores, hardware threads and NUMA nodes,
//!   including CPU-less memory-only nodes (the CXL expander appears exactly like
//!   that on real Sapphire Rapids + CXL systems).
//! * [`cpuset::CpuSet`] — a compact bit-set of logical CPUs, mirroring
//!   `cpu_set_t` / `hwloc` bitmaps.
//! * [`affinity`] — *close* and *spread* thread-placement policies as described
//!   in §3.2 of the paper (test group 1.(c)).
//! * [`policy::MemBindPolicy`] — `membind` / `interleave` / `preferred`
//!   equivalents of `numactl`.
//! * [`pool::PinnedPool`] — a **persistent** thread pool whose workers carry a
//!   logical core binding: spawned once, parked on an epoch barrier between
//!   kernel invocations, used by the STREAM runner so that each software
//!   thread is attributed to a specific core of the simulated machine without
//!   paying a per-invocation spawn cost.
//!
//! Nothing in this crate touches the operating system scheduler: bindings are
//! *logical*. They drive the analytical memory simulator (`memsim`), which is the
//! substitution this reproduction makes for the paper's physical testbed.
//!
//! The crate denies `unsafe_code` everywhere except [`pool`], whose epoch
//! barrier needs one audited lifetime erasure (see the safety argument in the
//! module docs); that module is covered by the nightly Miri CI job.
//!
//! # Example
//!
//! Place eight threads *close* on the paper's Setup #1 topology — they pack
//! onto socket 0, next to the local DDR5 and the CXL expander's home port:
//!
//! ```
//! use numa::{topology, AffinityPolicy};
//!
//! let topo = topology::sapphire_rapids_cxl();
//! let placement = AffinityPolicy::close().place(&topo, 8).unwrap();
//!
//! assert_eq!(placement.len(), 8);
//! // Every CPU of a close placement lives on the first socket.
//! assert!(placement
//!     .cpus()
//!     .iter()
//!     .all(|&cpu| topo.socket_of_cpu(cpu) == Some(0)));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod cpuset;
pub mod distance;
pub mod error;
pub mod policy;
pub mod pool;
pub mod topology;

pub use affinity::{AffinityPolicy, ThreadPlacement};
pub use cpuset::CpuSet;
pub use distance::DistanceMatrix;
pub use error::NumaError;
pub use policy::MemBindPolicy;
pub use pool::{chunk_for, PinnedPool, WorkerCtx};
pub use topology::{Core, CoreId, NodeId, NumaNode, Socket, SocketId, Topology};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, NumaError>;
