//! A compact bit-set of logical CPUs, mirroring `cpu_set_t`.

use std::fmt;

/// Maximum number of logical CPUs a [`CpuSet`] can describe.
///
/// 1024 matches the glibc `CPU_SETSIZE` default and is far beyond the 40
/// hardware threads of the paper's larger setup.
pub const MAX_CPUS: usize = 1024;

const WORDS: usize = MAX_CPUS / 64;

/// A fixed-size bit-set of logical CPU ids.
///
/// The set is `Copy`-cheap on purpose: affinity masks are passed around freely
/// by the placement code and the STREAM runner.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuSet {
    words: [u64; WORDS],
}

impl Default for CpuSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuSet {
    /// Creates an empty CPU set.
    pub const fn new() -> Self {
        CpuSet { words: [0; WORDS] }
    }

    /// Creates a set containing every CPU in `0..n`.
    pub fn first_n(n: usize) -> Self {
        let mut set = Self::new();
        for cpu in 0..n.min(MAX_CPUS) {
            set.insert(cpu);
        }
        set
    }

    /// Creates a set from an iterator of CPU ids. Ids `>= MAX_CPUS` are ignored.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = Self::new();
        for cpu in iter {
            set.insert(cpu);
        }
        set
    }

    /// Adds a CPU to the set. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, cpu: usize) -> bool {
        if cpu >= MAX_CPUS {
            return false;
        }
        let (w, b) = (cpu / 64, cpu % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes a CPU from the set. Returns `true` if it was present.
    pub fn remove(&mut self, cpu: usize) -> bool {
        if cpu >= MAX_CPUS {
            return false;
        }
        let (w, b) = (cpu / 64, cpu % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Returns `true` if the CPU is in the set.
    pub fn contains(&self, cpu: usize) -> bool {
        if cpu >= MAX_CPUS {
            return false;
        }
        self.words[cpu / 64] & (1 << (cpu % 64)) != 0
    }

    /// Number of CPUs in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no CPUs.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
        out
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
        out
    }

    /// Returns `true` if every CPU of `other` is also in `self`.
    pub fn is_superset(&self, other: &CpuSet) -> bool {
        self.intersection(other) == *other
    }

    /// Iterates over the CPU ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..MAX_CPUS).filter(move |&cpu| self.contains(cpu))
    }

    /// Lowest CPU id in the set, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Highest CPU id in the set, if any.
    pub fn last(&self) -> Option<usize> {
        (0..MAX_CPUS).rev().find(|&cpu| self.contains(cpu))
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet{{{}}}", self.to_list_string())
    }
}

impl CpuSet {
    /// Renders the set in `numactl`/`taskset` list syntax, e.g. `0-9,20-29`.
    pub fn to_list_string(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut run: Option<(usize, usize)> = None;
        for cpu in self.iter() {
            match run {
                Some((start, end)) if cpu == end + 1 => run = Some((start, cpu)),
                Some((start, end)) => {
                    parts.push(render_run(start, end));
                    run = Some((cpu, cpu));
                }
                None => run = Some((cpu, cpu)),
            }
        }
        if let Some((start, end)) = run {
            parts.push(render_run(start, end));
        }
        parts.join(",")
    }

    /// Parses `numactl`/`taskset` list syntax, e.g. `0-9,20-29`.
    pub fn parse_list(s: &str) -> Option<CpuSet> {
        let mut set = CpuSet::new();
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Some(set);
        }
        for part in trimmed.split(',') {
            let part = part.trim();
            if let Some((a, b)) = part.split_once('-') {
                let a: usize = a.trim().parse().ok()?;
                let b: usize = b.trim().parse().ok()?;
                if a > b || b >= MAX_CPUS {
                    return None;
                }
                for cpu in a..=b {
                    set.insert(cpu);
                }
            } else {
                let cpu: usize = part.parse().ok()?;
                if cpu >= MAX_CPUS {
                    return None;
                }
                set.insert(cpu);
            }
        }
        Some(set)
    }
}

fn render_run(start: usize, end: usize) -> String {
    if start == end {
        format!("{start}")
    } else {
        format!("{start}-{end}")
    }
}

impl FromIterator<usize> for CpuSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        CpuSet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_set_has_no_cpus() {
        let set = CpuSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.first(), None);
        assert_eq!(set.last(), None);
    }

    #[test]
    fn insert_and_contains() {
        let mut set = CpuSet::new();
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert!(set.contains(5));
        assert!(!set.contains(4));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn remove_round_trip() {
        let mut set = CpuSet::first_n(10);
        assert!(set.remove(3));
        assert!(!set.remove(3));
        assert!(!set.contains(3));
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        let mut set = CpuSet::new();
        assert!(!set.insert(MAX_CPUS));
        assert!(!set.contains(MAX_CPUS + 5));
        assert!(!set.remove(MAX_CPUS));
    }

    #[test]
    fn union_intersection_difference() {
        let a = CpuSet::from_iter(0..10);
        let b = CpuSet::from_iter(5..15);
        assert_eq!(a.union(&b).len(), 15);
        assert_eq!(a.intersection(&b).len(), 5);
        assert_eq!(a.difference(&b).len(), 5);
        assert!(a.union(&b).is_superset(&a));
        assert!(a.union(&b).is_superset(&b));
    }

    #[test]
    fn list_string_round_trip() {
        let set = CpuSet::from_iter([0, 1, 2, 3, 10, 12, 13, 20]);
        let s = set.to_list_string();
        assert_eq!(s, "0-3,10,12-13,20");
        assert_eq!(CpuSet::parse_list(&s), Some(set));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CpuSet::parse_list("3-1").is_none());
        assert!(CpuSet::parse_list("a-b").is_none());
        assert!(CpuSet::parse_list("99999").is_none());
        assert_eq!(CpuSet::parse_list(""), Some(CpuSet::new()));
    }

    #[test]
    fn iter_is_sorted_ascending() {
        let set = CpuSet::from_iter([9, 1, 4, 2]);
        let ids: Vec<_> = set.iter().collect();
        assert_eq!(ids, vec![1, 2, 4, 9]);
    }

    proptest! {
        #[test]
        fn prop_list_round_trip(ids in proptest::collection::btree_set(0usize..256, 0..64)) {
            let set = CpuSet::from_iter(ids.iter().copied());
            let rendered = set.to_list_string();
            prop_assert_eq!(CpuSet::parse_list(&rendered), Some(set));
            prop_assert_eq!(set.len(), ids.len());
        }

        #[test]
        fn prop_union_contains_both(a in proptest::collection::vec(0usize..256, 0..32),
                                    b in proptest::collection::vec(0usize..256, 0..32)) {
            let sa = CpuSet::from_iter(a.iter().copied());
            let sb = CpuSet::from_iter(b.iter().copied());
            let u = sa.union(&sb);
            for &cpu in a.iter().chain(b.iter()) {
                prop_assert!(u.contains(cpu));
            }
            prop_assert!(u.len() <= sa.len() + sb.len());
        }

        #[test]
        fn prop_difference_disjoint_from_other(a in proptest::collection::vec(0usize..128, 0..32),
                                               b in proptest::collection::vec(0usize..128, 0..32)) {
            let sa = CpuSet::from_iter(a);
            let sb = CpuSet::from_iter(b);
            let d = sa.difference(&sb);
            prop_assert!(d.intersection(&sb).is_empty());
            prop_assert!(sa.is_superset(&d));
        }
    }
}
