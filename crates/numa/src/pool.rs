//! A thread pool whose workers carry a logical CPU binding.
//!
//! The STREAM runner needs OpenMP-like semantics: N worker threads, each bound
//! to a specific logical CPU, executing the same kernel over disjoint chunks and
//! meeting at a barrier. [`PinnedPool`] provides exactly that. The binding is
//! *logical* — it is recorded and passed to the worker closure so that the
//! memory simulator can attribute the worker's traffic to the right core — but
//! the pool also exercises real OS threads so the kernels genuinely run in
//! parallel on the host.

use crate::affinity::ThreadPlacement;
use crate::topology::Topology;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Context handed to every worker closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCtx {
    /// Index of the worker thread (0-based, dense).
    pub thread: usize,
    /// Logical CPU this worker is bound to.
    pub cpu: usize,
    /// Socket of that CPU.
    pub socket: usize,
    /// NUMA node of that CPU.
    pub node: usize,
    /// Total number of workers participating.
    pub nthreads: usize,
}

impl WorkerCtx {
    /// Splits `len` items into this worker's contiguous `[start, end)` chunk,
    /// distributing the remainder over the first workers (OpenMP static
    /// scheduling with chunk size `len / nthreads`).
    pub fn chunk(&self, len: usize) -> (usize, usize) {
        chunk_for(self.thread, self.nthreads, len)
    }
}

/// Computes the static-schedule chunk `[start, end)` of worker `thread` out of
/// `nthreads` over `len` items.
pub fn chunk_for(thread: usize, nthreads: usize, len: usize) -> (usize, usize) {
    if nthreads == 0 || thread >= nthreads {
        return (0, 0);
    }
    let base = len / nthreads;
    let rem = len % nthreads;
    let start = thread * base + thread.min(rem);
    let extra = usize::from(thread < rem);
    (start, start + base + extra)
}

/// A pool of logically pinned workers created from a [`ThreadPlacement`].
#[derive(Debug)]
pub struct PinnedPool {
    workers: Vec<WorkerCtx>,
}

impl PinnedPool {
    /// Builds a pool from a placement over a topology.
    pub fn new(topo: &Topology, placement: &ThreadPlacement) -> Self {
        let n = placement.len();
        let workers = placement
            .cpus()
            .iter()
            .enumerate()
            .map(|(thread, &cpu)| WorkerCtx {
                thread,
                cpu,
                socket: topo.socket_of_cpu(cpu).unwrap_or(0),
                node: topo.node_of_cpu(cpu).unwrap_or(0),
                nthreads: n,
            })
            .collect();
        PinnedPool { workers }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Returns `true` when the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Worker contexts in thread order.
    pub fn workers(&self) -> &[WorkerCtx] {
        &self.workers
    }

    /// Runs `f` once per worker **in parallel** on real OS threads and collects
    /// the return values in thread order.
    ///
    /// `f` must be `Sync` because all workers borrow it concurrently.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(WorkerCtx) -> R + Sync,
    {
        if self.workers.is_empty() {
            return Vec::new();
        }
        let mut results: Vec<Option<R>> = (0..self.workers.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers.len());
            for (slot, ctx) in results.iter_mut().zip(self.workers.iter().copied()) {
                let f = &f;
                handles.push(scope.spawn(move || {
                    *slot = Some(f(ctx));
                }));
            }
            for handle in handles {
                handle.join().expect("pinned worker panicked");
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker produced a result"))
            .collect()
    }

    /// Runs `f` once per worker sequentially (deterministic order). Useful for
    /// tests and for driving the analytical simulator where real parallelism
    /// adds nothing.
    pub fn run_sequential<R, F>(&self, mut f: F) -> Vec<R>
    where
        F: FnMut(WorkerCtx) -> R,
    {
        self.workers.iter().copied().map(&mut f).collect()
    }
}

/// A reusable barrier + shared accumulator used by multi-phase kernels.
///
/// STREAM repeats each kernel `ntimes` times with an implicit barrier between
/// repetitions; [`PhaseAccumulator`] gives workers a place to publish their
/// per-phase timings without locking on the hot path (only on phase end).
#[derive(Debug)]
pub struct PhaseAccumulator {
    phases: Mutex<Vec<Vec<f64>>>,
    completed: AtomicUsize,
}

impl PhaseAccumulator {
    /// Creates an accumulator for `nthreads` workers.
    pub fn new() -> Arc<Self> {
        Arc::new(PhaseAccumulator {
            phases: Mutex::new(Vec::new()),
            completed: AtomicUsize::new(0),
        })
    }

    /// Records one worker's measurement for phase `phase`.
    pub fn record(&self, phase: usize, value: f64) {
        let mut phases = self.phases.lock();
        while phases.len() <= phase {
            phases.push(Vec::new());
        }
        phases[phase].push(value);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples across all phases.
    pub fn samples(&self) -> usize {
        self.completed.load(Ordering::Relaxed)
    }

    /// The maximum recorded value of a phase (e.g. the slowest worker's time),
    /// if the phase has any samples.
    pub fn phase_max(&self, phase: usize) -> Option<f64> {
        let phases = self.phases.lock();
        phases
            .get(phase)?
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }

    /// The mean recorded value of a phase.
    pub fn phase_mean(&self, phase: usize) -> Option<f64> {
        let phases = self.phases.lock();
        let values = phases.get(phase)?;
        if values.is_empty() {
            return None;
        }
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::AffinityPolicy;
    use crate::topology::sapphire_rapids_cxl;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(threads: usize) -> (Topology, PinnedPool) {
        let topo = sapphire_rapids_cxl();
        let placement = AffinityPolicy::close().place(&topo, threads).unwrap();
        let pool = PinnedPool::new(&topo, &placement);
        (topo, pool)
    }

    #[test]
    fn workers_carry_correct_socket_and_node() {
        let (_, pool) = pool(12);
        assert_eq!(pool.len(), 12);
        assert_eq!(pool.workers()[0].socket, 0);
        assert_eq!(pool.workers()[0].node, 0);
        assert_eq!(pool.workers()[11].socket, 1);
        assert_eq!(pool.workers()[11].node, 1);
    }

    #[test]
    fn run_executes_every_worker_in_parallel() {
        let (_, pool) = pool(8);
        let counter = AtomicUsize::new(0);
        let results = pool.run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.thread * 10
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_sequential_matches_parallel_results() {
        let (_, pool) = pool(5);
        let par = pool.run(|ctx| ctx.cpu);
        let seq = pool.run_sequential(|ctx| ctx.cpu);
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_pool_runs_nothing() {
        let (_, pool) = pool(0);
        assert!(pool.is_empty());
        let out: Vec<usize> = pool.run(|_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_cover_range_without_overlap() {
        let (_, pool) = pool(7);
        let len = 1003;
        let chunks = pool.run_sequential(|ctx| ctx.chunk(len));
        let mut covered = 0usize;
        for (i, &(start, end)) in chunks.iter().enumerate() {
            assert!(start <= end);
            covered += end - start;
            if i > 0 {
                assert_eq!(chunks[i - 1].1, start, "chunks must be contiguous");
            }
        }
        assert_eq!(covered, len);
        assert_eq!(chunks.first().unwrap().0, 0);
        assert_eq!(chunks.last().unwrap().1, len);
    }

    #[test]
    fn chunk_for_degenerate_cases() {
        assert_eq!(chunk_for(0, 0, 100), (0, 0));
        assert_eq!(chunk_for(5, 3, 100), (0, 0));
        assert_eq!(chunk_for(0, 1, 0), (0, 0));
        assert_eq!(chunk_for(0, 4, 2), (0, 1));
        assert_eq!(chunk_for(3, 4, 2), (2, 2));
    }

    #[test]
    fn phase_accumulator_tracks_max_and_mean() {
        let acc = PhaseAccumulator::new();
        acc.record(0, 1.0);
        acc.record(0, 3.0);
        acc.record(1, 5.0);
        assert_eq!(acc.samples(), 3);
        assert_eq!(acc.phase_max(0), Some(3.0));
        assert_eq!(acc.phase_mean(0), Some(2.0));
        assert_eq!(acc.phase_max(1), Some(5.0));
        assert_eq!(acc.phase_max(2), None);
    }

    proptest! {
        #[test]
        fn prop_chunks_partition_any_length(nthreads in 1usize..32, len in 0usize..10_000) {
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for t in 0..nthreads {
                let (start, end) = chunk_for(t, nthreads, len);
                prop_assert_eq!(start, prev_end);
                prop_assert!(end >= start);
                covered += end - start;
                prev_end = end;
            }
            prop_assert_eq!(covered, len);
            prop_assert_eq!(prev_end, len);
        }

        #[test]
        fn prop_chunk_sizes_differ_by_at_most_one(nthreads in 1usize..32, len in 0usize..10_000) {
            let sizes: Vec<usize> = (0..nthreads)
                .map(|t| { let (s, e) = chunk_for(t, nthreads, len); e - s })
                .collect();
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
