//! A persistent thread pool whose workers carry a logical CPU binding.
//!
//! The STREAM runner needs OpenMP-like semantics: N worker threads, each bound
//! to a specific logical CPU, executing the same kernel over disjoint chunks
//! and meeting at a barrier. [`PinnedPool`] provides exactly that. The binding
//! is *logical* — it is recorded and passed to the worker closure so that the
//! memory simulator can attribute the worker's traffic to the right core — but
//! the pool also exercises real OS threads so the kernels genuinely run in
//! parallel on the host.
//!
//! # Lifecycle: resident workers, epoch barrier
//!
//! STREAM repeats every kernel `ntimes` with an implicit barrier between
//! repetitions, so the per-iteration cost is exactly what the bandwidth
//! numbers are made of. An earlier revision of this pool spawned fresh scoped
//! threads inside every [`PinnedPool::run`]; at small array sizes the spawn
//! cost dominated the measurement. The pool is now **persistent**:
//!
//! * `N` workers are spawned once in [`PinnedPool::new`] and keep their
//!   [`WorkerCtx`] (the logical pinning from the affinity layer) for the whole
//!   pool lifetime;
//! * idle workers park on an **epoch barrier** (a mutex + condvar pair);
//!   publishing a job bumps the epoch counter and wakes all of them;
//! * each invocation hands the workers one **job slot** — a type-erased
//!   pointer to the caller's closure, valid strictly for that epoch — and the
//!   submitter blocks until every worker has checked back in;
//! * a panicking worker is caught, its payload is carried across the barrier,
//!   and [`resume_unwind`]ed in the submitter; the worker thread itself
//!   survives, so the pool stays usable after a propagated panic;
//! * dropping the pool raises the shutdown flag, wakes every worker and joins
//!   them all.
//!
//! # Safety argument
//!
//! The job slot stores a raw `*const (dyn Fn(WorkerCtx) + Sync)` whose pointee
//! lives on the submitting caller's stack, which is the one place `unsafe` is
//! needed (the crate is otherwise `deny(unsafe_code)`). The erasure is sound
//! because the pointer's validity window is bracketed by the epoch barrier,
//! by construction rather than by caller discipline:
//!
//! 1. **Publication happens-before execution** — the pointer is written into
//!    the slot and the epoch bumped under the state mutex; workers read both
//!    under the same mutex, so a worker only ever dereferences a pointer for
//!    the epoch it observed.
//! 2. **The pointee outlives every dereference** — [`PinnedPool::run`] does
//!    not return (and therefore the closure and the result slots it points
//!    into cannot be dropped) until `remaining == 0`, i.e. until every worker
//!    has finished the call and checked in under the mutex. The slot is
//!    cleared before the submitter returns, so no stale pointer survives an
//!    epoch.
//! 3. **One epoch in flight at a time** — a private submitter mutex is held
//!    for the whole publish→drain window, so two concurrent `run` calls
//!    serialise instead of racing on the slot.
//! 4. **Result writes don't alias** — each worker writes only result slot
//!    `ctx.thread`, worker indices are dense and distinct, and the submitter
//!    reads the slots only after the barrier (the state mutex orders the
//!    writes before the reads).
//!
//! Re-entrant submission (calling `run` from inside a worker closure) would
//! deadlock on the barrier and is not supported; the sequential fallback
//! [`PinnedPool::run_sequential`] never takes the barrier at all.
//!
//! The pool and its epoch protocol are exercised under Miri in CI (see the
//! `miri` workflow job) alongside the raw-pointer partitioning in
//! `stream-bench`.
//!
//! [`resume_unwind`]: std::panic::resume_unwind

#![allow(unsafe_code)]

use crate::affinity::ThreadPlacement;
use crate::topology::Topology;
use parking_lot::Mutex as PhaseMutex;
use std::any::Any;
use std::cell::UnsafeCell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Context handed to every worker closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCtx {
    /// Index of the worker thread (0-based, dense).
    pub thread: usize,
    /// Logical CPU this worker is bound to.
    pub cpu: usize,
    /// Socket of that CPU.
    pub socket: usize,
    /// NUMA node of that CPU.
    pub node: usize,
    /// Total number of workers participating.
    pub nthreads: usize,
}

impl WorkerCtx {
    /// Splits `len` items into this worker's contiguous `[start, end)` chunk,
    /// distributing the remainder over the first workers (OpenMP static
    /// scheduling with chunk size `len / nthreads`).
    pub fn chunk(&self, len: usize) -> (usize, usize) {
        chunk_for(self.thread, self.nthreads, len)
    }
}

/// Computes the static-schedule chunk `[start, end)` of worker `thread` out of
/// `nthreads` over `len` items.
pub fn chunk_for(thread: usize, nthreads: usize, len: usize) -> (usize, usize) {
    if nthreads == 0 || thread >= nthreads {
        return (0, 0);
    }
    let base = len / nthreads;
    let rem = len % nthreads;
    let start = thread * base + thread.min(rem);
    let extra = usize::from(thread < rem);
    (start, start + base + extra)
}

/// The type-erased per-epoch job: a pointer to the submitter's closure.
///
/// The pointee lives on the stack of the `run` call that published it and is
/// guaranteed valid until every worker has checked in for the epoch (see the
/// module-level safety argument).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(WorkerCtx) + Sync));

// SAFETY: the pointer crosses threads only between publication and the epoch
// barrier, while the submitter keeps the pointee alive; the pointee is `Sync`,
// so concurrent shared calls through it are sound.
unsafe impl Send for JobPtr {}

/// Epoch-barrier state shared between the submitter and the resident workers.
struct EpochState {
    /// Monotonically increasing epoch counter; a bump publishes a job.
    epoch: u64,
    /// The job for the in-flight epoch, if any.
    job: Option<JobPtr>,
    /// Workers that have not yet finished the in-flight epoch.
    remaining: usize,
    /// Raised by `Drop` to park out every worker.
    shutdown: bool,
    /// Panic payloads captured from workers during the in-flight epoch.
    panics: Vec<(usize, Box<dyn Any + Send>)>,
}

struct PoolShared {
    state: Mutex<EpochState>,
    /// Workers park here waiting for the next epoch (or shutdown).
    work: Condvar,
    /// The submitter parks here waiting for the epoch to drain.
    done: Condvar,
}

impl PoolShared {
    /// Locks the epoch state, neutralising poison: panics never unwind while
    /// the lock is held (worker panics are caught outside it), and a poisoned
    /// barrier must still be usable so `Drop` can shut the workers down.
    fn lock(&self) -> MutexGuard<'_, EpochState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn worker_loop(ctx: WorkerCtx, shared: Arc<PoolShared>) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != last_epoch {
                    break;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            last_epoch = state.epoch;
            state.job.expect("a published epoch carries a job")
        };
        // SAFETY: the submitter that published `job` blocks until this worker
        // (and every other) checks in below, so the pointee is alive for the
        // whole call — see the module-level safety argument, point 2.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(ctx) }));
        let mut state = shared.lock();
        if let Err(payload) = outcome {
            state.panics.push((ctx.thread, payload));
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// A persistent pool of logically pinned workers created from a
/// [`ThreadPlacement`].
///
/// Workers are spawned once at construction, bound (logically) to their CPUs
/// once, and then parked on a reusable epoch barrier; [`run`](Self::run)
/// costs one barrier round-trip instead of N thread spawns. See the module
/// docs for the lifecycle and the safety argument.
pub struct PinnedPool {
    workers: Vec<WorkerCtx>,
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Serialises submitters: at most one epoch is in flight at a time.
    submit: Mutex<()>,
}

impl fmt::Debug for PinnedPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PinnedPool")
            .field("workers", &self.workers)
            .field("resident", &self.handles.len())
            .finish()
    }
}

impl PinnedPool {
    /// Builds a pool from a placement over a topology, spawning (and logically
    /// pinning) one resident worker per placed thread.
    pub fn new(topo: &Topology, placement: &ThreadPlacement) -> Self {
        let n = placement.len();
        let workers: Vec<WorkerCtx> = placement
            .cpus()
            .iter()
            .enumerate()
            .map(|(thread, &cpu)| WorkerCtx {
                thread,
                cpu,
                socket: topo.socket_of_cpu(cpu).unwrap_or(0),
                node: topo.node_of_cpu(cpu).unwrap_or(0),
                nthreads: n,
            })
            .collect();
        let shared = Arc::new(PoolShared {
            state: Mutex::new(EpochState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panics: Vec::new(),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = workers
            .iter()
            .copied()
            .map(|ctx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pinned-{}-cpu{}", ctx.thread, ctx.cpu))
                    .spawn(move || worker_loop(ctx, shared))
                    .expect("spawn pinned worker")
            })
            .collect();
        PinnedPool {
            workers,
            shared,
            handles,
            submit: Mutex::new(()),
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Returns `true` when the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Worker contexts in thread order.
    pub fn workers(&self) -> &[WorkerCtx] {
        &self.workers
    }

    /// Runs `f` once per worker **in parallel** on the resident worker threads
    /// and collects the return values in thread order.
    ///
    /// No threads are spawned: the call publishes one epoch on the barrier,
    /// wakes the parked workers and blocks until all of them check back in.
    /// Concurrent `run` calls from different threads serialise; calling `run`
    /// from inside a worker closure deadlocks and is not supported.
    ///
    /// `f` must be `Sync` because all workers borrow it concurrently.
    ///
    /// # Panics
    ///
    /// If a worker closure panics, the first panic payload is re-raised here
    /// after the epoch drains; the pool remains usable afterwards.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(WorkerCtx) -> R + Sync,
    {
        let n = self.workers.len();
        if n == 0 {
            return Vec::new();
        }
        // One result slot per worker; worker `t` writes only slot `t`, and the
        // submitter reads the slots only after the barrier (point 4 of the
        // module-level safety argument).
        struct Slots<'s, R>(&'s [UnsafeCell<Option<R>>]);
        // SAFETY: slot writes are disjoint per worker and ordered against the
        // submitter's reads by the state mutex.
        unsafe impl<R: Send> Sync for Slots<'_, R> {}
        impl<R> Slots<'_, R> {
            /// # Safety
            /// The caller must be the sole writer of slot `index` this epoch.
            unsafe fn put(&self, index: usize, value: R) {
                *self.0[index].get() = Some(value);
            }
        }
        let results: Vec<UnsafeCell<Option<R>>> = (0..n).map(|_| UnsafeCell::new(None)).collect();
        let slots = Slots(&results);
        let call = move |ctx: WorkerCtx| {
            let value = f(ctx);
            // SAFETY: worker `ctx.thread` is the sole writer of this slot for
            // the epoch (worker indices are dense and distinct).
            unsafe { slots.put(ctx.thread, value) };
        };
        // SAFETY (lifetime erasure): the transmute only widens the trait
        // object's lifetime bound to the `'static` default of `JobPtr`'s
        // field — a plain `as` cast cannot do this (it would instead force
        // `R: 'static` + `F: 'static` through inference). The pointee is
        // never outlived: `call` and `results` stay alive on this frame until
        // the epoch drains below.
        let job = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(WorkerCtx) + Sync), *const (dyn Fn(WorkerCtx) + Sync)>(
                &call,
            )
        });
        let first_panic = {
            let _epoch_exclusive = self.submit.lock().unwrap_or_else(PoisonError::into_inner);
            let mut state = self.shared.lock();
            debug_assert_eq!(state.remaining, 0, "previous epoch fully drained");
            state.job = Some(job);
            state.remaining = n;
            state.epoch = state.epoch.wrapping_add(1);
            self.shared.work.notify_all();
            while state.remaining > 0 {
                state = self
                    .shared
                    .done
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            state.job = None;
            let mut panics = std::mem::take(&mut state.panics);
            drop(state);
            if panics.is_empty() {
                None
            } else {
                panics.sort_by_key(|(thread, _)| *thread);
                Some(panics.swap_remove(0))
            }
        };
        if let Some((_thread, payload)) = first_panic {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker produced a result"))
            .collect()
    }

    /// Runs `f` once per worker sequentially (deterministic order) on the
    /// calling thread, without touching the barrier. Useful for tests and for
    /// driving the analytical simulator where real parallelism adds nothing.
    pub fn run_sequential<R, F>(&self, mut f: F) -> Vec<R>
    where
        F: FnMut(WorkerCtx) -> R,
    {
        self.workers.iter().copied().map(&mut f).collect()
    }
}

impl Drop for PinnedPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a job (impossible today — the
            // loop catches job panics) would surface here; ignore so Drop
            // never double-panics.
            let _ = handle.join();
        }
    }
}

/// A reusable barrier + shared accumulator used by multi-phase kernels.
///
/// STREAM repeats each kernel `ntimes` times with an implicit barrier between
/// repetitions; [`PhaseAccumulator`] gives workers a place to publish their
/// per-phase timings without locking on the hot path (only on phase end).
#[derive(Debug)]
pub struct PhaseAccumulator {
    phases: PhaseMutex<Vec<Vec<f64>>>,
    completed: AtomicUsize,
}

impl PhaseAccumulator {
    /// Creates an accumulator for `nthreads` workers.
    pub fn new() -> Arc<Self> {
        Arc::new(PhaseAccumulator {
            phases: PhaseMutex::new(Vec::new()),
            completed: AtomicUsize::new(0),
        })
    }

    /// Records one worker's measurement for phase `phase`.
    pub fn record(&self, phase: usize, value: f64) {
        let mut phases = self.phases.lock();
        while phases.len() <= phase {
            phases.push(Vec::new());
        }
        phases[phase].push(value);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples across all phases.
    pub fn samples(&self) -> usize {
        self.completed.load(Ordering::Relaxed)
    }

    /// The maximum recorded value of a phase (e.g. the slowest worker's time),
    /// if the phase has any samples.
    pub fn phase_max(&self, phase: usize) -> Option<f64> {
        let phases = self.phases.lock();
        phases
            .get(phase)?
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }

    /// The mean recorded value of a phase.
    pub fn phase_mean(&self, phase: usize) -> Option<f64> {
        let phases = self.phases.lock();
        let values = phases.get(phase)?;
        if values.is_empty() {
            return None;
        }
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::AffinityPolicy;
    use crate::topology::sapphire_rapids_cxl;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(threads: usize) -> (Topology, PinnedPool) {
        let topo = sapphire_rapids_cxl();
        let placement = AffinityPolicy::close().place(&topo, threads).unwrap();
        let pool = PinnedPool::new(&topo, &placement);
        (topo, pool)
    }

    #[test]
    fn workers_carry_correct_socket_and_node() {
        let (_, pool) = pool(12);
        assert_eq!(pool.len(), 12);
        assert_eq!(pool.workers()[0].socket, 0);
        assert_eq!(pool.workers()[0].node, 0);
        assert_eq!(pool.workers()[11].socket, 1);
        assert_eq!(pool.workers()[11].node, 1);
    }

    #[test]
    fn run_executes_every_worker_in_parallel() {
        let (_, pool) = pool(8);
        let counter = AtomicUsize::new(0);
        let results = pool.run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.thread * 10
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn workers_are_resident_across_invocations() {
        // The whole point of the persistent pool: `run` must dispatch to the
        // same OS threads every time instead of spawning fresh ones.
        let (_, pool) = pool(4);
        let first = pool.run(|_| std::thread::current().id());
        for _ in 0..3 {
            assert_eq!(pool.run(|_| std::thread::current().id()), first);
        }
        let submitter = std::thread::current().id();
        assert!(first.iter().all(|&id| id != submitter));
        let mut distinct: Vec<String> = first.iter().map(|id| format!("{id:?}")).collect();
        distinct.sort();
        distinct.dedup();
        assert_eq!(distinct.len(), 4, "four distinct resident workers");
    }

    #[test]
    fn epoch_barrier_reuse_matches_sequential_over_many_rounds() {
        let (_, pool) = pool(6);
        for round in 1..=5usize {
            let par = pool.run(|ctx| (ctx.cpu + 1) * round);
            let seq = pool.run_sequential(|ctx| (ctx.cpu + 1) * round);
            assert_eq!(par, seq, "round {round} diverged");
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_stays_usable() {
        let (_, pool) = pool(4);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.thread == 2 {
                    panic!("worker {} exploded", ctx.thread);
                }
                ctx.thread
            })
        }));
        let payload = outcome.expect_err("panic must propagate to the submitter");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("worker 2 exploded"), "payload: {message}");
        // The epoch drained and the workers survived: the pool is reusable.
        assert_eq!(pool.run(|ctx| ctx.thread), vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_workers_panicking_still_drains_the_epoch() {
        let (_, pool) = pool(3);
        for _ in 0..2 {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|ctx| panic!("thread {}", ctx.thread))
            }));
            assert!(outcome.is_err());
        }
        assert_eq!(pool.run(|ctx| ctx.thread), vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_submitters_serialise_cleanly() {
        let (_, pool) = pool(4);
        let pool = &pool;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..8 {
                        assert_eq!(pool.run(|ctx| ctx.thread), vec![0, 1, 2, 3]);
                    }
                });
            }
        });
    }

    #[test]
    fn drop_joins_all_workers_without_deadlock() {
        let (_, pool) = pool(8);
        pool.run(|_| ());
        drop(pool); // must return: shutdown wakes and joins every worker
    }

    #[test]
    fn drop_without_ever_running_joins_cleanly() {
        let (_, pool) = pool(5);
        drop(pool);
    }

    #[test]
    fn run_sequential_matches_parallel_results() {
        let (_, pool) = pool(5);
        let par = pool.run(|ctx| ctx.cpu);
        let seq = pool.run_sequential(|ctx| ctx.cpu);
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_pool_runs_nothing() {
        let (_, pool) = pool(0);
        assert!(pool.is_empty());
        let out: Vec<usize> = pool.run(|_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_cover_range_without_overlap() {
        let (_, pool) = pool(7);
        let len = 1003;
        let chunks = pool.run_sequential(|ctx| ctx.chunk(len));
        let mut covered = 0usize;
        for (i, &(start, end)) in chunks.iter().enumerate() {
            assert!(start <= end);
            covered += end - start;
            if i > 0 {
                assert_eq!(chunks[i - 1].1, start, "chunks must be contiguous");
            }
        }
        assert_eq!(covered, len);
        assert_eq!(chunks.first().unwrap().0, 0);
        assert_eq!(chunks.last().unwrap().1, len);
    }

    #[test]
    fn chunk_for_degenerate_cases() {
        assert_eq!(chunk_for(0, 0, 100), (0, 0));
        assert_eq!(chunk_for(5, 3, 100), (0, 0));
        assert_eq!(chunk_for(0, 1, 0), (0, 0));
        assert_eq!(chunk_for(0, 4, 2), (0, 1));
        assert_eq!(chunk_for(3, 4, 2), (2, 2));
    }

    #[test]
    fn phase_accumulator_tracks_max_and_mean() {
        let acc = PhaseAccumulator::new();
        acc.record(0, 1.0);
        acc.record(0, 3.0);
        acc.record(1, 5.0);
        assert_eq!(acc.samples(), 3);
        assert_eq!(acc.phase_max(0), Some(3.0));
        assert_eq!(acc.phase_mean(0), Some(2.0));
        assert_eq!(acc.phase_max(1), Some(5.0));
        assert_eq!(acc.phase_max(2), None);
    }

    proptest! {
        #[test]
        fn prop_chunks_partition_any_length(nthreads in 1usize..32, len in 0usize..10_000) {
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for t in 0..nthreads {
                let (start, end) = chunk_for(t, nthreads, len);
                prop_assert_eq!(start, prev_end);
                prop_assert!(end >= start);
                covered += end - start;
                prev_end = end;
            }
            prop_assert_eq!(covered, len);
            prop_assert_eq!(prev_end, len);
        }

        #[test]
        fn prop_chunk_sizes_differ_by_at_most_one(nthreads in 1usize..32, len in 0usize..10_000) {
            let sizes: Vec<usize> = (0..nthreads)
                .map(|t| { let (s, e) = chunk_for(t, nthreads, len); e - s })
                .collect();
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
