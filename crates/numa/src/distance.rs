//! ACPI SLIT-style NUMA distance matrices.

use crate::error::NumaError;
use crate::topology::{NodeId, NumaNode};
use crate::Result;

/// Distance of a node to itself in SLIT units.
pub const LOCAL_DISTANCE: u32 = 10;
/// Default distance between two compute sockets connected by UPI.
pub const CROSS_SOCKET_DISTANCE: u32 = 21;
/// Default distance from a compute socket to a memory-only (CXL/PMem) node.
pub const EXPANDER_DISTANCE: u32 = 31;

/// A square matrix of relative access distances between NUMA nodes,
/// following the ACPI SLIT convention where the local distance is 10.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    rows: Vec<Vec<u32>>,
}

impl DistanceMatrix {
    /// Builds a matrix from explicit rows. Every row must have the same length
    /// as the number of rows.
    pub fn from_rows(rows: Vec<Vec<u32>>) -> Result<Self> {
        let n = rows.len();
        if rows.iter().any(|r| r.len() != n) {
            return Err(NumaError::MalformedDistanceMatrix { nodes: n, rows: n });
        }
        Ok(DistanceMatrix { rows })
    }

    /// Derives a default matrix for a node list: 10 on the diagonal, 21 between
    /// compute nodes, 31 between a compute node and a memory-only node (and
    /// between two memory-only nodes, which never happens in practice).
    pub fn default_for(nodes: &[NumaNode]) -> Self {
        let n = nodes.len();
        let mut rows = vec![vec![LOCAL_DISTANCE; n]; n];
        for (i, a) in nodes.iter().enumerate() {
            for (j, b) in nodes.iter().enumerate() {
                if i == j {
                    rows[i][j] = LOCAL_DISTANCE;
                } else if a.is_cpuless() || b.is_cpuless() {
                    rows[i][j] = EXPANDER_DISTANCE;
                } else {
                    rows[i][j] = CROSS_SOCKET_DISTANCE;
                }
            }
        }
        DistanceMatrix { rows }
    }

    /// Number of nodes described by the matrix.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the matrix describes no nodes.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distance from `from` to `to`, if both nodes exist.
    pub fn get(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.rows.get(from)?.get(to).copied()
    }

    /// Returns the nearest node to `from` among `candidates` (ties broken by id).
    pub fn nearest(&self, from: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .filter_map(|c| self.get(from, c).map(|d| (d, c)))
            .min()
            .map(|(_, c)| c)
    }

    /// Renders the matrix like `numactl --hardware` does.
    pub fn render(&self) -> String {
        let n = self.len();
        let mut out = String::from("node ");
        for j in 0..n {
            out.push_str(&format!("{j:>4}"));
        }
        out.push('\n');
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("{i:>4}:"));
            for d in row {
                out.push_str(&format!("{d:>4}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NumaNode;
    use proptest::prelude::*;

    fn nodes(compute: usize, memory_only: usize) -> Vec<NumaNode> {
        let mut out = Vec::new();
        for id in 0..compute {
            out.push(NumaNode {
                id,
                cores: vec![id],
                mem_bytes: 1 << 30,
                label: format!("ddr{id}"),
            });
        }
        for k in 0..memory_only {
            out.push(NumaNode {
                id: compute + k,
                cores: vec![],
                mem_bytes: 1 << 30,
                label: format!("cxl{k}"),
            });
        }
        out
    }

    #[test]
    fn default_matrix_has_slit_structure() {
        let m = DistanceMatrix::default_for(&nodes(2, 1));
        assert_eq!(m.get(0, 0), Some(LOCAL_DISTANCE));
        assert_eq!(m.get(0, 1), Some(CROSS_SOCKET_DISTANCE));
        assert_eq!(m.get(0, 2), Some(EXPANDER_DISTANCE));
        assert_eq!(m.get(1, 2), Some(EXPANDER_DISTANCE));
        assert_eq!(m.get(2, 2), Some(LOCAL_DISTANCE));
    }

    #[test]
    fn get_out_of_range_is_none() {
        let m = DistanceMatrix::default_for(&nodes(2, 0));
        assert_eq!(m.get(0, 5), None);
        assert_eq!(m.get(5, 0), None);
    }

    #[test]
    fn from_rows_rejects_non_square() {
        assert!(DistanceMatrix::from_rows(vec![vec![10, 20], vec![20]]).is_err());
    }

    #[test]
    fn nearest_prefers_local() {
        let m = DistanceMatrix::default_for(&nodes(2, 1));
        assert_eq!(m.nearest(0, &[0, 1, 2]), Some(0));
        assert_eq!(m.nearest(0, &[1, 2]), Some(1));
        assert_eq!(m.nearest(0, &[2]), Some(2));
        assert_eq!(m.nearest(0, &[]), None);
    }

    #[test]
    fn render_contains_every_distance() {
        let m = DistanceMatrix::default_for(&nodes(2, 1));
        let text = m.render();
        assert!(text.contains("10"));
        assert!(text.contains("21"));
        assert!(text.contains("31"));
    }

    proptest! {
        #[test]
        fn prop_default_matrix_symmetric(compute in 1usize..5, memory in 0usize..3) {
            let m = DistanceMatrix::default_for(&nodes(compute, memory));
            let n = m.len();
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(m.get(i, j), m.get(j, i));
                }
                prop_assert_eq!(m.get(i, i), Some(LOCAL_DISTANCE));
            }
        }

        #[test]
        fn prop_diagonal_is_minimal(compute in 1usize..5, memory in 0usize..3) {
            let m = DistanceMatrix::default_for(&nodes(compute, memory));
            for i in 0..m.len() {
                for j in 0..m.len() {
                    prop_assert!(m.get(i, i).unwrap() <= m.get(i, j).unwrap());
                }
            }
        }
    }
}
