//! Sockets, cores, hardware threads and NUMA nodes.
//!
//! The topology model intentionally mirrors what `lscpu` + `numactl --hardware`
//! report on the paper's two setups:
//!
//! * **Setup #1** — 2× Sapphire Rapids sockets, 10 cores each (BIOS-limited),
//!   Hyper-Threading on, one DDR5 DIMM per socket, plus a *CPU-less* NUMA node
//!   backed by the CXL-attached DDR4 expander (`/mnt/pmem2`, `numactl
//!   --membind=2`).
//! * **Setup #2** — 2× Xeon Gold 5215 sockets, 10 cores each, 6× DDR4-2666
//!   channels per socket, no CXL device.

use crate::cpuset::CpuSet;
use crate::distance::DistanceMatrix;
use crate::error::NumaError;
use crate::Result;

/// Identifier of a CPU socket (package).
pub type SocketId = usize;
/// Identifier of a NUMA node. CPU-less (memory-only) nodes are allowed.
pub type NodeId = usize;
/// Identifier of a physical core.
pub type CoreId = usize;

/// A physical core with its hardware threads (logical CPUs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Core {
    /// Global core id.
    pub id: CoreId,
    /// Socket this core belongs to.
    pub socket: SocketId,
    /// NUMA node this core belongs to.
    pub node: NodeId,
    /// Logical CPU ids (one per hardware thread).
    pub hw_threads: Vec<usize>,
}

/// A CPU package with its cores.
#[derive(Debug, Clone, PartialEq)]
pub struct Socket {
    /// Socket id.
    pub id: SocketId,
    /// Human-readable model name (e.g. "Intel Xeon Sapphire Rapids").
    pub model: String,
    /// Base frequency in GHz, informational.
    pub base_ghz: f64,
    /// Core ids belonging to this socket.
    pub cores: Vec<CoreId>,
    /// NUMA node that holds this socket's locally attached DRAM.
    pub local_node: NodeId,
}

/// A NUMA node: a set of cores (possibly empty) plus locally attached memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaNode {
    /// Node id (matches `numactl` numbering).
    pub id: NodeId,
    /// Cores local to this node; empty for memory-only nodes such as a CXL expander.
    pub cores: Vec<CoreId>,
    /// Memory capacity in bytes.
    pub mem_bytes: u64,
    /// Free-form label, e.g. "DDR5-4800 socket0" or "CXL DDR4-1333 expander".
    pub label: String,
}

impl NumaNode {
    /// A node with no local cores — how CXL Type-3 expanders appear to Linux.
    pub fn is_cpuless(&self) -> bool {
        self.cores.is_empty()
    }
}

/// Full machine topology: sockets, cores, NUMA nodes and inter-node distances.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Machine name, e.g. "sapphire-rapids-cxl".
    pub name: String,
    sockets: Vec<Socket>,
    cores: Vec<Core>,
    nodes: Vec<NumaNode>,
    distances: DistanceMatrix,
    smt: usize,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder(name: impl Into<String>) -> TopologyBuilder {
        TopologyBuilder {
            name: name.into(),
            sockets: Vec::new(),
            nodes: Vec::new(),
            smt: 1,
            distances: None,
        }
    }

    /// All sockets.
    pub fn sockets(&self) -> &[Socket] {
        &self.sockets
    }

    /// All cores, globally ordered.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// All NUMA nodes, including CPU-less ones.
    pub fn nodes(&self) -> &[NumaNode] {
        &self.nodes
    }

    /// Number of hardware threads per core (1 = SMT off, 2 = Hyper-Threading).
    pub fn smt(&self) -> usize {
        self.smt
    }

    /// Inter-node distance matrix (ACPI SLIT-style, 10 = local).
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// Looks up a socket.
    pub fn socket(&self, id: SocketId) -> Result<&Socket> {
        self.sockets.get(id).ok_or(NumaError::UnknownSocket(id))
    }

    /// Looks up a NUMA node.
    pub fn node(&self, id: NodeId) -> Result<&NumaNode> {
        self.nodes.get(id).ok_or(NumaError::UnknownNode(id))
    }

    /// Looks up a core.
    pub fn core(&self, id: CoreId) -> Result<&Core> {
        self.cores.get(id).ok_or(NumaError::UnknownCore(id))
    }

    /// Total number of physical cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Total number of hardware threads (logical CPUs).
    pub fn num_hw_threads(&self) -> usize {
        self.cores.iter().map(|c| c.hw_threads.len()).sum()
    }

    /// NUMA nodes that have at least one core.
    pub fn compute_nodes(&self) -> impl Iterator<Item = &NumaNode> {
        self.nodes.iter().filter(|n| !n.is_cpuless())
    }

    /// NUMA nodes that are memory-only (CXL expanders, PMem regions...).
    pub fn memory_only_nodes(&self) -> impl Iterator<Item = &NumaNode> {
        self.nodes.iter().filter(|n| n.is_cpuless())
    }

    /// The CPU set of a whole socket (all hardware threads of all its cores).
    pub fn socket_cpuset(&self, id: SocketId) -> Result<CpuSet> {
        let socket = self.socket(id)?;
        let mut set = CpuSet::new();
        for &core_id in &socket.cores {
            for &hw in &self.core(core_id)?.hw_threads {
                set.insert(hw);
            }
        }
        Ok(set)
    }

    /// The CPU set of a NUMA node (empty for memory-only nodes).
    pub fn node_cpuset(&self, id: NodeId) -> Result<CpuSet> {
        let node = self.node(id)?;
        let mut set = CpuSet::new();
        for &core_id in &node.cores {
            for &hw in &self.core(core_id)?.hw_threads {
                set.insert(hw);
            }
        }
        Ok(set)
    }

    /// The CPU set of the whole machine.
    pub fn machine_cpuset(&self) -> CpuSet {
        let mut set = CpuSet::new();
        for core in &self.cores {
            for &hw in &core.hw_threads {
                set.insert(hw);
            }
        }
        set
    }

    /// Maps a logical CPU id back to its core.
    pub fn core_of_cpu(&self, cpu: usize) -> Option<&Core> {
        self.cores.iter().find(|c| c.hw_threads.contains(&cpu))
    }

    /// NUMA node that a logical CPU belongs to.
    pub fn node_of_cpu(&self, cpu: usize) -> Option<NodeId> {
        self.core_of_cpu(cpu).map(|c| c.node)
    }

    /// Socket that a logical CPU belongs to.
    pub fn socket_of_cpu(&self, cpu: usize) -> Option<SocketId> {
        self.core_of_cpu(cpu).map(|c| c.socket)
    }

    /// Distance (SLIT units, 10 = local) between the node of `cpu` and `node`.
    pub fn cpu_to_node_distance(&self, cpu: usize, node: NodeId) -> Option<u32> {
        let from = self.node_of_cpu(cpu)?;
        self.distances.get(from, node)
    }

    /// Renders the topology in a `numactl --hardware`-like format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("machine: {}\n", self.name));
        out.push_str(&format!("available: {} nodes\n", self.nodes.len()));
        for node in &self.nodes {
            let cpus: CpuSet = node
                .cores
                .iter()
                .flat_map(|&c| self.cores[c].hw_threads.iter().copied())
                .collect();
            out.push_str(&format!(
                "node {} cpus: {}\n",
                node.id,
                if cpus.is_empty() {
                    "(memory-only)".to_string()
                } else {
                    cpus.to_list_string()
                }
            ));
            out.push_str(&format!(
                "node {} size: {} MB ({})\n",
                node.id,
                node.mem_bytes / (1024 * 1024),
                node.label
            ));
        }
        out.push_str("node distances:\n");
        out.push_str(&self.distances.render());
        out
    }
}

/// Incremental builder for [`Topology`].
#[derive(Debug)]
pub struct TopologyBuilder {
    name: String,
    sockets: Vec<SocketSpec>,
    nodes: Vec<NumaNode>,
    smt: usize,
    distances: Option<DistanceMatrix>,
}

#[derive(Debug)]
struct SocketSpec {
    model: String,
    base_ghz: f64,
    cores: usize,
    node: NodeId,
}

impl TopologyBuilder {
    /// Sets the number of hardware threads per core (default 1).
    pub fn smt(mut self, smt: usize) -> Self {
        self.smt = smt.max(1);
        self
    }

    /// Adds a socket with `cores` physical cores whose local memory is `node`.
    pub fn socket(
        mut self,
        model: impl Into<String>,
        base_ghz: f64,
        cores: usize,
        node: NodeId,
    ) -> Self {
        self.sockets.push(SocketSpec {
            model: model.into(),
            base_ghz,
            cores,
            node,
        });
        self
    }

    /// Adds a NUMA node description. Nodes must be added in id order; cores are
    /// attached automatically from the socket declarations.
    pub fn node(mut self, mem_bytes: u64, label: impl Into<String>) -> Self {
        let id = self.nodes.len();
        self.nodes.push(NumaNode {
            id,
            cores: Vec::new(),
            mem_bytes,
            label: label.into(),
        });
        self
    }

    /// Installs an explicit distance matrix; if omitted a default one is derived
    /// (10 local, 21 cross-socket, 31 to memory-only nodes).
    pub fn distances(mut self, matrix: DistanceMatrix) -> Self {
        self.distances = Some(matrix);
        self
    }

    /// Finalises the topology.
    pub fn build(self) -> Result<Topology> {
        if self.sockets.iter().map(|s| s.cores).sum::<usize>() == 0 {
            return Err(NumaError::EmptyTopology);
        }
        let mut nodes = self.nodes;
        let mut sockets = Vec::new();
        let mut cores = Vec::new();
        let mut next_cpu = 0usize;
        // First pass: primary hardware thread of every core, socket by socket
        // (this matches how Linux numbers CPUs on the paper's machines: 0-9 on
        // socket0, 10-19 on socket1, and the SMT siblings afterwards).
        let mut primary_cpus: Vec<Vec<usize>> = Vec::new();
        for spec in &self.sockets {
            let mut socket_primaries = Vec::new();
            for _ in 0..spec.cores {
                socket_primaries.push(next_cpu);
                next_cpu += 1;
            }
            primary_cpus.push(socket_primaries);
        }
        for (sid, spec) in self.sockets.iter().enumerate() {
            if spec.node >= nodes.len() {
                return Err(NumaError::UnknownNode(spec.node));
            }
            let mut socket_cores = Vec::new();
            #[allow(clippy::needless_range_loop)]
            for i in 0..spec.cores {
                let core_id = cores.len();
                let mut hw = vec![primary_cpus[sid][i]];
                for s in 1..self.smt {
                    // SMT siblings are numbered after all primary threads.
                    let total_primary: usize = self.sockets.iter().map(|s| s.cores).sum();
                    hw.push(total_primary * (s - 1) + total_primary + primary_cpus[sid][i]);
                }
                cores.push(Core {
                    id: core_id,
                    socket: sid,
                    node: spec.node,
                    hw_threads: hw,
                });
                nodes[spec.node].cores.push(core_id);
                socket_cores.push(core_id);
            }
            sockets.push(Socket {
                id: sid,
                model: spec.model.clone(),
                base_ghz: spec.base_ghz,
                cores: socket_cores,
                local_node: spec.node,
            });
        }
        let distances = match self.distances {
            Some(d) => {
                if d.len() != nodes.len() {
                    return Err(NumaError::MalformedDistanceMatrix {
                        nodes: nodes.len(),
                        rows: d.len(),
                    });
                }
                d
            }
            None => DistanceMatrix::default_for(&nodes),
        };
        Ok(Topology {
            name: self.name,
            sockets,
            cores,
            nodes,
            distances,
            smt: self.smt,
        })
    }
}

/// Builds the paper's **Setup #1**: dual Sapphire Rapids (10 cores/socket after
/// the BIOS limit), Hyper-Threading, 64 GB DDR5-4800 per socket, plus a CPU-less
/// node 2 backed by the 16 GB CXL-attached DDR4-1333 expander.
pub fn sapphire_rapids_cxl() -> Topology {
    Topology::builder("sapphire-rapids-cxl")
        .smt(2)
        .node(64 * GIB, "DDR5-4800 socket0")
        .node(64 * GIB, "DDR5-4800 socket1")
        .node(16 * GIB, "CXL DDR4-1333 expander (Agilex-7 FPGA)")
        .socket("Intel Xeon 4th Gen (Sapphire Rapids)", 2.1, 10, 0)
        .socket("Intel Xeon 4th Gen (Sapphire Rapids)", 2.1, 10, 1)
        .build()
        .expect("static topology is valid")
}

/// Builds the paper's **Setup #2**: dual Xeon Gold 5215, 10 cores/socket,
/// 96 GB DDR4-2666 in six channels per socket, no CXL device.
pub fn xeon_gold_ddr4() -> Topology {
    Topology::builder("xeon-gold-ddr4")
        .smt(2)
        .node(96 * GIB, "DDR4-2666 x6 socket0")
        .node(96 * GIB, "DDR4-2666 x6 socket1")
        .socket("Intel Xeon Gold 5215", 2.5, 10, 0)
        .socket("Intel Xeon Gold 5215", 2.5, 10, 1)
        .build()
        .expect("static topology is valid")
}

const GIB: u64 = 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup1_matches_paper_description() {
        let topo = sapphire_rapids_cxl();
        assert_eq!(topo.sockets().len(), 2);
        assert_eq!(topo.nodes().len(), 3);
        assert_eq!(topo.num_cores(), 20);
        assert_eq!(topo.num_hw_threads(), 40);
        assert!(topo.node(2).unwrap().is_cpuless());
        assert_eq!(topo.memory_only_nodes().count(), 1);
        assert_eq!(topo.compute_nodes().count(), 2);
    }

    #[test]
    fn setup2_has_no_cxl_node() {
        let topo = xeon_gold_ddr4();
        assert_eq!(topo.nodes().len(), 2);
        assert_eq!(topo.memory_only_nodes().count(), 0);
        assert_eq!(topo.num_cores(), 20);
    }

    #[test]
    fn cpu_numbering_is_socket_major() {
        let topo = sapphire_rapids_cxl();
        // Cores 0-9 (cpus 0-9) on socket 0, cores 10-19 (cpus 10-19) on socket 1.
        assert_eq!(topo.socket_of_cpu(0), Some(0));
        assert_eq!(topo.socket_of_cpu(9), Some(0));
        assert_eq!(topo.socket_of_cpu(10), Some(1));
        assert_eq!(topo.socket_of_cpu(19), Some(1));
        // SMT siblings 20-39.
        assert_eq!(topo.socket_of_cpu(20), Some(0));
        assert_eq!(topo.socket_of_cpu(30), Some(1));
    }

    #[test]
    fn socket_cpuset_contains_smt_siblings() {
        let topo = sapphire_rapids_cxl();
        let set = topo.socket_cpuset(0).unwrap();
        assert_eq!(set.len(), 20);
        assert!(set.contains(0));
        assert!(set.contains(20));
        assert!(!set.contains(10));
    }

    #[test]
    fn node_cpuset_of_cxl_node_is_empty() {
        let topo = sapphire_rapids_cxl();
        assert!(topo.node_cpuset(2).unwrap().is_empty());
    }

    #[test]
    fn unknown_ids_error() {
        let topo = sapphire_rapids_cxl();
        assert_eq!(topo.socket(7).unwrap_err(), NumaError::UnknownSocket(7));
        assert_eq!(topo.node(7).unwrap_err(), NumaError::UnknownNode(7));
        assert_eq!(topo.core(70).unwrap_err(), NumaError::UnknownCore(70));
    }

    #[test]
    fn empty_topology_is_rejected() {
        let err = Topology::builder("empty")
            .node(GIB, "x")
            .build()
            .unwrap_err();
        assert_eq!(err, NumaError::EmptyTopology);
    }

    #[test]
    fn socket_referencing_missing_node_is_rejected() {
        let err = Topology::builder("bad")
            .node(GIB, "n0")
            .socket("x", 2.0, 4, 3)
            .build()
            .unwrap_err();
        assert_eq!(err, NumaError::UnknownNode(3));
    }

    #[test]
    fn mismatched_distance_matrix_is_rejected() {
        let err = Topology::builder("bad")
            .node(GIB, "n0")
            .node(GIB, "n1")
            .socket("x", 2.0, 2, 0)
            .distances(DistanceMatrix::from_rows(vec![vec![10]]).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, NumaError::MalformedDistanceMatrix { .. }));
    }

    #[test]
    fn render_mentions_all_nodes() {
        let topo = sapphire_rapids_cxl();
        let text = topo.render();
        assert!(text.contains("node 0 cpus"));
        assert!(text.contains("node 2 cpus: (memory-only)"));
        assert!(text.contains("CXL DDR4-1333"));
    }

    #[test]
    fn distance_to_cxl_node_is_largest() {
        let topo = sapphire_rapids_cxl();
        let local = topo.cpu_to_node_distance(0, 0).unwrap();
        let remote = topo.cpu_to_node_distance(0, 1).unwrap();
        let cxl = topo.cpu_to_node_distance(0, 2).unwrap();
        assert!(local < remote);
        assert!(remote < cxl);
    }

    #[test]
    fn clone_preserves_equality() {
        let topo = sapphire_rapids_cxl();
        let clone = topo.clone();
        assert_eq!(clone, topo);
    }
}
