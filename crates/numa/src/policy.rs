//! Memory-binding policies — the `numactl` side of the evaluation.
//!
//! The paper's Memory-Mode experiments (§3.2, class 2) are plain STREAM runs
//! under `numactl --membind={0,1,2}`; the App-Direct experiments open a PMDK
//! pool on `/mnt/pmem{0,1,2}`. Either way every allocation ends up on exactly
//! one NUMA node (or is interleaved across a set of nodes). This module models
//! that decision.

use crate::error::NumaError;
use crate::topology::{NodeId, Topology};
use crate::Result;

/// Where allocations are placed, mirroring `numactl` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemBindPolicy {
    /// First-touch local allocation: memory lands on the node of the CPU that
    /// first touches the page (Linux default).
    LocalAlloc,
    /// `numactl --membind=N`: all allocations on node `N`, fail if it is full.
    Bind(NodeId),
    /// `numactl --interleave=N0,N1,...`: pages round-robin across the nodes.
    Interleave(Vec<NodeId>),
    /// `numactl --preferred=N`: prefer node `N`, overflow to the nearest node.
    Preferred(NodeId),
}

impl MemBindPolicy {
    /// Convenience constructor for `--membind`.
    pub fn bind(node: NodeId) -> Self {
        MemBindPolicy::Bind(node)
    }

    /// Label used by harness legends — matches the paper's `numa#N` notation.
    pub fn label(&self) -> String {
        match self {
            MemBindPolicy::LocalAlloc => "local".to_string(),
            MemBindPolicy::Bind(n) => format!("membind={n}"),
            MemBindPolicy::Interleave(ns) => format!(
                "interleave={}",
                ns.iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            MemBindPolicy::Preferred(n) => format!("preferred={n}"),
        }
    }

    /// Validates the policy against a topology (all referenced nodes exist,
    /// interleave sets are non-empty).
    pub fn validate(&self, topo: &Topology) -> Result<()> {
        match self {
            MemBindPolicy::LocalAlloc => Ok(()),
            MemBindPolicy::Bind(n) | MemBindPolicy::Preferred(n) => topo.node(*n).map(|_| ()),
            MemBindPolicy::Interleave(ns) => {
                if ns.is_empty() {
                    return Err(NumaError::EmptyNodeSet);
                }
                for &n in ns {
                    topo.node(n)?;
                }
                Ok(())
            }
        }
    }

    /// Resolves the node that byte-range page `page_index` of an allocation
    /// made by a thread running on `cpu` would land on.
    ///
    /// `page_index` only matters for interleaved policies.
    pub fn resolve(&self, topo: &Topology, cpu: usize, page_index: usize) -> Result<NodeId> {
        self.validate(topo)?;
        match self {
            MemBindPolicy::LocalAlloc => topo.node_of_cpu(cpu).ok_or(NumaError::UnknownCore(cpu)),
            MemBindPolicy::Bind(n) => Ok(*n),
            MemBindPolicy::Preferred(n) => Ok(*n),
            MemBindPolicy::Interleave(ns) => Ok(ns[page_index % ns.len()]),
        }
    }

    /// Distribution of an allocation of `pages` pages over nodes, as
    /// `(node, pages_on_node)` pairs. Used by the Memory-Mode expansion model
    /// where a data set larger than local DRAM spills onto the CXL node.
    pub fn distribution(
        &self,
        topo: &Topology,
        cpu: usize,
        pages: usize,
    ) -> Result<Vec<(NodeId, usize)>> {
        self.validate(topo)?;
        match self {
            MemBindPolicy::Interleave(ns) => {
                let mut out: Vec<(NodeId, usize)> = ns.iter().map(|&n| (n, 0)).collect();
                for page in 0..pages {
                    out[page % ns.len()].1 += 1;
                }
                Ok(out.into_iter().filter(|(_, p)| *p > 0).collect())
            }
            _ => {
                let node = self.resolve(topo, cpu, 0)?;
                if pages == 0 {
                    Ok(vec![])
                } else {
                    Ok(vec![(node, pages)])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::sapphire_rapids_cxl;
    use proptest::prelude::*;

    #[test]
    fn local_alloc_follows_cpu() {
        let topo = sapphire_rapids_cxl();
        let p = MemBindPolicy::LocalAlloc;
        assert_eq!(p.resolve(&topo, 0, 0).unwrap(), 0);
        assert_eq!(p.resolve(&topo, 15, 0).unwrap(), 1);
    }

    #[test]
    fn bind_ignores_cpu() {
        let topo = sapphire_rapids_cxl();
        let p = MemBindPolicy::bind(2);
        assert_eq!(p.resolve(&topo, 0, 0).unwrap(), 2);
        assert_eq!(p.resolve(&topo, 19, 7).unwrap(), 2);
    }

    #[test]
    fn bind_to_missing_node_fails() {
        let topo = sapphire_rapids_cxl();
        let p = MemBindPolicy::bind(9);
        assert!(p.resolve(&topo, 0, 0).is_err());
        assert!(p.validate(&topo).is_err());
    }

    #[test]
    fn interleave_round_robins() {
        let topo = sapphire_rapids_cxl();
        let p = MemBindPolicy::Interleave(vec![0, 2]);
        assert_eq!(p.resolve(&topo, 0, 0).unwrap(), 0);
        assert_eq!(p.resolve(&topo, 0, 1).unwrap(), 2);
        assert_eq!(p.resolve(&topo, 0, 2).unwrap(), 0);
    }

    #[test]
    fn empty_interleave_rejected() {
        let topo = sapphire_rapids_cxl();
        let p = MemBindPolicy::Interleave(vec![]);
        assert_eq!(p.validate(&topo).unwrap_err(), NumaError::EmptyNodeSet);
    }

    #[test]
    fn distribution_sums_to_pages() {
        let topo = sapphire_rapids_cxl();
        let p = MemBindPolicy::Interleave(vec![0, 1, 2]);
        let dist = p.distribution(&topo, 0, 10).unwrap();
        let total: usize = dist.iter().map(|(_, p)| p).sum();
        assert_eq!(total, 10);
        assert_eq!(dist.len(), 3);
    }

    #[test]
    fn distribution_of_bound_policy_is_single_node() {
        let topo = sapphire_rapids_cxl();
        let dist = MemBindPolicy::bind(2).distribution(&topo, 0, 100).unwrap();
        assert_eq!(dist, vec![(2, 100)]);
        let empty = MemBindPolicy::bind(2).distribution(&topo, 0, 0).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn labels_match_numactl_syntax() {
        assert_eq!(MemBindPolicy::bind(2).label(), "membind=2");
        assert_eq!(
            MemBindPolicy::Interleave(vec![0, 2]).label(),
            "interleave=0,2"
        );
        assert_eq!(MemBindPolicy::Preferred(1).label(), "preferred=1");
        assert_eq!(MemBindPolicy::LocalAlloc.label(), "local");
    }

    proptest! {
        #[test]
        fn prop_interleave_distribution_is_balanced(pages in 1usize..10_000) {
            let topo = sapphire_rapids_cxl();
            let p = MemBindPolicy::Interleave(vec![0, 1, 2]);
            let dist = p.distribution(&topo, 0, pages).unwrap();
            let counts: Vec<usize> = dist.iter().map(|(_, c)| *c).collect();
            let max = counts.iter().max().unwrap();
            let min = counts.iter().min().unwrap();
            prop_assert!(max - min <= 1);
            prop_assert_eq!(counts.iter().sum::<usize>(), pages);
        }

        #[test]
        fn prop_resolve_always_returns_valid_node(cpu in 0usize..40, page in 0usize..64) {
            let topo = sapphire_rapids_cxl();
            for policy in [
                MemBindPolicy::LocalAlloc,
                MemBindPolicy::bind(2),
                MemBindPolicy::Preferred(1),
                MemBindPolicy::Interleave(vec![0, 1, 2]),
            ] {
                let node = policy.resolve(&topo, cpu, page).unwrap();
                prop_assert!(topo.node(node).is_ok());
            }
        }
    }
}
