//! atomic-ordering: keep the memory-ordering story deliberate.
//!
//! Two rules over non-test code:
//!
//! 1. `Ordering::SeqCst` anywhere in the workspace needs an adjacent
//!    `// ORDERING:` comment explaining why the strongest (and most
//!    expensive) ordering is required. SeqCst is almost always a shrug; a
//!    shrug on a hot path is a perf bug and on a cold path a missing
//!    explanation.
//! 2. Modules pinned in `[[atomic_ordering.pinned]]` (the documented
//!    Relaxed / Acquire-Release protocols of the stream executor and the
//!    tiering tracker) may only use their listed orderings — no comment can
//!    override a pin; changing the protocol means changing analyzer.toml in
//!    the same diff, where the reviewer sees it.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::lints::finding;
use crate::source::SourceFile;

pub(super) fn run(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let pinned = cfg
        .pinned_atomics
        .iter()
        .find(|p| p.file == file.path)
        .map(|p| &p.allowed);
    let code = &file.code;
    for (i, t) in code.iter().enumerate() {
        // Match `Ordering :: <Variant>`.
        if t.kind != TokenKind::Ident || t.text != "Ordering" {
            continue;
        }
        if code.get(i + 1).and_then(|t| t.punct()) != Some(':')
            || code.get(i + 2).and_then(|t| t.punct()) != Some(':')
        {
            continue;
        }
        let variant = match code.get(i + 3) {
            Some(v) if v.kind == TokenKind::Ident => v,
            _ => continue,
        };
        if file.is_test_line(variant.line) {
            continue;
        }
        if let Some(allowed) = pinned {
            if !allowed.iter().any(|a| a == &variant.text) {
                out.push(finding(
                    "atomic-ordering",
                    file,
                    variant.line,
                    format!(
                        "`Ordering::{}` breaks this module's pinned protocol (allowed: {})",
                        variant.text,
                        allowed.join(", ")
                    ),
                    "use the pinned orderings, or change the protocol in analyzer.toml in the same diff",
                ));
                continue;
            }
        }
        if variant.text == "SeqCst" && !file.comment_near(variant.line, 2, "ORDERING:") {
            out.push(finding(
                "atomic-ordering",
                file,
                variant.line,
                "`Ordering::SeqCst` without a justifying `// ORDERING:` comment".to_string(),
                "downgrade to the ordering the algorithm needs, or justify SeqCst in an `// ORDERING:` comment",
            ));
        }
    }
    out
}
