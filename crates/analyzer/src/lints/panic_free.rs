//! panic-free: the crash/recovery/compile paths that claim never to panic.
//!
//! In a configured panic-free zone, non-test code must not contain:
//!
//! - `.unwrap()` / `.expect(...)` — return the crate's typed error instead;
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!` / `assert!`-free
//!   macros that abort (`assert*` is deliberately allowed: a checked
//!   invariant with a message is a decision, not an accident);
//! - dynamic indexing (`xs[i]`, `map[&key]`, `buf[at..at + 8]`) without an
//!   adjacent `// in-bounds:` justification. Indexing whose bracket contents
//!   are entirely literals and `CONST_CASE` names (`out[..24]`,
//!   `desc[8..12]`, `hdr[..HEADER_LEN / 2]`) is compile-time bounded against
//!   fixed-size buffers and does not fire.
//!
//! The justification comment is load-bearing: it converts "this can panic"
//! into "this was audited not to", one site at a time, and the golden tests
//! pin that an unjustified site fires.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::lints::{finding, in_zone};
use crate::source::{is_keyword, SourceFile};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub(super) fn run(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if !in_zone(&file.path, &cfg.panic_free_zones) {
        return out;
    }
    let code = &file.code;
    for (i, t) in code.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        match t.kind {
            TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let is_method = i > 0
                    && code[i - 1].punct() == Some('.')
                    && code.get(i + 1).and_then(|t| t.punct()) == Some('(');
                if is_method {
                    out.push(finding(
                        "panic-free",
                        file,
                        t.line,
                        format!("`.{}()` in a panic-free zone", t.text),
                        "return the crate's typed error (`?` with ok_or/map_err) instead of panicking",
                    ));
                }
            }
            TokenKind::Ident
                if PANIC_MACROS.contains(&t.text.as_str())
                    && code.get(i + 1).and_then(|t| t.punct()) == Some('!') =>
            {
                out.push(finding(
                    "panic-free",
                    file,
                    t.line,
                    format!("`{}!` in a panic-free zone", t.text),
                    "make the case unrepresentable or return a typed error for it",
                ));
            }
            TokenKind::Punct if t.punct() == Some('[') && is_index_expr(file, i) => {
                if let Some(end) = bracket_end(file, i) {
                    if is_dynamic_index(file, i, end) && !file.comment_near(t.line, 2, "in-bounds:")
                    {
                        out.push(finding(
                            "panic-free",
                            file,
                            t.line,
                            "dynamic indexing in a panic-free zone without an `// in-bounds:` audit"
                                .to_string(),
                            "use .get()/.get_mut() with a typed error, or add an `// in-bounds:` comment proving the bound",
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Is the `[` at `i` an index expression (rather than an array literal,
/// attribute, or slice type)? True when the previous code token could end an
/// expression: a non-keyword identifier, `)`, `]`, or a literal.
fn is_index_expr(file: &SourceFile, i: usize) -> bool {
    let prev = match i.checked_sub(1).and_then(|p| file.code.get(p)) {
        Some(prev) => prev,
        None => return false,
    };
    match prev.kind {
        TokenKind::Ident => !is_keyword(&prev.text) || prev.text == "self",
        TokenKind::Punct => matches!(prev.punct(), Some(')') | Some(']')),
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open`.
fn bracket_end(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in file.code.iter().enumerate().skip(open) {
        match t.punct() {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Bracket contents are dynamic if any identifier inside looks like a runtime
/// value: lowercase names (`i`, `slot`, `self`). `CONST_CASE` names, type
/// paths (`T::SIZE`) and literals are compile-time bounded.
fn is_dynamic_index(file: &SourceFile, open: usize, close: usize) -> bool {
    file.code[open + 1..close].iter().any(|t| {
        t.kind == TokenKind::Ident
            && !is_keyword(&t.text)
            && t.text.chars().any(|c| c.is_lowercase())
    })
}
