//! The lint registry.
//!
//! Each lint is a pure function over one [`SourceFile`] plus the policy
//! [`Config`]; zones decide which files each lint inspects. The registry
//! drives both the engine and the fixture-counting golden test (a lint cannot
//! ship without fixtures because the test iterates this table).

use crate::config::Config;
use crate::findings::Finding;
use crate::source::SourceFile;

mod atomics;
mod errors;
mod panic_free;
mod persist;
mod unsafe_audit;

/// One registered lint.
pub struct Lint {
    /// Kebab-case id, used in diagnostics and `[[allow]]` entries.
    pub id: &'static str,
    /// One-line description for `ANALYSIS.json` and `repro-analyze lints`.
    pub description: &'static str,
    /// Runs the lint over one file.
    pub run: fn(&SourceFile, &Config) -> Vec<Finding>,
}

/// Every lint the analyzer ships, in diagnostic order.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "persist-ordering",
        description: "flush fan-outs on the persist path reach exactly one drain, never inside a loop",
        run: persist::run,
    },
    Lint {
        id: "unsafe-audit",
        description: "unsafe only in audited modules with adjacent SAFETY comments; forbid/deny attributes present",
        run: unsafe_audit::run,
    },
    Lint {
        id: "panic-free",
        description: "no unwrap/expect/panic!/unreachable!/unjustified dynamic indexing in panic-free zones",
        run: panic_free::run,
    },
    Lint {
        id: "atomic-ordering",
        description: "SeqCst needs an ORDERING: justification; pinned modules keep their documented protocol",
        run: atomics::run,
    },
    Lint {
        id: "error-hygiene",
        description: "public fallible APIs return typed errors, never Box<dyn Error> or String",
        run: errors::run,
    },
];

/// Looks a lint up by id.
pub fn lint_by_id(id: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.id == id)
}

/// Shared helper: builds a finding anchored at `line` of `file`.
pub(crate) fn finding(
    lint: &'static str,
    file: &SourceFile,
    line: u32,
    message: String,
    hint: &str,
) -> Finding {
    Finding {
        lint,
        file: file.path.clone(),
        line,
        message,
        hint: hint.to_string(),
        snippet: file.line_text(line).trim().to_string(),
        waived: None,
    }
}

/// Shared helper: does `path` match a zone entry? Zones are repo-relative
/// file paths; a trailing `/` entry matches a whole directory.
pub(crate) fn in_zone(path: &str, zones: &[String]) -> bool {
    zones
        .iter()
        .any(|z| path == z || (z.ends_with('/') && path.starts_with(z.as_str())))
}
