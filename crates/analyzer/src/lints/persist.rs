//! persist-ordering: the §4 flush/fence discipline, statically.
//!
//! The persist path's contract is "≤ workers flushes + exactly one drain per
//! invocation": `flush` calls are cheap per-chunk cache-line write-backs that
//! may fan out, and `drain` is the store fence that makes the batch durable —
//! issued once, after the fan-out, never per chunk. Three rules per function
//! in a persist zone (test code excluded):
//!
//! 1. `drain` must not be called inside a `for`/`while`/`loop` body.
//! 2. A function calls `drain` at most once (one fence per invocation).
//! 3. A flush fan-out (a `flush` call inside a loop, or two-plus `flush`
//!    calls) must reach a `drain` in the same function before returning.
//!
//! Forwarding wrappers named `flush`/`drain` (the pool/tracker plumbing) are
//! exempt from rule 3 — they are the primitive, not the fan-out.

use crate::config::Config;
use crate::findings::Finding;
use crate::lints::{finding, in_zone};
use crate::source::{walk_body, SourceFile};

pub(super) fn run(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if !in_zone(&file.path, &cfg.persist_zones) {
        return out;
    }
    for f in &file.functions {
        if file.is_test_line(f.line) {
            continue;
        }
        let (open, close) = match f.body_range {
            Some(range) => range,
            None => continue,
        };
        let mut flush_calls = 0usize;
        let mut flush_in_loop = false;
        let mut drains: Vec<(u32, usize)> = Vec::new(); // (line, loop_depth)
        walk_body(&file.code, open, close, |i, loop_depth| {
            if let Some(callee) = method_call(file, i) {
                match callee {
                    "flush" => {
                        flush_calls += 1;
                        flush_in_loop |= loop_depth > 0;
                    }
                    "drain" => drains.push((file.code[i + 1].line, loop_depth)),
                    _ => {}
                }
            }
        });
        for &(line, depth) in &drains {
            if depth > 0 {
                out.push(finding(
                    "persist-ordering",
                    file,
                    line,
                    format!(
                        "`{}` calls drain() inside a loop; the fence must cover the whole \
                         flush batch, not each chunk",
                        f.name
                    ),
                    "hoist the drain() past the loop so one fence covers every flushed chunk",
                ));
            }
        }
        if drains.len() > 1 {
            out.push(finding(
                "persist-ordering",
                file,
                drains[1].0,
                format!(
                    "`{}` drains {} times in one invocation; the contract is exactly one \
                     fence per persist batch",
                    f.name,
                    drains.len()
                ),
                "merge the persist phases so a single drain() ends the invocation",
            ));
        }
        let is_forwarder = f.name == "flush" || f.name == "drain";
        if drains.is_empty() && (flush_in_loop || flush_calls >= 2) && !is_forwarder {
            out.push(finding(
                "persist-ordering",
                file,
                f.line,
                format!(
                    "`{}` fans out {} flush call(s){} but never drains; flushed lines are \
                     not durable until the fence",
                    f.name,
                    flush_calls,
                    if flush_in_loop { " (in a loop)" } else { "" }
                ),
                "end the fan-out with exactly one drain() before returning or publishing",
            ));
        }
    }
    out
}

/// If `code[i]` is the `.` of a method call `.name(`, returns the name.
fn method_call(file: &SourceFile, i: usize) -> Option<&str> {
    if file.code.get(i)?.punct() != Some('.') {
        return None;
    }
    let name = file.code.get(i + 1)?;
    if name.kind != crate::lexer::TokenKind::Ident {
        return None;
    }
    if file.code.get(i + 2)?.punct() != Some('(') {
        return None;
    }
    Some(&name.text)
}
