//! unsafe-audit: the audited-module allowlist, as config instead of CI YAML.
//!
//! Three rules:
//!
//! 1. Crate roots listed under `unsafe_audit.forbid` / `unsafe_audit.deny`
//!    must actually carry the `#![forbid(unsafe_code)]` (resp. `deny`)
//!    attribute — the compiler enforces the attribute, the analyzer enforces
//!    that the attribute is there to enforce.
//! 2. The `unsafe` token may only appear in files on the audited-module
//!    allowlist (`unsafe_audit.audited`). Anywhere else — including files the
//!    scanner has never heard of — it is a finding. String literals and
//!    comments do not count (the lexer knows the difference; `grep` did not).
//! 3. Inside an audited module, every `unsafe` occurrence needs an adjacent
//!    justification: a `// SAFETY:` comment within the six preceding lines,
//!    or a `# Safety` rustdoc section within twelve (the convention for
//!    `unsafe fn`). Test code is exempt from rule 3 (but not rule 2: audited
//!    means audited).

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::lints::{finding, in_zone};
use crate::source::SourceFile;

pub(super) fn run(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let audited = in_zone(&file.path, &cfg.unsafe_audited);

    // Rule 1: policy attributes present on declared crate roots.
    for (list, attr) in [(&cfg.unsafe_forbid, "forbid"), (&cfg.unsafe_deny, "deny")] {
        if list.iter().any(|p| p == &file.path) && !has_unsafe_code_attr(file, attr) {
            out.push(finding(
                "unsafe-audit",
                file,
                1,
                format!(
                    "crate root is declared `{attr}` in analyzer.toml but does not carry \
                     `#![{attr}(unsafe_code)]`"
                ),
                "add the attribute to the crate root (or move the crate's policy in analyzer.toml)",
            ));
        }
    }

    // Rules 2 and 3: every `unsafe` keyword token.
    for (i, t) in file.code.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        // `allow(unsafe_code)`-style attribute mentions lex as `unsafe_code`,
        // a different identifier; reaching here means a real `unsafe` keyword.
        if !audited {
            out.push(finding(
                "unsafe-audit",
                file,
                t.line,
                "`unsafe` outside the audited-module allowlist".to_string(),
                "move the code into an audited module listed in analyzer.toml, or find a safe formulation",
            ));
            continue;
        }
        if file.is_test_line(t.line) {
            continue;
        }
        let has_safety =
            file.comment_near(t.line, 6, "SAFETY") || file.comment_near(t.line, 12, "# Safety");
        if !has_safety {
            let what = describe_site(file, i);
            out.push(finding(
                "unsafe-audit",
                file,
                t.line,
                format!("{what} without an adjacent safety argument"),
                "add a `// SAFETY:` comment (or a `# Safety` doc section) stating why the invariants hold",
            ));
        }
    }
    out
}

/// Does the file carry `#![<attr>(unsafe_code)]`?
fn has_unsafe_code_attr(file: &SourceFile, attr: &str) -> bool {
    let code = &file.code;
    (0..code.len()).any(|i| {
        code[i].punct() == Some('#')
            && code.get(i + 1).and_then(|t| t.punct()) == Some('!')
            && code.get(i + 2).and_then(|t| t.punct()) == Some('[')
            && code.get(i + 3).map(|t| t.text.as_str()) == Some(attr)
            && code.get(i + 4).and_then(|t| t.punct()) == Some('(')
            && code.get(i + 5).map(|t| t.text.as_str()) == Some("unsafe_code")
    })
}

/// Human label for the construct at the `unsafe` token.
fn describe_site(file: &SourceFile, i: usize) -> &'static str {
    match file.code.get(i + 1).map(|t| t.text.as_str()) {
        Some("impl") => "`unsafe impl`",
        Some("fn") => "`unsafe fn`",
        Some("{") => "`unsafe` block",
        _ => "`unsafe`",
    }
}
