//! error-hygiene: public fallible APIs return the crate's typed error.
//!
//! A `pub fn` (bare `pub`; `pub(crate)` and narrower are internal) in
//! non-test library code must not declare a return type containing
//! `Box<dyn ... Error ...>` or `Result<_, String>`: both erase the error's
//! identity, which breaks callers that need to match on failure modes (the
//! cluster layer's typed coherence errors are the house style). Binaries'
//! private plumbing and `fn main` in examples are out of scope — the lint
//! only sees `src` trees, and only public functions.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{Token, TokenKind};
use crate::lints::finding;
use crate::source::SourceFile;

pub(super) fn run(file: &SourceFile, _cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &file.functions {
        if !f.is_public || file.is_test_line(f.line) {
            continue;
        }
        let (start, end) = match f.ret_range {
            Some(range) => range,
            None => continue,
        };
        let ret = &file.code[start.min(file.code.len())..end.min(file.code.len())];
        if let Some(line) = boxed_dyn_error(ret) {
            out.push(finding(
                "error-hygiene",
                file,
                line,
                format!("public fn `{}` returns `Box<dyn Error>`", f.name),
                "return the crate's typed error enum so callers can match on failure modes",
            ));
        }
        if let Some(line) = string_error(ret) {
            out.push(finding(
                "error-hygiene",
                file,
                line,
                format!("public fn `{}` returns `Result<_, String>`", f.name),
                "return the crate's typed error enum so callers can match on failure modes",
            ));
        }
    }
    out
}

/// Detects `Box < dyn ... Error ... >` in a return-type token slice.
fn boxed_dyn_error(ret: &[Token]) -> Option<u32> {
    for (i, t) in ret.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && t.text == "Box"
            && ret.get(i + 1).and_then(|t| t.punct()) == Some('<')
            && ret.get(i + 2).map(|t| t.text.as_str()) == Some("dyn")
        {
            // Scan the generic argument for an `Error`-suffixed identifier.
            let mut depth = 0i32;
            for u in &ret[i + 1..] {
                match u.punct() {
                    Some('<') => depth += 1,
                    Some('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if u.kind == TokenKind::Ident && u.text == "Error" {
                    return Some(u.line);
                }
            }
        }
    }
    None
}

/// Detects `Result < _ , String >` (with optional path prefixes) in a
/// return-type token slice.
fn string_error(ret: &[Token]) -> Option<u32> {
    for (i, t) in ret.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "Result" {
            continue;
        }
        if ret.get(i + 1).and_then(|t| t.punct()) != Some('<') {
            continue;
        }
        // Find the top-level comma and matching `>`.
        let mut depth = 0i32;
        let mut comma_at = None;
        let mut close_at = None;
        for (j, u) in ret.iter().enumerate().skip(i + 1) {
            match u.punct() {
                Some('<') | Some('(') | Some('[') => depth += 1,
                Some('>') | Some(')') | Some(']') => {
                    depth -= 1;
                    if depth == 0 && u.punct() == Some('>') {
                        close_at = Some(j);
                        break;
                    }
                }
                Some(',') if depth == 1 => comma_at = Some(j),
                _ => {}
            }
        }
        let (comma, close) = match (comma_at, close_at) {
            (Some(c), Some(e)) => (c, e),
            _ => continue,
        };
        // The error side must be exactly a path ending in `String`.
        let err_side: Vec<&Token> = ret[comma + 1..close].iter().collect();
        let idents: Vec<&str> = err_side
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let only_path = err_side
            .iter()
            .all(|t| t.kind == TokenKind::Ident || t.punct() == Some(':'));
        if only_path && idents.last() == Some(&"String") {
            return Some(ret[comma].line);
        }
    }
    None
}
