//! `analyzer.toml` — the single source of truth for workspace invariants.
//!
//! The build environment is offline and the analyzer is dependency-free, so
//! this module carries a small hand-rolled parser for the TOML subset the
//! policy file actually uses: `[table]` headers (dotted), `[[array-of-table]]`
//! headers, string / integer / boolean values, arrays of strings and `#`
//! comments. Unknown keys are hard errors — a typo in a policy file must not
//! silently disable a lint.
//!
//! Like every other parser in this workspace (see `memsim::topology`), it is
//! total: any input, truncated or garbage, produces `Ok` or a typed
//! [`ConfigError`], never a panic.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array (the policy file only uses arrays of strings).
    Array(Vec<Value>),
    /// A nested table; also the representation of `[[t]]` entries.
    Table(Table),
    /// An array of tables, built up by repeated `[[t]]` headers.
    TableArray(Vec<Table>),
}

/// A table: ordered key → value map.
pub type Table = BTreeMap<String, Value>;

/// Typed error for a malformed policy file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The TOML subset parser rejected the text at `line`.
    Parse {
        /// 1-based line of the offending input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A key the analyzer does not understand (typo guard).
    UnknownKey(String),
    /// A key is present but holds the wrong type of value.
    WrongType {
        /// Dotted path of the key.
        key: String,
        /// What the analyzer expected there.
        expected: &'static str,
    },
    /// An `[[allow]]` entry is missing a mandatory field.
    AllowEntry(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Parse { line, message } => {
                write!(f, "analyzer.toml:{line}: {message}")
            }
            ConfigError::UnknownKey(key) => {
                write!(
                    f,
                    "analyzer.toml: unknown key `{key}` (typo guard: unknown keys are errors)"
                )
            }
            ConfigError::WrongType { key, expected } => {
                write!(f, "analyzer.toml: `{key}` must be {expected}")
            }
            ConfigError::AllowEntry(what) => {
                write!(f, "analyzer.toml: invalid [[allow]] entry: {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// One `[[allow]]` waiver: a finding matching (lint, file, contains) is
/// reported as waived instead of failing the run. The justification is
/// mandatory and must be a real sentence, not an empty string.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Lint id the waiver applies to.
    pub lint: String,
    /// Repo-relative path of the file.
    pub file: String,
    /// Substring of the offending source line (robust to line-number drift).
    pub contains: String,
    /// Why the finding is acceptable. Mandatory.
    pub justification: String,
}

/// A module pinned to a documented atomic-ordering protocol.
#[derive(Debug, Clone)]
pub struct PinnedAtomics {
    /// Repo-relative path of the module.
    pub file: String,
    /// The only `Ordering::` variants the module may use.
    pub allowed: Vec<String>,
}

/// The analyzer's full policy, decoded from `analyzer.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories to walk for `.rs` files (only `src` trees are scanned).
    pub scan: Vec<String>,
    /// Path prefixes excluded from the walk (vendored stand-ins, fixtures).
    pub skip: Vec<String>,
    /// persist-ordering zones: modules on the flush/drain persist path.
    pub persist_zones: Vec<String>,
    /// panic-free zones: modules whose non-test code must never panic.
    pub panic_free_zones: Vec<String>,
    /// Crate roots that must carry `#![forbid(unsafe_code)]`.
    pub unsafe_forbid: Vec<String>,
    /// Crate roots that must carry `#![deny(unsafe_code)]`.
    pub unsafe_deny: Vec<String>,
    /// The audited-module allowlist: the only files allowed to spell
    /// `unsafe`, each occurrence requiring an adjacent safety comment.
    pub unsafe_audited: Vec<String>,
    /// Modules pinned to a documented ordering protocol.
    pub pinned_atomics: Vec<PinnedAtomics>,
    /// Per-finding waivers with mandatory justifications.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Parses a policy file. Typed errors, never panics.
    pub fn from_toml(text: &str) -> Result<Config, ConfigError> {
        let root = parse_toml(text)?;
        Config::from_table(&root)
    }

    fn from_table(root: &Table) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        for (key, value) in root {
            match key.as_str() {
                "workspace" => {
                    let t = expect_table(key, value)?;
                    for (k, v) in t {
                        match k.as_str() {
                            "scan" => cfg.scan = string_array("workspace.scan", v)?,
                            "skip" => cfg.skip = string_array("workspace.skip", v)?,
                            other => {
                                return Err(ConfigError::UnknownKey(format!("workspace.{other}")))
                            }
                        }
                    }
                }
                "persist_ordering" => {
                    let t = expect_table(key, value)?;
                    for (k, v) in t {
                        match k.as_str() {
                            "zones" => {
                                cfg.persist_zones = string_array("persist_ordering.zones", v)?
                            }
                            other => {
                                return Err(ConfigError::UnknownKey(format!(
                                    "persist_ordering.{other}"
                                )))
                            }
                        }
                    }
                }
                "panic_free" => {
                    let t = expect_table(key, value)?;
                    for (k, v) in t {
                        match k.as_str() {
                            "zones" => cfg.panic_free_zones = string_array("panic_free.zones", v)?,
                            other => {
                                return Err(ConfigError::UnknownKey(format!("panic_free.{other}")))
                            }
                        }
                    }
                }
                "unsafe_audit" => {
                    let t = expect_table(key, value)?;
                    for (k, v) in t {
                        match k.as_str() {
                            "forbid" => cfg.unsafe_forbid = string_array("unsafe_audit.forbid", v)?,
                            "deny" => cfg.unsafe_deny = string_array("unsafe_audit.deny", v)?,
                            "audited" => {
                                cfg.unsafe_audited = string_array("unsafe_audit.audited", v)?
                            }
                            other => {
                                return Err(ConfigError::UnknownKey(format!(
                                    "unsafe_audit.{other}"
                                )))
                            }
                        }
                    }
                }
                "atomic_ordering" => {
                    let t = expect_table(key, value)?;
                    for (k, v) in t {
                        match k.as_str() {
                            "pinned" => {
                                for entry in expect_table_array("atomic_ordering.pinned", v)? {
                                    cfg.pinned_atomics.push(pinned_from(entry)?);
                                }
                            }
                            other => {
                                return Err(ConfigError::UnknownKey(format!(
                                    "atomic_ordering.{other}"
                                )))
                            }
                        }
                    }
                }
                "allow" => {
                    for entry in expect_table_array("allow", value)? {
                        cfg.allows.push(allow_from(entry)?);
                    }
                }
                other => return Err(ConfigError::UnknownKey(other.to_string())),
            }
        }
        Ok(cfg)
    }
}

fn pinned_from(entry: &Table) -> Result<PinnedAtomics, ConfigError> {
    let mut file = None;
    let mut allowed = None;
    for (k, v) in entry {
        match k.as_str() {
            "file" => file = Some(expect_str("atomic_ordering.pinned.file", v)?),
            "allowed" => allowed = Some(string_array("atomic_ordering.pinned.allowed", v)?),
            other => {
                return Err(ConfigError::UnknownKey(format!(
                    "atomic_ordering.pinned.{other}"
                )))
            }
        }
    }
    match (file, allowed) {
        (Some(file), Some(allowed)) if !allowed.is_empty() => Ok(PinnedAtomics { file, allowed }),
        _ => Err(ConfigError::AllowEntry(
            "[[atomic_ordering.pinned]] needs `file` and a non-empty `allowed`".to_string(),
        )),
    }
}

fn allow_from(entry: &Table) -> Result<AllowEntry, ConfigError> {
    let mut lint = None;
    let mut file = None;
    let mut contains = None;
    let mut justification = None;
    for (k, v) in entry {
        match k.as_str() {
            "lint" => lint = Some(expect_str("allow.lint", v)?),
            "file" => file = Some(expect_str("allow.file", v)?),
            "contains" => contains = Some(expect_str("allow.contains", v)?),
            "justification" => justification = Some(expect_str("allow.justification", v)?),
            other => return Err(ConfigError::UnknownKey(format!("allow.{other}"))),
        }
    }
    let entry = AllowEntry {
        lint: lint.ok_or_else(|| ConfigError::AllowEntry("missing `lint`".to_string()))?,
        file: file.ok_or_else(|| ConfigError::AllowEntry("missing `file`".to_string()))?,
        contains: contains
            .ok_or_else(|| ConfigError::AllowEntry("missing `contains`".to_string()))?,
        justification: justification
            .ok_or_else(|| ConfigError::AllowEntry("missing `justification`".to_string()))?,
    };
    // A waiver without a reason is a policy hole, not a waiver.
    if entry.justification.trim().len() < 20 {
        return Err(ConfigError::AllowEntry(format!(
            "justification for ({}, {}) must be a real sentence (>= 20 chars)",
            entry.lint, entry.file
        )));
    }
    if entry.contains.trim().is_empty() {
        return Err(ConfigError::AllowEntry(format!(
            "`contains` for ({}, {}) must not be empty",
            entry.lint, entry.file
        )));
    }
    Ok(entry)
}

fn expect_table<'v>(key: &str, value: &'v Value) -> Result<&'v Table, ConfigError> {
    match value {
        Value::Table(t) => Ok(t),
        _ => Err(ConfigError::WrongType {
            key: key.to_string(),
            expected: "a table",
        }),
    }
}

fn expect_table_array<'v>(key: &str, value: &'v Value) -> Result<&'v [Table], ConfigError> {
    match value {
        Value::TableArray(ts) => Ok(ts),
        _ => Err(ConfigError::WrongType {
            key: key.to_string(),
            expected: "an array of tables ([[...]])",
        }),
    }
}

fn expect_str(key: &str, value: &Value) -> Result<String, ConfigError> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(ConfigError::WrongType {
            key: key.to_string(),
            expected: "a string",
        }),
    }
}

fn string_array(key: &str, value: &Value) -> Result<Vec<String>, ConfigError> {
    let items = match value {
        Value::Array(items) => items,
        _ => {
            return Err(ConfigError::WrongType {
                key: key.to_string(),
                expected: "an array of strings",
            })
        }
    };
    items
        .iter()
        .map(|v| expect_str(key, v))
        .collect::<Result<Vec<_>, _>>()
}

/// Parses the TOML subset into a root table.
pub fn parse_toml(text: &str) -> Result<Table, ConfigError> {
    let mut root = Table::new();
    // Path of the table currently receiving `key = value` lines, plus, for
    // array-of-table targets, the index of the entry being filled.
    let mut current: Vec<String> = Vec::new();
    let mut current_is_array = false;

    let lines: Vec<&str> = text.lines().collect();
    let mut idx = 0usize;
    while idx < lines.len() {
        let line_no = idx + 1;
        let mut logical = strip_comment(lines[idx]).trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance
        // (strings are respected; a truncated file just ends the value).
        while bracket_balance(&logical) > 0 && idx + 1 < lines.len() {
            idx += 1;
            logical.push(' ');
            logical.push_str(strip_comment(lines[idx]).trim());
        }
        idx += 1;
        let line: &str = logical.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            current = split_key_path(inner, line_no)?;
            current_is_array = true;
            append_table_entry(&mut root, &current, line_no)?;
        } else if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            current = split_key_path(inner, line_no)?;
            current_is_array = false;
            ensure_table(&mut root, &current, line_no)?;
        } else if let Some(eq) = find_unquoted(line, '=') {
            let key = line[..eq].trim();
            if key.is_empty() || !is_bare_key(key) {
                return Err(ConfigError::Parse {
                    line: line_no,
                    message: format!("invalid key `{key}`"),
                });
            }
            let value = parse_value(line[eq + 1..].trim(), line_no)?;
            let table = resolve_target(&mut root, &current, current_is_array, line_no)?;
            if table.insert(key.to_string(), value).is_some() {
                return Err(ConfigError::Parse {
                    line: line_no,
                    message: format!("duplicate key `{key}`"),
                });
            }
        } else {
            return Err(ConfigError::Parse {
                line: line_no,
                message: format!("expected `[table]`, `[[table]]` or `key = value`, got `{line}`"),
            });
        }
    }
    Ok(root)
}

/// Net count of `[` minus `]` outside string literals — positive means a
/// multi-line array continues on the next line.
fn bracket_balance(line: &str) -> i32 {
    let mut balance = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => balance += 1,
            ']' if !in_str => balance -= 1,
            _ => {}
        }
    }
    balance
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn split_key_path(path: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let parts: Vec<String> = path.split('.').map(|p| p.trim().to_string()).collect();
    if parts.iter().any(|p| !is_bare_key(p)) {
        return Err(ConfigError::Parse {
            line,
            message: format!("invalid table name `{path}`"),
        });
    }
    Ok(parts)
}

fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            c if c == needle && !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Walks/creates the table at `path` (all but optionally the last step).
fn ensure_table<'t>(
    root: &'t mut Table,
    path: &[String],
    line: usize,
) -> Result<&'t mut Table, ConfigError> {
    let mut at = root;
    for part in path {
        let slot = at
            .entry(part.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        at = match slot {
            Value::Table(t) => t,
            Value::TableArray(ts) => match ts.last_mut() {
                Some(last) => last,
                None => {
                    return Err(ConfigError::Parse {
                        line,
                        message: format!("empty table array at `{part}`"),
                    })
                }
            },
            _ => {
                return Err(ConfigError::Parse {
                    line,
                    message: format!("`{part}` is both a value and a table"),
                })
            }
        };
    }
    Ok(at)
}

/// Appends a fresh entry for a `[[path]]` header.
fn append_table_entry(root: &mut Table, path: &[String], line: usize) -> Result<(), ConfigError> {
    let (last, parents) = match path.split_last() {
        Some(split) => split,
        None => {
            return Err(ConfigError::Parse {
                line,
                message: "empty [[ ]] header".to_string(),
            })
        }
    };
    let parent = ensure_table(root, parents, line)?;
    let slot = parent
        .entry(last.clone())
        .or_insert_with(|| Value::TableArray(Vec::new()));
    match slot {
        Value::TableArray(ts) => {
            ts.push(Table::new());
            Ok(())
        }
        _ => Err(ConfigError::Parse {
            line,
            message: format!("`{last}` is not an array of tables"),
        }),
    }
}

/// Resolves the table that `key = value` lines should land in.
fn resolve_target<'t>(
    root: &'t mut Table,
    path: &[String],
    is_array: bool,
    line: usize,
) -> Result<&'t mut Table, ConfigError> {
    if !is_array {
        return ensure_table(root, path, line);
    }
    let (last, parents) = match path.split_last() {
        Some(split) => split,
        None => return ensure_table(root, path, line),
    };
    let parent = ensure_table(root, parents, line)?;
    match parent.get_mut(last) {
        Some(Value::TableArray(ts)) => match ts.last_mut() {
            Some(t) => Ok(t),
            None => Err(ConfigError::Parse {
                line,
                message: format!("no open [[{last}]] entry"),
            }),
        },
        _ => Err(ConfigError::Parse {
            line,
            message: format!("`{last}` is not an array of tables"),
        }),
    }
}

fn parse_value(text: &str, line: usize) -> Result<Value, ConfigError> {
    if let Some(rest) = text.strip_prefix('"') {
        let (s, consumed) = parse_string(rest, line)?;
        if rest[consumed..].trim().is_empty() {
            Ok(Value::Str(s))
        } else {
            Err(ConfigError::Parse {
                line,
                message: "trailing characters after string".to_string(),
            })
        }
    } else if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.trim_end();
        let inner = inner.strip_suffix(']').ok_or_else(|| ConfigError::Parse {
            line,
            message: "unterminated array (arrays must be single-line)".to_string(),
        })?;
        let mut items = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if !piece.is_empty() {
                items.push(parse_value(piece, line)?);
            }
        }
        Ok(Value::Array(items))
    } else if text == "true" {
        Ok(Value::Bool(true))
    } else if text == "false" {
        Ok(Value::Bool(false))
    } else if let Ok(n) = text.replace('_', "").parse::<i64>() {
        Ok(Value::Int(n))
    } else {
        Err(ConfigError::Parse {
            line,
            message: format!("unsupported value `{text}`"),
        })
    }
}

/// Parses a string body (after the opening quote); returns (value, bytes
/// consumed including the closing quote).
fn parse_string(rest: &str, line: usize) -> Result<(String, usize), ConfigError> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                other => {
                    return Err(ConfigError::Parse {
                        line,
                        message: format!("unsupported escape `\\{:?}`", other.map(|(_, c)| c)),
                    })
                }
            },
            c => out.push(c),
        }
    }
    Err(ConfigError::Parse {
        line,
        message: "unterminated string".to_string(),
    })
}

/// Splits an array body on top-level commas (commas inside strings survive).
fn split_top_level(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_policy_shape() {
        let cfg = Config::from_toml(
            r#"
# comment
[workspace]
scan = ["src", "crates"]
skip = ["crates/vendor"]

[persist_ordering]
zones = ["a.rs"]

[panic_free]
zones = ["b.rs"]

[unsafe_audit]
forbid = ["c.rs"]
deny = ["d.rs"]
audited = ["e.rs"]

[[atomic_ordering.pinned]]
file = "f.rs"
allowed = ["Relaxed"]

[[allow]]
lint = "persist-ordering"
file = "g.rs"
contains = "pool.drain()"
justification = "one drain per destination tier, not per chunk"
"#,
        )
        .expect("valid policy");
        assert_eq!(cfg.scan, ["src", "crates"]);
        assert_eq!(cfg.pinned_atomics.len(), 1);
        assert_eq!(cfg.pinned_atomics[0].allowed, ["Relaxed"]);
        assert_eq!(cfg.allows.len(), 1);
    }

    #[test]
    fn unknown_keys_are_errors() {
        let err = Config::from_toml("[workspace]\nscna = [\"src\"]\n").unwrap_err();
        assert_eq!(err, ConfigError::UnknownKey("workspace.scna".to_string()));
    }

    #[test]
    fn empty_justification_is_rejected() {
        let err = Config::from_toml(
            "[[allow]]\nlint = \"x\"\nfile = \"y\"\ncontains = \"z\"\njustification = \"meh\"\n",
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::AllowEntry(_)), "{err:?}");
    }

    #[test]
    fn truncations_never_panic() {
        let src = "[a.b]\nx = [\"s\", 1, true]\n[[a.c]]\ny = \"z # not comment\"\n";
        for end in 0..=src.len() {
            if src.is_char_boundary(end) {
                let _ = Config::from_toml(&src[..end]);
            }
        }
    }
}
