//! The analysis engine: walk the workspace, run every lint, apply waivers.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::findings::{Finding, Report};
use crate::lints::LINTS;
use crate::source::SourceFile;
use crate::AnalyzerError;

/// Runs every lint over one in-memory source file under `cfg`.
///
/// This is the unit the fixtures drive; [`analyze_workspace`] is the same
/// thing fed from disk. Waivers are *not* applied here — golden tests want
/// the raw findings.
pub fn analyze_source(path: &str, text: &str, cfg: &Config) -> Vec<Finding> {
    let file = SourceFile::parse(path, text);
    let mut findings = Vec::new();
    for lint in LINTS {
        findings.extend((lint.run)(&file, cfg));
    }
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    // One diagnostic per (line, lint, message): three dynamic indexes on one
    // line are one audit to write, not three findings to count.
    findings.dedup_by(|a, b| a.line == b.line && a.lint == b.lint && a.message == b.message);
    findings
}

/// Convenience for doctests and quick checks: analyzes a snippet with a
/// config that puts the snippet in every zone (so each lint is live).
pub fn analyze_snippet(path: &str, text: &str) -> Vec<Finding> {
    // `unsafe_audited` stays empty: any `unsafe` in a snippet fires.
    let cfg = Config {
        persist_zones: vec![path.to_string()],
        panic_free_zones: vec![path.to_string()],
        ..Config::default()
    };
    analyze_source(path, text, &cfg)
}

/// Walks the configured scan roots, analyzes every `.rs` file under a `src`
/// tree and applies the `[[allow]]` waivers. Paths in the report are
/// `/`-separated and relative to `root`.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<Report, AnalyzerError> {
    let mut files = Vec::new();
    for scan in &cfg.scan {
        collect_rs_files(&root.join(scan), root, cfg, &mut files)?;
    }
    files.sort();

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut allow_hits = vec![0usize; cfg.allows.len()];
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))
            .map_err(|e| AnalyzerError::Io(format!("{rel}: {e}")))?;
        for mut f in analyze_source(rel, &text, cfg) {
            let waiver = cfg.allows.iter().enumerate().find(|(_, a)| {
                a.lint == f.lint && a.file == f.file && f.snippet.contains(&a.contains)
            });
            match waiver {
                Some((idx, a)) => {
                    allow_hits[idx] += 1;
                    f.waived = Some(a.justification.clone());
                    report.waived.push(f);
                }
                None => report.findings.push(f),
            }
        }
    }
    for (idx, hits) in allow_hits.iter().enumerate() {
        if *hits == 0 {
            let a = &cfg.allows[idx];
            report
                .stale_allows
                .push((a.lint.clone(), a.file.clone(), a.contains.clone()));
        }
    }
    Ok(report)
}

/// Recursively collects `.rs` files under `dir` that live in a `src` tree and
/// are not under a skip prefix. Missing scan roots are an error: a policy
/// pointing at nothing is a policy typo.
fn collect_rs_files(
    dir: &Path,
    root: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> Result<(), AnalyzerError> {
    let entries =
        fs::read_dir(dir).map_err(|e| AnalyzerError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalyzerError::Io(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        let rel = relative(&path, root);
        if cfg.skip.iter().any(|s| rel.starts_with(s.as_str())) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, root, cfg, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") && in_src_tree(&rel) {
            out.push(rel);
        }
    }
    Ok(())
}

/// Only `src` trees are scanned: integration tests, benches and examples are
/// allowed to unwrap, index and stringify to their heart's content.
fn in_src_tree(rel: &str) -> bool {
    rel.starts_with("src/") || rel.contains("/src/")
}

fn relative(path: &Path, root: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    // Normalise to `/` so analyzer.toml is platform-independent.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
