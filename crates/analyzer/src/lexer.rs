//! A small, panic-free Rust token scanner.
//!
//! This is deliberately not a full lexer: the lints only need to know, for
//! every byte of a source file, whether it is *code*, a *comment* or a
//! *literal*, plus identifier/punctuation boundaries and line numbers. The
//! scanner therefore understands exactly the constructs that can hide a
//! keyword from a naive `grep` — line and (nested) block comments, string /
//! raw-string / byte-string / char literals and lifetimes — and classifies
//! everything else into identifiers, numbers and single-character punctuation.
//!
//! Invariants:
//! - Total: every input, including truncated or garbage text, produces a
//!   token stream. Unterminated literals and comments extend to end of input.
//! - Never panics (the golden tests sweep byte-level truncations through it).
//! - Lossless enough: concatenating token texts restores the input exactly.

/// What a token is, as far as the lints care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `fn`, `drain`, `SIZE`, ...).
    Ident,
    /// Lifetime such as `'a` (kept distinct so `'a` is never a char literal).
    Lifetime,
    /// Integer or float literal, including suffixes (`0x1f`, `1_000u64`).
    Number,
    /// String, raw string, byte string, byte or char literal.
    Literal,
    /// `//` or `/* */` comment, doc comments included. Text keeps the
    /// delimiters so lints can search for `SAFETY:` markers verbatim.
    Comment,
    /// One character of punctuation (`{`, `.`, `#`, ...).
    Punct,
    /// Whitespace run (kept so token texts concatenate back to the input).
    Whitespace,
}

/// One scanned token: kind, verbatim text and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token participates in code (not a comment or whitespace).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::Comment | TokenKind::Whitespace)
    }

    /// The punctuation character, if this is a punct token.
    pub fn punct(&self) -> Option<char> {
        if self.kind == TokenKind::Punct {
            self.text.chars().next()
        } else {
            None
        }
    }
}

/// Scans `src` into a token stream. Total and panic-free by construction.
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1u32;

    while pos < bytes.len() {
        let start = pos;
        let start_line = line;
        let c = bytes[pos];
        let kind = if c.is_ascii_whitespace() {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                if bytes[pos] == b'\n' {
                    line += 1;
                }
                pos += 1;
            }
            TokenKind::Whitespace
        } else if c == b'/' && peek(bytes, pos + 1) == Some(b'/') {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            TokenKind::Comment
        } else if c == b'/' && peek(bytes, pos + 1) == Some(b'*') {
            pos += 2;
            let mut depth = 1usize;
            while pos < bytes.len() && depth > 0 {
                if bytes[pos] == b'\n' {
                    line += 1;
                    pos += 1;
                } else if bytes[pos] == b'/' && peek(bytes, pos + 1) == Some(b'*') {
                    depth += 1;
                    pos += 2;
                } else if bytes[pos] == b'*' && peek(bytes, pos + 1) == Some(b'/') {
                    depth -= 1;
                    pos += 2;
                } else {
                    pos += 1;
                }
            }
            TokenKind::Comment
        } else if c == b'"' {
            pos = scan_string(bytes, pos, &mut line);
            TokenKind::Literal
        } else if (c == b'b' || c == b'r') && is_literal_prefix(bytes, pos) {
            pos = scan_prefixed_literal(bytes, pos, &mut line);
            TokenKind::Literal
        } else if c == b'\'' {
            let (end, kind) = scan_quote(bytes, pos, &mut line);
            pos = end;
            kind
        } else if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 {
            while pos < bytes.len() && is_ident_continue(bytes[pos]) {
                pos += 1;
            }
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            pos = scan_number(bytes, pos);
            TokenKind::Number
        } else {
            pos += 1;
            TokenKind::Punct
        };
        tokens.push(Token {
            kind,
            text: String::from_utf8_lossy(&bytes[start..pos]).into_owned(),
            line: start_line,
        });
    }
    tokens
}

fn peek(bytes: &[u8], at: usize) -> Option<u8> {
    bytes.get(at).copied()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
}

/// Is the `b`/`r` at `pos` the start of a literal (`b"`, `r"`, `br"`, `r#"`,
/// `b'`...) rather than an identifier?
fn is_literal_prefix(bytes: &[u8], pos: usize) -> bool {
    let mut at = pos;
    // Accept `b`, `r`, `br` and `rb` (the latter is invalid Rust but harmless
    // to accept here) followed by quote or raw-string hashes.
    while at < bytes.len() && (bytes[at] == b'b' || bytes[at] == b'r') && at - pos < 2 {
        at += 1;
    }
    match peek(bytes, at) {
        Some(b'"') => true,
        Some(b'#') => {
            // Raw string: hashes then a quote. `r#ident` (raw identifier) has
            // no quote after the hashes.
            let mut h = at;
            while peek(bytes, h) == Some(b'#') {
                h += 1;
            }
            peek(bytes, h) == Some(b'"')
        }
        Some(b'\'') => bytes[pos] == b'b' && at == pos + 1, // b'x'
        _ => false,
    }
}

/// Scans a (possibly byte/raw) literal starting at the `b`/`r` prefix.
fn scan_prefixed_literal(bytes: &[u8], mut pos: usize, line: &mut u32) -> usize {
    let mut raw = false;
    while pos < bytes.len() && (bytes[pos] == b'b' || bytes[pos] == b'r') {
        raw |= bytes[pos] == b'r';
        pos += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while peek(bytes, pos) == Some(b'#') {
            hashes += 1;
            pos += 1;
        }
        if peek(bytes, pos) != Some(b'"') {
            return pos; // not actually a raw string; treat prefix as consumed
        }
        pos += 1;
        // Scan to `"` followed by `hashes` hashes; no escapes in raw strings.
        while pos < bytes.len() {
            if bytes[pos] == b'\n' {
                *line += 1;
                pos += 1;
            } else if bytes[pos] == b'"'
                && bytes[pos + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&b| b == b'#')
                    .count()
                    == hashes
            {
                return pos + 1 + hashes;
            } else {
                pos += 1;
            }
        }
        pos
    } else if peek(bytes, pos) == Some(b'\'') {
        let (end, _) = scan_quote(bytes, pos, line);
        end
    } else {
        scan_string(bytes, pos, line)
    }
}

/// Scans a `"..."` string starting at the opening quote at `pos`.
fn scan_string(bytes: &[u8], mut pos: usize, line: &mut u32) -> usize {
    pos += 1;
    while pos < bytes.len() {
        match bytes[pos] {
            b'\\' => pos = (pos + 2).min(bytes.len()),
            b'"' => return pos + 1,
            b'\n' => {
                *line += 1;
                pos += 1;
            }
            _ => pos += 1,
        }
    }
    pos
}

/// Scans a `'` at `pos`: either a char literal or a lifetime.
fn scan_quote(bytes: &[u8], pos: usize, line: &mut u32) -> (usize, TokenKind) {
    // `'\...'` is always a char literal; `'x'` is a char literal; `'ident`
    // not followed by a closing quote is a lifetime.
    match peek(bytes, pos + 1) {
        Some(b'\\') => {
            // Escape: scan to the closing quote.
            let mut at = pos + 2;
            while at < bytes.len() && bytes[at] != b'\'' {
                if bytes[at] == b'\n' {
                    *line += 1;
                }
                at += 1;
            }
            ((at + 1).min(bytes.len()), TokenKind::Literal)
        }
        Some(c) if is_ident_continue(c) => {
            let mut at = pos + 2;
            while at < bytes.len() && is_ident_continue(bytes[at]) {
                at += 1;
            }
            if peek(bytes, at) == Some(b'\'') && at == pos + 2 {
                // Exactly one ident char then a quote: 'x' char literal.
                (at + 1, TokenKind::Literal)
            } else {
                (at, TokenKind::Lifetime)
            }
        }
        Some(b'\'') => (pos + 2, TokenKind::Lifetime), // `''` — malformed, consume
        Some(_) => {
            // `'('` style char literal of punctuation.
            if peek(bytes, pos + 2) == Some(b'\'') {
                (pos + 3, TokenKind::Literal)
            } else {
                (pos + 1, TokenKind::Punct)
            }
        }
        None => (pos + 1, TokenKind::Punct),
    }
}

/// Scans a numeric literal (ints, floats, underscores, radix, suffixes).
fn scan_number(bytes: &[u8], mut pos: usize) -> usize {
    pos += 1;
    while pos < bytes.len() {
        let c = bytes[pos];
        if c.is_ascii_alphanumeric() || c == b'_' {
            pos += 1;
        } else if c == b'.' && peek(bytes, pos + 1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` continues the number; `1..n` does not.
            pos += 1;
        } else {
            break;
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn roundtrips_verbatim() {
        let src = "fn f() { /* a /* nested */ b */ let s = \"un\\\"safe\"; } // tail";
        let rebuilt: String = lex(src).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn keyword_in_string_is_not_ident() {
        let toks = kinds("let s = \"unsafe drain\"; // unsafe too");
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && (t == "unsafe" || t == "drain")));
    }

    #[test]
    fn raw_strings_and_bytes() {
        for src in [
            "r\"unsafe\"",
            "r#\"un\"safe\"#",
            "br#\"drain\"#",
            "b\"flush\"",
            "b'x'",
        ] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0].0, TokenKind::Literal, "{src}");
        }
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'b' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "'b'"));
    }

    #[test]
    fn line_numbers_track_all_multiline_tokens() {
        let src = "a\n/* x\ny */\n\"s\ntr\"\nb";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.text == "a").map(|t| t.line);
        let b = toks.iter().find(|t| t.text == "b").map(|t| t.line);
        assert_eq!((a, b), (Some(1), Some(6)));
    }

    #[test]
    fn truncations_never_panic() {
        let src = "fn f() { let s = r#\"x\"#; /* c */ 'a: loop { break 'a; } }";
        for end in 0..=src.len() {
            if src.is_char_boundary(end) {
                let _ = lex(&src[..end]);
            }
        }
    }
}
