//! `repro-analyze` — the workspace invariant analyzer.
//!
//! The repo's load-bearing source-level invariants — one drain per persist
//! invocation, audited-modules-only `unsafe`, panic-free crash/recovery/
//! compile paths, pinned atomic-ordering protocols, typed public errors —
//! used to live in two CI `grep` lines and ROADMAP prose. This crate makes
//! them a checked, machine-readable contract: a dependency-free static-
//! analysis pass (hand-rolled string/comment/attribute-aware scanner; no
//! `syn`, no rustc plugins, in the same vendored-everything spirit as the
//! rest of the workspace) driven by per-module policy zones in the root
//! `analyzer.toml`.
//!
//! Diagnostics print `file:line` with the violated rule and a fix hint;
//! `repro-analyze check` writes a machine-readable `ANALYSIS.json`; findings
//! can be waived by `[[allow]]` entries with mandatory justifications (and a
//! waiver that stops matching anything fails the run as stale).
//!
//! ```
//! use repro_analyze::analyze_snippet;
//!
//! // A public fallible API that stringifies its error...
//! let findings = analyze_snippet(
//!     "demo.rs",
//!     "pub fn load() -> Result<(), String> { Err(\"nope\".to_string()) }\n",
//! );
//! // ...is exactly what the error-hygiene lint exists to catch.
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].lint, "error-hygiene");
//! assert_eq!(findings[0].line, 1);
//!
//! // The same API with a typed error is clean.
//! let clean = analyze_snippet(
//!     "demo.rs",
//!     "pub enum LoadError { Missing }\n\
//!      pub fn load() -> Result<(), LoadError> { Err(LoadError::Missing) }\n",
//! );
//! assert!(clean.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod source;

pub use config::{AllowEntry, Config, ConfigError, PinnedAtomics};
pub use engine::{analyze_snippet, analyze_source, analyze_workspace};
pub use findings::{Finding, Report};
pub use lints::{lint_by_id, Lint, LINTS};

use std::fmt;

/// Top-level error for a `repro-analyze` run.
#[derive(Debug)]
pub enum AnalyzerError {
    /// The policy file is missing or malformed.
    Config(ConfigError),
    /// A file or directory could not be read or written.
    Io(String),
    /// The command line was malformed.
    Usage(String),
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerError::Config(e) => write!(f, "{e}"),
            AnalyzerError::Io(e) => write!(f, "io error: {e}"),
            AnalyzerError::Usage(e) => write!(f, "usage: {e}"),
        }
    }
}

impl std::error::Error for AnalyzerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzerError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for AnalyzerError {
    fn from(e: ConfigError) -> Self {
        AnalyzerError::Config(e)
    }
}
