//! Per-file source model shared by every lint.
//!
//! Wraps the raw token stream from [`crate::lexer`] with the structure the
//! lints actually query: which lines are test code (`#[cfg(test)]` items and
//! `#[test]` functions), where function bodies start and end, and adjacency
//! lookups for justification comments (`SAFETY:`, `ORDERING:`, `in-bounds:`).
//!
//! The model is heuristic by design — it never executes macros or resolves
//! names — but it is conservative in the direction the lints need: a token it
//! cannot place is treated as *code outside any function*, which every lint
//! treats as in scope.

use crate::lexer::{lex, Token, TokenKind};

/// Rust keywords that can precede `[` without forming an index expression.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait", "true", "type",
    "union", "unsafe", "use", "where", "while", "yield",
];

/// Is this identifier a Rust keyword?
pub fn is_keyword(ident: &str) -> bool {
    KEYWORDS.contains(&ident)
}

/// One `fn` item discovered in the file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Whether the function is `pub` without a visibility restriction
    /// (`pub(crate)` and narrower do not count as public API).
    pub is_public: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-token index range of the return type (between `->` and the body
    /// brace or `where` clause), if the function declares one.
    pub ret_range: Option<(usize, usize)>,
    /// Code-token index range `(open, close)` of the body braces, if the
    /// function has a body (trait method declarations do not).
    pub body_range: Option<(usize, usize)>,
}

/// A lexed file plus the derived structure lints query.
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// Raw source lines (for diagnostics and allowlist matching).
    pub lines: Vec<String>,
    /// Code tokens only (comments and whitespace stripped).
    pub code: Vec<Token>,
    /// Comment tokens only (for justification-comment adjacency checks).
    pub comments: Vec<Token>,
    /// `is_test_line[line - 1]`: the line belongs to `#[cfg(test)]` or
    /// `#[test]` items.
    pub test_lines: Vec<bool>,
    /// Every `fn` item in the file, in source order.
    pub functions: Vec<FnInfo>,
}

impl SourceFile {
    /// Lexes and models `text` under the given repo-relative `path`.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let code: Vec<Token> = tokens.iter().filter(|t| t.is_code()).cloned().collect();
        let comments: Vec<Token> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .cloned()
            .collect();
        let mut file = SourceFile {
            path: path.to_string(),
            test_lines: vec![false; lines.len()],
            lines,
            code,
            comments,
            functions: Vec::new(),
        };
        file.mark_test_regions();
        file.find_functions();
        file
    }

    /// Whether the 1-based `line` is inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The verbatim source line (1-based), or empty if out of range.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// Whether any comment within `[line - above, line]` contains `marker`.
    pub fn comment_near(&self, line: u32, above: u32, marker: &str) -> bool {
        let lo = line.saturating_sub(above);
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && c.text.contains(marker))
    }

    /// Finds `#[cfg(test)]` / `#[test]` attributes and marks the lines of the
    /// item that follows (through its closing brace or semicolon) as test
    /// code.
    fn mark_test_regions(&mut self) {
        let code = &self.code;
        let mut i = 0;
        while i < code.len() {
            if let Some(after_attr) = test_attribute_end(code, i) {
                // Skip any further attributes between this one and the item.
                let mut at = after_attr;
                while code.get(at).and_then(|t| t.punct()) == Some('#') {
                    at = skip_attribute(code, at);
                }
                let start_line = code[i].line;
                let end_line = item_end_line(code, at);
                let lo = start_line.saturating_sub(1) as usize;
                let hi = (end_line as usize).min(self.test_lines.len());
                for flag in &mut self.test_lines[lo..hi] {
                    *flag = true;
                }
                i = at;
            }
            i += 1;
        }
    }

    /// Discovers `fn` items: name, visibility, return-type and body ranges.
    fn find_functions(&mut self) {
        let code = &self.code;
        let mut i = 0;
        while i < code.len() {
            let t = &code[i];
            if t.kind != TokenKind::Ident || t.text != "fn" {
                i += 1;
                continue;
            }
            let name = match code.get(i + 1) {
                Some(n) if n.kind == TokenKind::Ident => n.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let is_public = fn_is_public(code, i);
            // Parameter list: find the `(` and skip to its match.
            let mut at = i + 2;
            // Generic parameters `<...>` may sit between name and params.
            if code.get(at).and_then(|t| t.punct()) == Some('<') {
                at = skip_angle_brackets(code, at);
            }
            if code.get(at).and_then(|t| t.punct()) != Some('(') {
                i += 1;
                continue;
            }
            let params_end = match skip_balanced(code, at, '(', ')') {
                Some(end) => end,
                None => break, // truncated input: no params close, stop scanning
            };
            // Return type: `-> ...` up to `{`, `;` or `where`.
            let mut ret_range = None;
            let mut body_range = None;
            let mut j = params_end + 1;
            if code.get(j).and_then(|t| t.punct()) == Some('-')
                && code.get(j + 1).and_then(|t| t.punct()) == Some('>')
            {
                let ret_start = j + 2;
                let mut k = ret_start;
                let mut depth = 0i32;
                while let Some(tok) = code.get(k) {
                    match tok.punct() {
                        Some('<') => depth += 1,
                        Some('>') => depth -= 1,
                        Some('(') | Some('[') => depth += 1,
                        Some(')') | Some(']') => depth -= 1,
                        Some('{') if depth <= 0 => break,
                        Some(';') if depth <= 0 => break,
                        _ => {}
                    }
                    if tok.kind == TokenKind::Ident && tok.text == "where" && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                ret_range = Some((ret_start, k));
                j = k;
            }
            // Body: next `{` at this level (skipping a `where` clause).
            while let Some(tok) = code.get(j) {
                match tok.punct() {
                    Some('{') => {
                        if let Some(close) = skip_balanced(code, j, '{', '}') {
                            body_range = Some((j, close));
                        }
                        break;
                    }
                    Some(';') => break,
                    _ => j += 1,
                }
            }
            self.functions.push(FnInfo {
                name,
                is_public,
                line: t.line,
                ret_range,
                body_range,
            });
            i += 1;
        }
    }
}

/// If `code[i]` opens a `#[cfg(test)]` or `#[test]` attribute, returns the
/// index just past the closing `]`.
fn test_attribute_end(code: &[Token], i: usize) -> Option<usize> {
    if code.get(i)?.punct() != Some('#') || code.get(i + 1)?.punct() != Some('[') {
        return None;
    }
    let end = skip_balanced(code, i + 1, '[', ']')?;
    let body: Vec<&str> = code[i + 2..end]
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    let is_test = body == ["test"] || (body.first() == Some(&"cfg") && body.contains(&"test"));
    if is_test {
        Some(end + 1)
    } else {
        None
    }
}

/// Skips a `#[...]` attribute starting at the `#`; returns index past `]`.
fn skip_attribute(code: &[Token], i: usize) -> usize {
    if code.get(i + 1).and_then(|t| t.punct()) == Some('[') {
        match skip_balanced(code, i + 1, '[', ']') {
            Some(end) => end + 1,
            None => code.len(),
        }
    } else {
        i + 1
    }
}

/// Given the opener at `open` (must be `open_ch`), returns the index of the
/// matching `close_ch`, or `None` if the input is truncated.
fn skip_balanced(code: &[Token], open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = code.get(i) {
        if t.punct() == Some(open_ch) {
            depth += 1;
        } else if t.punct() == Some(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Skips a generic parameter list `<...>`; returns index past the final `>`.
/// Tolerates `>>`-free token streams because the lexer emits single-char
/// puncts.
fn skip_angle_brackets(code: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(t) = code.get(i) {
        match t.punct() {
            Some('<') => depth += 1,
            Some('>') => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// The last line of the item starting at `at`: through the matching `}` for
/// braced items, or the `;` for terse ones.
fn item_end_line(code: &[Token], at: usize) -> u32 {
    let mut i = at;
    while let Some(t) = code.get(i) {
        match t.punct() {
            Some('{') => {
                return match skip_balanced(code, i, '{', '}') {
                    Some(close) => code[close].line,
                    None => code.last().map(|t| t.line).unwrap_or(0),
                };
            }
            Some(';') => return t.line,
            _ => i += 1,
        }
    }
    code.last().map(|t| t.line).unwrap_or(0)
}

/// Looks backwards from the `fn` at index `i` for a bare `pub` (visibility
/// restrictions like `pub(crate)` do not count as public API).
fn fn_is_public(code: &[Token], i: usize) -> bool {
    let mut at = i;
    while at > 0 {
        at -= 1;
        let t = &code[at];
        match t.kind {
            TokenKind::Ident
                if matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern") =>
            {
                continue
            }
            TokenKind::Literal => continue, // extern "C"
            TokenKind::Ident if t.text == "pub" => {
                // `pub(...)` restricted visibility is not public API.
                return code.get(at + 1).and_then(|t| t.punct()) != Some('(');
            }
            _ => return false,
        }
    }
    false
}

/// Walks the code tokens of a function body, tracking whether each position
/// is inside a `for`/`while`/`loop` body. Calls `visit(index, loop_depth)`
/// for every token index in `(open, close)`.
pub fn walk_body(code: &[Token], open: usize, close: usize, mut visit: impl FnMut(usize, usize)) {
    // Stack of brace depths at which a loop body was entered.
    let mut loop_stack: Vec<usize> = Vec::new();
    let mut brace_depth = 0usize;
    // A loop keyword arms the next `{` at paren-depth 0 as a loop body.
    let mut armed = false;
    let mut paren_depth = 0usize;
    let mut i = open;
    while i <= close {
        let t = &code[i];
        match t.punct() {
            Some('{') => {
                brace_depth += 1;
                if armed && paren_depth == 0 {
                    loop_stack.push(brace_depth);
                    armed = false;
                }
            }
            Some('}') => {
                if loop_stack.last() == Some(&brace_depth) {
                    loop_stack.pop();
                }
                brace_depth = brace_depth.saturating_sub(1);
            }
            Some('(') | Some('[') => paren_depth += 1,
            Some(')') | Some(']') => paren_depth = paren_depth.saturating_sub(1),
            _ => {}
        }
        if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            // `impl Trait for Type` and `for<'a>` are not loops: a loop's
            // `for` never follows an identifier or closing angle bracket and
            // is never followed by `<`.
            let prev_is_ident = i
                .checked_sub(1)
                .and_then(|p| code.get(p))
                .is_some_and(|p| p.kind == TokenKind::Ident && !is_keyword(&p.text));
            let next_is_angle = code.get(i + 1).and_then(|t| t.punct()) == Some('<');
            if !prev_is_ident && !next_is_angle && paren_depth == 0 {
                armed = true;
            }
        }
        visit(i, loop_stack.len());
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_cfg_test_modules_and_test_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n#[test]\nfn unit() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
        assert!(f.is_test_line(8));
    }

    #[test]
    fn finds_functions_with_visibility_and_returns() {
        let src = "pub fn a() -> Result<(), String> { Ok(()) }\npub(crate) fn b() {}\nfn c<T: Into<u64>>(x: T) -> u64 { x.into() }\n";
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<_> = f.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(f.functions[0].is_public);
        assert!(!f.functions[1].is_public, "pub(crate) is not public API");
        assert!(f.functions[0].ret_range.is_some());
        assert!(f.functions[2].body_range.is_some());
    }

    #[test]
    fn loop_depth_tracks_loops_not_impl_for() {
        let src = "fn f(xs: &[u64]) { for x in xs { touch(*x); } done(); }";
        let f = SourceFile::parse("x.rs", src);
        let (open, close) = f.functions[0].body_range.expect("body");
        let mut at_touch = None;
        let mut at_done = None;
        walk_body(&f.code, open, close, |i, depth| {
            if f.code[i].text == "touch" {
                at_touch = Some(depth);
            }
            if f.code[i].text == "done" {
                at_done = Some(depth);
            }
        });
        assert_eq!(at_touch, Some(1));
        assert_eq!(at_done, Some(0));
    }
}
