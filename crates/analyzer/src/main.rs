//! `repro-analyze` CLI.
//!
//! ```text
//! repro-analyze check [--root DIR] [--config PATH] [--json PATH] [--quiet]
//! repro-analyze lints
//! ```
//!
//! `check` scans the workspace under `--root` (default: current directory)
//! with the policy in `--config` (default: `<root>/analyzer.toml`), prints
//! `file:line` diagnostics with fix hints, writes the machine-readable report
//! to `--json` (default: `<root>/ANALYSIS.json`) and exits 0 only when the
//! tree is clean. Exit codes: 0 clean, 1 findings (or stale waivers), 2
//! usage/config/io error.

use std::path::PathBuf;
use std::process::ExitCode;

use repro_analyze::{analyze_workspace, AnalyzerError, Config, LINTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("repro-analyze: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, AnalyzerError> {
    match args.first().map(|s| s.as_str()) {
        Some("check") => check(&args[1..]),
        Some("lints") => {
            for lint in LINTS {
                println!("{:<18} {}", lint.id, lint.description);
            }
            Ok(true)
        }
        Some(other) => Err(AnalyzerError::Usage(format!(
            "unknown command `{other}` (expected `check` or `lints`)"
        ))),
        None => Err(AnalyzerError::Usage(
            "repro-analyze check [--root DIR] [--config PATH] [--json PATH] [--quiet]".to_string(),
        )),
    }
}

fn check(args: &[String]) -> Result<bool, AnalyzerError> {
    let mut root = PathBuf::from(".");
    let mut config_path = None;
    let mut json_path = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(next_value(&mut it, "--root")?),
            "--config" => config_path = Some(PathBuf::from(next_value(&mut it, "--config")?)),
            "--json" => json_path = Some(PathBuf::from(next_value(&mut it, "--json")?)),
            "--quiet" => quiet = true,
            other => {
                return Err(AnalyzerError::Usage(format!(
                    "unknown flag `{other}` for check"
                )))
            }
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("analyzer.toml"));
    let json_path = json_path.unwrap_or_else(|| root.join("ANALYSIS.json"));

    let policy = std::fs::read_to_string(&config_path)
        .map_err(|e| AnalyzerError::Io(format!("{}: {e}", config_path.display())))?;
    let cfg = Config::from_toml(&policy)?;
    let report = analyze_workspace(&root, &cfg)?;

    let lint_table: Vec<(&str, &str)> = LINTS.iter().map(|l| (l.id, l.description)).collect();
    std::fs::write(&json_path, report.to_json(&lint_table))
        .map_err(|e| AnalyzerError::Io(format!("{}: {e}", json_path.display())))?;

    if !quiet {
        for f in &report.findings {
            println!("{f}");
        }
        for (lint, file, contains) in &report.stale_allows {
            println!(
                "analyzer.toml: stale [[allow]] entry: lint `{lint}`, file `{file}`, \
                 contains `{contains}` matched nothing\n    fix: remove the waiver (the \
                 finding it covered is gone) or update `contains`"
            );
        }
        println!(
            "repro-analyze: {} finding(s), {} waived, {} stale waiver(s) across {} files ({} lints)",
            report.findings.len(),
            report.waived.len(),
            report.stale_allows.len(),
            report.files_scanned,
            LINTS.len(),
        );
    }
    Ok(report.is_clean())
}

fn next_value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<&'a String, AnalyzerError> {
    it.next()
        .ok_or_else(|| AnalyzerError::Usage(format!("{flag} needs a value")))
}
