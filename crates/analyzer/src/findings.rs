//! Findings, waivers and the machine-readable `ANALYSIS.json` report.

use std::fmt;

/// One rule violation at a specific source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint id (kebab-case, e.g. `persist-ordering`).
    pub lint: &'static str,
    /// Repo-relative path of the file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// What rule was violated, in one sentence.
    pub message: String,
    /// How to fix it, in one sentence.
    pub hint: String,
    /// Verbatim source line (trimmed) — also what `[[allow]]` entries match.
    pub snippet: String,
    /// Set when an `[[allow]]` entry waives the finding: its justification.
    pub waived: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}\n    fix: {}",
            self.file, self.line, self.lint, self.message, self.snippet, self.hint
        )
    }
}

/// The full result of one analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    /// Active findings (not waived) — any entry here fails the run.
    pub findings: Vec<Finding>,
    /// Findings waived by `[[allow]]` entries, with their justifications.
    pub waived: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// `[[allow]]` entries that matched nothing — stale waivers are findings
    /// in their own right (they hide future regressions), reported as
    /// `(lint, file, contains)` triples.
    pub stale_allows: Vec<(String, String, String)>,
}

impl Report {
    /// Whether the tree is clean (no active findings, no stale waivers).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows.is_empty()
    }

    /// Renders the machine-readable `ANALYSIS.json` document.
    pub fn to_json(&self, lints: &[(&str, &str)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"lints\": [\n");
        for (i, (id, desc)) in lints.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"description\": {}}}{}\n",
                json_str(id),
                json_str(desc),
                comma(i, lints.len())
            ));
        }
        out.push_str("  ],\n");
        json_finding_array(&mut out, "findings", &self.findings);
        out.push_str(",\n");
        json_finding_array(&mut out, "waived", &self.waived);
        out.push_str(",\n  \"stale_allows\": [\n");
        for (i, (lint, file, contains)) in self.stale_allows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"lint\": {}, \"file\": {}, \"contains\": {}}}{}\n",
                json_str(lint),
                json_str(file),
                json_str(contains),
                comma(i, self.stale_allows.len())
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_finding_array(out: &mut String, key: &str, findings: &[Finding]) {
    out.push_str(&format!("  \"{key}\": [\n"));
    for (i, f) in findings.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"hint\": {}, \"snippet\": {}",
            json_str(f.lint),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            json_str(&f.hint),
            json_str(&f.snippet),
        ));
        if let Some(j) = &f.waived {
            out.push_str(&format!(", \"justification\": {}", json_str(j)));
        }
        out.push_str(&format!("}}{}\n", comma(i, findings.len())));
    }
    out.push_str("  ]");
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Escapes a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let report = Report {
            findings: vec![Finding {
                lint: "panic-free",
                file: "a\\b.rs".to_string(),
                line: 3,
                message: "say \"no\"".to_string(),
                hint: "h".to_string(),
                snippet: "x\ty".to_string(),
                waived: None,
            }],
            waived: Vec::new(),
            files_scanned: 1,
            stale_allows: Vec::new(),
        };
        let json = report.to_json(&[("panic-free", "d")]);
        assert!(json.contains("\"a\\\\b.rs\""));
        assert!(json.contains("say \\\"no\\\""));
        assert!(json.contains("\"clean\": false"));
    }
}
