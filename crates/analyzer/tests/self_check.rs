//! The workspace ships clean under its own policy: this is the same check CI
//! runs (`cargo run -p repro-analyze -- check`), as a plain test so a plain
//! `cargo test` catches a regression before the static-analysis job does.

use std::fs;
use std::path::{Path, PathBuf};

use repro_analyze::{analyze_workspace, Config, LINTS};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_clean_under_its_own_policy() {
    let root = workspace_root();
    let toml = fs::read_to_string(root.join("analyzer.toml")).expect("analyzer.toml at repo root");
    let cfg = Config::from_toml(&toml).expect("analyzer.toml parses");
    let report = analyze_workspace(&root, &cfg).expect("workspace scan succeeds");

    assert!(
        report.files_scanned >= 40,
        "suspiciously small scan ({} files) — did a scan root move?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "the tree has unwaived findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale [[allow]] entries: {:?}",
        report.stale_allows
    );
    assert!(report.is_clean());

    // Every waiver that matched carries its mandatory justification.
    for f in &report.waived {
        let j = f.waived.as_deref().unwrap_or_default();
        assert!(
            j.trim().len() >= 20,
            "waiver without a real justification: {f}"
        );
    }

    // The committed ANALYSIS.json is the one this tree produces.
    let lints: Vec<(&str, &str)> = LINTS.iter().map(|l| (l.id, l.description)).collect();
    let committed = fs::read_to_string(root.join("ANALYSIS.json")).expect("ANALYSIS.json at root");
    assert_eq!(
        committed,
        report.to_json(&lints),
        "ANALYSIS.json is stale — rerun `cargo run -p repro-analyze -- check`"
    );
}
