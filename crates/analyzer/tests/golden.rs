//! Fixture-driven golden tests: every registered lint has a firing fixture
//! (which must produce findings of exactly that lint) and a clean fixture
//! (which must produce none at all).

use std::fs;
use std::path::{Path, PathBuf};

use repro_analyze::{analyze_snippet, LINTS};

fn fixture_dir(lint: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(lint)
}

fn fixture(lint: &str, name: &str) -> String {
    let path = fixture_dir(lint).join(name);
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} is required: {e}", path.display()))
}

/// The counting assertion: the registry and the fixture tree move together.
/// If this fails because you added a lint, add `fixtures/<id>/{fire,clean}.rs`
/// and a catalogue row in ANALYSIS.md.
#[test]
fn every_lint_has_both_fixtures() {
    assert_eq!(LINTS.len(), 5, "lint registry changed size");
    for lint in LINTS {
        fixture(lint.id, "fire.rs");
        fixture(lint.id, "clean.rs");
    }
    // And the fixture tree has no orphan directories for retired lints.
    let dirs = fs::read_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures"))
        .expect("fixtures directory");
    for entry in dirs {
        let name = entry.expect("fixture entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            LINTS.iter().any(|l| l.id == name),
            "fixtures/{name} does not correspond to a registered lint"
        );
    }
}

#[test]
fn fire_fixtures_fire_exactly_their_lint() {
    let expected = [
        ("persist-ordering", 2),
        ("unsafe-audit", 1),
        ("panic-free", 3),
        ("atomic-ordering", 1),
        ("error-hygiene", 2),
    ];
    for (id, count) in expected {
        let findings = analyze_snippet("fixture.rs", &fixture(id, "fire.rs"));
        assert_eq!(
            findings.len(),
            count,
            "{id}/fire.rs findings: {findings:#?}"
        );
        for f in &findings {
            assert_eq!(f.lint, id, "{id}/fire.rs cross-fired: {f}");
            assert!(f.line > 0, "{id}/fire.rs finding without a line: {f}");
            assert!(!f.hint.is_empty(), "{id}/fire.rs finding without a hint");
            assert!(
                !f.snippet.is_empty(),
                "{id}/fire.rs finding without a snippet"
            );
        }
    }
}

#[test]
fn clean_fixtures_are_silent() {
    for lint in LINTS {
        let findings = analyze_snippet("fixture.rs", &fixture(lint.id, "clean.rs"));
        assert!(
            findings.is_empty(),
            "{}/clean.rs is not clean: {findings:#?}",
            lint.id
        );
    }
}

/// Diagnostics render as `file:line: [lint] message` with snippet + fix hint,
/// so a finding is directly actionable from the CI log.
#[test]
fn diagnostics_carry_location_rule_and_hint() {
    let findings = analyze_snippet("fixture.rs", &fixture("panic-free", "fire.rs"));
    let rendered = findings
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        rendered.contains("fixture.rs:5: [panic-free]"),
        "{rendered}"
    );
    assert!(rendered.contains("fix: "), "{rendered}");
}
