//! Totality sweep: the lexer, the lints and the policy parser must never
//! panic, whatever bytes they are fed — truncated sources, truncated policy
//! files, or outright garbage.

use std::fs;
use std::path::{Path, PathBuf};

use repro_analyze::lexer::lex;
use repro_analyze::{analyze_snippet, Config, LINTS};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Lexes and analyzes `text` cut at every char boundary in `step`-byte
/// strides (stride 1 = every prefix), asserting the lexer round-trips
/// verbatim at each cut.
fn sweep_prefixes(name: &str, text: &str, step: usize) {
    let mut next = 0;
    for end in 0..=text.len() {
        if end < next || !text.is_char_boundary(end) {
            continue;
        }
        next = end + step;
        let cut = &text[..end];
        let round_trip: String = lex(cut).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            round_trip, cut,
            "{name}: lexer round-trip broke at byte {end}"
        );
        let _ = analyze_snippet("trunc.rs", cut);
    }
}

/// Every fixture, cut at every byte: truncation mid-string, mid-comment,
/// mid-attribute, mid-token — none of it may panic.
#[test]
fn truncated_fixtures_never_panic() {
    for lint in LINTS {
        for name in ["fire.rs", "clean.rs"] {
            let path = Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("fixtures")
                .join(lint.id)
                .join(name);
            let text = fs::read_to_string(&path).expect("fixture");
            sweep_prefixes(&format!("{}/{name}", lint.id), &text, 1);
        }
    }
}

/// Real workspace sources (the gnarliest inputs we have), strided so the
/// sweep stays fast in debug builds.
#[test]
fn truncated_real_sources_never_panic() {
    let root = workspace_root();
    for rel in [
        "crates/pmem/src/checkpoint.rs",
        "crates/stream/src/exec.rs",
        "crates/analyzer/src/lexer.rs",
    ] {
        let text = fs::read_to_string(root.join(rel)).expect("workspace source");
        sweep_prefixes(rel, &text, 251);
    }
}

/// The policy parser is total too: every prefix of the real analyzer.toml
/// parses to Ok or a structured error, never a panic.
#[test]
fn truncated_policy_never_panics() {
    let text = fs::read_to_string(workspace_root().join("analyzer.toml")).expect("analyzer.toml");
    for end in 0..=text.len() {
        if !text.is_char_boundary(end) {
            continue;
        }
        let _ = Config::from_toml(&text[..end]);
    }
}

/// Deterministic LCG garbage — printable ASCII, brackets, quotes and
/// multibyte chars — through the lexer, the lints and the policy parser.
#[test]
fn garbage_never_panics() {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let alphabet: Vec<char> = ('!'..='~').chain("\n\t \"'`[]{}()§λ∎".chars()).collect();
    for round in 0..64 {
        let len = 1 + (next() as usize % 400);
        let text: String = (0..len)
            // in-bounds check is moot here: the modulus bounds the index.
            .map(|_| alphabet[next() as usize % alphabet.len()])
            .collect();
        let round_trip: String = lex(&text).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(round_trip, text, "round {round}: lexer round-trip broke");
        let _ = analyze_snippet("garbage.rs", &text);
        let _ = Config::from_toml(&text);
    }
}
