//! Fixture: no `unsafe` token anywhere — the word in a doc comment is fine.

/// Clean: safe code only; "unsafe" in prose does not count.
pub fn peek(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}
