//! Fixture: `unsafe` outside the audited-module allowlist.

/// Fires: an unsafe block in a file that `unsafe_audit.audited` does not list.
pub fn peek(bytes: &[u8]) -> u8 {
    let ptr = bytes.as_ptr();
    unsafe { *ptr }
}
