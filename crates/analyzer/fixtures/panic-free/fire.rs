//! Fixture: panics and unaudited dynamic indexing in a panic-free zone.

/// Fires three times: `.unwrap()`, `panic!` and a bare dynamic index.
pub fn recover(slots: &[u64], committed: usize) -> u64 {
    let head = slots.first().copied().unwrap();
    if head == 0 {
        panic!("empty journal");
    }
    slots[committed]
}
