//! Fixture: the same logic with typed errors and an audited index.

/// The zone's error type.
#[derive(Debug)]
pub enum RecoverError {
    /// The journal had no slots.
    Empty,
}

/// Clean: `.get()`-style access with a typed error, and the one remaining
/// index carries its bound proof.
pub fn recover(slots: &[u64], committed: usize) -> Result<u64, RecoverError> {
    let head = slots.first().copied().ok_or(RecoverError::Empty)?;
    if head == 0 {
        return Err(RecoverError::Empty);
    }
    let last = committed.min(slots.len() - 1);
    // in-bounds: `last` is clamped to slots.len() - 1 above (non-empty here).
    Ok(slots[last])
}
