//! Fixture: the documented discipline — a fan-out of flushes, one drain.

/// Stand-in for the pool's persist surface.
pub struct Pool;

impl Pool {
    fn flush(&self, _off: u64, _len: u64) {}
    fn drain(&self) {}
}

/// Clean: per-chunk flushes fan out, a single drain fences them all.
pub fn checkpoint(pool: &Pool, chunks: &[(u64, u64)]) {
    for &(off, len) in chunks {
        pool.flush(off, len);
    }
    pool.drain();
}
