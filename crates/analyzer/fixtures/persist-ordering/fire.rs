//! Fixture: violations of the flush/fence discipline (paper §4).

/// Stand-in for the pool's persist surface.
pub struct Pool;

impl Pool {
    fn flush(&self, _off: u64, _len: u64) {}
    fn drain(&self) {}
}

/// Fires: `drain()` sits inside the per-chunk loop.
pub fn drain_per_chunk(pool: &Pool, chunks: &[(u64, u64)]) {
    for &(off, len) in chunks {
        pool.flush(off, len);
        pool.drain();
    }
}

/// Fires: a flush fan-out that never reaches a drain.
pub fn fanout_without_drain(pool: &Pool, chunks: &[(u64, u64)]) {
    for &(off, len) in chunks {
        pool.flush(off, len);
    }
}
