//! Fixture: typed errors on the public surface.

/// The module's error type.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(String),
    /// The payload was not a number.
    Parse,
}

/// Clean: a typed error enum.
pub fn load(path: &str) -> Result<Vec<u8>, LoadError> {
    Err(LoadError::Io(path.to_string()))
}

/// Clean: private helpers may stringify — only the public surface is held
/// to the typed-error contract.
fn helper(text: &str) -> Result<u32, String> {
    text.trim().parse().map_err(|_| "not a number".to_string())
}
