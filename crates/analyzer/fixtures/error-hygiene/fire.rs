//! Fixture: public fallible APIs leaking untyped errors.

use std::error::Error;

/// Fires: `Box<dyn Error>` escapes a public signature.
pub fn load(path: &str) -> Result<Vec<u8>, Box<dyn Error>> {
    Err(format!("cannot read {path}").into())
}

/// Fires: a stringly-typed error.
pub fn parse(text: &str) -> Result<u32, String> {
    text.trim().parse().map_err(|_| "not a number".to_string())
}
