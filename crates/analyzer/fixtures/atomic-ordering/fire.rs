//! Fixture: an unjustified `SeqCst` outside any pinned module.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fires: `SeqCst` with no justifying comment.
pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::SeqCst)
}
