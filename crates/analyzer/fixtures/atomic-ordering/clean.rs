//! Fixture: a justified `SeqCst` and a weaker ordering.

use std::sync::atomic::{AtomicU64, Ordering};

/// Clean: the fence-like ordering carries its justification.
pub fn bump(counter: &AtomicU64) -> u64 {
    // ORDERING: the counter doubles as a publication fence for the reader
    // thread, so it stays totally ordered with the flag stores.
    counter.fetch_add(1, Ordering::SeqCst)
}

/// Clean: weaker orderings need no comment outside pinned modules.
pub fn peek(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Acquire)
}
