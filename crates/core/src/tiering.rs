//! Adaptive tiering: access-tracked hot/cold chunk migration across tiers.
//!
//! The static [`ExpansionPlan`](crate::placement::ExpansionPlan) answers the
//! placement question **once** — a data set larger than local DRAM spills its
//! tail onto the CXL expander and never moves again. This module turns that
//! one-shot decision into a **feedback loop**:
//!
//! ```text
//!   STREAM / PmemStream hot path ──► AccessTracker (per-chunk read/write
//!            ▲                        byte counters, epoch decay)
//!            │                               │ heat snapshot
//!            │                               ▼
//!   TieredRegion (per-tier pools,      TierPlanner policy
//!   durable residency map)             (static-spill │ hot-greedy │
//!            ▲                          bandwidth-aware interleaving)
//!            │ flush-batched copies            │ TierAssignment
//!            └────────── Migrator ◄────────────┘
//!                 (resident PinnedPool, ChunkExecutor batching,
//!                  residency commit via the pool undo log)
//! ```
//!
//! * [`AccessTracker`] — lock-free per-chunk read/write byte counters fed by
//!   the stream engine's worker windows (relaxed atomics; a handful of adds
//!   per kernel invocation, which is what keeps the hot-path overhead under
//!   the 5 % budget `BENCH_tiering.json` enforces in CI).
//! * [`TierPlanner`] — the policy trait. [`StaticSpillPolicy`] reproduces the
//!   capacity-order spill exactly (parity baseline), [`HotGreedyPolicy`]
//!   promotes the hottest chunks onto the fastest tier under each tier's
//!   capacity budget, and [`BandwidthAwarePolicy`] consults the
//!   [`memsim::Engine`] to *interleave* traffic across tiers in proportion to
//!   what each device and link can actually sustain — the policy that
//!   recovers the bandwidth the ~11 GB/s expander ceiling takes away.
//! * [`TieredRegion`] — the functional store: one pool per tier, each holding
//!   a chunk slab, plus a durable [`ResidencyMap`] (in the spill tier's pool)
//!   naming the one tier every chunk lives on.
//! * The **migrator** ([`TieredRegion::migrate_to`]) — copies moved chunks
//!   into their destination slab through a [`ChunkExecutor`] (the runtime
//!   fans this over the resident `PinnedPool`), flushes each copy and drains
//!   once per destination tier, then commits each chunk's residency flip
//!   inside a pool transaction. A crash at *any* point leaves every chunk
//!   readable from exactly one tier: before the flip the source bytes are
//!   authoritative (the shadow copy is invisible), after it the destination
//!   bytes are, and a flip torn mid-transaction is rolled back by undo-log
//!   recovery.
//!
//! Entry points on the runtime:
//! [`CxlPmemRuntime::tiered_region`](crate::CxlPmemRuntime::tiered_region)
//! and [`CxlPmemRuntime::rebalance`](crate::CxlPmemRuntime::rebalance).

use crate::placement::TierPolicy;
use crate::runtime::{CxlPmemRuntime, RuntimeError};
use memsim::access::{ThreadTraffic, TrafficPhase};
use memsim::{Engine, PhaseReport, SimError};
use numa::NodeId;
use pmem::pool::MIN_POOL_SIZE;
use pmem::{ChunkExecutor, CrashPoint, PmemPool, ResidencyMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------- tracking

/// Decayed access heat of one chunk (byte counts, not event counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkHeat {
    /// Bytes read from the chunk since the last decay horizon.
    pub read_bytes: u64,
    /// Bytes written to the chunk since the last decay horizon.
    pub write_bytes: u64,
}

impl ChunkHeat {
    /// Total traffic against the chunk.
    pub fn total(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// Lock-free per-chunk access counters with epoch decay.
///
/// The tracker divides a `total_bytes` span into `chunk_bytes` chunks and
/// counts read/written bytes per chunk with relaxed atomics — cheap enough to
/// sit on the STREAM hot path (each worker records its whole window with a
/// couple of `fetch_add`s per kernel invocation). [`decay`](Self::decay)
/// halves every counter, so heat is an exponential moving average over
/// rebalance epochs rather than an all-time sum: a chunk that *was* hot last
/// week eventually looks cold.
#[derive(Debug)]
pub struct AccessTracker {
    total_bytes: u64,
    chunk_bytes: u64,
    reads: Vec<AtomicU64>,
    writes: Vec<AtomicU64>,
    decays: AtomicU64,
}

impl AccessTracker {
    /// A tracker over `total_bytes` at `chunk_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(total_bytes: u64, chunk_bytes: u64) -> Self {
        assert!(total_bytes > 0, "tracker span must be non-empty");
        assert!(chunk_bytes > 0, "tracker chunk must be non-empty");
        let chunks = total_bytes.div_ceil(chunk_bytes) as usize;
        AccessTracker {
            total_bytes,
            chunk_bytes,
            reads: (0..chunks).map(|_| AtomicU64::new(0)).collect(),
            writes: (0..chunks).map(|_| AtomicU64::new(0)).collect(),
            decays: AtomicU64::new(0),
        }
    }

    /// Number of tracked chunks.
    pub fn chunk_count(&self) -> usize {
        self.reads.len()
    }

    /// The tracked span in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Tracking granularity in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// How many decay epochs have elapsed.
    pub fn decay_epochs(&self) -> u64 {
        self.decays.load(Ordering::Relaxed)
    }

    fn record(counters: &[AtomicU64], chunk_bytes: u64, total: u64, lo: u64, hi: u64) {
        let hi = hi.min(total);
        if lo >= hi {
            return;
        }
        let first = (lo / chunk_bytes) as usize;
        let last = ((hi - 1) / chunk_bytes) as usize;
        for (chunk, counter) in counters.iter().enumerate().take(last + 1).skip(first) {
            let chunk_lo = chunk as u64 * chunk_bytes;
            let chunk_hi = chunk_lo + chunk_bytes;
            let overlap = hi.min(chunk_hi) - lo.max(chunk_lo);
            counter.fetch_add(overlap, Ordering::Relaxed);
        }
    }

    /// Records a read of the byte span `[lo, hi)` (clamped to the tracked
    /// range; spans crossing chunk boundaries are split proportionally).
    pub fn record_read(&self, lo: u64, hi: u64) {
        Self::record(&self.reads, self.chunk_bytes, self.total_bytes, lo, hi);
    }

    /// Records a write of the byte span `[lo, hi)`.
    pub fn record_write(&self, lo: u64, hi: u64) {
        Self::record(&self.writes, self.chunk_bytes, self.total_bytes, lo, hi);
    }

    /// Snapshot of every chunk's current heat.
    pub fn heat(&self) -> Vec<ChunkHeat> {
        self.reads
            .iter()
            .zip(self.writes.iter())
            .map(|(r, w)| ChunkHeat {
                read_bytes: r.load(Ordering::Relaxed),
                write_bytes: w.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Halves every counter (exponential decay across rebalance epochs).
    /// Concurrent hot-path increments may land before or after the halving;
    /// either order is a valid interleaving of an approximate signal.
    pub fn decay(&self) {
        for counter in self.reads.iter().chain(self.writes.iter()) {
            // fetch_update loops its CAS, so a racing fetch_add is never lost
            // wholesale — it is merely halved or not, like any other sample.
            let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v / 2));
        }
        self.decays.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------- planning

/// The shape of one tier as the planners see it: where it is and how many
/// payload bytes of the region it may hold (the *policy budget*, which can be
/// tighter than the node's physical capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierShape {
    /// NUMA node backing the tier.
    pub node: NodeId,
    /// Payload-byte budget the planners must respect.
    pub capacity_bytes: u64,
}

/// Everything a [`TierPlanner`] may consult when placing chunks.
pub struct PlanContext<'a> {
    /// Payload bytes of the whole region.
    pub data_len: u64,
    /// Chunk granularity in bytes (the last chunk may be shorter).
    pub chunk_bytes: u64,
    /// Per-chunk access heat, indexed by chunk.
    pub heat: &'a [ChunkHeat],
    /// Tiers in preference order (fastest first); budgets are enforced.
    pub tiers: &'a [TierShape],
    /// The analytical engine, for bandwidth-aware decisions.
    pub engine: &'a Engine,
    /// Logical CPUs of the worker placement that will drive the traffic.
    pub cpus: &'a [usize],
    /// Current residency (tier index per chunk), when the region has one —
    /// lets a policy prefer the plan that moves less on a bandwidth tie.
    pub current: Option<&'a [usize]>,
}

impl PlanContext<'_> {
    /// Number of chunks being planned.
    pub fn chunk_count(&self) -> usize {
        self.heat.len()
    }

    /// Payload length of chunk `i` (the tail chunk may be short).
    pub fn chunk_payload(&self, chunk: usize) -> u64 {
        chunk_payload(self.data_len, self.chunk_bytes, chunk)
    }

    /// Per-chunk planning weight: the decayed heat, or — before any traffic
    /// has been observed — the chunk's payload size, so a cold start plans
    /// exactly like uniform access.
    pub fn effective_heat(&self) -> Vec<u64> {
        let total: u64 = self.heat.iter().map(ChunkHeat::total).sum();
        if total == 0 {
            (0..self.chunk_count())
                .map(|c| self.chunk_payload(c))
                .collect()
        } else {
            self.heat.iter().map(ChunkHeat::total).collect()
        }
    }
}

fn chunk_payload(data_len: u64, chunk_bytes: u64, chunk: usize) -> u64 {
    let start = chunk as u64 * chunk_bytes;
    chunk_bytes.min(data_len.saturating_sub(start))
}

/// A plan: which tier (index into the region's tier list) each chunk should
/// live on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierAssignment {
    /// Tier index per chunk.
    pub tier_of: Vec<usize>,
}

impl TierAssignment {
    /// Fraction of chunks placed on tier `tier`.
    pub fn fraction_on(&self, tier: usize) -> f64 {
        if self.tier_of.is_empty() {
            return 0.0;
        }
        self.tier_of.iter().filter(|&&t| t == tier).count() as f64 / self.tier_of.len() as f64
    }

    /// Chunks that differ from `current` (the migration set size).
    pub fn moves_from(&self, current: &[usize]) -> usize {
        self.tier_of
            .iter()
            .zip(current.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Heat-weighted traffic per tier node: how the region's traffic would
    /// spread across NUMA nodes under this assignment. This is what the
    /// engine simulates — bandwidth follows *traffic*, not byte placement,
    /// which is exactly why promoting hot chunks moves the needle.
    pub fn traffic_parts(&self, tiers: &[TierShape], weights: &[u64]) -> Vec<(NodeId, u64)> {
        let mut per_tier = vec![0u64; tiers.len()];
        for (chunk, &tier) in self.tier_of.iter().enumerate() {
            per_tier[tier] += weights.get(chunk).copied().unwrap_or(0);
        }
        tiers
            .iter()
            .zip(per_tier)
            .map(|(shape, w)| (shape.node, w))
            .collect()
    }

    /// Checks shape and capacity budgets for a region of `data_len` bytes at
    /// `chunk_bytes` granularity over `tiers`.
    pub fn validate(
        &self,
        data_len: u64,
        chunk_bytes: u64,
        tiers: &[TierShape],
    ) -> crate::Result<()> {
        let chunk_count = data_len.div_ceil(chunk_bytes.max(1)) as usize;
        if self.tier_of.len() != chunk_count {
            return Err(RuntimeError::Tiering("assignment length mismatch"));
        }
        let mut used = vec![0u64; tiers.len()];
        for (chunk, &tier) in self.tier_of.iter().enumerate() {
            if tier >= tiers.len() {
                return Err(RuntimeError::Tiering("assignment names an unknown tier"));
            }
            used[tier] += chunk_payload(data_len, chunk_bytes, chunk);
        }
        if used
            .iter()
            .zip(tiers.iter())
            .any(|(&u, shape)| u > shape.capacity_bytes)
        {
            return Err(RuntimeError::Tiering("assignment exceeds a tier budget"));
        }
        Ok(())
    }
}

/// Simulates the bandwidth a traffic split over `parts` achieves with the
/// given worker CPUs: every CPU streams a nominal STREAM-shaped byte budget
/// (2:1 read:write) split across the parts in proportion to their weights.
/// The model is linear in bytes, so the nominal scale cancels out of the
/// reported GB/s.
pub fn assignment_bandwidth(
    engine: &Engine,
    cpus: &[usize],
    parts: &[(NodeId, u64)],
) -> std::result::Result<PhaseReport, SimError> {
    const NOMINAL: u64 = 1 << 30;
    let total: u64 = parts.iter().map(|&(_, w)| w).sum();
    let mut traffic = Vec::with_capacity(cpus.len() * parts.len());
    if total > 0 {
        for &cpu in cpus {
            for &(node, w) in parts {
                if w == 0 {
                    continue;
                }
                let frac = w as f64 / total as f64;
                traffic.push(ThreadTraffic::sequential(
                    cpu,
                    node,
                    (NOMINAL as f64 * 2.0 / 3.0 * frac) as u64,
                    (NOMINAL as f64 / 3.0 * frac) as u64,
                ));
            }
        }
    }
    engine.simulate(&TrafficPhase::from_threads("tier-assignment", traffic))
}

/// A chunk-placement policy: the pluggable half of the feedback loop.
pub trait TierPlanner {
    /// Short policy name for tables and logs.
    fn name(&self) -> &'static str;
    /// Computes a capacity-respecting tier assignment for `ctx`.
    fn plan(&self, ctx: &PlanContext<'_>) -> crate::Result<TierAssignment>;
}

fn capacity_error() -> RuntimeError {
    RuntimeError::Tiering("tier budgets cannot hold the region")
}

/// Baseline parity policy: chunks fill the tiers in index order until each
/// budget runs out — byte-for-byte the placement
/// [`ExpansionPlan::spill`](crate::placement::ExpansionPlan::spill) computes,
/// ignoring access heat entirely. The data set never moves once placed, so
/// this is the policy the adaptive ones must match or beat.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticSpillPolicy;

impl TierPlanner for StaticSpillPolicy {
    fn name(&self) -> &'static str {
        "static-spill"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> crate::Result<TierAssignment> {
        let order: Vec<usize> = (0..ctx.chunk_count()).collect();
        assign_in_order(ctx, &order)
    }
}

/// Greedy promotion: the hottest chunks take the fastest tier until its
/// budget is spent, then the next tier, and so on. Latency-blind — it
/// minimises slow-tier *traffic*, which is optimal when the slow tier is
/// dramatically slower, but can leave the slow tier idle when interleaving
/// would have added its bandwidth to the aggregate.
#[derive(Debug, Clone, Copy, Default)]
pub struct HotGreedyPolicy;

impl TierPlanner for HotGreedyPolicy {
    fn name(&self) -> &'static str {
        "hot-greedy"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> crate::Result<TierAssignment> {
        let heat = ctx.effective_heat();
        let mut order: Vec<usize> = (0..ctx.chunk_count()).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(heat[c]), c));
        assign_in_order(ctx, &order)
    }
}

/// The one definition of budgeted spill, shared by the planners and the
/// initial provisioning placement: walks chunks in `order`, placing each on
/// the first tier whose byte budget still has room.
fn fill_by_budget(
    data_len: u64,
    chunk_bytes: u64,
    capacities: &[u64],
    order: &[usize],
) -> crate::Result<Vec<usize>> {
    let mut remaining = capacities.to_vec();
    let mut tier_of = vec![usize::MAX; order.len()];
    for &chunk in order {
        let payload = chunk_payload(data_len, chunk_bytes, chunk);
        let tier = remaining
            .iter()
            .position(|&room| room >= payload)
            .ok_or_else(capacity_error)?;
        remaining[tier] -= payload;
        tier_of[chunk] = tier;
    }
    Ok(tier_of)
}

/// Walks chunks in `order`, filling tiers in preference order under their
/// byte budgets.
fn assign_in_order(ctx: &PlanContext<'_>, order: &[usize]) -> crate::Result<TierAssignment> {
    let capacities: Vec<u64> = ctx.tiers.iter().map(|t| t.capacity_bytes).collect();
    Ok(TierAssignment {
        tier_of: fill_by_budget(ctx.data_len, ctx.chunk_bytes, &capacities, order)?,
    })
}

/// Bandwidth-aware interleaving: consults the [`memsim::Engine`] and places
/// *traffic*, not just bytes.
///
/// The policy generates candidate assignments — the static spill, the
/// hot-greedy promotion, and a heat-proportional interleaving whose per-tier
/// traffic targets follow each path's streaming ceiling
/// ([`Machine::path_ceiling_gbs`](memsim::Machine::path_ceiling_gbs)) — then
/// scores every candidate with the engine's full bottleneck model (devices,
/// links *and* per-thread concurrency) and keeps the fastest. Including the
/// static assignment in the candidate set makes "matches or beats static
/// spill" true by construction; ties break toward the plan that migrates the
/// fewest chunks from the current residency.
#[derive(Debug, Clone, Copy, Default)]
pub struct BandwidthAwarePolicy;

impl BandwidthAwarePolicy {
    /// The ceiling-proportional candidate: hottest chunks first, each placed
    /// on the tier whose (assigned traffic / ceiling) ratio stays lowest —
    /// weighted round-robin toward per-tier traffic shares matching the
    /// per-tier bandwidth ceilings, under the capacity budgets.
    fn proportional(ctx: &PlanContext<'_>, heat: &[u64]) -> crate::Result<TierAssignment> {
        let machine = ctx.engine.machine();
        let socket = ctx
            .cpus
            .first()
            .and_then(|&cpu| machine.topology().socket_of_cpu(cpu))
            .unwrap_or(0);
        let ceilings: Vec<f64> = ctx
            .tiers
            .iter()
            .map(|t| {
                machine
                    .path_ceiling_gbs(socket, t.node, 2, 1, memsim::AccessPattern::Sequential)
                    .unwrap_or(0.0)
                    .max(f64::MIN_POSITIVE)
            })
            .collect();
        let mut order: Vec<usize> = (0..ctx.chunk_count()).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(heat[c]), c));
        let mut remaining: Vec<u64> = ctx.tiers.iter().map(|t| t.capacity_bytes).collect();
        let mut assigned_heat = vec![0.0f64; ctx.tiers.len()];
        let mut tier_of = vec![usize::MAX; ctx.chunk_count()];
        for &chunk in &order {
            let payload = ctx.chunk_payload(chunk);
            let h = heat[chunk] as f64;
            let tier = (0..ctx.tiers.len())
                .filter(|&t| remaining[t] >= payload)
                .min_by(|&a, &b| {
                    let load_a = (assigned_heat[a] + h) / ceilings[a];
                    let load_b = (assigned_heat[b] + h) / ceilings[b];
                    load_a.total_cmp(&load_b)
                })
                .ok_or_else(capacity_error)?;
            remaining[tier] -= payload;
            assigned_heat[tier] += h;
            tier_of[chunk] = tier;
        }
        Ok(TierAssignment { tier_of })
    }
}

impl TierPlanner for BandwidthAwarePolicy {
    fn name(&self) -> &'static str {
        "bandwidth-aware"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> crate::Result<TierAssignment> {
        let heat = ctx.effective_heat();
        let candidates = [
            StaticSpillPolicy.plan(ctx)?,
            HotGreedyPolicy.plan(ctx)?,
            Self::proportional(ctx, &heat)?,
        ];
        let mut best: Option<(f64, usize, TierAssignment)> = None;
        for candidate in candidates {
            let parts = candidate.traffic_parts(ctx.tiers, &heat);
            let report = assignment_bandwidth(ctx.engine, ctx.cpus, &parts)?;
            let moves = ctx
                .current
                .map(|cur| candidate.moves_from(cur))
                .unwrap_or(0);
            let better = match &best {
                None => true,
                Some((bw, mv, _)) => {
                    report.bandwidth_gbs > bw + 1e-9
                        || ((report.bandwidth_gbs - bw).abs() <= 1e-9 && moves < *mv)
                }
            };
            if better {
                best = Some((report.bandwidth_gbs, moves, candidate));
            }
        }
        Ok(best.expect("at least one candidate").2)
    }
}

// ---------------------------------------------------------------- region

/// Where an injected migration crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// While chunk bytes are copied + flushed into destination slabs. The
    /// [`CrashPoint`] ordinal `k` selects "die when copying move `k`"; an
    /// ordinal past the move set fires after every copy but before any
    /// residency commit. The "moves `0..k` shadow-copied, `k..` untouched"
    /// prefix shape holds only under [`pmem::SerialExecutor`] — a parallel
    /// executor's other lanes may have copied any subset when the crash
    /// fires. Either way no residency flip has happened, so correctness
    /// (every chunk readable from its source tier) is executor-independent.
    Copy,
    /// Inside the first residency-flip transaction — the [`CrashPoint`] is
    /// armed on the metadata pool and fires at its native transaction site,
    /// stranding the migration record for undo-log recovery to roll back.
    /// [`CrashPoint::DuringRecovery`] never fires inside a transaction (the
    /// same rule as `CheckpointPhase::Commit`), so that combination commits
    /// cleanly.
    Commit,
}

/// A crash to inject into the *next* migration (taken exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCrash {
    /// Pipeline stage the crash fires in.
    pub phase: MigrationPhase,
    /// Sub-position within the stage (ordinal for the copy phase, native
    /// transaction site for the commit phase).
    pub point: CrashPoint,
}

fn point_ordinal(point: CrashPoint) -> usize {
    match point {
        CrashPoint::AfterLogAppend => 0,
        CrashPoint::BeforeCommit => 1,
        CrashPoint::AfterCommit => 2,
        CrashPoint::DuringRecovery => 3,
    }
}

/// Outcome of one migration pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStats {
    /// Chunks the plan wanted to move.
    pub planned: usize,
    /// Chunks whose residency flip committed.
    pub chunks_moved: usize,
    /// Payload bytes copied between tiers.
    pub bytes_moved: u64,
}

impl MigrationStats {
    /// Whether the pass moved nothing (the plan matched residency).
    pub fn is_noop(&self) -> bool {
        self.planned == 0
    }
}

/// One tier's store: its shape, mount label, pool and chunk slab.
struct TierStore {
    shape: TierShape,
    mount: String,
    pool: Arc<PmemPool>,
    slab: u64,
}

/// A chunked data set spread across tier pools with tracked access heat and
/// migratable residency — the functional object behind the adaptive
/// expansion use case. See the [module docs](self) for the full loop.
pub struct TieredRegion {
    data_len: u64,
    chunk_bytes: u64,
    chunk_count: usize,
    tiers: Vec<TierStore>,
    residency: ResidencyMap,
    tracker: Arc<AccessTracker>,
    crash: Option<MigrationCrash>,
}

impl std::fmt::Debug for TieredRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredRegion")
            .field("data_len", &self.data_len)
            .field("chunk_bytes", &self.chunk_bytes)
            .field("chunk_count", &self.chunk_count)
            .field("tiers", &self.tiers.len())
            .finish()
    }
}

impl TieredRegion {
    /// Provisions the region on `runtime` — one pool per `(tier, budget)`
    /// entry, a slab of `chunk_count × chunk_len` bytes in each (every tier
    /// can shadow any chunk during a migration, mirroring the checkpoint
    /// subsystem's two-slot discipline), the access tracker, and the durable
    /// residency map in the last (spill) tier's pool, registered as that
    /// pool's root object. Initial placement is static spill.
    pub fn provision(
        runtime: &CxlPmemRuntime,
        tiers: &[(TierPolicy, u64)],
        layout: &str,
        data_len: u64,
        chunk_len: u64,
    ) -> crate::Result<Self> {
        if data_len == 0 || chunk_len == 0 {
            return Err(RuntimeError::Tiering(
                "data_len and chunk_len must be non-zero",
            ));
        }
        if tiers.is_empty() {
            return Err(RuntimeError::Tiering("at least one tier is required"));
        }
        let chunk_count = data_len.div_ceil(chunk_len) as usize;
        let slab_bytes = chunk_count as u64 * chunk_len;
        let mut stores = Vec::with_capacity(tiers.len());
        for (i, (policy, capacity)) in tiers.iter().enumerate() {
            let meta = if i == tiers.len() - 1 {
                ResidencyMap::map_size(chunk_count)
            } else {
                0
            };
            let size = MIN_POOL_SIZE + slab_bytes + meta + 64 * 1024;
            let managed = runtime.provision_pool(policy, &format!("{layout}-tier{i}"), size)?;
            let (pool, node, mount) = managed.into_parts();
            let pool = Arc::new(pool);
            let slab = pool.alloc_bytes(slab_bytes)?.offset;
            stores.push(TierStore {
                shape: TierShape {
                    node,
                    capacity_bytes: *capacity,
                },
                mount,
                pool,
                slab,
            });
        }
        // Initial placement: static spill over the budgets — the same
        // fill_by_budget walk StaticSpillPolicy runs, so a fresh region's
        // first static-spill rebalance is a no-op by construction.
        let capacities: Vec<u64> = stores.iter().map(|s| s.shape.capacity_bytes).collect();
        let order: Vec<usize> = (0..chunk_count).collect();
        let initial: Vec<u32> = fill_by_budget(data_len, chunk_len, &capacities, &order)?
            .into_iter()
            .map(|t| t as u32)
            .collect();
        let meta_pool = Arc::clone(&stores.last().expect("non-empty").pool);
        let residency = ResidencyMap::format(meta_pool, stores.len() as u32, &initial)?;
        residency
            .pool()
            .set_root(residency.oid(), ResidencyMap::map_size(chunk_count))?;
        Ok(TieredRegion {
            data_len,
            chunk_bytes: chunk_len,
            chunk_count,
            tiers: stores,
            residency,
            tracker: Arc::new(AccessTracker::new(data_len, chunk_len)),
            crash: None,
        })
    }

    // ------------------------------------------------------------ info

    /// Payload bytes of the region.
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Chunk granularity in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunk_count
    }

    /// Payload length of chunk `chunk`.
    pub fn chunk_payload(&self, chunk: usize) -> u64 {
        chunk_payload(self.data_len, self.chunk_bytes, chunk)
    }

    /// Tier shapes in preference order.
    pub fn tier_shapes(&self) -> Vec<TierShape> {
        self.tiers.iter().map(|t| t.shape).collect()
    }

    /// Paper-style mount label of tier `tier`.
    pub fn tier_mount(&self, tier: usize) -> Option<&str> {
        self.tiers.get(tier).map(|t| t.mount.as_str())
    }

    /// The access tracker the hot paths feed; hand a clone to the stream
    /// engine's sampling hooks (`VolatileStream::set_tracker` /
    /// `PmemStream::set_tracker` in `stream-bench`) or record spans directly.
    pub fn tracker(&self) -> &Arc<AccessTracker> {
        &self.tracker
    }

    /// The durable residency map.
    pub fn residency_map(&self) -> &ResidencyMap {
        &self.residency
    }

    /// Current residency as tier indices, chunk order.
    pub fn residency(&self) -> crate::Result<Vec<usize>> {
        Ok(self
            .residency
            .tiers()?
            .into_iter()
            .map(|t| t as usize)
            .collect())
    }

    /// Current residency as a [`TierAssignment`] (for traffic simulation).
    pub fn assignment(&self) -> crate::Result<TierAssignment> {
        Ok(TierAssignment {
            tier_of: self.residency()?,
        })
    }

    /// Fraction of chunks resident on NUMA node `node`.
    pub fn fraction_on_node(&self, node: NodeId) -> crate::Result<f64> {
        let residency = self.residency()?;
        if residency.is_empty() {
            return Ok(0.0);
        }
        let on = residency
            .iter()
            .filter(|&&t| self.tiers[t].shape.node == node)
            .count();
        Ok(on as f64 / residency.len() as f64)
    }

    fn slot_off(&self, tier: usize, chunk: usize) -> u64 {
        self.tiers[tier].slab + chunk as u64 * self.chunk_bytes
    }

    fn check_chunk(&self, chunk: usize, len: usize) -> crate::Result<()> {
        if chunk >= self.chunk_count {
            return Err(RuntimeError::Tiering("chunk index out of range"));
        }
        if len as u64 != self.chunk_payload(chunk) {
            return Err(RuntimeError::Tiering(
                "buffer length does not match the chunk payload",
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------ data path

    /// Durably writes `data` as chunk `chunk`'s contents (on whichever tier
    /// currently holds it) and records the write in the tracker.
    pub fn write_chunk(&self, chunk: usize, data: &[u8]) -> crate::Result<()> {
        self.check_chunk(chunk, data.len())?;
        let tier = self.residency.tier_of(chunk)? as usize;
        let off = self.slot_off(tier, chunk);
        let store = &self.tiers[tier];
        store.pool.write(off, data)?;
        store.pool.persist(off, data.len() as u64)?;
        let lo = chunk as u64 * self.chunk_bytes;
        self.tracker.record_write(lo, lo + data.len() as u64);
        Ok(())
    }

    /// Reads chunk `chunk` from its resident tier and records the read.
    pub fn read_chunk(&self, chunk: usize, out: &mut [u8]) -> crate::Result<()> {
        self.check_chunk(chunk, out.len())?;
        let tier = self.residency.tier_of(chunk)? as usize;
        self.tiers[tier]
            .pool
            .read(self.slot_off(tier, chunk), out)?;
        let lo = chunk as u64 * self.chunk_bytes;
        self.tracker.record_read(lo, lo + out.len() as u64);
        Ok(())
    }

    /// Content hash of chunk `chunk`'s committed bytes (tracker-silent, for
    /// conservation checks).
    pub fn chunk_hash(&self, chunk: usize) -> crate::Result<u64> {
        if chunk >= self.chunk_count {
            return Err(RuntimeError::Tiering("chunk index out of range"));
        }
        let mut buf = vec![0u8; self.chunk_payload(chunk) as usize];
        let tier = self.residency.tier_of(chunk)? as usize;
        self.tiers[tier]
            .pool
            .read(self.slot_off(tier, chunk), &mut buf)?;
        Ok(pmem::pool::fnv1a(&buf))
    }

    // ------------------------------------------------------------ migration

    /// Arms a crash to be injected into the *next* migration pass.
    pub fn set_crash(&mut self, crash: Option<MigrationCrash>) {
        self.crash = crash;
    }

    /// Runs undo-log recovery on the metadata pool after an injected commit
    /// crash (a real crash gets this for free from the pool reopen). Returns
    /// `true` if a stranded migration record was rolled back.
    pub fn recover(&self) -> crate::Result<bool> {
        Ok(self.residency.recover()?)
    }

    /// The migrator: moves every chunk whose assigned tier differs from its
    /// residency.
    ///
    /// Phase 1 copies each moved chunk into its destination slab through
    /// `exec` (one `flush` per chunk, fanned across the executor's lanes)
    /// and drains once per destination tier — the shadow copies are durable
    /// but invisible. Phase 2 flips each chunk's residency record inside a
    /// pool transaction. Chunks commit independently: a crash mid-pass
    /// leaves every chunk readable from exactly one tier (flipped chunks
    /// from their destination, the rest from their source), and undo-log
    /// recovery rolls back a flip torn mid-transaction.
    pub fn migrate_to(
        &mut self,
        assignment: &TierAssignment,
        exec: &impl ChunkExecutor,
    ) -> crate::Result<MigrationStats> {
        assignment.validate(self.data_len, self.chunk_bytes, &self.tier_shapes())?;
        let current = self.residency()?;
        let crash = self.crash.take();
        let moves: Vec<(usize, usize, usize)> = assignment
            .tier_of
            .iter()
            .enumerate()
            .filter(|&(chunk, &to)| current[chunk] != to)
            .map(|(chunk, &to)| (chunk, current[chunk], to))
            .collect();
        let bytes_moved: u64 = moves
            .iter()
            .map(|&(chunk, _, _)| self.chunk_payload(chunk))
            .sum();

        // Phase 1: shadow copies, one flush per chunk, drain per dest tier.
        let crash_at_copy = match crash {
            Some(c) if c.phase == MigrationPhase::Copy => Some(point_ordinal(c.point)),
            _ => None,
        };
        let region = &*self;
        exec.run_chunks(moves.len(), &|j| {
            if crash_at_copy == Some(j) {
                return Err(pmem::PmemError::InjectedCrash("migration-copy"));
            }
            let (chunk, from, to) = moves[j];
            let len = region.chunk_payload(chunk) as usize;
            let mut buf = vec![0u8; len];
            region.tiers[from]
                .pool
                .read(region.slot_off(from, chunk), &mut buf)?;
            let dst = region.slot_off(to, chunk);
            region.tiers[to].pool.write(dst, &buf)?;
            region.tiers[to].pool.flush(dst, len as u64)
        })?;
        if crash_at_copy.is_some_and(|k| k >= moves.len()) {
            return Err(pmem::PmemError::InjectedCrash("migration-copy").into());
        }
        let mut dests: Vec<usize> = moves.iter().map(|&(_, _, to)| to).collect();
        dests.sort_unstable();
        dests.dedup();
        for tier in dests {
            self.tiers[tier].pool.drain();
        }

        // Phase 2: per-chunk residency flips through the undo log. A Commit
        // crash is armed on the pool and fires at its native transaction
        // site, exactly like CheckpointPhase::Commit — DuringRecovery never
        // fires inside a transaction, so that cell commits cleanly. With no
        // moves there is no transaction to arm, so the pass synthesises the
        // same outcome the transaction would have produced (abort for the
        // transaction-site points, clean no-op for DuringRecovery) rather
        // than leaving the point armed to detonate a later, un-instrumented
        // operation.
        if let Some(c) = crash {
            if c.phase == MigrationPhase::Commit {
                if moves.is_empty() {
                    if c.point != CrashPoint::DuringRecovery {
                        return Err(pmem::PmemError::InjectedCrash("migration-commit").into());
                    }
                } else {
                    self.residency.pool().set_crash_point(Some(c.point));
                }
            }
        }
        let mut committed = 0usize;
        for &(chunk, from, to) in &moves {
            self.residency.commit_move(chunk, from as u32, to as u32)?;
            committed += 1;
        }
        Ok(MigrationStats {
            planned: moves.len(),
            chunks_moved: committed,
            bytes_moved,
        })
    }

    /// One full feedback-loop turn: snapshot heat, plan with `planner`,
    /// migrate the delta through `exec`, decay the tracker. Prefer
    /// [`CxlPmemRuntime::rebalance`], which supplies the engine, the worker
    /// CPUs and the pooled executor in one call.
    pub fn rebalance_with(
        &mut self,
        planner: &dyn TierPlanner,
        engine: &Engine,
        cpus: &[usize],
        exec: &impl ChunkExecutor,
    ) -> crate::Result<MigrationStats> {
        let heat = self.tracker.heat();
        let shapes = self.tier_shapes();
        let current = self.residency()?;
        let assignment = {
            let ctx = PlanContext {
                data_len: self.data_len,
                chunk_bytes: self.chunk_bytes,
                heat: &heat,
                tiers: &shapes,
                engine,
                cpus,
                current: Some(&current),
            };
            planner.plan(&ctx)?
        };
        let stats = self.migrate_to(&assignment, exec)?;
        self.tracker.decay();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ExpansionPlan;
    use crate::runtime::RuntimeBuilder;
    use memsim::units::GIB;
    use pmem::SerialExecutor;

    const KIB: u64 = 1024;

    fn runtime() -> CxlPmemRuntime {
        RuntimeBuilder::setup1().build()
    }

    fn two_tiers() -> Vec<(TierPolicy, u64)> {
        vec![
            (TierPolicy::LocalDram { socket: 0 }, 48 * KIB),
            (TierPolicy::CxlExpander, 64 * KIB),
        ]
    }

    fn image(chunk: usize, tag: u8) -> Vec<u8> {
        (0..4096usize)
            .map(|i| (i as u8).wrapping_mul(13).wrapping_add(chunk as u8 ^ tag))
            .collect()
    }

    #[test]
    fn tracker_counts_and_decays_per_chunk() {
        let tracker = AccessTracker::new(10 * KIB, 4 * KIB);
        assert_eq!(tracker.chunk_count(), 3);
        // A span crossing a chunk boundary splits proportionally.
        tracker.record_read(3 * KIB, 5 * KIB);
        tracker.record_write(9 * KIB, 20 * KIB); // clamped to total_bytes
        let heat = tracker.heat();
        assert_eq!(heat[0].read_bytes, KIB);
        assert_eq!(heat[1].read_bytes, KIB);
        assert_eq!(heat[2].write_bytes, KIB);
        assert_eq!(heat[1].write_bytes, 0);
        tracker.decay();
        let heat = tracker.heat();
        assert_eq!(heat[0].read_bytes, KIB / 2);
        assert_eq!(tracker.decay_epochs(), 1);
        // Empty and out-of-range spans are no-ops.
        tracker.record_read(5 * KIB, 5 * KIB);
        tracker.record_read(11 * KIB, 12 * KIB);
        assert_eq!(tracker.heat()[1].read_bytes, KIB / 2);
    }

    #[test]
    fn static_spill_matches_expansion_plan_fractions() {
        let rt = runtime();
        // 70 GiB over a 64 GiB DRAM budget + 16 GiB expander budget, 1 GiB
        // chunks: the policy must land the same fractions as the one-shot
        // ExpansionPlan the old example used.
        let data = 70 * GIB;
        let heat = vec![ChunkHeat::default(); 70];
        let tiers = [
            TierShape {
                node: 0,
                capacity_bytes: 64 * GIB,
            },
            TierShape {
                node: 2,
                capacity_bytes: 16 * GIB,
            },
        ];
        let ctx = PlanContext {
            data_len: data,
            chunk_bytes: GIB,
            heat: &heat,
            tiers: &tiers,
            engine: rt.engine(),
            cpus: &[0],
            current: None,
        };
        let plan = StaticSpillPolicy.plan(&ctx).unwrap();
        plan.validate(data, GIB, &tiers).unwrap();
        let reference = ExpansionPlan::spill(rt.machine(), data, &[0, 2]).unwrap();
        assert!((plan.fraction_on(0) - reference.fraction_on(0)).abs() < 1e-9);
        assert!((plan.fraction_on(1) - reference.fraction_on(2)).abs() < 1e-9);
        // Chunks fill in index order: the tail spills.
        assert!(plan.tier_of[..64].iter().all(|&t| t == 0));
        assert!(plan.tier_of[64..].iter().all(|&t| t == 1));
    }

    #[test]
    fn hot_greedy_promotes_the_hottest_chunks() {
        let rt = runtime();
        let mut heat = vec![ChunkHeat::default(); 8];
        // Chunks 5 and 7 are hot; the fast tier only holds 2 chunks.
        heat[5].read_bytes = 100;
        heat[7].write_bytes = 90;
        let tiers = [
            TierShape {
                node: 0,
                capacity_bytes: 2 * 4 * KIB,
            },
            TierShape {
                node: 2,
                capacity_bytes: 8 * 4 * KIB,
            },
        ];
        let ctx = PlanContext {
            data_len: 8 * 4 * KIB,
            chunk_bytes: 4 * KIB,
            heat: &heat,
            tiers: &tiers,
            engine: rt.engine(),
            cpus: &[0],
            current: None,
        };
        let plan = HotGreedyPolicy.plan(&ctx).unwrap();
        assert_eq!(plan.tier_of[5], 0);
        assert_eq!(plan.tier_of[7], 0);
        assert_eq!(plan.tier_of.iter().filter(|&&t| t == 0).count(), 2);
    }

    #[test]
    fn bandwidth_aware_matches_or_beats_the_other_policies() {
        let rt = runtime();
        let placement = rt
            .place(&numa::AffinityPolicy::SingleSocket(0), 10)
            .unwrap();
        let cpus = placement.cpus();
        for dataset_gib in [16u64, 48, 76] {
            let chunks = dataset_gib as usize;
            let mut heat = vec![ChunkHeat::default(); chunks];
            for (i, h) in heat.iter_mut().enumerate() {
                h.read_bytes = if i % 4 == 0 { 8 * GIB } else { GIB };
            }
            let tiers = [
                TierShape {
                    node: 0,
                    capacity_bytes: 64 * GIB,
                },
                TierShape {
                    node: 2,
                    capacity_bytes: 16 * GIB,
                },
            ];
            let ctx = PlanContext {
                data_len: dataset_gib * GIB,
                chunk_bytes: GIB,
                heat: &heat,
                tiers: &tiers,
                engine: rt.engine(),
                cpus,
                current: None,
            };
            let weights = ctx.effective_heat();
            let bw_of = |planner: &dyn TierPlanner| {
                let plan = planner.plan(&ctx).unwrap();
                plan.validate(ctx.data_len, ctx.chunk_bytes, &tiers)
                    .unwrap();
                let parts = plan.traffic_parts(&tiers, &weights);
                assignment_bandwidth(rt.engine(), cpus, &parts)
                    .unwrap()
                    .bandwidth_gbs
            };
            let fixed = bw_of(&StaticSpillPolicy);
            let hot = bw_of(&HotGreedyPolicy);
            let adaptive = bw_of(&BandwidthAwarePolicy);
            assert!(
                adaptive + 1e-9 >= fixed,
                "{dataset_gib} GiB: adaptive {adaptive} < static {fixed}"
            );
            assert!(
                adaptive + 1e-9 >= hot,
                "{dataset_gib} GiB: adaptive {adaptive} < hot {hot}"
            );
        }
    }

    #[test]
    fn capacity_shortfall_is_a_typed_error() {
        let rt = runtime();
        let heat = vec![ChunkHeat::default(); 4];
        let tiers = [TierShape {
            node: 0,
            capacity_bytes: 2 * 4 * KIB,
        }];
        let ctx = PlanContext {
            data_len: 4 * 4 * KIB,
            chunk_bytes: 4 * KIB,
            heat: &heat,
            tiers: &tiers,
            engine: rt.engine(),
            cpus: &[0],
            current: None,
        };
        assert!(matches!(
            StaticSpillPolicy.plan(&ctx).unwrap_err(),
            RuntimeError::Tiering(_)
        ));
        assert!(matches!(
            HotGreedyPolicy.plan(&ctx).unwrap_err(),
            RuntimeError::Tiering(_)
        ));
    }

    #[test]
    fn region_round_trips_and_tracks_accesses() {
        let rt = runtime();
        let region = rt
            .tiered_region(&two_tiers(), "tier-rt", 16 * 4 * KIB, 4 * KIB)
            .unwrap();
        assert_eq!(region.chunk_count(), 16);
        assert_eq!(region.tier_mount(1), Some("/mnt/pmem2"));
        // Initial placement is static spill: 12 chunks fit the 48 KiB DRAM
        // budget, 4 spill to the expander.
        let residency = region.residency().unwrap();
        assert!(residency[..12].iter().all(|&t| t == 0));
        assert!(residency[12..].iter().all(|&t| t == 1));
        let data = image(3, 0);
        region.write_chunk(3, &data).unwrap();
        let mut back = vec![0u8; 4096];
        region.read_chunk(3, &mut back).unwrap();
        assert_eq!(back, data);
        let heat = region.tracker().heat();
        assert_eq!(heat[3].write_bytes, 4096);
        assert_eq!(heat[3].read_bytes, 4096);
        assert_eq!(heat[4].total(), 0);
        // Shape errors are typed.
        assert!(region.write_chunk(16, &data).is_err());
        assert!(region.read_chunk(0, &mut [0u8; 7]).is_err());
    }

    #[test]
    fn migration_preserves_content_and_residency_invariants() {
        let rt = runtime();
        let mut region = rt
            .tiered_region(&two_tiers(), "tier-mig", 16 * 4 * KIB, 4 * KIB)
            .unwrap();
        let hashes: Vec<u64> = (0..16)
            .map(|c| {
                region.write_chunk(c, &image(c, 7)).unwrap();
                region.chunk_hash(c).unwrap()
            })
            .collect();
        // Move the first four chunks to the expander and the spilled tail
        // back to DRAM (it fits once the head leaves).
        let mut tier_of = region.residency().unwrap();
        for t in tier_of.iter_mut().take(4) {
            *t = 1;
        }
        for t in tier_of.iter_mut().skip(12) {
            *t = 0;
        }
        let assignment = TierAssignment { tier_of };
        let stats = region.migrate_to(&assignment, &SerialExecutor).unwrap();
        assert_eq!(stats.planned, 8);
        assert_eq!(stats.chunks_moved, 8);
        assert_eq!(stats.bytes_moved, 8 * 4 * KIB);
        assert_eq!(region.residency().unwrap(), assignment.tier_of);
        for (c, &expected) in hashes.iter().enumerate() {
            assert_eq!(region.chunk_hash(c).unwrap(), expected, "chunk {c}");
        }
        // A second pass with the same assignment is a no-op.
        let stats = region.migrate_to(&assignment, &SerialExecutor).unwrap();
        assert!(stats.is_noop());
        // Over-budget assignments are refused before any copy.
        let all_local = TierAssignment {
            tier_of: vec![0; 16],
        };
        assert!(matches!(
            region.migrate_to(&all_local, &SerialExecutor).unwrap_err(),
            RuntimeError::Tiering(_)
        ));
    }

    #[test]
    fn rebalance_follows_the_observed_heat() {
        let rt = runtime();
        let mut region = rt
            .tiered_region(&two_tiers(), "tier-loop", 16 * 4 * KIB, 4 * KIB)
            .unwrap();
        for c in 0..16 {
            region.write_chunk(c, &image(c, 1)).unwrap();
        }
        // Hammer the four *spilled* chunks so they are clearly the hot set.
        let mut buf = vec![0u8; 4096];
        for _ in 0..64 {
            for c in 12..16 {
                region.read_chunk(c, &mut buf).unwrap();
            }
        }
        let workers = rt
            .worker_pool_for(&numa::AffinityPolicy::close(), 4)
            .unwrap();
        let stats = rt
            .rebalance(&mut region, &HotGreedyPolicy, &workers)
            .unwrap();
        assert!(stats.chunks_moved > 0);
        let residency = region.residency().unwrap();
        for (c, &tier) in residency.iter().enumerate().skip(12) {
            assert_eq!(tier, 0, "hot chunk {c} promoted to DRAM");
        }
        assert_eq!(region.tracker().decay_epochs(), 1);
        // Content intact across the migration.
        for c in 0..16 {
            let mut back = vec![0u8; 4096];
            region.read_chunk(c, &mut back).unwrap();
            assert_eq!(back, image(c, 1), "chunk {c}");
        }
    }

    #[test]
    fn crash_during_copy_leaves_residency_and_content_untouched() {
        let rt = runtime();
        let mut region = rt
            .tiered_region(&two_tiers(), "tier-crash-copy", 8 * 4 * KIB, 4 * KIB)
            .unwrap();
        for c in 0..8 {
            region.write_chunk(c, &image(c, 3)).unwrap();
        }
        let before = region.residency().unwrap();
        let mut tier_of = before.clone();
        tier_of[0] = 1;
        tier_of[1] = 1;
        region.set_crash(Some(MigrationCrash {
            phase: MigrationPhase::Copy,
            point: CrashPoint::BeforeCommit, // ordinal 1: dies on move 1
        }));
        let err = region
            .migrate_to(&TierAssignment { tier_of }, &SerialExecutor)
            .unwrap_err();
        assert!(err.is_injected_crash());
        assert_eq!(region.residency().unwrap(), before);
        for c in 0..8 {
            let mut back = vec![0u8; 4096];
            region.read_chunk(c, &mut back).unwrap();
            assert_eq!(back, image(c, 3), "chunk {c} readable from its tier");
        }
    }

    #[test]
    fn commit_crash_on_a_noop_migration_fires_without_arming_the_pool() {
        let rt = runtime();
        let mut region = rt
            .tiered_region(&two_tiers(), "tier-crash-noop", 8 * 4 * KIB, 4 * KIB)
            .unwrap();
        let current = region.assignment().unwrap();
        region.set_crash(Some(MigrationCrash {
            phase: MigrationPhase::Commit,
            point: CrashPoint::BeforeCommit,
        }));
        // The plan matches residency: no moves, but the armed crash must
        // still fire — and must NOT stay armed on the metadata pool where a
        // later, un-instrumented migration would trip it.
        assert!(region
            .migrate_to(&current, &SerialExecutor)
            .unwrap_err()
            .is_injected_crash());
        let mut tier_of = current.tier_of.clone();
        tier_of[0] = 1;
        let stats = region
            .migrate_to(&TierAssignment { tier_of }, &SerialExecutor)
            .unwrap();
        assert_eq!(stats.chunks_moved, 1, "no leaked crash point");
        // DuringRecovery never fires inside a transaction (the checkpoint
        // matrix rule): the no-move pass commits cleanly instead of erroring,
        // and nothing stays armed.
        region.set_crash(Some(MigrationCrash {
            phase: MigrationPhase::Commit,
            point: CrashPoint::DuringRecovery,
        }));
        let current = region.assignment().unwrap();
        assert!(region
            .migrate_to(&current, &SerialExecutor)
            .unwrap()
            .is_noop());
        let mut back = current.tier_of.clone();
        back[0] = 0;
        let stats = region
            .migrate_to(&TierAssignment { tier_of: back }, &SerialExecutor)
            .unwrap();
        assert_eq!(stats.chunks_moved, 1);
    }

    #[test]
    fn crash_during_commit_rolls_the_flip_back() {
        let rt = runtime();
        let mut region = rt
            .tiered_region(&two_tiers(), "tier-crash-commit", 8 * 4 * KIB, 4 * KIB)
            .unwrap();
        for c in 0..8 {
            region.write_chunk(c, &image(c, 9)).unwrap();
        }
        let before = region.residency().unwrap();
        let mut tier_of = before.clone();
        tier_of[2] = 1;
        let assignment = TierAssignment { tier_of };
        region.set_crash(Some(MigrationCrash {
            phase: MigrationPhase::Commit,
            point: CrashPoint::BeforeCommit,
        }));
        assert!(region
            .migrate_to(&assignment, &SerialExecutor)
            .unwrap_err()
            .is_injected_crash());
        // The stranded record rolls back: chunk 2 still lives on tier 0.
        assert!(region.recover().unwrap());
        assert_eq!(region.residency().unwrap(), before);
        let mut back = vec![0u8; 4096];
        region.read_chunk(2, &mut back).unwrap();
        assert_eq!(back, image(2, 9));
        // The region stays usable: the same migration now commits.
        let stats = region.migrate_to(&assignment, &SerialExecutor).unwrap();
        assert_eq!(stats.chunks_moved, 1);
        region.read_chunk(2, &mut back).unwrap();
        assert_eq!(back, image(2, 9));
    }
}
