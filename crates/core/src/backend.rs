//! A `pmem` pool backend that stores its bytes on a CXL Type-3 device.
//!
//! This is the configuration the paper actually evaluates: the `pmemobj` pool
//! lives on `/mnt/pmem2`, which is a DAX filesystem over the CXL expander's
//! memory. Here the pool bytes go straight to the modelled device
//! ([`cxl::Type3Device::write_bulk`]), so the whole PMDK stack — header,
//! allocator, undo log, arrays — genuinely resides "on" the expander, and
//! device statistics reflect every access the pool makes.

use cxl::Type3Device;
use pmem::{PmemError, PoolBackend};
use std::sync::Arc;

/// A pool backend mapping a pool onto a region of a CXL Type-3 device.
pub struct CxlDeviceBackend {
    device: Arc<Type3Device>,
    dpa_base: u64,
    len: u64,
    /// Whether the device is treated as persistence-capable (off-node,
    /// battery-backed — the paper's §1.4 argument).
    persistent: bool,
}

impl CxlDeviceBackend {
    /// Creates a backend over `[dpa_base, dpa_base + len)` of `device`.
    pub fn new(device: Arc<Type3Device>, dpa_base: u64, len: u64) -> Result<Self, PmemError> {
        if dpa_base + len > device.capacity_bytes() {
            return Err(PmemError::OutOfBounds {
                offset: dpa_base,
                len,
                pool_size: device.capacity_bytes(),
            });
        }
        Ok(CxlDeviceBackend {
            device,
            dpa_base,
            len,
            persistent: true,
        })
    }

    /// Marks the region as volatile (no battery backing) — used to show what
    /// happens to a pool when the premise of persistence is dropped.
    pub fn volatile(mut self) -> Self {
        self.persistent = false;
        self
    }

    /// The underlying device handle.
    pub fn device(&self) -> Arc<Type3Device> {
        Arc::clone(&self.device)
    }
}

impl PoolBackend for CxlDeviceBackend {
    fn capacity(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), PmemError> {
        if offset + buf.len() as u64 > self.len {
            return Err(PmemError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                pool_size: self.len,
            });
        }
        self.device
            .read_bulk(self.dpa_base + offset, buf)
            .map_err(|e| PmemError::Io(std::io::Error::other(e.to_string())))
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), PmemError> {
        if offset + data.len() as u64 > self.len {
            return Err(PmemError::OutOfBounds {
                offset,
                len: data.len() as u64,
                pool_size: self.len,
            });
        }
        self.device
            .write_bulk(self.dpa_base + offset, data)
            .map_err(|e| PmemError::Io(std::io::Error::other(e.to_string())))
    }

    fn persist(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        if offset + len > self.len {
            return Err(PmemError::OutOfBounds {
                offset,
                len,
                pool_size: self.len,
            });
        }
        // Global Persistent Flush: pushes accepted writes into the persistence
        // domain of the (battery-backed) expander.
        self.device.global_persistent_flush();
        Ok(())
    }

    fn is_persistent(&self) -> bool {
        self.persistent
    }

    fn describe(&self) -> String {
        format!(
            "cxl[{} dpa {:#x}+{} bytes, {}]",
            self.device.name(),
            self.dpa_base,
            self.len,
            if self.persistent {
                "battery-backed"
            } else {
                "volatile"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl::config::LinkConfig;
    use pmem::{PersistentArray, PmemPool};

    const MIB: u64 = 1024 * 1024;

    fn device(capacity: u64) -> Arc<Type3Device> {
        Arc::new(Type3Device::new(
            "test-expander",
            capacity,
            LinkConfig::gen5_x16(),
        ))
    }

    #[test]
    fn backend_bounds_are_the_region_not_the_device() {
        let dev = device(64 * MIB);
        let backend = CxlDeviceBackend::new(Arc::clone(&dev), 8 * MIB, 4 * MIB).unwrap();
        assert_eq!(backend.capacity(), 4 * MIB);
        assert!(backend.write_at(4 * MIB - 1, &[0, 0]).is_err());
        backend.write_at(0, b"on the expander").unwrap();
        // The bytes landed at dpa_base + 0 on the device.
        let mut raw = [0u8; 15];
        dev.read_bulk(8 * MIB, &mut raw).unwrap();
        assert_eq!(&raw, b"on the expander");
    }

    #[test]
    fn region_must_fit_the_device() {
        let dev = device(MIB);
        assert!(CxlDeviceBackend::new(dev, 0, 2 * MIB).is_err());
    }

    #[test]
    fn persist_rings_the_gpf_doorbell() {
        let dev = device(16 * MIB);
        let backend = CxlDeviceBackend::new(Arc::clone(&dev), 0, 16 * MIB).unwrap();
        backend.persist(0, 4096).unwrap();
        assert!(backend.persist(16 * MIB - 10, 100).is_err());
        assert_eq!(dev.stats().gpf_flushes, 1);
        assert!(backend.is_persistent());
        assert!(!CxlDeviceBackend::new(dev, 0, MIB)
            .unwrap()
            .volatile()
            .is_persistent());
    }

    #[test]
    fn a_full_pmdk_pool_runs_on_the_expander() {
        let dev = device(64 * MIB);
        let backend = CxlDeviceBackend::new(Arc::clone(&dev), 0, 32 * MIB).unwrap();
        let pool = PmemPool::create_with_backend(Arc::new(backend), "stream").unwrap();
        let array = PersistentArray::<f64>::allocate(&pool, 10_000).unwrap();
        array.fill(1.5).unwrap();
        array.persist_all().unwrap();
        assert_eq!(array.get(9_999).unwrap(), 1.5);
        // Every pool byte went through the CXL device.
        let stats = dev.stats();
        assert!(stats.bytes_written >= 10_000 * 8);
        assert!(stats.gpf_flushes > 0);
        assert!(pool.describe().contains("cxl["));
    }

    #[test]
    fn pool_on_expander_survives_reopen_and_rolls_back_crashes() {
        let dev = device(64 * MIB);
        let mk_backend = || CxlDeviceBackend::new(Arc::clone(&dev), 0, 32 * MIB).unwrap();
        let oid = {
            let pool = PmemPool::create_with_backend(Arc::new(mk_backend()), "stream").unwrap();
            let array = PersistentArray::<u64>::allocate(&pool, 128).unwrap();
            array.store_slice(0, &[11u64; 128]).unwrap();
            array.persist_all().unwrap();
            let oid = array.typed_oid();
            pool.set_root(oid.oid(), oid.len()).unwrap();
            pool.set_crash_point(Some(pmem::CrashPoint::BeforeCommit));
            assert!(array.store_slice_tx(0, &[99u64; 128]).is_err());
            oid
        };
        // "Reboot": reopen a pool over the same device region.
        let pool = PmemPool::open_with_backend(Arc::new(mk_backend()), "stream").unwrap();
        let array = PersistentArray::<u64>::from_oid(&pool, oid);
        let mut values = vec![0u64; 128];
        array.load_slice(0, &mut values).unwrap();
        assert!(
            values.iter().all(|&v| v == 11),
            "crash must roll back to 11s"
        );
    }
}
