//! Data placement across memory tiers.
//!
//! Two placement questions matter to the paper's use cases:
//!
//! 1. **Which tier does a pool live on?** — local DDR5 (`/mnt/pmem0`), the
//!    remote socket's DDR5 (`/mnt/pmem1`), or the CXL expander (`/mnt/pmem2`).
//!    [`TierPolicy`] captures that decision.
//! 2. **How does a Memory-Mode data set that exceeds local DRAM spread across
//!    tiers?** — the classic memory-expansion use case. [`ExpansionPlan`]
//!    splits a byte count over the nodes in preference order.

use memsim::Machine;
use memsim::SimError;
use numa::NodeId;

/// Which NUMA node a pool or allocation should be placed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierPolicy {
    /// The node local to the calling socket.
    LocalDram {
        /// Socket whose local node is used.
        socket: usize,
    },
    /// The other socket's DRAM (one UPI hop) — the paper's "emulated PMem".
    RemoteDram {
        /// Socket whose local node is used (accessed from the other one).
        socket: usize,
    },
    /// An explicit NUMA node (e.g. the CXL expander's CPU-less node).
    Node(NodeId),
    /// The first CPU-less (memory-only) node of the machine — the CXL expander.
    CxlExpander,
}

impl TierPolicy {
    /// Resolves the policy to a concrete NUMA node on `machine`.
    pub fn resolve(&self, machine: &Machine) -> Result<NodeId, SimError> {
        let topo = machine.topology();
        match self {
            TierPolicy::LocalDram { socket } => {
                Ok(topo.socket(*socket).map_err(SimError::from)?.local_node)
            }
            TierPolicy::RemoteDram { socket } => {
                // The local node of any *other* socket.
                let other = topo
                    .sockets()
                    .iter()
                    .find(|s| s.id != *socket)
                    .ok_or(SimError::UnknownNode(usize::MAX))?;
                Ok(other.local_node)
            }
            TierPolicy::Node(node) => {
                topo.node(*node).map_err(SimError::from)?;
                Ok(*node)
            }
            TierPolicy::CxlExpander => topo
                .memory_only_nodes()
                .next()
                .map(|n| n.id)
                .ok_or(SimError::UnknownNode(usize::MAX)),
        }
    }

    /// The paper's mount-point style label (`/mnt/pmemN`).
    pub fn mount_label(&self, machine: &Machine) -> String {
        match self.resolve(machine) {
            Ok(node) => format!("/mnt/pmem{node}"),
            Err(_) => "/mnt/pmem?".to_string(),
        }
    }
}

/// How a Memory-Mode data set is distributed across tiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpansionPlan {
    /// `(node, bytes)` in placement order.
    pub parts: Vec<(NodeId, u64)>,
}

impl ExpansionPlan {
    /// Splits `bytes` over `preference` (in order), never exceeding each
    /// node's capacity. Fails if the total capacity is insufficient.
    pub fn spill(machine: &Machine, bytes: u64, preference: &[NodeId]) -> Result<Self, SimError> {
        let mut remaining = bytes;
        let mut parts = Vec::new();
        for &node in preference {
            if remaining == 0 {
                break;
            }
            let capacity = machine
                .topology()
                .node(node)
                .map_err(SimError::from)?
                .mem_bytes;
            let take = remaining.min(capacity);
            if take > 0 {
                parts.push((node, take));
                remaining -= take;
            }
        }
        if remaining > 0 {
            return Err(SimError::CapacityExceeded {
                node: preference.last().copied().unwrap_or_default(),
                requested: bytes,
                available: bytes - remaining,
            });
        }
        Ok(ExpansionPlan { parts })
    }

    /// Total bytes placed.
    pub fn total_bytes(&self) -> u64 {
        self.parts.iter().map(|(_, b)| b).sum()
    }

    /// Fraction of the data set that landed on `node`.
    pub fn fraction_on(&self, node: NodeId) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        self.parts
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, b)| *b as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::machines::{sapphire_rapids_cxl_machine, xeon_gold_ddr4_machine};
    use memsim::units::GIB;

    #[test]
    fn tier_policies_resolve_to_paper_nodes() {
        let m = sapphire_rapids_cxl_machine();
        assert_eq!(TierPolicy::LocalDram { socket: 0 }.resolve(&m).unwrap(), 0);
        assert_eq!(TierPolicy::LocalDram { socket: 1 }.resolve(&m).unwrap(), 1);
        assert_eq!(TierPolicy::RemoteDram { socket: 0 }.resolve(&m).unwrap(), 1);
        assert_eq!(TierPolicy::RemoteDram { socket: 1 }.resolve(&m).unwrap(), 0);
        assert_eq!(TierPolicy::CxlExpander.resolve(&m).unwrap(), 2);
        assert_eq!(TierPolicy::Node(1).resolve(&m).unwrap(), 1);
        assert!(TierPolicy::Node(9).resolve(&m).is_err());
        assert_eq!(TierPolicy::CxlExpander.mount_label(&m), "/mnt/pmem2");
    }

    #[test]
    fn no_expander_means_no_cxl_tier() {
        let m = xeon_gold_ddr4_machine();
        assert!(TierPolicy::CxlExpander.resolve(&m).is_err());
        assert_eq!(TierPolicy::CxlExpander.mount_label(&m), "/mnt/pmem?");
    }

    #[test]
    fn expansion_spills_to_the_expander() {
        let m = sapphire_rapids_cxl_machine();
        // 70 GiB: 64 on the local DIMM, 6 spill onto the CXL node.
        let plan = ExpansionPlan::spill(&m, 70 * GIB, &[0, 2]).unwrap();
        assert_eq!(plan.parts.len(), 2);
        assert_eq!(plan.parts[0], (0, 64 * GIB));
        assert_eq!(plan.parts[1], (2, 6 * GIB));
        assert_eq!(plan.total_bytes(), 70 * GIB);
        assert!((plan.fraction_on(2) - 6.0 / 70.0).abs() < 1e-9);
        assert_eq!(plan.fraction_on(1), 0.0);
    }

    #[test]
    fn small_datasets_stay_local() {
        let m = sapphire_rapids_cxl_machine();
        let plan = ExpansionPlan::spill(&m, GIB, &[0, 2]).unwrap();
        assert_eq!(plan.parts, vec![(0, GIB)]);
    }

    #[test]
    fn overcommit_is_rejected() {
        let m = sapphire_rapids_cxl_machine();
        let err = ExpansionPlan::spill(&m, 1000 * GIB, &[0, 2]).unwrap_err();
        assert!(matches!(err, SimError::CapacityExceeded { .. }));
    }

    #[test]
    fn empty_plan_fraction_is_zero() {
        let m = sapphire_rapids_cxl_machine();
        let plan = ExpansionPlan::spill(&m, 0, &[0]).unwrap();
        assert_eq!(plan.total_bytes(), 0);
        assert_eq!(plan.fraction_on(0), 0.0);
    }
}
