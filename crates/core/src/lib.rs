//! `cxl-pmem` — CXL memory as Persistent Memory for disaggregated HPC.
//!
//! This crate is the paper's contribution packaged as a library: a runtime
//! that provisions PMDK-style persistent pools **on CXL-attached memory** and
//! exposes the two usage modes the paper evaluates:
//!
//! * **App-Direct** — the pool is accessed directly and transactionally
//!   (`pmem` crate), exactly like a `libpmemobj` pool on Optane DCPMM; the
//!   PMDK software overhead is carried into the performance model.
//! * **Memory Mode** — the CXL device is used as plain CC-NUMA memory
//!   expansion (`numactl --membind` style), with no persistence guarantees.
//!
//! The runtime also owns the machine model (`memsim`), the CXL device model
//! (`cxl`) and the placement/affinity machinery (`numa`), so a caller can ask
//! one object both "store these bytes durably on the expander" and "how long
//! would this STREAM kernel take on setup #1 with 8 threads bound close?".
//!
//! Entry points:
//!
//! * [`runtime::CxlPmemRuntime`] — construct through [`runtime::RuntimeBuilder`]:
//!   `RuntimeBuilder::setup1().build()` (the paper's Sapphire Rapids + CXL
//!   machine), `setup2` (Xeon Gold DDR4), `dcpmm_baseline` (the
//!   published-Optane comparison machine), or the `machine`/`from_description`/
//!   `from_ingested` topology knobs. The runtime
//!   also provisions and owns the resident [`numa::PinnedPool`] worker pools
//!   ([`runtime::CxlPmemRuntime::worker_pool`]), so repeated STREAM
//!   invocations share parked, logically pinned OS threads instead of
//!   respawning them.
//! * [`backend::CxlDeviceBackend`] — a `pmem::PoolBackend` storing pool bytes
//!   on a `cxl::Type3Device`, i.e. the pool really lives on the (modelled)
//!   expander.
//! * [`modes::AccessMode`] — App-Direct vs Memory-Mode and their properties
//!   (the paper's Table 1).
//! * [`placement`] — tier selection and Memory-Mode capacity expansion.
//! * [`tiering`] — the adaptive tiering engine: access-tracked hot/cold chunk
//!   migration across DRAM/CXL tiers (placement as a feedback loop, not a
//!   one-shot decision).
//! * [`cluster`] — the disaggregated cluster: many hosts federating
//!   checkpoint/restart segments over switch-pooled, multi-headed far memory.
//! * [`admission`] — the fleet-serving front door: per-[`QosClass`]
//!   token-bucket admission with bounded queues and typed rejection.
//!
//! # Example
//!
//! Checkpoint a host's state into the pooled far-memory tier and restore it
//! bit-exact, with pool accounting conserved throughout:
//!
//! ```
//! use cxl_pmem::cluster::CoherenceMode;
//! use cxl_pmem::RuntimeBuilder;
//!
//! let runtime = RuntimeBuilder::setup1().build();
//! let cluster = runtime.disaggregated_cluster(2, CoherenceMode::SoftwareManaged);
//!
//! let state = vec![42u8; 64 * 1024];
//! let mut segment = cluster.host(0).create_segment("doc", 64 * 1024, 4096).unwrap();
//! segment.checkpoint(&state).unwrap();
//!
//! let mut restored = vec![0u8; 64 * 1024];
//! segment.restore(&mut restored).unwrap();
//! assert_eq!(restored, state);
//! assert!(cluster.accounting().conserves());
//! ```
//!
//! Fleet serving fronts that cluster with QoS admission control — paying
//! classes are sized for their load, scavengers get typed rejections:
//!
//! ```
//! use cxl_pmem::{AdmissionController, ClassConfig, Decision, QosClass};
//!
//! let front_door = AdmissionController::new([
//!     ClassConfig { rate_bytes_per_sec: 12e9, burst_bytes: 1 << 30, queue_depth: 32 },
//!     ClassConfig { rate_bytes_per_sec: 8e9, burst_bytes: 1 << 30, queue_depth: 16 },
//!     ClassConfig::closed(), // Background is shut off entirely
//! ]);
//! assert!(matches!(
//!     front_door.submit(QosClass::Checkpoint, 64 << 20, 0.0),
//!     Ok(Decision::Admitted(_))
//! ));
//! assert!(front_door.submit(QosClass::Background, 1, 0.0).is_err());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod backend;
pub mod cluster;
pub mod modes;
pub mod placement;
pub mod runtime;
pub mod tiering;

pub use admission::{
    AdmissionController, AdmissionError, ClassConfig, Decision, Permit, QosClass, Ticket,
};
pub use backend::CxlDeviceBackend;
pub use cluster::{ClusterError, ClusterHost, DisaggregatedCluster, HostSegment, HostStore};
pub use modes::{AccessMode, ModeProperties};
pub use placement::{ExpansionPlan, TierPolicy};
pub use runtime::{
    CxlPmemRuntime, InterleavedWindow, ManagedPool, PooledChunkExecutor, RuntimeBuilder,
    RuntimeError, RuntimePreset, SetupKind,
};
pub use tiering::{
    assignment_bandwidth, AccessTracker, BandwidthAwarePolicy, ChunkHeat, HotGreedyPolicy,
    MigrationCrash, MigrationPhase, MigrationStats, PlanContext, StaticSpillPolicy, TierAssignment,
    TierPlanner, TierShape, TieredRegion,
};

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
