//! `cxl-pmem` — CXL memory as Persistent Memory for disaggregated HPC.
//!
//! This crate is the paper's contribution packaged as a library: a runtime
//! that provisions PMDK-style persistent pools **on CXL-attached memory** and
//! exposes the two usage modes the paper evaluates:
//!
//! * **App-Direct** — the pool is accessed directly and transactionally
//!   (`pmem` crate), exactly like a `libpmemobj` pool on Optane DCPMM; the
//!   PMDK software overhead is carried into the performance model.
//! * **Memory Mode** — the CXL device is used as plain CC-NUMA memory
//!   expansion (`numactl --membind` style), with no persistence guarantees.
//!
//! The runtime also owns the machine model (`memsim`), the CXL device model
//! (`cxl`) and the placement/affinity machinery (`numa`), so a caller can ask
//! one object both "store these bytes durably on the expander" and "how long
//! would this STREAM kernel take on setup #1 with 8 threads bound close?".
//!
//! Entry points:
//!
//! * [`runtime::CxlPmemRuntime`] — construct with [`runtime::CxlPmemRuntime::setup1`]
//!   (the paper's Sapphire Rapids + CXL machine), `setup2` (Xeon Gold DDR4) or
//!   `dcpmm_baseline` (the published-Optane comparison machine). The runtime
//!   also provisions and owns the resident [`numa::PinnedPool`] worker pools
//!   ([`runtime::CxlPmemRuntime::worker_pool`]), so repeated STREAM
//!   invocations share parked, logically pinned OS threads instead of
//!   respawning them.
//! * [`backend::CxlDeviceBackend`] — a `pmem::PoolBackend` storing pool bytes
//!   on a `cxl::Type3Device`, i.e. the pool really lives on the (modelled)
//!   expander.
//! * [`modes::AccessMode`] — App-Direct vs Memory-Mode and their properties
//!   (the paper's Table 1).
//! * [`placement`] — tier selection and Memory-Mode capacity expansion.
//! * [`tiering`] — the adaptive tiering engine: access-tracked hot/cold chunk
//!   migration across DRAM/CXL tiers (placement as a feedback loop, not a
//!   one-shot decision).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod cluster;
pub mod modes;
pub mod placement;
pub mod runtime;
pub mod tiering;

pub use backend::CxlDeviceBackend;
pub use cluster::{ClusterError, ClusterHost, DisaggregatedCluster, HostSegment};
pub use modes::{AccessMode, ModeProperties};
pub use placement::{ExpansionPlan, TierPolicy};
pub use runtime::{CxlPmemRuntime, ManagedPool, PooledChunkExecutor, RuntimeError, SetupKind};
pub use tiering::{
    assignment_bandwidth, AccessTracker, BandwidthAwarePolicy, ChunkHeat, HotGreedyPolicy,
    MigrationCrash, MigrationPhase, MigrationStats, PlanContext, StaticSpillPolicy, TierAssignment,
    TierPlanner, TierShape, TieredRegion,
};

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
