//! Admission control for fleet-scale checkpoint serving: QoS classes,
//! token-bucket rate limiting, bounded queues, typed rejection.
//!
//! A serving fleet multiplexes hundreds of checkpoint/restore streams onto a
//! handful of pooled expander cards. Without a front door, Background scrub
//! traffic queues in front of checkpoints and the tail latency of the thing
//! that matters — committing a compute node's state before its next failure —
//! explodes. The [`AdmissionController`] is that front door:
//!
//! * every request belongs to a [`QosClass`] (`Checkpoint` > `Restore` >
//!   `Background`);
//! * each class owns an independent **token bucket** ([`ClassConfig`]): a
//!   sustained byte rate plus a burst allowance. A request that fits the
//!   available tokens is admitted immediately; one that does not is queued —
//!   up to the class's bounded queue depth — or **rejected with a typed
//!   error** ([`AdmissionError`], surfaced as
//!   [`ClusterError::Admission`](crate::ClusterError::Admission));
//! * [`AdmissionController::poll`] drains the queues **priority-first,
//!   FIFO within a class**, granting whatever the refilled buckets cover.
//!
//! # Starvation freedom
//!
//! Priority ordering alone would let a checkpoint storm starve Background
//! forever. The buckets prevent that *structurally*: a class's tokens refill
//! at its own configured rate and are spent only by its own admissions, so a
//! Background stream with a nonzero rate always makes progress — overload in
//! a higher class consumes the higher class's budget, not Background's. The
//! high-priority class is protected in the other direction by the same
//! mechanism: Background cannot spend Checkpoint's tokens, so checkpoint
//! admission latency is bounded by its own queue, not by the scrub backlog.
//! `tests::background_is_not_starved_by_checkpoint_overload` pins this.
//!
//! # Time
//!
//! The controller is driven by **caller-supplied virtual time** (seconds as
//! `f64`): `submit(class, bytes, now)` and `poll(now)`. The fleet scenario
//! advances time tick-by-tick deterministically; nothing inside reads a
//! clock, so every test and benchmark is exactly reproducible.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// Quality-of-service class of a fleet request, in descending priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QosClass {
    /// A compute node committing its state — the fleet's reason to exist;
    /// highest priority.
    Checkpoint,
    /// A (spare) node restoring after a failure; latency-sensitive but not
    /// on the failure-window critical path.
    Restore,
    /// Scrubbing, re-tiering, prefetch — pure best-effort.
    Background,
}

impl QosClass {
    /// All classes, highest priority first (the drain order of
    /// [`AdmissionController::poll`]).
    pub const ALL: [QosClass; 3] = [
        QosClass::Checkpoint,
        QosClass::Restore,
        QosClass::Background,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            QosClass::Checkpoint => "Checkpoint",
            QosClass::Restore => "Restore",
            QosClass::Background => "Background",
        }
    }

    /// Dense index (priority order).
    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class token-bucket and queue configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassConfig {
    /// Sustained admission rate (bytes per second of virtual time). Zero
    /// means the class is administratively closed: every submit is rejected
    /// with [`AdmissionError::ClassClosed`].
    pub rate_bytes_per_sec: f64,
    /// Burst allowance: the bucket's capacity (bytes). Also the largest
    /// admissible single request — anything bigger can never fit and is
    /// rejected up front with [`AdmissionError::RequestTooLarge`].
    pub burst_bytes: u64,
    /// Bounded queue depth for requests that arrive while the bucket is dry.
    /// A full queue rejects with [`AdmissionError::QueueFull`].
    pub queue_depth: usize,
}

impl ClassConfig {
    /// A closed class: zero rate, zero burst, zero queue.
    pub fn closed() -> Self {
        ClassConfig {
            rate_bytes_per_sec: 0.0,
            burst_bytes: 0,
            queue_depth: 0,
        }
    }
}

/// Typed admission failures (surfaced to cluster callers as
/// [`ClusterError::Admission`](crate::ClusterError::Admission)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The class is configured with zero capacity; nothing is ever admitted.
    ClassClosed {
        /// The closed class.
        class: QosClass,
    },
    /// The request exceeds the class's burst allowance and can never fit.
    RequestTooLarge {
        /// The offending class.
        class: QosClass,
        /// Requested bytes.
        requested: u64,
        /// The class's burst capacity.
        burst: u64,
    },
    /// The bucket is dry and the class's bounded queue is full — the typed
    /// "server is overloaded, back off" signal.
    QueueFull {
        /// The overloaded class.
        class: QosClass,
        /// The configured queue depth that is exhausted.
        depth: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::ClassClosed { class } => {
                write!(f, "admission: class {class} is closed (zero capacity)")
            }
            AdmissionError::RequestTooLarge {
                class,
                requested,
                burst,
            } => write!(
                f,
                "admission: {requested} B request exceeds class {class}'s burst of {burst} B"
            ),
            AdmissionError::QueueFull { class, depth } => write!(
                f,
                "admission: class {class} overloaded (queue of {depth} full); back off"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Proof of admission: the request may go to service. Carries the identity
/// the controller minted so "admitted exactly once" is checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Permit {
    /// Unique (per controller) grant id.
    pub grant: u64,
    /// The admitted class.
    pub class: QosClass,
    /// Admitted payload size (bytes).
    pub bytes: u64,
}

/// A queued request's claim ticket; its permit arrives from a later
/// [`poll`](AdmissionController::poll).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    /// Unique (per controller) grant id — the eventual [`Permit`] carries the
    /// same id.
    pub grant: u64,
    /// The queued class.
    pub class: QosClass,
}

/// Outcome of a successful [`submit`](AdmissionController::submit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Tokens were available: the request is admitted right now.
    Admitted(Permit),
    /// The bucket was dry: the request waits in its class's bounded queue.
    Queued(Ticket),
}

/// One class's bucket + queue.
#[derive(Debug)]
struct ClassState {
    config: ClassConfig,
    /// Current token level (bytes). Refilled lazily from `last_refill`.
    tokens: f64,
    last_refill: f64,
    /// FIFO of (grant id, bytes) waiting for tokens.
    queue: VecDeque<(u64, u64)>,
}

impl ClassState {
    fn refill(&mut self, now: f64) {
        if now > self.last_refill {
            self.tokens = (self.tokens + (now - self.last_refill) * self.config.rate_bytes_per_sec)
                .min(self.config.burst_bytes as f64);
        }
        self.last_refill = self.last_refill.max(now);
    }
}

/// The fleet's front door: per-class token buckets with bounded queues and
/// priority-then-FIFO granting. Internally synchronised — submit/poll freely
/// from many host threads. See the [module docs](self).
#[derive(Debug)]
pub struct AdmissionController {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    classes: [ClassState; 3],
    next_grant: u64,
}

impl AdmissionController {
    /// Creates a controller with one [`ClassConfig`] per [`QosClass`], in
    /// [`QosClass::ALL`] order. Virtual time starts at 0 with full buckets.
    pub fn new(configs: [ClassConfig; 3]) -> Self {
        AdmissionController {
            inner: Mutex::new(Inner {
                classes: configs.map(|config| ClassState {
                    tokens: config.burst_bytes as f64,
                    last_refill: 0.0,
                    queue: VecDeque::new(),
                    config,
                }),
                next_grant: 1,
            }),
        }
    }

    /// A config tuned for checkpoint-first serving of a pool with
    /// `pool_write_gbs` of aggregate write bandwidth: Checkpoint gets 60 % of
    /// it, Restore 30 %, Background 10 %, each with a one-second burst and a
    /// queue depth of `depth`.
    pub fn checkpoint_first(pool_write_gbs: f64, depth: usize) -> Self {
        let share = |fraction: f64| {
            let rate = pool_write_gbs * 1e9 * fraction;
            ClassConfig {
                rate_bytes_per_sec: rate,
                burst_bytes: rate as u64,
                queue_depth: depth,
            }
        };
        AdmissionController::new([share(0.6), share(0.3), share(0.1)])
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configuration of a class.
    pub fn config(&self, class: QosClass) -> ClassConfig {
        self.lock().classes[class.index()].config
    }

    /// Submits a request of `bytes` in `class` at virtual time `now`
    /// (seconds, monotone per caller). Immediate admission if the bucket
    /// covers it; otherwise queued up to the class's depth; otherwise a typed
    /// rejection.
    pub fn submit(
        &self,
        class: QosClass,
        bytes: u64,
        now: f64,
    ) -> Result<Decision, AdmissionError> {
        let mut inner = self.lock();
        let grant = inner.next_grant;
        let state = &mut inner.classes[class.index()];
        if state.config.rate_bytes_per_sec <= 0.0 {
            return Err(AdmissionError::ClassClosed { class });
        }
        if bytes > state.config.burst_bytes {
            return Err(AdmissionError::RequestTooLarge {
                class,
                requested: bytes,
                burst: state.config.burst_bytes,
            });
        }
        state.refill(now);
        // Admit directly only when nothing is already waiting — otherwise a
        // late-arriving small request would overtake queued work (unfair, and
        // it would let a stream of small requests starve a big queued one).
        if state.queue.is_empty() && state.tokens >= bytes as f64 {
            state.tokens -= bytes as f64;
            inner.next_grant += 1;
            return Ok(Decision::Admitted(Permit {
                grant,
                class,
                bytes,
            }));
        }
        if state.queue.len() >= state.config.queue_depth {
            return Err(AdmissionError::QueueFull {
                class,
                depth: state.config.queue_depth,
            });
        }
        state.queue.push_back((grant, bytes));
        inner.next_grant += 1;
        Ok(Decision::Queued(Ticket { grant, class }))
    }

    /// Advances virtual time to `now`, refills every bucket, and grants
    /// queued requests — classes drained highest-priority-first, FIFO within
    /// a class, each grant spending its own class's tokens. Returns the
    /// permits granted by this poll (each queued grant id is returned at most
    /// once across the controller's lifetime).
    pub fn poll(&self, now: f64) -> Vec<Permit> {
        let mut granted = Vec::new();
        let mut inner = self.lock();
        for class in QosClass::ALL {
            let state = &mut inner.classes[class.index()];
            state.refill(now);
            while let Some(&(grant, bytes)) = state.queue.front() {
                if state.tokens < bytes as f64 {
                    break;
                }
                state.tokens -= bytes as f64;
                state.queue.pop_front();
                granted.push(Permit {
                    grant,
                    class,
                    bytes,
                });
            }
        }
        granted
    }

    /// Number of requests currently queued in `class`.
    pub fn queued(&self, class: QosClass) -> usize {
        self.lock().classes[class.index()].queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const MIB: u64 = 1024 * 1024;

    /// 100 MiB/s + 100 MiB burst per class, depth 4.
    fn controller() -> AdmissionController {
        let class = ClassConfig {
            rate_bytes_per_sec: 100.0 * MIB as f64,
            burst_bytes: 100 * MIB,
            queue_depth: 4,
        };
        AdmissionController::new([class; 3])
    }

    #[test]
    fn admits_within_burst_queues_then_rejects() {
        let c = controller();
        // Burst covers two 50 MiB requests...
        for _ in 0..2 {
            assert!(matches!(
                c.submit(QosClass::Checkpoint, 50 * MIB, 0.0).unwrap(),
                Decision::Admitted(_)
            ));
        }
        // ...then the bucket is dry: the next four queue (depth 4)...
        for _ in 0..4 {
            assert!(matches!(
                c.submit(QosClass::Checkpoint, 50 * MIB, 0.0).unwrap(),
                Decision::Queued(_)
            ));
        }
        assert_eq!(c.queued(QosClass::Checkpoint), 4);
        // ...and the fifth is rejected with the typed overload error.
        assert_eq!(
            c.submit(QosClass::Checkpoint, 50 * MIB, 0.0).unwrap_err(),
            AdmissionError::QueueFull {
                class: QosClass::Checkpoint,
                depth: 4
            }
        );
    }

    #[test]
    fn zero_capacity_class_rejects_everything() {
        let open = ClassConfig {
            rate_bytes_per_sec: 100.0 * MIB as f64,
            burst_bytes: 100 * MIB,
            queue_depth: 4,
        };
        let c = AdmissionController::new([open, open, ClassConfig::closed()]);
        // Even a zero-byte request: the class is closed, not merely dry.
        assert_eq!(
            c.submit(QosClass::Background, 0, 0.0).unwrap_err(),
            AdmissionError::ClassClosed {
                class: QosClass::Background
            }
        );
        assert_eq!(
            c.submit(QosClass::Background, MIB, 100.0).unwrap_err(),
            AdmissionError::ClassClosed {
                class: QosClass::Background
            }
        );
        // Other classes are unaffected.
        assert!(c.submit(QosClass::Checkpoint, MIB, 0.0).is_ok());
    }

    #[test]
    fn burst_exactly_at_the_limit_is_admitted_one_byte_over_is_not() {
        let c = controller();
        // Exactly the burst: admitted (the bucket starts full).
        match c.submit(QosClass::Restore, 100 * MIB, 0.0).unwrap() {
            Decision::Admitted(p) => assert_eq!(p.bytes, 100 * MIB),
            other => panic!("exact-burst request not admitted: {other:?}"),
        }
        // One byte over the burst can never fit: typed rejection up front,
        // not an eternal queue entry.
        assert_eq!(
            c.submit(QosClass::Restore, 100 * MIB + 1, 1000.0)
                .unwrap_err(),
            AdmissionError::RequestTooLarge {
                class: QosClass::Restore,
                requested: 100 * MIB + 1,
                burst: 100 * MIB,
            }
        );
        // After a full refill interval the exact-burst request fits again.
        assert!(matches!(
            c.submit(QosClass::Restore, 100 * MIB, 1.0).unwrap(),
            Decision::Admitted(_)
        ));
    }

    #[test]
    fn poll_grants_priority_first_fifo_within_class() {
        let c = controller();
        // Drain all three buckets.
        for class in QosClass::ALL {
            assert!(matches!(
                c.submit(class, 100 * MIB, 0.0).unwrap(),
                Decision::Admitted(_)
            ));
        }
        // Queue in deliberately inverted priority order; remember grant ids.
        let mut queued = Vec::new();
        for class in [
            QosClass::Background,
            QosClass::Restore,
            QosClass::Checkpoint,
        ] {
            for _ in 0..2 {
                match c.submit(class, 10 * MIB, 0.0).unwrap() {
                    Decision::Queued(t) => queued.push(t),
                    other => panic!("expected queue, got {other:?}"),
                }
            }
        }
        // One poll after a full refill: everything fits; grants must come
        // back Checkpoint → Restore → Background, FIFO within each.
        let permits = c.poll(1.0);
        assert_eq!(permits.len(), 6);
        let classes: Vec<QosClass> = permits.iter().map(|p| p.class).collect();
        assert_eq!(
            classes,
            vec![
                QosClass::Checkpoint,
                QosClass::Checkpoint,
                QosClass::Restore,
                QosClass::Restore,
                QosClass::Background,
                QosClass::Background
            ]
        );
        for pair in permits.chunks(2) {
            assert!(pair[0].grant < pair[1].grant, "FIFO within class broken");
        }
        // Granted tickets correspond to queued ones, exactly once.
        let queued_ids: HashSet<u64> = queued.iter().map(|t| t.grant).collect();
        let granted_ids: HashSet<u64> = permits.iter().map(|p| p.grant).collect();
        assert_eq!(queued_ids, granted_ids);
    }

    #[test]
    fn simultaneous_overload_rejects_each_class_with_its_own_error() {
        let c = controller();
        let mut rejections = Vec::new();
        for class in QosClass::ALL {
            // Fill bucket + queue, then overflow.
            c.submit(class, 100 * MIB, 0.0).unwrap();
            for _ in 0..4 {
                c.submit(class, 100 * MIB, 0.0).unwrap();
            }
            rejections.push(c.submit(class, 100 * MIB, 0.0).unwrap_err());
        }
        for (class, rejection) in QosClass::ALL.into_iter().zip(rejections) {
            assert_eq!(rejection, AdmissionError::QueueFull { class, depth: 4 });
        }
    }

    #[test]
    fn background_is_not_starved_by_checkpoint_overload() {
        let c = controller();
        // Sustained Checkpoint overload: every tick, more checkpoint work
        // arrives than its bucket refills.
        let mut background_grants = 0u64;
        let mut t = 0.0;
        // Background submits one modest request per tick.
        for step in 0..200 {
            t = step as f64 * 0.1;
            for _ in 0..4 {
                let _ = c.submit(QosClass::Checkpoint, 50 * MIB, t);
            }
            if let Ok(Decision::Admitted(_)) = c.submit(QosClass::Background, 5 * MIB, t) {
                background_grants += 1;
            }
            background_grants += c
                .poll(t)
                .iter()
                .filter(|p| p.class == QosClass::Background)
                .count() as u64;
        }
        let _ = t;
        // Background kept flowing: its bucket refills from its own rate and
        // checkpoint spend cannot touch it.
        assert!(
            background_grants > 50,
            "background starved: only {background_grants} grants under checkpoint overload"
        );
    }

    #[test]
    fn queued_work_is_not_overtaken_by_fresh_arrivals() {
        let c = controller();
        c.submit(QosClass::Checkpoint, 100 * MIB, 0.0).unwrap(); // drain
        let big = match c.submit(QosClass::Checkpoint, 80 * MIB, 0.0).unwrap() {
            Decision::Queued(t) => t,
            other => panic!("expected queue, got {other:?}"),
        };
        // A tiny request arriving later must not jump the queued big one,
        // even though the bucket could cover it after a partial refill.
        match c.submit(QosClass::Checkpoint, MIB, 0.5).unwrap() {
            Decision::Queued(t) => assert!(t.grant > big.grant),
            Decision::Admitted(_) => panic!("small arrival overtook queued work"),
        }
        let permits = c.poll(1.0);
        assert_eq!(permits.first().map(|p| p.grant), Some(big.grant));
    }

    #[test]
    fn checkpoint_first_splits_the_pool_rate() {
        let c = AdmissionController::checkpoint_first(10.0, 8);
        let ckpt = c.config(QosClass::Checkpoint);
        let rest = c.config(QosClass::Restore);
        let bg = c.config(QosClass::Background);
        assert!(ckpt.rate_bytes_per_sec > rest.rate_bytes_per_sec);
        assert!(rest.rate_bytes_per_sec > bg.rate_bytes_per_sec);
        let total = ckpt.rate_bytes_per_sec + rest.rate_bytes_per_sec + bg.rate_bytes_per_sec;
        assert!((total - 10.0 * 1e9).abs() < 1.0);
        assert_eq!(ckpt.queue_depth, 8);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Admitted work is never lost and never double-served: every
            /// submit that returns `Admitted` or eventually gets polled is
            /// granted under a unique id, exactly once, and every queued
            /// ticket either surfaces in a later poll or is still queued at
            /// the end — never dropped, never duplicated.
            #[test]
            fn admitted_work_is_never_lost_or_double_served(
                ops in proptest::collection::vec(any::<u64>(), 1..80)
            ) {
                let c = controller();
                let mut now = 0.0f64;
                let mut admitted: HashSet<u64> = HashSet::new();
                let mut queued: HashSet<u64> = HashSet::new();
                for op in ops {
                    // Decode (class, bytes, time advance) from one raw u64.
                    let class = QosClass::ALL[(op % 3) as usize];
                    let bytes = (op >> 2) % (40 * MIB) + 1;
                    now += ((op >> 32) % 4) as f64 * 0.05;
                    match c.submit(class, bytes, now) {
                        Ok(Decision::Admitted(p)) => {
                            prop_assert!(admitted.insert(p.grant), "grant {} reissued", p.grant);
                            prop_assert_eq!(p.bytes, bytes);
                            prop_assert_eq!(p.class, class);
                        }
                        Ok(Decision::Queued(t)) => {
                            prop_assert!(queued.insert(t.grant), "ticket {} reissued", t.grant);
                        }
                        Err(_) => {} // typed rejection: the caller backs off
                    }
                    for p in c.poll(now) {
                        prop_assert!(
                            queued.remove(&p.grant),
                            "poll granted {} which was never queued (or twice)",
                            p.grant
                        );
                        prop_assert!(admitted.insert(p.grant), "grant {} double-served", p.grant);
                    }
                }
                // Drain with generous time: everything still queued must
                // surface exactly once (bounded requests always fit a burst).
                for round in 1..=64u32 {
                    for p in c.poll(now + round as f64 * 10.0) {
                        prop_assert!(queued.remove(&p.grant));
                        prop_assert!(admitted.insert(p.grant));
                    }
                    if queued.is_empty() {
                        break;
                    }
                }
                prop_assert!(queued.is_empty(), "{} tickets lost", queued.len());
                // And nothing new materialises once the queues are empty.
                prop_assert!(c.poll(now + 1e6).is_empty());
            }
        }
    }
}
