//! The disaggregated cluster: switch-pooled far memory with federated
//! checkpoint/restart across simulated hosts.
//!
//! This is the paper's headline scenario made executable. §1.3's CXL 2.0
//! pooling puts a rack of Type-3 expanders behind a switch; §2.2's
//! multi-headed sharing exposes one carved segment to several compute nodes
//! with software-managed coherence. A [`DisaggregatedCluster`] owns the
//! [`CxlSwitch`], binds ports, carves [`PoolAllocation`]s per host, wraps each
//! in a [`SharedRegion`], and lays a `pmem` pool with a
//! [`CheckpointRegion`] inside the shared window — so
//! a checkpoint written by host A is a first-class object host B can restore
//! after A fails.
//!
//! ```text
//!   host A (compute node)          host B (spare node)
//!      │ checkpoint(data)             │ attach · acquire · restore
//!      ▼                              ▼
//!   [HostSegment · host 0]        [HostSegment · host 1]
//!      │ SharedRegionBackend         │ SharedRegionBackend
//!      ▼                              ▼
//!   ┌──────────── SharedRegion ("jacobi", software-managed) ───────────┐
//!   │  PmemPool ▸ CheckpointRegion (two-slot epochs, undo-log commit)  │
//!   └──────────────────────────┬───────────────────────────────────────┘
//!                              │ PoolAllocation (dpa window)
//!                     ┌────────┴────────┐
//!                     │    CxlSwitch    │  ports ↔ Type-3 expanders
//!                     └─────────────────┘
//! ```
//!
//! # Coherence discipline (enforced, not advisory)
//!
//! Under [`CoherenceMode::SoftwareManaged`] the device media is a single
//! store, but nothing guarantees another host's caches observe it. The
//! cluster therefore enforces the publish/acquire protocol the paper expects
//! applications to follow:
//!
//! * a **checkpoint commit ends in `publish`** — [`HostSegment::checkpoint`]
//!   publishes exactly once, after the commit record is durable; a commit
//!   that crashes (injected or real) publishes nothing;
//! * a **restore on another host requires `acquire`** — restoring while the
//!   host's acquired version is stale is [`ClusterError::NotAcquired`], a
//!   typed error instead of silently stale data;
//! * reading a segment whose writer **never published** is
//!   [`ClusterError::NeverPublished`] — even when bytes already landed on the
//!   media, the reader has no right to them until the writer signals.
//!
//! Media durability is separate: the pool backend's `persist` maps to the
//! region's Global-Persistent-Flush path, so a torn commit is still
//! recoverable (the undo log rolls it back on the next open) even though it
//! was never published.
//!
//! # Object segments
//!
//! Checkpoint segments move one bulk snapshot at a time; **object segments**
//! put a [`pmem::ObjectStore`] inside the shared window instead — millions of
//! small epoch-versioned objects with per-object commit records over the same
//! undo log. [`ClusterHost::create_store`] / [`ClusterHost::open_store`]
//! return a [`HostStore`] whose `get`/`put`/`commit`/`delete` enforce exactly
//! the discipline above (a directory mutation ends in `publish`; a read on a
//! stale or never-published host is a typed refusal), and whose `*_classed`
//! variants route each op through the fleet's QoS admission front door.

// Re-exported so harnesses driving the cluster (the streamer scenarios, the
// examples) need only a `cxl-pmem` dependency.
pub use cxl::CoherenceMode;
pub use pmem::{
    CheckpointCrash, CheckpointPhase, CheckpointStats, CrashPoint, ObjectCrash, ObjectPhase,
    SerialExecutor, StoreCheck,
};

use crate::admission::{AdmissionController, QosClass};
use cxl::{CxlError, CxlSwitch, HostId, PoolAllocation, PortId, SharedRegion, Type3Device};
use pmem::{
    CheckpointRegion, ChunkExecutor, ObjectStore, PmemError, PmemPool, SharedRegionBackend,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Errors surfaced by the cluster layer.
#[derive(Debug)]
pub enum ClusterError {
    /// No segment with this name exists in the cluster.
    UnknownSegment(String),
    /// A segment with this name already exists.
    SegmentExists(String),
    /// Software-managed coherence: the host tried to restore without having
    /// acquired the latest publication (stale view — refused, not returned).
    NotAcquired {
        /// The offending host.
        host: HostId,
        /// The segment it read.
        segment: String,
    },
    /// Software-managed coherence: the segment's writer never published, so
    /// no reader is entitled to its bytes yet.
    NeverPublished {
        /// The segment that was read.
        segment: String,
    },
    /// The request was refused by fleet admission control (overload, closed
    /// class, or an over-burst request) — the typed "back off" signal.
    Admission(crate::admission::AdmissionError),
    /// The CXL layer (switch pooling, shared-region access) failed.
    Cxl(CxlError),
    /// The persistent store (pool, checkpoint region) failed.
    Pmem(PmemError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownSegment(name) => write!(f, "unknown shared segment '{name}'"),
            ClusterError::SegmentExists(name) => {
                write!(f, "shared segment '{name}' already exists")
            }
            ClusterError::NotAcquired { host, segment } => write!(
                f,
                "host {host} must acquire segment '{segment}' before restoring \
                 (software-managed coherence)"
            ),
            ClusterError::NeverPublished { segment } => write!(
                f,
                "segment '{segment}' was never published by its writer; refusing the read"
            ),
            ClusterError::Admission(e) => write!(f, "{e}"),
            ClusterError::Cxl(e) => write!(f, "cxl error: {e}"),
            ClusterError::Pmem(e) => write!(f, "pmem error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<CxlError> for ClusterError {
    fn from(e: CxlError) -> Self {
        ClusterError::Cxl(e)
    }
}
impl From<PmemError> for ClusterError {
    fn from(e: PmemError) -> Self {
        ClusterError::Pmem(e)
    }
}
impl From<crate::admission::AdmissionError> for ClusterError {
    fn from(e: crate::admission::AdmissionError) -> Self {
        ClusterError::Admission(e)
    }
}

impl ClusterError {
    /// Whether this error is the pmem crash-injection sentinel.
    pub fn is_injected_crash(&self) -> bool {
        matches!(self, ClusterError::Pmem(e) if e.is_injected_crash())
    }
}

/// Result alias for cluster operations.
pub type ClusterResult<T> = std::result::Result<T, ClusterError>;

/// One named shared segment: the allocation it was carved from, the shared
/// window over it, and the checkpoint layout living inside.
struct Segment {
    name: String,
    allocation: PoolAllocation,
    region: Arc<SharedRegion>,
    data_len: u64,
}

/// State shared by the cluster facade and every host handle. The switch is
/// internally lock-striped (all methods take `&self`), so only the segment
/// name table needs a cluster-level lock.
struct ClusterShared {
    mode: CoherenceMode,
    switch: CxlSwitch,
    segments: Mutex<HashMap<String, Arc<Segment>>>,
}

impl ClusterShared {
    fn segments(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Segment>>> {
        self.segments.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A rack-level disaggregated-memory cluster: a CXL 2.0 switch pooling Type-3
/// expanders, per-host capacity carving, and named shared segments hosts
/// checkpoint into and restore from (see the [module docs](self)).
pub struct DisaggregatedCluster {
    shared: Arc<ClusterShared>,
}

impl fmt::Debug for DisaggregatedCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DisaggregatedCluster")
            .field("mode", &self.shared.mode)
            .field("ports", &self.shared.switch.ports())
            .field("segments", &self.shared.segments().len())
            .finish()
    }
}

impl DisaggregatedCluster {
    /// Creates an empty cluster (no pooled devices yet) whose shared segments
    /// use `mode` for cross-host coherence.
    pub fn new(name: impl Into<String>, mode: CoherenceMode) -> Self {
        DisaggregatedCluster {
            shared: Arc::new(ClusterShared {
                mode,
                switch: CxlSwitch::new(name),
                segments: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Attaches a Type-3 expander to the next downstream port.
    pub fn attach_device(&self, device: Arc<Type3Device>) -> PortId {
        self.shared.switch.attach_device(device)
    }

    /// Binds a downstream port exclusively to `host`; subsequent segment
    /// carving for other hosts skips this port.
    pub fn bind_port(&self, port: PortId, host: HostId) -> ClusterResult<()> {
        self.shared.switch.bind_port(port, host).map_err(Into::into)
    }

    /// Unbinds a port, returning it to the anyone-may-allocate pool.
    pub fn unbind_port(&self, port: PortId) -> ClusterResult<()> {
        self.shared.switch.unbind_port(port).map_err(Into::into)
    }

    /// The coherence mode every segment of this cluster uses.
    pub fn mode(&self) -> CoherenceMode {
        self.shared.mode
    }

    /// Number of pooled downstream ports.
    pub fn ports(&self) -> usize {
        self.shared.switch.ports()
    }

    /// Total pooled capacity (bytes).
    pub fn total_capacity(&self) -> u64 {
        self.shared.switch.total_capacity()
    }

    /// Pooled capacity not assigned to any host (bytes).
    pub fn unassigned_capacity(&self) -> u64 {
        self.shared.switch.unassigned_capacity()
    }

    /// Pooled capacity currently assigned to `host` (bytes).
    pub fn assigned_to(&self, host: HostId) -> u64 {
        self.shared.switch.assigned_to(host)
    }

    /// A consistent pool-capacity snapshot (total / unassigned / per-host
    /// assigned), safe to take while other hosts allocate and release.
    pub fn accounting(&self) -> cxl::PoolAccounting {
        self.shared.switch.accounting()
    }

    /// Names of the live shared segments, sorted.
    pub fn segment_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.segments().keys().cloned().collect();
        names.sort();
        names
    }

    /// Tears a segment down and releases its pool allocation back to the
    /// switch (dynamic capacity release). Host handles still holding the
    /// segment keep a working window — the model cannot revoke mappings —
    /// but the capacity is reusable and the name can be recreated.
    pub fn release_segment(&self, name: &str) -> ClusterResult<()> {
        let segment = self
            .shared
            .segments()
            .remove(name)
            .ok_or_else(|| ClusterError::UnknownSegment(name.to_string()))?;
        self.shared
            .switch
            .release(segment.allocation.id)
            .map_err(Into::into)
    }

    /// A handle acting as `host` — the per-host view every compute node gets.
    pub fn host(&self, host: HostId) -> ClusterHost {
        ClusterHost {
            host,
            shared: Arc::clone(&self.shared),
        }
    }
}

/// A cluster handle scoped to one simulated host.
pub struct ClusterHost {
    host: HostId,
    shared: Arc<ClusterShared>,
}

impl fmt::Debug for ClusterHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterHost")
            .field("host", &self.host)
            .finish()
    }
}

impl ClusterHost {
    /// The host id this handle acts as.
    pub fn id(&self) -> HostId {
        self.host
    }

    /// Carves a new shared segment sized for checkpoints of `data_len` bytes
    /// persisted at `chunk_len` granularity, formats the pool + checkpoint
    /// region inside it, and returns this host's handle. The switch skips
    /// ports bound to other hosts, so an exclusive binding really reserves
    /// its device.
    pub fn create_segment(
        &self,
        name: impl Into<String>,
        data_len: u64,
        chunk_len: u64,
    ) -> ClusterResult<HostSegment> {
        let name = name.into();
        let size = CheckpointRegion::required_pool_size(data_len, chunk_len);
        // Carve first, publish the name last: the segment only enters the
        // shared map once it is fully formatted, so a concurrent
        // attach_segment can never see (and keep using) a window whose
        // capacity a failure rollback is about to release.
        let segment = {
            let segments = self.shared.segments();
            if segments.contains_key(&name) {
                return Err(ClusterError::SegmentExists(name));
            }
            let switch = &self.shared.switch;
            let allocation = switch.allocate(self.host, size)?;
            let region = Arc::new(switch.shared_region(&allocation, self.shared.mode)?);
            Arc::new(Segment {
                name: name.clone(),
                allocation,
                region,
                data_len,
            })
        };
        let formatted = (|| -> ClusterResult<CheckpointRegion<'static>> {
            let backend = SharedRegionBackend::new(Arc::clone(&segment.region), self.host);
            let pool = Arc::new(PmemPool::create_with_backend(
                Arc::new(backend),
                &segment.name,
            )?);
            let ckpt = CheckpointRegion::format(&pool, data_len, chunk_len)?;
            pool.set_root(ckpt.oid(), data_len)?;
            drop(ckpt);
            Ok(CheckpointRegion::open_root_shared(pool)?)
        })();
        let error = match formatted {
            Ok(region) => {
                let mut segments = self.shared.segments();
                match segments.entry(name) {
                    std::collections::hash_map::Entry::Occupied(taken) => {
                        // Another creator raced us to the name while we were
                        // formatting off-lock; theirs won.
                        ClusterError::SegmentExists(taken.key().clone())
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(Arc::clone(&segment));
                        drop(segments);
                        return Ok(HostSegment {
                            host: self.host,
                            segment,
                            region: Some(region),
                        });
                    }
                }
            }
            Err(e) => e,
        };
        // A failed (or name-raced) format must not leak the carved capacity.
        let _ = self.shared.switch.release(segment.allocation.id);
        Err(error)
    }

    /// Attaches this host to an existing segment (maps the shared window).
    /// The pool inside is opened lazily — on the first `checkpoint`/`restore`
    /// — so undo-log recovery runs on the host that actually takes over.
    pub fn attach_segment(&self, name: &str) -> ClusterResult<HostSegment> {
        let segment = self
            .shared
            .segments()
            .get(name)
            .cloned()
            .ok_or_else(|| ClusterError::UnknownSegment(name.to_string()))?;
        segment.region.attach(self.host);
        Ok(HostSegment {
            host: self.host,
            segment,
            region: None,
        })
    }

    /// Carves a new shared segment holding a versioned [`pmem::ObjectStore`]
    /// for up to `capacity` objects of at most `value_len` bytes each,
    /// formats the pool + store inside it, and returns this host's handle.
    pub fn create_store(
        &self,
        name: impl Into<String>,
        capacity: u64,
        value_len: u64,
    ) -> ClusterResult<HostStore> {
        let name = name.into();
        let size = ObjectStore::required_pool_size(capacity, value_len);
        // Same carve-first / publish-the-name-last dance as `create_segment`:
        // the map only learns the name once the store is fully formatted.
        let segment = {
            let segments = self.shared.segments();
            if segments.contains_key(&name) {
                return Err(ClusterError::SegmentExists(name));
            }
            let switch = &self.shared.switch;
            let allocation = switch.allocate(self.host, size)?;
            let region = Arc::new(switch.shared_region(&allocation, self.shared.mode)?);
            Arc::new(Segment {
                name: name.clone(),
                allocation,
                region,
                data_len: ObjectStore::region_size(capacity, value_len),
            })
        };
        let formatted = (|| -> ClusterResult<ObjectStore<'static>> {
            let backend = SharedRegionBackend::new(Arc::clone(&segment.region), self.host);
            let pool = Arc::new(PmemPool::create_with_backend(
                Arc::new(backend),
                &segment.name,
            )?);
            let store = ObjectStore::format(&pool, capacity, value_len)?;
            pool.set_root(store.oid(), segment.data_len)?;
            drop(store);
            Ok(ObjectStore::open_root_shared(pool)?)
        })();
        let error = match formatted {
            Ok(store) => {
                let mut segments = self.shared.segments();
                match segments.entry(name) {
                    std::collections::hash_map::Entry::Occupied(taken) => {
                        ClusterError::SegmentExists(taken.key().clone())
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(Arc::clone(&segment));
                        drop(segments);
                        return Ok(HostStore {
                            host: self.host,
                            segment,
                            store: Some(store),
                            front_door: None,
                        });
                    }
                }
            }
            Err(e) => e,
        };
        // A failed (or name-raced) format must not leak the carved capacity.
        let _ = self.shared.switch.release(segment.allocation.id);
        Err(error)
    }

    /// Attaches this host to an existing object segment. The pool inside is
    /// opened lazily — on the first object op — so undo-log recovery runs on
    /// the host that actually takes over.
    pub fn open_store(&self, name: &str) -> ClusterResult<HostStore> {
        let segment = self
            .shared
            .segments()
            .get(name)
            .cloned()
            .ok_or_else(|| ClusterError::UnknownSegment(name.to_string()))?;
        segment.region.attach(self.host);
        Ok(HostStore {
            host: self.host,
            segment,
            store: None,
            front_door: None,
        })
    }
}

/// One host's attachment to one shared segment: checkpoint in, restore out,
/// with the coherence discipline enforced (see the [module docs](self)).
///
/// Dropping the handle models the host being torn down — the segment's bytes
/// stay on the pooled (battery-backed) devices, and any other host can
/// attach and take over.
pub struct HostSegment {
    host: HostId,
    segment: Arc<Segment>,
    /// The opened checkpoint region (shared ownership of its pool). Kept
    /// across calls so the incremental chunk-hash cache survives — an
    /// unchanged checkpoint stays a zero-chunk-flush no-op on the cluster
    /// path too. `None` until first use, and reset when a commit dies.
    region: Option<CheckpointRegion<'static>>,
}

impl fmt::Debug for HostSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostSegment")
            .field("host", &self.host)
            .field("segment", &self.segment.name)
            .field("pool_open", &self.region.is_some())
            .finish()
    }
}

impl HostSegment {
    /// The segment's name.
    pub fn name(&self) -> &str {
        &self.segment.name
    }

    /// The host this handle acts as.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Snapshot payload size the segment was created for (bytes).
    pub fn data_len(&self) -> u64 {
        self.segment.data_len
    }

    /// The shared window the segment lives in (stats, protocol state).
    pub fn region(&self) -> Arc<SharedRegion> {
        Arc::clone(&self.segment.region)
    }

    fn ensure_region(&mut self) -> pmem::Result<&mut CheckpointRegion<'static>> {
        if self.region.is_none() {
            let backend = SharedRegionBackend::new(Arc::clone(&self.segment.region), self.host);
            // Opening runs pool recovery: a commit record torn by the
            // previous owner's crash is rolled back before any restore.
            let pool = Arc::new(PmemPool::open_with_backend(
                Arc::new(backend),
                &self.segment.name,
            )?);
            self.region = Some(CheckpointRegion::open_root_shared(pool)?);
        }
        Ok(self.region.as_mut().expect("region just ensured"))
    }

    /// Commits `data` as the next epoch and **publishes** it — the
    /// software-coherence contract that a checkpoint commit ends in a
    /// publish. Serial persist path; see
    /// [`checkpoint_with`](Self::checkpoint_with) for the fan-out variant.
    pub fn checkpoint(&mut self, data: &[u8]) -> ClusterResult<CheckpointStats> {
        self.commit(data, &SerialExecutor, None)
    }

    /// Like [`checkpoint`](Self::checkpoint), with chunk flushes fanned out
    /// through `exec` (e.g. the runtime's resident worker pool via
    /// [`PooledChunkExecutor`](crate::PooledChunkExecutor)).
    pub fn checkpoint_with(
        &mut self,
        data: &[u8],
        exec: &impl ChunkExecutor,
    ) -> ClusterResult<CheckpointStats> {
        self.commit(data, exec, None)
    }

    /// A checkpoint attempt with a crash armed at `crash` — the cross-host
    /// restart tests' injection point. The commit fails with an
    /// injected-crash error, nothing is published, and the handle forgets its
    /// pool (the host "died"); the durable state is exactly what the crash
    /// left on the pooled devices.
    pub fn checkpoint_crashing(
        &mut self,
        data: &[u8],
        crash: CheckpointCrash,
        exec: &impl ChunkExecutor,
    ) -> ClusterResult<CheckpointStats> {
        self.commit(data, exec, Some(crash))
    }

    fn commit(
        &mut self,
        data: &[u8],
        exec: &impl ChunkExecutor,
        crash: Option<CheckpointCrash>,
    ) -> ClusterResult<CheckpointStats> {
        // Writers are bound by the discipline too: extending the epoch chain
        // means reading the committed descriptor/slot state, so a host whose
        // view is stale must acquire first. (A segment nobody ever published
        // is fine to write — the creator is the one establishing
        // publication.)
        if self.segment.region.mode() == CoherenceMode::SoftwareManaged
            && self.segment.region.version() > 0
            && !self.segment.region.is_up_to_date(self.host)
        {
            return Err(ClusterError::NotAcquired {
                host: self.host,
                segment: self.segment.name.clone(),
            });
        }
        let outcome = {
            let ckpt = self.ensure_region()?;
            ckpt.set_crash(crash);
            ckpt.checkpoint_with(data, exec)
        };
        match outcome {
            Ok(stats) => {
                // The commit record is durable; end the commit by publishing
                // so other hosts become entitled to acquire the new epoch.
                self.segment.region.publish(self.host)?;
                Ok(stats)
            }
            Err(e) => {
                // The attempt died mid-commit (injected crash or a real
                // failure): drop the region + pool handle so the next use —
                // on this host or any other — reopens and recovers. No
                // publish.
                self.region = None;
                Err(e.into())
            }
        }
    }

    /// Acquires the latest publication of the segment — the reader half of
    /// the software-coherence protocol, required before a restore on a host
    /// that did not write the data.
    ///
    /// If the acquire advances this host's view (another host published
    /// since), the cached region handle is dropped: its committed-epoch
    /// snapshot and incremental chunk-hash cache described the superseded
    /// publication, so the next op reopens the pool and re-reads the
    /// descriptor.
    pub fn acquire(&mut self) -> ClusterResult<u64> {
        let fresh = self.segment.region.is_up_to_date(self.host);
        let version = self.segment.region.acquire(self.host)?;
        if !fresh {
            self.region = None;
        }
        Ok(version)
    }

    /// Enforces the read-side coherence discipline.
    fn check_coherence(&self) -> ClusterResult<()> {
        if self.segment.region.mode() != CoherenceMode::SoftwareManaged {
            return Ok(());
        }
        if self.segment.region.version() == 0 {
            return Err(ClusterError::NeverPublished {
                segment: self.segment.name.clone(),
            });
        }
        if !self.segment.region.is_up_to_date(self.host) {
            return Err(ClusterError::NotAcquired {
                host: self.host,
                segment: self.segment.name.clone(),
            });
        }
        Ok(())
    }

    /// Restores the last committed epoch into `out` and returns its number.
    ///
    /// Discipline first: under software-managed coherence this fails with
    /// [`ClusterError::NeverPublished`] if the writer never published and
    /// [`ClusterError::NotAcquired`] if this host has not acquired the latest
    /// publication. Only then is the pool opened (running crash recovery if
    /// the writer died mid-commit) and the committed slot read back.
    pub fn restore(&mut self, out: &mut [u8]) -> ClusterResult<u64> {
        self.check_coherence()?;
        let ckpt = self.ensure_region()?;
        Ok(ckpt.restore(out)?)
    }

    /// The last committed epoch recorded in the segment (0 = none), subject
    /// to the same coherence discipline as [`restore`](Self::restore).
    pub fn committed_epoch(&mut self) -> ClusterResult<u64> {
        self.check_coherence()?;
        let ckpt = self.ensure_region()?;
        Ok(ckpt.committed_epoch())
    }
}

/// One host's attachment to one shared **object segment**: KV-style
/// get/put/commit/delete over a [`pmem::ObjectStore`] in the shared window,
/// with the module's coherence discipline enforced per directory mutation and
/// optional QoS admission classing per op (see the [module docs](self)).
///
/// Dropping the handle models the host being torn down — the store's bytes
/// stay on the pooled devices, and any other host can `open_store` and take
/// over (undo-log recovery rolls back a commit the dead host tore).
pub struct HostStore {
    host: HostId,
    segment: Arc<Segment>,
    /// The opened store (shared ownership of its pool). `None` until first
    /// use, and reset when a commit dies so the next use reopens + recovers.
    store: Option<ObjectStore<'static>>,
    /// Optional QoS front door the `*_classed` ops submit through.
    front_door: Option<Arc<AdmissionController>>,
}

impl fmt::Debug for HostStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostStore")
            .field("host", &self.host)
            .field("segment", &self.segment.name)
            .field("pool_open", &self.store.is_some())
            .field("front_door", &self.front_door.is_some())
            .finish()
    }
}

impl HostStore {
    /// The segment's name.
    pub fn name(&self) -> &str {
        &self.segment.name
    }

    /// The host this handle acts as.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The shared window the store lives in (stats, protocol state).
    pub fn region(&self) -> Arc<SharedRegion> {
        Arc::clone(&self.segment.region)
    }

    /// Routes this handle's `*_classed` ops through a QoS admission front
    /// door (typically the fleet's shared [`AdmissionController`]).
    pub fn set_front_door(&mut self, controller: Arc<AdmissionController>) {
        self.front_door = Some(controller);
    }

    /// The attached front door, if any.
    pub fn front_door(&self) -> Option<&Arc<AdmissionController>> {
        self.front_door.as_ref()
    }

    fn ensure_store(&mut self) -> pmem::Result<&mut ObjectStore<'static>> {
        if self.store.is_none() {
            let backend = SharedRegionBackend::new(Arc::clone(&self.segment.region), self.host);
            // Opening runs pool recovery: a commit record torn by the
            // previous owner's crash is rolled back before any read.
            let pool = Arc::new(PmemPool::open_with_backend(
                Arc::new(backend),
                &self.segment.name,
            )?);
            self.store = Some(ObjectStore::open_root_shared(pool)?);
        }
        Ok(self.store.as_mut().expect("store just ensured"))
    }

    /// Enforces the write-side coherence discipline: extending an object's
    /// version chain means reading the committed directory state, so a host
    /// whose view is stale must acquire first.
    fn check_writer(&self) -> ClusterResult<()> {
        if self.segment.region.mode() == CoherenceMode::SoftwareManaged
            && self.segment.region.version() > 0
            && !self.segment.region.is_up_to_date(self.host)
        {
            return Err(ClusterError::NotAcquired {
                host: self.host,
                segment: self.segment.name.clone(),
            });
        }
        Ok(())
    }

    /// Enforces the read-side coherence discipline (same rules as
    /// checkpoint segments).
    fn check_coherence(&self) -> ClusterResult<()> {
        if self.segment.region.mode() != CoherenceMode::SoftwareManaged {
            return Ok(());
        }
        if self.segment.region.version() == 0 {
            return Err(ClusterError::NeverPublished {
                segment: self.segment.name.clone(),
            });
        }
        if !self.segment.region.is_up_to_date(self.host) {
            return Err(ClusterError::NotAcquired {
                host: self.host,
                segment: self.segment.name.clone(),
            });
        }
        Ok(())
    }

    /// Submits `bytes` of `class` traffic to the front door (when one is
    /// attached) at virtual time `now`. Refusals surface as
    /// [`ClusterError::Admission`]; queued work proceeds (its latency is the
    /// scenario harness's accounting), and due grants are drained.
    fn admit(&self, class: QosClass, bytes: u64, now: f64) -> ClusterResult<()> {
        if let Some(door) = &self.front_door {
            door.submit(class, bytes.max(1), now)?;
            // Drain grants whose time has come; permits are admission-side
            // bookkeeping, the op itself executes below either way.
            let _ = door.poll(now);
        }
        Ok(())
    }

    // ------------------------------------------------------------ write side

    /// Stages a new version of object `id` (invisible until
    /// [`commit`](Self::commit)). Writers are bound by the coherence
    /// discipline: a stale view is a typed refusal.
    pub fn put(&mut self, id: u64, value: &[u8]) -> ClusterResult<()> {
        self.check_writer()?;
        let store = self.ensure_store()?;
        Ok(store.put(id, value)?)
    }

    /// A staging write with a crash armed at `crash` — the torn-payload half
    /// of the object crash matrix. The slot write dies mid-copy, nothing is
    /// committed or published, and the handle forgets its pool (the host
    /// "died"); the committed version stays untouched for every other host.
    pub fn put_crashing(&mut self, id: u64, value: &[u8], crash: ObjectCrash) -> ClusterResult<()> {
        self.check_writer()?;
        let outcome = {
            let store = self.ensure_store()?;
            store.set_crash(Some(crash));
            store.put(id, value)
        };
        match outcome {
            Ok(()) => Ok(()),
            Err(e) => {
                self.store = None;
                Err(e.into())
            }
        }
    }

    /// Commits the staged version of object `id`, **publishes** the segment
    /// (the coherence contract: a directory mutation ends in a publish), and
    /// returns the object's new epoch.
    pub fn commit(&mut self, id: u64) -> ClusterResult<u64> {
        self.commit_inner(id, None)
    }

    /// A commit attempt with a crash armed at `crash` — the object
    /// crash-matrix suites' injection point. The commit fails with an
    /// injected-crash error, nothing is published, and the handle forgets
    /// its pool (the host "died").
    pub fn commit_crashing(&mut self, id: u64, crash: ObjectCrash) -> ClusterResult<u64> {
        self.commit_inner(id, Some(crash))
    }

    fn commit_inner(&mut self, id: u64, crash: Option<ObjectCrash>) -> ClusterResult<u64> {
        self.check_writer()?;
        let outcome = {
            let store = self.ensure_store()?;
            store.set_crash(crash);
            store.commit(id)
        };
        match outcome {
            Ok(epoch) => {
                self.segment.region.publish(self.host)?;
                Ok(epoch)
            }
            Err(e) => {
                // The attempt died mid-commit: drop the store + pool handle
                // so the next use — on this host or any other — reopens and
                // recovers. No publish.
                self.store = None;
                Err(e.into())
            }
        }
    }

    /// Stages and commits `value` as the next version of object `id`.
    pub fn put_commit(&mut self, id: u64, value: &[u8]) -> ClusterResult<u64> {
        self.put(id, value)?;
        self.commit(id)
    }

    /// Deletes object `id` (undo-logged) and publishes the segment.
    pub fn delete(&mut self, id: u64) -> ClusterResult<()> {
        self.check_writer()?;
        let outcome = {
            let store = self.ensure_store()?;
            store.delete(id)
        };
        match outcome {
            Ok(()) => {
                self.segment.region.publish(self.host)?;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    // ------------------------------------------------------------- read side

    /// Acquires the latest publication of the segment — the reader half of
    /// the software-coherence protocol.
    ///
    /// If the acquire advances this host's view (another host published
    /// since), the cached store handle is dropped: its descriptor-counter
    /// snapshot and staged puts described the superseded publication, so the
    /// next op reopens the pool and re-reads the directory. A staged put
    /// discarded this way surfaces as a typed `commit without a staged put`
    /// error — stage it again against the refreshed view.
    pub fn acquire(&mut self) -> ClusterResult<u64> {
        let fresh = self.segment.region.is_up_to_date(self.host);
        let version = self.segment.region.acquire(self.host)?;
        if !fresh {
            self.store = None;
        }
        Ok(version)
    }

    /// Reads the committed version of object `id`. Discipline first: a
    /// never-published store or a stale view is a typed refusal, and the
    /// store itself validates the entry checksum + payload hash — the caller
    /// gets the exact committed bytes or an error, never a torn mix.
    pub fn get(&mut self, id: u64) -> ClusterResult<Vec<u8>> {
        self.check_coherence()?;
        let store = self.ensure_store()?;
        Ok(store.get(id)?)
    }

    /// The committed epoch of object `id` (discipline enforced).
    pub fn committed_version(&mut self, id: u64) -> ClusterResult<u64> {
        self.check_coherence()?;
        let store = self.ensure_store()?;
        Ok(store.committed_version(id)?)
    }

    /// Number of objects currently holding a committed version.
    pub fn live(&mut self) -> ClusterResult<u64> {
        self.check_coherence()?;
        let store = self.ensure_store()?;
        Ok(store.live())
    }

    /// Full-directory audit (see [`pmem::ObjectStore::verify`]).
    pub fn verify(&mut self) -> ClusterResult<StoreCheck> {
        self.check_coherence()?;
        let store = self.ensure_store()?;
        Ok(store.verify()?)
    }

    // --------------------------------------------------------- classed traffic

    /// [`put`](Self::put) through the QoS front door: `value.len()` bytes of
    /// [`QosClass::Checkpoint`] (write-class) traffic at virtual time `now`.
    pub fn put_classed(&mut self, id: u64, value: &[u8], now: f64) -> ClusterResult<()> {
        self.admit(QosClass::Checkpoint, value.len() as u64, now)?;
        self.put(id, value)
    }

    /// [`commit`](Self::commit) through the QoS front door: the commit
    /// record itself is directory-entry sized.
    pub fn commit_classed(&mut self, id: u64, now: f64) -> ClusterResult<u64> {
        self.admit(QosClass::Checkpoint, 64, now)?;
        self.commit(id)
    }

    /// [`get`](Self::get) through the QoS front door: one slot's worth of
    /// [`QosClass::Restore`] (read-class) traffic at virtual time `now`.
    pub fn get_classed(&mut self, id: u64, now: f64) -> ClusterResult<Vec<u8>> {
        // Discipline before the store is opened: opening runs undo-log
        // recovery, which a stale or never-acquired host has no right to
        // trigger just to size an admission request.
        self.check_coherence()?;
        let bytes = {
            let store = self.ensure_store()?;
            store.value_len()
        };
        self.admit(QosClass::Restore, bytes, now)?;
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl::{FpgaPrototype, LinkConfig};

    const MIB: u64 = 1024 * 1024;
    const DATA: u64 = 64 * 1024;
    const CHUNK: u64 = 4096;

    fn image(tag: u8) -> Vec<u8> {
        (0..DATA as usize)
            .map(|i| (i as u8).wrapping_mul(17).wrapping_add(tag))
            .collect()
    }

    fn two_card_cluster(mode: CoherenceMode) -> DisaggregatedCluster {
        let cluster = DisaggregatedCluster::new("test-rack", mode);
        for i in 0..2 {
            cluster.attach_device(Arc::new(Type3Device::new(
                format!("card{i}"),
                64 * MIB,
                LinkConfig::gen5_x16(),
            )));
        }
        cluster
    }

    #[test]
    fn segments_respect_exclusive_port_bindings() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        cluster.bind_port(0, 7).unwrap();
        // Host 3's segment must come from port 1 — port 0 belongs to host 7.
        let seg = cluster.host(3).create_segment("h3", DATA, CHUNK).unwrap();
        drop(seg);
        let segs = cluster.shared.segments();
        assert_eq!(segs.get("h3").unwrap().allocation.port, 1);
        drop(segs);
        let seg7 = cluster.host(7).create_segment("h7", DATA, CHUNK).unwrap();
        drop(seg7);
        assert_eq!(
            cluster.shared.segments().get("h7").unwrap().allocation.port,
            0
        );
        assert!(cluster.assigned_to(3) > 0);
        assert_eq!(
            cluster.total_capacity(),
            cluster.unassigned_capacity() + cluster.assigned_to(3) + cluster.assigned_to(7)
        );
    }

    #[test]
    fn cross_host_restart_after_mid_commit_crash() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let golden = image(2);

        // Host A commits two epochs, then dies mid-commit of the third.
        {
            let mut a = cluster
                .host(0)
                .create_segment("jacobi", DATA, CHUNK)
                .unwrap();
            a.checkpoint(&image(1)).unwrap();
            a.checkpoint(&golden).unwrap();
            let err = a
                .checkpoint_crashing(
                    &image(3),
                    CheckpointCrash {
                        phase: CheckpointPhase::Commit,
                        point: CrashPoint::BeforeCommit,
                    },
                    &SerialExecutor,
                )
                .unwrap_err();
            assert!(err.is_injected_crash());
        } // host A torn down

        // Host B attaches, acquires, restores epoch 2 bit-exact.
        let mut b = cluster.host(1).attach_segment("jacobi").unwrap();
        b.acquire().unwrap();
        let mut out = vec![0u8; DATA as usize];
        assert_eq!(b.restore(&mut out).unwrap(), 2);
        assert_eq!(out, golden);
        // And B can continue the epoch chain where A left off.
        let stats = b.checkpoint(&image(3)).unwrap();
        assert_eq!(stats.epoch, 3);
    }

    #[test]
    fn restore_without_acquire_is_a_typed_error() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let mut a = cluster.host(0).create_segment("seg", DATA, CHUNK).unwrap();
        a.checkpoint(&image(1)).unwrap();
        let mut b = cluster.host(1).attach_segment("seg").unwrap();
        let mut out = vec![0u8; DATA as usize];
        assert!(matches!(
            b.restore(&mut out).unwrap_err(),
            ClusterError::NotAcquired { host: 1, .. }
        ));
        b.acquire().unwrap();
        assert_eq!(b.restore(&mut out).unwrap(), 1);
        // A new publication staling B's view re-raises the error.
        a.checkpoint(&image(2)).unwrap();
        assert!(matches!(
            b.restore(&mut out).unwrap_err(),
            ClusterError::NotAcquired { host: 1, .. }
        ));
    }

    #[test]
    fn unpublished_segment_is_a_typed_error() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        // Host A dies during its *first* commit: nothing was ever published.
        {
            let mut a = cluster
                .host(0)
                .create_segment("fresh", DATA, CHUNK)
                .unwrap();
            let _ = a.checkpoint_crashing(
                &image(1),
                CheckpointCrash {
                    phase: CheckpointPhase::HeaderWrite,
                    point: CrashPoint::BeforeCommit,
                },
                &SerialExecutor,
            );
        }
        let mut b = cluster.host(1).attach_segment("fresh").unwrap();
        b.acquire().unwrap();
        let mut out = vec![0u8; DATA as usize];
        assert!(matches!(
            b.restore(&mut out).unwrap_err(),
            ClusterError::NeverPublished { .. }
        ));
        assert!(matches!(
            b.committed_epoch().unwrap_err(),
            ClusterError::NeverPublished { .. }
        ));
    }

    #[test]
    fn hardware_coherence_needs_no_handshake() {
        let cluster = two_card_cluster(CoherenceMode::HardwareBackInvalidate);
        let mut a = cluster.host(0).create_segment("hw", DATA, CHUNK).unwrap();
        a.checkpoint(&image(5)).unwrap();
        let mut b = cluster.host(1).attach_segment("hw").unwrap();
        // No acquire: back-invalidation makes the publication visible.
        let mut out = vec![0u8; DATA as usize];
        assert_eq!(b.restore(&mut out).unwrap(), 1);
        assert_eq!(out, image(5));
    }

    #[test]
    fn checkpoint_by_a_stale_host_is_a_typed_error() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let mut a = cluster.host(0).create_segment("seg", DATA, CHUNK).unwrap();
        a.checkpoint(&image(1)).unwrap();
        // Host 1 never acquired: it may not extend the epoch chain either.
        let mut b = cluster.host(1).attach_segment("seg").unwrap();
        assert!(matches!(
            b.checkpoint(&image(2)).unwrap_err(),
            ClusterError::NotAcquired { host: 1, .. }
        ));
        b.acquire().unwrap();
        assert_eq!(b.checkpoint(&image(2)).unwrap().epoch, 2);
    }

    #[test]
    fn repeated_checkpoints_stay_incremental() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let mut a = cluster.host(0).create_segment("inc", DATA, CHUNK).unwrap();
        let data = image(1);
        a.checkpoint(&data).unwrap();
        a.checkpoint(&data).unwrap();
        // The cached region preserves the incremental hash state across
        // calls: an unchanged epoch flushes zero chunks on the cluster path.
        let stats = a.checkpoint(&data).unwrap();
        assert_eq!(stats.chunks_written, 0);
        assert_eq!(stats.epoch, 3);
    }

    #[test]
    fn failed_create_releases_the_name_and_the_capacity() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let host = cluster.host(0);
        // chunk_len = 0 is rejected by the checkpoint layer *after* the
        // allocation was carved; the reservation must be rolled back.
        assert!(host.create_segment("seg", DATA, 0).is_err());
        assert_eq!(cluster.assigned_to(0), 0, "carved capacity leaked");
        assert!(cluster.segment_names().is_empty(), "name leaked");
        // The retry with valid parameters succeeds.
        host.create_segment("seg", DATA, CHUNK).unwrap();
    }

    #[test]
    fn segment_lifecycle_names_and_release() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let host = cluster.host(0);
        host.create_segment("a", DATA, CHUNK).unwrap();
        host.create_segment("b", DATA, CHUNK).unwrap();
        assert!(matches!(
            host.create_segment("a", DATA, CHUNK).unwrap_err(),
            ClusterError::SegmentExists(_)
        ));
        assert!(matches!(
            host.attach_segment("missing").unwrap_err(),
            ClusterError::UnknownSegment(_)
        ));
        assert_eq!(cluster.segment_names(), vec!["a", "b"]);
        let before = cluster.unassigned_capacity();
        cluster.release_segment("a").unwrap();
        assert!(cluster.unassigned_capacity() > before);
        assert_eq!(cluster.segment_names(), vec!["b"]);
        assert!(cluster.release_segment("a").is_err());
        // The freed name can be recreated.
        host.create_segment("a", DATA, CHUNK).unwrap();
    }

    #[test]
    fn object_store_cross_host_readers_and_writers() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let mut a = cluster.host(0).create_store("kv", 256, 128).unwrap();

        // Writer host A: commit a first wave of objects.
        for id in 0..16u64 {
            let value = vec![id as u8 ^ 0x5A; 64];
            assert_eq!(a.put_commit(id, &value).unwrap(), 1);
        }

        // Reader host B must acquire before it may read.
        let mut b = cluster.host(1).open_store("kv").unwrap();
        assert!(matches!(
            b.get(0),
            Err(ClusterError::NotAcquired { host: 1, .. })
        ));
        b.acquire().unwrap();
        assert_eq!(b.get(3).unwrap(), vec![3u8 ^ 0x5A; 64]);
        assert_eq!(b.committed_version(3).unwrap(), 1);
        assert_eq!(b.live().unwrap(), 16);

        // Host B takes the writer role (its view is current) and commits a
        // second version; A is now stale and must re-acquire.
        assert_eq!(b.put_commit(3, b"hello from host 1").unwrap(), 2);
        assert!(matches!(
            a.get(3),
            Err(ClusterError::NotAcquired { host: 0, .. })
        ));
        assert!(matches!(
            a.put(3, b"stale writer"),
            Err(ClusterError::NotAcquired { host: 0, .. })
        ));
        a.acquire().unwrap();
        assert_eq!(a.get(3).unwrap(), b"hello from host 1");
        assert_eq!(a.verify().unwrap().live, 16);
    }

    #[test]
    fn reacquire_refreshes_cached_store_state_across_hosts() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let mut a = cluster.host(0).create_store("sync", 64, 64).unwrap();
        a.put_commit(0, b"a-0").unwrap();

        // Host B commits a NEW object (live 1 → 2) and publishes; host A's
        // cached descriptor snapshot is now superseded. Re-acquiring must
        // refresh it so A's next commit extends the counters instead of
        // permanently desyncing the descriptor.
        let mut b = cluster.host(1).open_store("sync").unwrap();
        b.acquire().unwrap();
        b.put_commit(1, b"b-1").unwrap();
        a.acquire().unwrap();
        a.put_commit(2, b"a-2").unwrap();
        assert_eq!(a.live().unwrap(), 3);
        assert_eq!(a.verify().unwrap().live, 3);
        b.acquire().unwrap();
        assert_eq!(b.verify().unwrap().live, 3);

        // Delete ping-pong across hosts stays exact down to zero — no
        // live-counter underflow on the last delete.
        b.delete(0).unwrap();
        b.delete(1).unwrap();
        a.acquire().unwrap();
        a.delete(2).unwrap();
        assert_eq!(a.live().unwrap(), 0);
        a.verify().unwrap();
    }

    #[test]
    fn staged_put_does_not_survive_a_cross_host_handoff() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let mut a = cluster.host(0).create_store("handoff", 32, 64).unwrap();
        a.put_commit(5, b"epoch-1").unwrap();

        // Host A stages epoch 2; host B (current view) commits epoch 2
        // first, claiming the slot A's stage was written into.
        a.put(5, b"staged by a").unwrap();
        let mut b = cluster.host(1).open_store("handoff").unwrap();
        b.acquire().unwrap();
        assert_eq!(b.put_commit(5, b"committed by b").unwrap(), 2);

        // A re-acquires: the superseded stage is discarded with the stale
        // handle, the commit is a typed refusal (never a torn committed
        // object), and the committed bytes stay exact everywhere.
        a.acquire().unwrap();
        assert!(matches!(
            a.commit(5),
            Err(ClusterError::Pmem(PmemError::ObjectStore(
                "commit without a staged put"
            )))
        ));
        assert_eq!(a.get(5).unwrap(), b"committed by b");
        a.verify().unwrap();

        // Re-staging against the refreshed view works.
        a.put(5, b"epoch-3").unwrap();
        assert_eq!(a.commit(5).unwrap(), 3);
        b.acquire().unwrap();
        assert_eq!(b.get(5).unwrap(), b"epoch-3");
    }

    #[test]
    fn classed_get_enforces_coherence_before_opening_the_pool() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let mut a = cluster.host(0).create_store("gate", 16, 64).unwrap();
        a.put_commit(0, b"v1").unwrap();

        // A never-acquired host is refused before the pool opens: sizing the
        // admission request must not run undo-log recovery on shared state.
        let mut b = cluster.host(1).open_store("gate").unwrap();
        assert!(matches!(
            b.get_classed(0, 0.0),
            Err(ClusterError::NotAcquired { host: 1, .. })
        ));
        assert!(format!("{b:?}").contains("pool_open: false"));
        b.acquire().unwrap();
        assert_eq!(b.get_classed(0, 0.0).unwrap(), b"v1");
    }

    #[test]
    fn object_store_never_published_and_delete_discipline() {
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let creator = cluster.host(0).create_store("fresh", 32, 64).unwrap();
        drop(creator);
        // Nothing was ever committed (= published); a reader has no rights.
        let mut b = cluster.host(1).open_store("fresh").unwrap();
        assert!(matches!(b.get(0), Err(ClusterError::NeverPublished { .. })));
        // The creator (fresh view) may establish publication.
        let mut a = cluster.host(0).open_store("fresh").unwrap();
        a.put_commit(7, b"v1").unwrap();
        a.delete(7).unwrap();
        b.acquire().unwrap();
        assert!(matches!(
            b.get(7),
            Err(ClusterError::Pmem(PmemError::NoSuchObject(7)))
        ));
        assert_eq!(b.live().unwrap(), 0);
    }

    #[test]
    fn object_commit_crash_recovers_bit_exact_on_the_other_host() {
        for point in CrashPoint::ALL {
            let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
            let mut a = cluster.host(0).create_store("torn", 64, 96).unwrap();
            let committed = vec![0xC3u8; 80];
            a.put_commit(9, &committed).unwrap();
            a.put(9, &[0x11u8; 80]).unwrap();
            let outcome = a.commit_crashing(
                9,
                ObjectCrash {
                    phase: ObjectPhase::EntryCommit,
                    point,
                },
            );
            drop(a); // host A torn down

            let mut b = cluster.host(1).open_store("torn").unwrap();
            b.acquire().unwrap();
            let bytes = b.get(9).unwrap();
            match outcome {
                // DuringRecovery never fires inside a transaction.
                Ok(epoch) => assert_eq!(epoch, 2),
                Err(e) => assert!(e.is_injected_crash()),
            }
            // Either the old or the new version, never a torn mix — and the
            // full-directory audit must hold after recovery.
            assert!(bytes == committed || bytes == vec![0x11u8; 80], "{point:?}");
            b.verify().unwrap();
        }
    }

    #[test]
    fn classed_ops_route_through_the_front_door() {
        use crate::admission::{AdmissionError, ClassConfig};
        let cluster = two_card_cluster(CoherenceMode::SoftwareManaged);
        let mut a = cluster.host(0).create_store("qos", 64, 128).unwrap();
        // A tiny write budget with no queue: the second put must be refused
        // with the typed admission error, and the refusal precedes the op.
        let door = Arc::new(AdmissionController::new([
            ClassConfig {
                rate_bytes_per_sec: 64.0,
                burst_bytes: 128,
                queue_depth: 0,
            },
            ClassConfig {
                rate_bytes_per_sec: 1e9,
                burst_bytes: 1 << 20,
                queue_depth: 4,
            },
            ClassConfig::closed(),
        ]));
        a.set_front_door(Arc::clone(&door));
        a.put_classed(0, &[7u8; 128], 0.0).unwrap();
        // One virtual second refills 64 bytes — enough for the entry-sized
        // commit record, not for another full put.
        a.commit_classed(0, 1.0).unwrap();
        let err = a.put_classed(1, &[8u8; 128], 1.0).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::Admission(AdmissionError::QueueFull { .. })
        ));
        assert!(matches!(
            a.get_classed(50, 1.1),
            Err(ClusterError::Pmem(PmemError::NoSuchObject(50)))
        ));
        assert_eq!(a.get_classed(0, 1.2).unwrap(), vec![7u8; 128]);
    }

    #[test]
    fn prototype_cards_pool_like_the_paper() {
        let cluster = DisaggregatedCluster::new("rack", CoherenceMode::SoftwareManaged);
        cluster.attach_device(FpgaPrototype::paper_prototype().endpoint());
        cluster.attach_device(FpgaPrototype::paper_prototype().endpoint());
        assert_eq!(cluster.ports(), 2);
        assert_eq!(cluster.total_capacity(), 32 * 1024 * MIB);
        let mut seg = cluster
            .host(0)
            .create_segment("proto", DATA, CHUNK)
            .unwrap();
        seg.checkpoint(&image(9)).unwrap();
        let mut out = vec![0u8; DATA as usize];
        seg.acquire().unwrap();
        assert_eq!(seg.restore(&mut out).unwrap(), 1);
        assert_eq!(out, image(9));
    }
}
