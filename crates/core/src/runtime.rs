//! The CXL-as-PMem runtime: machines, pools and performance accounting.

use crate::backend::CxlDeviceBackend;
use crate::modes::AccessMode;
use crate::placement::TierPolicy;
use cxl::fpga::{DdrChannelSpec, SoftIpConfig};
use cxl::{FpgaPrototype, InterleaveSet, LinkConfig, Type3Device};
use memsim::access::{ThreadTraffic, TrafficPhase};
use memsim::{Engine, Machine, PhaseReport, SimError};
use numa::{AffinityPolicy, NodeId, NumaError, PinnedPool, ThreadPlacement, Topology};
use pmem::{CheckpointRegion, ChunkExecutor, PmemError, PmemPool, VolatileBackend};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// The machine model rejected the request.
    Sim(SimError),
    /// The persistent object store rejected the request.
    Pmem(PmemError),
    /// Topology/affinity error.
    Numa(NumaError),
    /// The machine has no CXL expander but one was required.
    NoCxlDevice,
    /// The requested pool does not fit on the chosen tier.
    PoolTooLarge {
        /// Target node.
        node: NodeId,
        /// Requested bytes.
        requested: u64,
        /// Node capacity.
        capacity: u64,
    },
    /// The tier has no persistent backing that survives a pool drop, so there
    /// is nothing to restore from (DRAM tiers get a *fresh* battery-backed
    /// buffer per provision; only the CXL expander's device memory is shared
    /// across reattachments).
    VolatileTier {
        /// The node the tier resolved to.
        node: NodeId,
    },
    /// A tiering operation failed (capacity shortfall, malformed assignment,
    /// stale plan, ...).
    Tiering(&'static str),
    /// A plain-text topology description failed to parse or compile.
    Topology(memsim::TopologyError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Sim(e) => write!(f, "simulation error: {e}"),
            RuntimeError::Pmem(e) => write!(f, "persistent memory error: {e}"),
            RuntimeError::Numa(e) => write!(f, "topology error: {e}"),
            RuntimeError::NoCxlDevice => write!(f, "this machine has no CXL expander"),
            RuntimeError::PoolTooLarge {
                node,
                requested,
                capacity,
            } => write!(
                f,
                "pool of {requested} bytes does not fit on node {node} ({capacity} bytes)"
            ),
            RuntimeError::VolatileTier { node } => write!(
                f,
                "tier on node {node} has no persistent backing to restore from"
            ),
            RuntimeError::Tiering(msg) => write!(f, "tiering error: {msg}"),
            RuntimeError::Topology(e) => write!(f, "topology ingest error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl RuntimeError {
    /// Whether this error wraps the crash-injection sentinel (the tiering
    /// migrator and checkpoint pipelines surface injected crashes through
    /// the persistent store).
    pub fn is_injected_crash(&self) -> bool {
        matches!(self, RuntimeError::Pmem(e) if e.is_injected_crash())
    }
}

impl From<SimError> for RuntimeError {
    fn from(e: SimError) -> Self {
        RuntimeError::Sim(e)
    }
}
impl From<PmemError> for RuntimeError {
    fn from(e: PmemError) -> Self {
        RuntimeError::Pmem(e)
    }
}
impl From<NumaError> for RuntimeError {
    fn from(e: NumaError) -> Self {
        RuntimeError::Numa(e)
    }
}
impl From<memsim::TopologyError> for RuntimeError {
    fn from(e: memsim::TopologyError) -> Self {
        RuntimeError::Topology(e)
    }
}

/// Which of the paper's evaluation platforms a runtime models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupKind {
    /// Setup #1: Sapphire Rapids + DDR5 + CXL expander (Figure 2).
    SapphireRapidsCxl,
    /// Setup #2: Xeon Gold + DDR4, no CXL (Figure 3).
    XeonGoldDdr4,
    /// The DCPMM baseline machine used for the headline comparison.
    SapphireRapidsDcpmm,
    /// A caller-provided machine.
    Custom,
    /// A machine compiled from a plain-text topology description
    /// (CEDT/SRAT-shaped ingest, see [`memsim::topology`]).
    Ingested,
}

/// A compiled CFMWS interleave window realised functionally: one Type-3
/// endpoint per interleave way, each programmed — via [`InterleaveSet`] —
/// with exactly the HDM slice it owns. Consecutive `granularity`-sized
/// granules of the window's HPA range rotate across the endpoints, so
/// bandwidth aggregates across ways the same way the `memsim` window device
/// does analytically.
#[derive(Debug)]
pub struct InterleavedWindow {
    name: String,
    set: InterleaveSet,
    endpoints: Vec<Arc<Type3Device>>,
}

impl InterleavedWindow {
    fn from_compiled(w: &memsim::topology::CompiledWindow) -> Self {
        // `compile()` enforces CXL-spec geometry (ways ∈ {1,2,4,8,16},
        // power-of-two granularity, uniform aligned way capacity, aligned
        // HPA base), so realising the window cannot fail.
        let set = InterleaveSet::new(w.hpa_base, w.total_bytes(), w.granularity, w.ways() as u8)
            .expect("compiled windows carry CXL-spec interleave geometry");
        let endpoints = w
            .way_names
            .iter()
            .enumerate()
            .map(|(position, name)| {
                let device =
                    Type3Device::new(name.clone(), w.way_capacity_bytes, LinkConfig::gen5_x16());
                device
                    .program_hdm(
                        set.way_range(position as u8)
                            .expect("position is within the interleave set"),
                    )
                    .expect("way range fits the way capacity");
                device.set_memory_enable(true);
                Arc::new(device)
            })
            .collect();
        InterleavedWindow {
            name: w.name.clone(),
            set,
            endpoints,
        }
    }

    /// Window name (from the `[window.NAME]` section of the description).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interleave geometry (HPA base, length, granularity, ways).
    pub fn set(&self) -> &InterleaveSet {
        &self.set
    }

    /// Per-way endpoints in interleave-position order.
    pub fn endpoints(&self) -> &[Arc<Type3Device>] {
        &self.endpoints
    }

    /// Routes a host-physical address to the endpoint that owns it and the
    /// device-local address it decodes to. Returns `None` outside the window.
    pub fn route(&self, hpa: u64) -> Option<(&Arc<Type3Device>, u64)> {
        let (way, dpa) = self.set.translate(hpa).ok()?;
        Some((&self.endpoints[way as usize], dpa))
    }
}

/// A pool managed by the runtime: the PMDK-style pool plus where it lives.
pub struct ManagedPool {
    pool: PmemPool,
    node: NodeId,
    mount: String,
}

impl fmt::Debug for ManagedPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ManagedPool")
            .field("node", &self.node)
            .field("mount", &self.mount)
            .field("pool", &self.pool)
            .finish()
    }
}

impl ManagedPool {
    /// The persistent pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    /// The NUMA node the pool's bytes live on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The paper-style mount label (`/mnt/pmemN`).
    pub fn mount(&self) -> &str {
        &self.mount
    }
}

impl ManagedPool {
    /// Decomposes the managed pool into its parts — used by long-lived
    /// owners (the tiering subsystem) that need shared ownership of the
    /// [`PmemPool`] rather than a borrow.
    pub fn into_parts(self) -> (PmemPool, NodeId, String) {
        (self.pool, self.node, self.mount)
    }
}

impl std::ops::Deref for ManagedPool {
    type Target = PmemPool;
    fn deref(&self) -> &PmemPool {
        &self.pool
    }
}

/// Adapter fanning checkpoint chunk flushes across a resident [`PinnedPool`].
///
/// Each worker takes a contiguous share of the dirty-chunk jobs (the same
/// static schedule as the STREAM kernels) and issues its writes + flushes as
/// one batch; the [`CheckpointRegion`] then drains once for the whole
/// invocation — so a checkpoint costs at most `dirty_chunks` flushes + 1
/// drain, exactly the `PersistStats` discipline of the STREAM-PMem hot path.
///
/// Crash injection into the chunk-flush phase is only deterministic under
/// [`pmem::SerialExecutor`]; this adapter is the production path.
pub struct PooledChunkExecutor<'a>(pub &'a PinnedPool);

impl ChunkExecutor for PooledChunkExecutor<'_> {
    fn run_chunks(
        &self,
        jobs: usize,
        job: &(dyn Fn(usize) -> pmem::Result<()> + Sync),
    ) -> pmem::Result<()> {
        if jobs == 0 {
            return Ok(());
        }
        if self.0.is_empty() {
            return (0..jobs).try_for_each(job);
        }
        self.0
            .run(|ctx| {
                let (start, end) = ctx.chunk(jobs);
                (start..end).try_for_each(job)
            })
            .into_iter()
            .collect()
    }
}

/// Which evaluation platform a [`RuntimeBuilder`] preset realises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimePreset {
    /// Setup #1: Sapphire Rapids + DDR5 + CXL expander (Figure 2).
    SapphireRapidsCxl,
    /// Setup #2: Xeon Gold + DDR4, no CXL (Figure 3).
    XeonGoldDdr4,
    /// The DCPMM baseline machine used for the headline comparison.
    SapphireRapidsDcpmm,
}

/// What topology a [`RuntimeBuilder`] realises at build time.
enum BuilderTopology {
    Preset(RuntimePreset),
    Machine(Machine),
    Ingested(memsim::IngestedTopology),
}

/// The one front door for constructing a [`CxlPmemRuntime`] — this builder
/// collapses the three historical constructor families (the hard-wired
/// `setup1`/`setup2`/`dcpmm_baseline` presets, `from_description`, and
/// `from_ingested`) behind explicit knobs:
///
/// * **setup** — [`preset`](Self::preset) picks one of the paper's
///   evaluation platforms (shorthands: [`RuntimeBuilder::setup1`],
///   [`RuntimeBuilder::setup2`], [`RuntimeBuilder::dcpmm_baseline`]);
/// * **topology** — [`machine`](Self::machine) wraps a caller-built machine
///   model, [`from_description`](Self::from_description) parses + compiles a
///   CEDT/SRAT-shaped plain-text description (validated *in the setter*, so
///   [`build`](Self::build) stays infallible), and
///   [`from_ingested`](Self::from_ingested) takes an already-compiled
///   [`memsim::IngestedTopology`];
/// * **pool** — [`fpga`](Self::fpga) supplies (or overrides) the Type-3
///   expander card backing the far-memory tier, [`hpa_base`](Self::hpa_base)
///   sets the host physical address its HDM decodes at, and
///   [`functional_expander`](Self::functional_expander) controls whether a
///   CPU-less memory node in an ingested topology gets a functional card
///   derived from its device spec (so pools on that tier really store
///   bytes).
///
/// ```
/// use cxl_pmem::RuntimeBuilder;
///
/// let runtime = RuntimeBuilder::setup1().build();
/// assert_eq!(runtime.topology().nodes().len(), 3);
/// ```
pub struct RuntimeBuilder {
    topology: BuilderTopology,
    fpga: Option<FpgaPrototype>,
    hpa_base: u64,
    functional_expander: bool,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeBuilder {
    /// Default HPA base the expander's HDM decodes at (arbitrary in the
    /// model; 128 GiB keeps it clear of the DRAM nodes).
    const DEFAULT_HPA_BASE: u64 = 0x20_0000_0000;

    /// A builder for the paper's Setup #1 (the default preset).
    pub fn new() -> Self {
        RuntimeBuilder {
            topology: BuilderTopology::Preset(RuntimePreset::SapphireRapidsCxl),
            fpga: None,
            hpa_base: Self::DEFAULT_HPA_BASE,
            functional_expander: true,
        }
    }

    /// Shorthand: a builder preconfigured for the paper's Setup #1 (dual
    /// Sapphire Rapids with a CXL-attached DDR4-1333 expander on node 2).
    pub fn setup1() -> Self {
        Self::new().preset(RuntimePreset::SapphireRapidsCxl)
    }

    /// Shorthand: a builder preconfigured for the paper's Setup #2 (dual
    /// Xeon Gold 5215 with DDR4-2666 only).
    pub fn setup2() -> Self {
        Self::new().preset(RuntimePreset::XeonGoldDdr4)
    }

    /// Shorthand: a builder preconfigured for the DCPMM baseline machine
    /// (published Optane numbers on node 2).
    pub fn dcpmm_baseline() -> Self {
        Self::new().preset(RuntimePreset::SapphireRapidsDcpmm)
    }

    /// Setup knob: picks one of the paper's evaluation platforms.
    pub fn preset(mut self, preset: RuntimePreset) -> Self {
        self.topology = BuilderTopology::Preset(preset);
        self
    }

    /// Topology knob: wraps a caller-provided machine model (ablations,
    /// upgraded prototypes, ...). Pair with [`fpga`](Self::fpga) when the
    /// machine has a far-memory node a card should back.
    pub fn machine(mut self, machine: Machine) -> Self {
        self.topology = BuilderTopology::Machine(machine);
        self
    }

    /// Topology knob: parses + compiles a plain-text topology description —
    /// the CEDT/SRAT-shaped ingest format of [`memsim::topology`]. Malformed
    /// descriptions surface as [`RuntimeError::Topology`] *here*, keeping
    /// [`build`](Self::build) infallible.
    pub fn from_description(text: &str) -> crate::Result<Self> {
        let description = memsim::TopologyDescription::parse(text)?;
        Ok(Self::from_ingested(description.compile()?))
    }

    /// Topology knob: an already-compiled [`memsim::IngestedTopology`].
    pub fn from_ingested(ingested: memsim::IngestedTopology) -> Self {
        let mut builder = Self::new();
        builder.topology = BuilderTopology::Ingested(ingested);
        builder
    }

    /// Pool knob: the Type-3 expander card backing the far-memory tier. For
    /// the Setup #1 preset this replaces the paper prototype; for a custom
    /// machine it attaches the card; for an ingested topology it overrides
    /// the derived functional expander. Presets without a far-memory node
    /// (Setup #2, the DCPMM baseline) ignore it.
    pub fn fpga(mut self, fpga: FpgaPrototype) -> Self {
        self.fpga = Some(fpga);
        self
    }

    /// Pool knob: the host physical address the expander's HDM decodes at
    /// (ingested topologies with an explicit `[window.*]` base keep theirs).
    pub fn hpa_base(mut self, hpa_base: u64) -> Self {
        self.hpa_base = hpa_base;
        self
    }

    /// Pool knob: whether an ingested topology's CPU-less memory node gets a
    /// functional expander derived from its device spec (default `true`;
    /// switch off to model a topology whose far tier holds no real bytes).
    pub fn functional_expander(mut self, enabled: bool) -> Self {
        self.functional_expander = enabled;
        self
    }

    /// Realises the runtime. Infallible: every fallible input was validated
    /// by its setter.
    pub fn build(self) -> CxlPmemRuntime {
        match self.topology {
            BuilderTopology::Preset(RuntimePreset::SapphireRapidsCxl) => {
                let fpga = self.fpga.unwrap_or_else(FpgaPrototype::paper_prototype);
                // Enumerate the card so its HDM is accessible; the HPA base
                // is arbitrary in the model.
                let _ = fpga.enumerate(self.hpa_base);
                // Keep the machine description consistent with the card.
                let machine = memsim::machines::sapphire_rapids_cxl_machine()
                    .with_device(2, fpga.to_memsim_device())
                    .expect("node 2 exists")
                    .with_path(0, 2, fpga.to_memsim_path())
                    .with_path(1, 2, fpga.to_memsim_path());
                CxlPmemRuntime::from_parts(
                    SetupKind::SapphireRapidsCxl,
                    Engine::new(machine),
                    Some(fpga),
                )
            }
            BuilderTopology::Preset(RuntimePreset::XeonGoldDdr4) => CxlPmemRuntime::from_parts(
                SetupKind::XeonGoldDdr4,
                Engine::new(memsim::machines::xeon_gold_ddr4_machine()),
                None,
            ),
            BuilderTopology::Preset(RuntimePreset::SapphireRapidsDcpmm) => {
                CxlPmemRuntime::from_parts(
                    SetupKind::SapphireRapidsDcpmm,
                    Engine::new(memsim::machines::sapphire_rapids_dcpmm_machine()),
                    None,
                )
            }
            BuilderTopology::Machine(machine) => {
                CxlPmemRuntime::from_parts(SetupKind::Custom, Engine::new(machine), self.fpga)
            }
            BuilderTopology::Ingested(ingested) => {
                let memsim::IngestedTopology { machine, windows } = ingested;
                let node = machine.topology().memory_only_nodes().next().map(|n| n.id);
                let fpga = node.and_then(|node| {
                    let hpa_base = windows
                        .iter()
                        .find(|w| w.node == node)
                        .map(|w| w.hpa_base)
                        .unwrap_or(self.hpa_base);
                    let fpga = match self.fpga {
                        Some(fpga) => fpga,
                        None if self.functional_expander => {
                            let device = machine
                                .device(node)
                                .expect("compiled topologies back every memory node with a device");
                            CxlPmemRuntime::functional_expander(device)
                        }
                        None => return None,
                    };
                    let _ = fpga.enumerate(hpa_base);
                    Some(fpga)
                });
                let mut runtime =
                    CxlPmemRuntime::from_parts(SetupKind::Ingested, Engine::new(machine), fpga);
                runtime.interleaves = windows
                    .iter()
                    .map(InterleavedWindow::from_compiled)
                    .collect();
                runtime
            }
        }
    }
}

/// The top-level runtime object.
pub struct CxlPmemRuntime {
    kind: SetupKind,
    engine: Engine,
    fpga: Option<FpgaPrototype>,
    /// Interleave windows realised from an ingested description (empty for
    /// the hand-built presets).
    interleaves: Vec<InterleavedWindow>,
    /// Resident worker pools keyed by placement (CPU list). Every STREAM
    /// invocation with the same placement reuses the same parked OS threads —
    /// the runtime, not each stream, owns the worker lifecycle.
    worker_pools: Mutex<HashMap<Vec<usize>, Arc<PinnedPool>>>,
}

impl CxlPmemRuntime {
    fn from_parts(kind: SetupKind, engine: Engine, fpga: Option<FpgaPrototype>) -> Self {
        CxlPmemRuntime {
            kind,
            engine,
            fpga,
            interleaves: Vec::new(),
            worker_pools: Mutex::new(HashMap::new()),
        }
    }

    /// Builds the paper's Setup #1: dual Sapphire Rapids with a CXL-attached
    /// DDR4-1333 expander (an [`FpgaPrototype`]) exposed as NUMA node 2.
    #[deprecated(since = "0.1.0", note = "use `RuntimeBuilder::setup1().build()`")]
    pub fn setup1() -> Self {
        RuntimeBuilder::setup1().build()
    }

    /// Builds the paper's Setup #2: dual Xeon Gold 5215 with DDR4-2666 only.
    #[deprecated(since = "0.1.0", note = "use `RuntimeBuilder::setup2().build()`")]
    pub fn setup2() -> Self {
        RuntimeBuilder::setup2().build()
    }

    /// Builds the DCPMM baseline machine (published Optane numbers on node 2).
    #[deprecated(
        since = "0.1.0",
        note = "use `RuntimeBuilder::dcpmm_baseline().build()`"
    )]
    pub fn dcpmm_baseline() -> Self {
        RuntimeBuilder::dcpmm_baseline().build()
    }

    /// Wraps a caller-provided machine (ablations, upgraded prototypes...).
    #[deprecated(
        since = "0.1.0",
        note = "use `RuntimeBuilder::new().machine(machine)` (plus `.fpga(...)`) and `.build()`"
    )]
    pub fn custom(machine: Machine, fpga: Option<FpgaPrototype>) -> Self {
        let mut builder = RuntimeBuilder::new().machine(machine);
        if let Some(fpga) = fpga {
            builder = builder.fpga(fpga);
        }
        builder.build()
    }

    /// Builds a runtime from a plain-text topology description — the
    /// CEDT/SRAT-shaped ingest format of [`memsim::topology`]. The text is
    /// parsed and compiled into the machine model; if the machine has a
    /// CPU-less memory node, a functional Type-3 expander sized from the
    /// ingested device specification backs it (so pools on the CXL tier
    /// really store bytes), and every declared `[window.*]` becomes an
    /// [`InterleavedWindow`] with one endpoint per interleave way.
    ///
    /// Malformed descriptions surface as [`RuntimeError::Topology`].
    #[deprecated(
        since = "0.1.0",
        note = "use `RuntimeBuilder::from_description(text)?.build()`"
    )]
    pub fn from_description(text: &str) -> crate::Result<Self> {
        Ok(RuntimeBuilder::from_description(text)?.build())
    }

    /// Builds a runtime from an already-compiled [`memsim::IngestedTopology`].
    #[deprecated(
        since = "0.1.0",
        note = "use `RuntimeBuilder::from_ingested(ingested).build()`"
    )]
    pub fn from_ingested(ingested: memsim::IngestedTopology) -> Self {
        RuntimeBuilder::from_ingested(ingested).build()
    }

    /// A functional expander mirroring an ingested [`memsim::DeviceSpec`]:
    /// same name, capacity and channel count; soft-IP bandwidth set to the
    /// spec's read ceiling; pipeline latency set so link + pipeline add up to
    /// the spec's idle latency.
    fn functional_expander(device: &memsim::DeviceSpec) -> FpgaPrototype {
        let channels = u64::from(device.channels.max(1));
        let per_channel = device.capacity_bytes / channels;
        let remainder = device.capacity_bytes - per_channel * channels;
        // Pick a channel speed whose aggregate sustained bandwidth covers the
        // spec's ceiling, so the soft-IP slice is the binding limit — as on
        // the paper's prototype.
        let per_channel_gbs =
            device.read_bw_gbs / channels as f64 / memsim::calibration::DDR_STREAM_EFFICIENCY;
        let speed_mts = ((per_channel_gbs * 1000.0 / 8.0).ceil() as u32).max(1);
        let specs = (0..channels)
            .map(|i| DdrChannelSpec {
                capacity_bytes: per_channel + if i == 0 { remainder } else { 0 },
                speed_mts,
            })
            .collect();
        FpgaPrototype::custom(
            device.name.clone(),
            LinkConfig::gen5_x16(),
            SoftIpConfig {
                slices: 1,
                per_slice_bandwidth_gbs: device.read_bw_gbs,
                pipeline_latency_ns: (device.idle_latency_ns - 95.0).max(0.0),
            },
            specs,
        )
    }

    /// Interleave windows realised from an ingested topology description
    /// (empty for the hand-built presets and [`custom`](Self::custom)).
    pub fn interleaved_windows(&self) -> &[InterleavedWindow] {
        &self.interleaves
    }

    /// Which setup this runtime models.
    pub fn setup(&self) -> SetupKind {
        self.kind
    }

    /// The machine model.
    pub fn machine(&self) -> &Machine {
        self.engine.machine()
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        self.machine().topology()
    }

    /// The analytical engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The CXL prototype, if the machine has one.
    pub fn fpga(&self) -> Option<&FpgaPrototype> {
        self.fpga.as_ref()
    }

    // -------------------------------------------------------------- placement

    /// Places `threads` software threads according to `policy`.
    pub fn place(&self, policy: &AffinityPolicy, threads: usize) -> crate::Result<ThreadPlacement> {
        policy.place(self.topology(), threads).map_err(Into::into)
    }

    /// The resident [`PinnedPool`] for `placement`, created (and its workers
    /// spawned and logically pinned) on first use and cached for the runtime's
    /// lifetime. Every functional STREAM run with the same placement reuses
    /// the same parked worker threads instead of rebuilding a pool — the
    /// per-invocation cost is one epoch-barrier round-trip.
    pub fn worker_pool(&self, placement: &ThreadPlacement) -> Arc<PinnedPool> {
        let mut pools = self
            .worker_pools
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            pools
                .entry(placement.cpus().to_vec())
                .or_insert_with(|| Arc::new(PinnedPool::new(self.topology(), placement))),
        )
    }

    /// Convenience wrapper: place `threads` with `policy` and return the
    /// resident worker pool for that placement.
    pub fn worker_pool_for(
        &self,
        policy: &AffinityPolicy,
        threads: usize,
    ) -> crate::Result<Arc<PinnedPool>> {
        let placement = self.place(policy, threads)?;
        Ok(self.worker_pool(&placement))
    }

    /// Number of resident worker pools currently provisioned (one per
    /// distinct placement that has run).
    pub fn worker_pool_count(&self) -> usize {
        self.worker_pools
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Drops every cached worker pool, joining the workers of any pool no
    /// longer shared with a caller (`Arc`s handed out earlier keep theirs
    /// alive until released). The cache is otherwise unbounded — a harness
    /// that walks many distinct placements for *functional* runs should call
    /// this between phases so parked threads don't accumulate.
    pub fn release_worker_pools(&self) {
        self.worker_pools
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    // -------------------------------------------------------------- pools

    /// Provisions a PMDK-style pool of `size` bytes on the tier selected by
    /// `tier`. Pools on the CXL expander are backed by the modelled Type-3
    /// device; pools on DRAM tiers use a battery-backed volatile store (the
    /// paper's "emulated PMem on the alternate socket").
    pub fn provision_pool(
        &self,
        tier: &TierPolicy,
        layout: &str,
        size: u64,
    ) -> crate::Result<ManagedPool> {
        let node = tier.resolve(self.machine())?;
        let capacity = self
            .topology()
            .node(node)
            .map_err(NumaError::from_self)?
            .mem_bytes;
        if size > capacity {
            return Err(RuntimeError::PoolTooLarge {
                node,
                requested: size,
                capacity,
            });
        }
        let pool = if self.is_expander_node(node) {
            let backend = self.expander_backend(Some(size))?;
            PmemPool::create_with_backend(Arc::new(backend), layout)?
        } else {
            PmemPool::create_with_backend(Arc::new(VolatileBackend::new_persistent(size)), layout)?
        };
        Ok(Self::managed(pool, node))
    }

    /// Whether `node` is a CPU-less (memory-only) node, i.e. the expander.
    fn is_expander_node(&self, node: NodeId) -> bool {
        self.topology()
            .node(node)
            .map(|n| n.is_cpuless())
            .unwrap_or(false)
    }

    /// A backend over the expander's device memory — the one window (DPA 0)
    /// both pool provisioning and crash-restart reattachment must agree on.
    /// `len` defaults to the whole device.
    fn expander_backend(&self, len: Option<u64>) -> crate::Result<CxlDeviceBackend> {
        let fpga = self.fpga.as_ref().ok_or(RuntimeError::NoCxlDevice)?;
        let device = fpga.endpoint();
        let len = len.unwrap_or_else(|| device.capacity_bytes());
        CxlDeviceBackend::new(device, 0, len).map_err(Into::into)
    }

    /// Wraps a pool with its node and paper-style mount label.
    fn managed(pool: PmemPool, node: NodeId) -> ManagedPool {
        ManagedPool {
            pool,
            node,
            mount: format!("/mnt/pmem{node}"),
        }
    }

    // -------------------------------------------------------------- checkpoint

    /// Provisions a pool on `tier` sized for one [`CheckpointRegion`] of
    /// `data_len`-byte snapshots persisted at `chunk_len` granularity, formats
    /// the region and registers it as the pool root. Reopen the region with
    /// [`CheckpointRegion::open_root`]; after a crash, reattach with
    /// [`restore_region`](Self::restore_region).
    pub fn checkpoint_region(
        &self,
        tier: &TierPolicy,
        layout: &str,
        data_len: u64,
        chunk_len: u64,
    ) -> crate::Result<ManagedPool> {
        let size = CheckpointRegion::required_pool_size(data_len, chunk_len);
        let managed = self.provision_pool(tier, layout, size)?;
        let region = CheckpointRegion::format(managed.pool(), data_len, chunk_len)?;
        managed.pool().set_root(region.oid(), data_len)?;
        Ok(managed)
    }

    /// Reattaches to a checkpoint pool created earlier by
    /// [`checkpoint_region`](Self::checkpoint_region) on a tier whose bytes
    /// survive the pool handle (the CXL expander's device memory). Opening
    /// runs undo-log recovery, so a commit record torn by the crash is rolled
    /// back before [`CheckpointRegion::open_root`] picks the committed slot.
    ///
    /// DRAM tiers are backed by a fresh buffer per provision and return
    /// [`RuntimeError::VolatileTier`].
    pub fn restore_region(&self, tier: &TierPolicy, layout: &str) -> crate::Result<ManagedPool> {
        let node = tier.resolve(self.machine())?;
        if !self.is_expander_node(node) {
            return Err(RuntimeError::VolatileTier { node });
        }
        let backend = self.expander_backend(None)?;
        let pool = PmemPool::open_with_backend(Arc::new(backend), layout)?;
        Ok(Self::managed(pool, node))
    }

    // -------------------------------------------------------------- cluster

    /// Builds a rack-level [`DisaggregatedCluster`](crate::DisaggregatedCluster)
    /// of `cards` paper-prototype expanders pooled behind one CXL 2.0 switch,
    /// with `mode` governing cross-host coherence of its shared segments.
    ///
    /// The cluster is the federation layer above this runtime: compute nodes
    /// checkpoint into switch-pooled far memory and a *different* node
    /// restores after failure. Chunk persists can be fanned across this
    /// runtime's resident workers by passing
    /// [`PooledChunkExecutor`] to
    /// [`HostSegment::checkpoint_with`](crate::HostSegment::checkpoint_with).
    pub fn disaggregated_cluster(
        &self,
        cards: usize,
        mode: cxl::CoherenceMode,
    ) -> crate::DisaggregatedCluster {
        let cluster = crate::DisaggregatedCluster::new(format!("{:?}-rack", self.kind), mode);
        for _ in 0..cards {
            cluster.attach_device(FpgaPrototype::paper_prototype().endpoint());
        }
        cluster
    }

    // -------------------------------------------------------------- tiering

    /// Provisions an adaptive [`TieredRegion`](crate::tiering::TieredRegion):
    /// one pool per `(tier, capacity_budget_bytes)` entry (fastest tier
    /// first), `data_len` bytes of chunked payload at `chunk_len` granularity,
    /// an access tracker feeding the rebalance loop, and a durable chunk
    /// residency map (in the *last* tier's pool — the spill tier, the CXL
    /// expander in the canonical setup). Initial placement is static spill:
    /// chunks fill the tiers in order, exactly like
    /// [`ExpansionPlan::spill`](crate::placement::ExpansionPlan::spill).
    pub fn tiered_region(
        &self,
        tiers: &[(TierPolicy, u64)],
        layout: &str,
        data_len: u64,
        chunk_len: u64,
    ) -> crate::Result<crate::tiering::TieredRegion> {
        crate::tiering::TieredRegion::provision(self, tiers, layout, data_len, chunk_len)
    }

    /// One turn of the tiering feedback loop: snapshot `region`'s access
    /// heat, ask `planner` for a new chunk placement (the planner sees this
    /// runtime's engine for bandwidth-aware decisions), migrate the chunks
    /// that moved — fanned across the resident `workers` with one flush batch
    /// per worker and one drain per destination tier — and decay the tracker
    /// so stale heat fades over subsequent epochs.
    pub fn rebalance(
        &self,
        region: &mut crate::tiering::TieredRegion,
        planner: &dyn crate::tiering::TierPlanner,
        workers: &PinnedPool,
    ) -> crate::Result<crate::tiering::MigrationStats> {
        let cpus: Vec<usize> = workers.workers().iter().map(|w| w.cpu).collect();
        region.rebalance_with(planner, self.engine(), &cpus, &PooledChunkExecutor(workers))
    }

    // -------------------------------------------------------------- accounting

    fn stream_phase(
        &self,
        label: &str,
        placement: &ThreadPlacement,
        data_node: NodeId,
        read_bytes_per_thread: u64,
        write_bytes_per_thread: u64,
        mode: AccessMode,
    ) -> TrafficPhase {
        let overhead = mode.software_overhead();
        TrafficPhase::from_threads(
            label,
            placement.cpus().iter().map(|&cpu| {
                ThreadTraffic::sequential(
                    cpu,
                    data_node,
                    read_bytes_per_thread,
                    write_bytes_per_thread,
                )
                .with_overhead(overhead)
            }),
        )
    }

    /// Simulates one kernel invocation: every placed thread streams
    /// `read_bytes` + `write_bytes` against `data_node` in `mode`.
    pub fn simulate_stream_phase(
        &self,
        label: &str,
        placement: &ThreadPlacement,
        data_node: NodeId,
        read_bytes_per_thread: u64,
        write_bytes_per_thread: u64,
        mode: AccessMode,
    ) -> crate::Result<PhaseReport> {
        let phase = self.stream_phase(
            label,
            placement,
            data_node,
            read_bytes_per_thread,
            write_bytes_per_thread,
            mode,
        );
        self.engine.simulate(&phase).map_err(Into::into)
    }

    /// Memoised variant of [`simulate_stream_phase`](Self::simulate_stream_phase):
    /// phases with identical traffic signatures reuse the engine's cached
    /// verdict (shared via `Arc`, so hits cost a key hash plus a refcount
    /// bump). Sweeps over figure grids hit this hard — kernels with equal
    /// byte counts (Copy/Scale, Add/Triad) collapse to one evaluation.
    pub fn simulate_stream_phase_cached(
        &self,
        label: &str,
        placement: &ThreadPlacement,
        data_node: NodeId,
        read_bytes_per_thread: u64,
        write_bytes_per_thread: u64,
        mode: AccessMode,
    ) -> crate::Result<Arc<PhaseReport>> {
        let phase = self.stream_phase(
            label,
            placement,
            data_node,
            read_bytes_per_thread,
            write_bytes_per_thread,
            mode,
        );
        self.engine.simulate_cached(&phase).map_err(Into::into)
    }

    /// Simulates a phase whose data is spread over several nodes (Memory-Mode
    /// expansion): each thread's traffic is split proportionally to the plan.
    pub fn simulate_expansion_phase(
        &self,
        label: &str,
        placement: &ThreadPlacement,
        plan: &crate::placement::ExpansionPlan,
        read_bytes_per_thread: u64,
        write_bytes_per_thread: u64,
    ) -> crate::Result<PhaseReport> {
        let total = plan.total_bytes().max(1);
        let mut traffic = Vec::new();
        for &cpu in placement.cpus() {
            for &(node, bytes) in &plan.parts {
                let frac = bytes as f64 / total as f64;
                traffic.push(ThreadTraffic::sequential(
                    cpu,
                    node,
                    (read_bytes_per_thread as f64 * frac) as u64,
                    (write_bytes_per_thread as f64 * frac) as u64,
                ));
            }
        }
        let phase = TrafficPhase::from_threads(label, traffic);
        self.engine.simulate(&phase).map_err(Into::into)
    }

    /// The saturated (many-thread) bandwidth a socket can extract from a node
    /// in a given mode — used by the headline/table comparisons.
    pub fn peak_bandwidth_gbs(
        &self,
        socket: usize,
        node: NodeId,
        mode: AccessMode,
    ) -> crate::Result<f64> {
        // STREAM-like 2:1 read:write byte mix.
        let ceiling = self.machine().path_ceiling_gbs(
            socket,
            node,
            2,
            1,
            memsim::AccessPattern::Sequential,
        )?;
        Ok(ceiling / mode.software_overhead())
    }
}

/// Helper: `numa::NumaError` already converts into `SimError`; this gives us a
/// direct conversion point for readability above.
trait FromSelf {
    fn from_self(e: numa::NumaError) -> RuntimeError;
}
impl FromSelf for NumaError {
    fn from_self(e: numa::NumaError) -> RuntimeError {
        RuntimeError::Numa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::units::{GB, GIB};
    use pmem::PersistentArray;

    #[test]
    fn setup1_exposes_the_expander_as_node2() {
        let rt = RuntimeBuilder::setup1().build();
        assert_eq!(rt.setup(), SetupKind::SapphireRapidsCxl);
        assert!(rt.fpga().is_some());
        assert_eq!(rt.topology().nodes().len(), 3);
        assert!(rt.topology().node(2).unwrap().is_cpuless());
    }

    #[test]
    fn setup2_and_dcpmm_variants_exist() {
        assert_eq!(
            RuntimeBuilder::setup2().build().setup(),
            SetupKind::XeonGoldDdr4
        );
        let dcpmm = RuntimeBuilder::dcpmm_baseline().build();
        assert_eq!(dcpmm.setup(), SetupKind::SapphireRapidsDcpmm);
        assert!(dcpmm.fpga().is_none());
    }

    #[test]
    fn ingested_runtime_provisions_pools_from_the_description() {
        let rt = RuntimeBuilder::from_description(memsim::topology::reference::SPR_FPGA_CXL)
            .expect("reference description ingests")
            .build();
        assert_eq!(rt.setup(), SetupKind::Ingested);
        assert!(rt.fpga().is_some());
        assert!(rt.interleaved_windows().is_empty());
        let pool = rt
            .provision_pool(&TierPolicy::CxlExpander, "stream", 8 * 1024 * 1024)
            .unwrap();
        assert_eq!(pool.mount(), "/mnt/pmem2");
        let array = PersistentArray::<f64>::allocate(pool.pool(), 1000).unwrap();
        array.fill(1.5).unwrap();
        array.persist_all().unwrap();
        assert!(rt.fpga().unwrap().endpoint().stats().bytes_written >= 8000);
        // The functional card mirrors the ingested spec.
        let device = rt.machine().device(2).unwrap();
        let fpga = rt.fpga().unwrap();
        assert_eq!(fpga.capacity_bytes(), device.capacity_bytes);
        assert!((fpga.effective_bandwidth_gbs() - device.read_bw_gbs).abs() < 1e-6);
    }

    #[test]
    fn ingested_interleave_window_partitions_the_hpa_space() {
        let rt =
            RuntimeBuilder::from_description(memsim::topology::reference::SPR_DUAL_CXL_INTERLEAVE)
                .expect("reference description ingests")
                .build();
        let windows = rt.interleaved_windows();
        assert_eq!(windows.len(), 1);
        let window = &windows[0];
        assert_eq!(window.endpoints().len(), 2);
        // Each way's decoder owns exactly its share of the window.
        for endpoint in window.endpoints() {
            assert_eq!(endpoint.mapped_bytes(), window.set().local_bytes());
            assert!(endpoint.memory_enabled());
        }
        // Consecutive granules rotate across the two endpoints.
        let base = window.set().hpa_base();
        let gran = window.set().granularity();
        let (first, dpa0) = window.route(base).unwrap();
        let (second, dpa1) = window.route(base + gran).unwrap();
        assert_eq!(first.name(), window.endpoints()[0].name());
        assert_eq!(second.name(), window.endpoints()[1].name());
        assert_eq!(dpa0, 0);
        assert_eq!(dpa1, 0); // device-local blocks are densely packed
        let (wrap, dpa2) = window.route(base + 2 * gran).unwrap();
        assert_eq!(wrap.name(), window.endpoints()[0].name());
        assert_eq!(dpa2, gran);
        assert!(window.route(base + window.set().len_bytes()).is_none());
    }

    #[test]
    fn malformed_description_is_a_typed_runtime_error() {
        let err = match RuntimeBuilder::from_description("[machine]\nname = \"empty\"\n") {
            Err(e) => e,
            Ok(_) => panic!("empty machine must not ingest"),
        };
        assert!(matches!(err, RuntimeError::Topology(_)), "{err}");
        assert!(err.to_string().contains("topology ingest error"));
    }

    #[test]
    fn pool_on_the_expander_uses_the_cxl_device() {
        let rt = RuntimeBuilder::setup1().build();
        let pool = rt
            .provision_pool(&TierPolicy::CxlExpander, "stream", 8 * 1024 * 1024)
            .unwrap();
        assert_eq!(pool.node(), 2);
        assert_eq!(pool.mount(), "/mnt/pmem2");
        assert!(pool.describe().contains("cxl["));
        // Data written to the pool shows up in the device statistics.
        let array = PersistentArray::<f64>::allocate(pool.pool(), 1000).unwrap();
        array.fill(3.25).unwrap();
        array.persist_all().unwrap();
        assert!(rt.fpga().unwrap().endpoint().stats().bytes_written >= 8000);
    }

    #[test]
    fn pool_on_dram_tiers_reports_the_right_mount() {
        let rt = RuntimeBuilder::setup1().build();
        let local = rt
            .provision_pool(
                &TierPolicy::LocalDram { socket: 0 },
                "stream",
                4 * 1024 * 1024,
            )
            .unwrap();
        assert_eq!(local.mount(), "/mnt/pmem0");
        let remote = rt
            .provision_pool(
                &TierPolicy::RemoteDram { socket: 0 },
                "stream",
                4 * 1024 * 1024,
            )
            .unwrap();
        assert_eq!(remote.mount(), "/mnt/pmem1");
    }

    #[test]
    fn oversized_pools_and_missing_expander_are_rejected() {
        let rt = RuntimeBuilder::setup1().build();
        assert!(matches!(
            rt.provision_pool(&TierPolicy::CxlExpander, "x", 100 * GIB)
                .unwrap_err(),
            RuntimeError::PoolTooLarge { .. }
        ));
        let rt2 = RuntimeBuilder::setup2().build();
        assert!(rt2
            .provision_pool(&TierPolicy::CxlExpander, "x", 1024 * 1024)
            .is_err());
    }

    #[test]
    fn stream_phase_bandwidth_ordering_matches_paper() {
        let rt = RuntimeBuilder::setup1().build();
        let placement = rt.place(&AffinityPolicy::SingleSocket(0), 10).unwrap();
        let local = rt
            .simulate_stream_phase("local", &placement, 0, GB, GB / 2, AccessMode::AppDirect)
            .unwrap();
        let remote = rt
            .simulate_stream_phase("remote", &placement, 1, GB, GB / 2, AccessMode::AppDirect)
            .unwrap();
        let cxl = rt
            .simulate_stream_phase("cxl", &placement, 2, GB, GB / 2, AccessMode::AppDirect)
            .unwrap();
        assert!(local.bandwidth_gbs > remote.bandwidth_gbs);
        assert!(remote.bandwidth_gbs > cxl.bandwidth_gbs);
        // Paper: local App-Direct ≈ 20-22+ GB/s, CXL ≈ half of remote.
        assert!(local.bandwidth_gbs > 18.0);
        let ratio = cxl.bandwidth_gbs / remote.bandwidth_gbs;
        assert!(ratio > 0.4 && ratio < 0.8, "cxl/remote {ratio}");
    }

    #[test]
    fn memory_mode_is_faster_than_app_direct_on_the_same_tier() {
        let rt = RuntimeBuilder::setup1().build();
        let placement = rt.place(&AffinityPolicy::SingleSocket(0), 10).unwrap();
        let appdirect = rt
            .simulate_stream_phase("ad", &placement, 2, GB, GB / 2, AccessMode::AppDirect)
            .unwrap();
        let memmode = rt
            .simulate_stream_phase("mm", &placement, 2, GB, GB / 2, AccessMode::MemoryMode)
            .unwrap();
        assert!(memmode.bandwidth_gbs > appdirect.bandwidth_gbs);
        // The PMDK overhead the paper quantifies is 10-15%.
        let overhead = memmode.bandwidth_gbs / appdirect.bandwidth_gbs;
        assert!(overhead > 1.08 && overhead < 1.20, "overhead {overhead}");
    }

    #[test]
    fn expansion_phase_spreads_traffic() {
        let rt = RuntimeBuilder::setup1().build();
        let placement = rt.place(&AffinityPolicy::SingleSocket(0), 8).unwrap();
        let plan = crate::placement::ExpansionPlan::spill(rt.machine(), 80 * GIB, &[0, 2]).unwrap();
        let report = rt
            .simulate_expansion_phase("expansion", &placement, &plan, GB, GB / 2)
            .unwrap();
        assert!(report.bandwidth_gbs > 0.0);
        // Two devices show up in the resource breakdown.
        assert!(report.resources.len() >= 2);
    }

    #[test]
    fn peak_bandwidth_headline_comparison() {
        let rt = RuntimeBuilder::setup1().build();
        let cxl_peak = rt.peak_bandwidth_gbs(0, 2, AccessMode::AppDirect).unwrap();
        let dcpmm_rt = RuntimeBuilder::dcpmm_baseline().build();
        let dcpmm_peak = dcpmm_rt
            .peak_bandwidth_gbs(0, 2, AccessMode::AppDirect)
            .unwrap();
        // Headline claim: the CXL-DDR4 module outperforms published DCPMM numbers.
        assert!(cxl_peak > dcpmm_peak);
    }

    #[test]
    fn worker_pools_are_provisioned_once_per_placement() {
        let rt = RuntimeBuilder::setup1().build();
        let p8 = rt.place(&AffinityPolicy::SingleSocket(0), 8).unwrap();
        let p4 = rt.place(&AffinityPolicy::SingleSocket(0), 4).unwrap();
        let first = rt.worker_pool(&p8);
        let second = rt.worker_pool(&p8);
        assert!(
            Arc::ptr_eq(&first, &second),
            "same placement must reuse the resident pool"
        );
        let other = rt.worker_pool(&p4);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(rt.worker_pool_count(), 2);
        // The resident workers really execute and carry the placement's CPUs.
        let cpus = first.run(|ctx| ctx.cpu);
        assert_eq!(cpus, p8.cpus());
        // Releasing empties the cache; pools still held by callers keep
        // working, and the next request provisions a fresh pool.
        rt.release_worker_pools();
        assert_eq!(rt.worker_pool_count(), 0);
        assert_eq!(first.run(|ctx| ctx.cpu), p8.cpus());
        let fresh = rt.worker_pool(&p8);
        assert!(!Arc::ptr_eq(&first, &fresh));
    }

    #[test]
    fn worker_pool_for_places_and_provisions() {
        let rt = RuntimeBuilder::setup1().build();
        let pool = rt.worker_pool_for(&AffinityPolicy::close(), 6).unwrap();
        assert_eq!(pool.len(), 6);
        let again = rt.worker_pool_for(&AffinityPolicy::close(), 6).unwrap();
        assert!(Arc::ptr_eq(&pool, &again));
        assert!(rt.worker_pool_for(&AffinityPolicy::close(), 1000).is_err());
    }

    #[test]
    fn checkpoint_region_parallel_persist_and_runtime_restore() {
        use pmem::{CheckpointCrash, CheckpointPhase, CheckpointRegion, CrashPoint};

        let rt = RuntimeBuilder::setup1().build();
        let data_len = 64 * 1024u64;
        let chunk_len = 4096u64;
        let managed = rt
            .checkpoint_region(&TierPolicy::CxlExpander, "ckpt-rt", data_len, chunk_len)
            .unwrap();
        assert_eq!(managed.node(), 2, "checkpoint pool lives on the expander");
        let workers = rt.worker_pool_for(&AffinityPolicy::close(), 4).unwrap();
        let exec = PooledChunkExecutor(&workers);

        let mut region = CheckpointRegion::open_root(managed.pool()).unwrap();
        let image: Vec<u8> = (0..data_len).map(|i| (i % 251) as u8).collect();
        let stats = region.checkpoint_with(&image, &exec).unwrap();
        assert_eq!(stats.chunks_written, 16, "cold slot: every chunk flushes");
        region.checkpoint_with(&image, &exec).unwrap();
        let stats = region.checkpoint_with(&image, &exec).unwrap();
        assert_eq!(stats.chunks_written, 0, "warm slot: incremental no-op");

        // Crash the commit record, drop every handle, and reattach through
        // the runtime: the torn commit rolls back to epoch 3.
        region.set_crash(Some(CheckpointCrash {
            phase: CheckpointPhase::Commit,
            point: CrashPoint::BeforeCommit,
        }));
        let mut changed = image.clone();
        changed[0] ^= 1;
        assert!(region
            .checkpoint_with(&changed, &exec)
            .unwrap_err()
            .is_injected_crash());
        drop(region);
        drop(managed);

        let reattached = rt
            .restore_region(&TierPolicy::CxlExpander, "ckpt-rt")
            .unwrap();
        assert_eq!(reattached.mount(), "/mnt/pmem2");
        let region = CheckpointRegion::open_root(reattached.pool()).unwrap();
        assert_eq!(region.committed_epoch(), 3);
        let mut out = vec![0u8; data_len as usize];
        region.restore(&mut out).unwrap();
        assert_eq!(out, image);
    }

    #[test]
    fn cluster_checkpoints_fan_out_over_the_runtime_worker_pool() {
        use cxl::CoherenceMode;
        use pmem::{CheckpointCrash, CheckpointPhase, CrashPoint};

        let rt = RuntimeBuilder::setup1().build();
        let cluster = rt.disaggregated_cluster(2, CoherenceMode::SoftwareManaged);
        assert_eq!(cluster.ports(), 2);
        let workers = rt.worker_pool_for(&AffinityPolicy::close(), 4).unwrap();
        let exec = PooledChunkExecutor(&workers);

        let data_len = 64 * 1024u64;
        let image: Vec<u8> = (0..data_len).map(|i| (i % 249) as u8).collect();
        let mut a = cluster
            .host(0)
            .create_segment("fanout", data_len, 4096)
            .unwrap();
        let stats = a.checkpoint_with(&image, &exec).unwrap();
        assert_eq!(stats.chunks_written, 16, "cold slot flushes every chunk");
        a.checkpoint_with(&image, &exec).unwrap();

        // Die mid-commit on the resident-pool path too, then fail over.
        let mut next = image.clone();
        next[0] ^= 0xFF;
        assert!(a
            .checkpoint_crashing(
                &next,
                CheckpointCrash {
                    phase: CheckpointPhase::Commit,
                    point: CrashPoint::BeforeCommit,
                },
                &exec,
            )
            .unwrap_err()
            .is_injected_crash());
        drop(a);
        let mut b = cluster.host(1).attach_segment("fanout").unwrap();
        b.acquire().unwrap();
        let mut out = vec![0u8; data_len as usize];
        assert_eq!(b.restore(&mut out).unwrap(), 2);
        assert_eq!(out, image);
    }

    #[test]
    fn restore_region_rejects_volatile_tiers_and_missing_expanders() {
        let rt = RuntimeBuilder::setup1().build();
        assert!(matches!(
            rt.restore_region(&TierPolicy::LocalDram { socket: 0 }, "x")
                .unwrap_err(),
            RuntimeError::VolatileTier { node: 0 }
        ));
        // Setup #2 has no expander at all.
        let rt2 = RuntimeBuilder::setup2().build();
        assert!(rt2.restore_region(&TierPolicy::CxlExpander, "x").is_err());
    }

    #[test]
    fn custom_runtime_wraps_any_machine() {
        let machine = memsim::machines::sapphire_rapids_cxl_upgraded(2.4, 4);
        let rt = RuntimeBuilder::new().machine(machine).build();
        assert_eq!(rt.setup(), SetupKind::Custom);
        let base = RuntimeBuilder::setup1().build();
        let placement = rt.place(&AffinityPolicy::SingleSocket(0), 10).unwrap();
        let upgraded = rt
            .simulate_stream_phase("up", &placement, 2, GB, GB / 2, AccessMode::MemoryMode)
            .unwrap();
        let baseline = base
            .simulate_stream_phase("base", &placement, 2, GB, GB / 2, AccessMode::MemoryMode)
            .unwrap();
        assert!(upgraded.bandwidth_gbs > baseline.bandwidth_gbs);
    }

    /// The deprecated constructor shims must stay exact drop-ins for the
    /// builder until they are removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_shims_delegate_to_the_builder() {
        assert_eq!(
            CxlPmemRuntime::setup1().setup(),
            SetupKind::SapphireRapidsCxl
        );
        assert_eq!(CxlPmemRuntime::setup2().setup(), SetupKind::XeonGoldDdr4);
        assert_eq!(
            CxlPmemRuntime::dcpmm_baseline().setup(),
            SetupKind::SapphireRapidsDcpmm
        );
        let machine = memsim::machines::sapphire_rapids_cxl_upgraded(2.4, 4);
        assert_eq!(
            CxlPmemRuntime::custom(machine, None).setup(),
            SetupKind::Custom
        );
        let rt = CxlPmemRuntime::from_description(memsim::topology::reference::SPR_FPGA_CXL)
            .expect("reference description ingests");
        assert_eq!(rt.setup(), SetupKind::Ingested);
        let ingested =
            memsim::TopologyDescription::parse(memsim::topology::reference::SPR_FPGA_CXL)
                .and_then(|d| d.compile())
                .expect("reference description compiles");
        assert_eq!(
            CxlPmemRuntime::from_ingested(ingested).setup(),
            SetupKind::Ingested
        );
    }
}
