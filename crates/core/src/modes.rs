//! Access modes and their properties — the paper's Table 1.
//!
//! Table 1 contrasts a PMem module used "as a main memory extension"
//! (*Memory Mode*) with one used "as a direct access to persistent memory"
//! (*App-Direct*) along six axes: volatility, access, capacity, cost,
//! performance. [`ModeProperties`] reproduces that table programmatically for
//! any device the runtime manages, so the harness can *measure* the table
//! instead of merely restating it.

use memsim::calibration as cal;
use memsim::DeviceSpec;

/// How a pool (or a plain allocation) is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Direct, transactional, byte-addressable access through the PMDK-style
    /// object store (`STREAM-PMem`, `pmem#N` in the paper's legends).
    AppDirect,
    /// Cache-coherent NUMA memory expansion (`numactl --membind`, `numa#N`).
    MemoryMode,
}

impl AccessMode {
    /// Multiplicative software overhead this mode adds to raw device access.
    ///
    /// §4 class 2.(a): "PMDK overheads over CC-NUMA are 10%-15%".
    pub fn software_overhead(&self) -> f64 {
        match self {
            AccessMode::AppDirect => cal::PMDK_OVERHEAD_FACTOR,
            AccessMode::MemoryMode => 1.0,
        }
    }

    /// Whether data written in this mode survives power failure (assuming the
    /// backing device is persistence-capable).
    pub fn retains_data(&self) -> bool {
        matches!(self, AccessMode::AppDirect)
    }

    /// The paper's legend prefix for this mode (`pmem` / `numa`).
    pub fn legend_prefix(&self) -> &'static str {
        match self {
            AccessMode::AppDirect => "pmem",
            AccessMode::MemoryMode => "numa",
        }
    }
}

/// The measured properties of a device used in a given mode — one row set of
/// Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeProperties {
    /// Mode these properties describe.
    pub mode: AccessMode,
    /// Whether stored data survives power cycles.
    pub volatile: bool,
    /// Access description.
    pub access: String,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Relative cost per byte (DRAM = 1.0).
    pub relative_cost: f64,
    /// Effective bandwidth (GB/s) after mode overhead.
    pub effective_bandwidth_gbs: f64,
    /// Effective bandwidth as a fraction of local DDR5 main memory.
    pub fraction_of_main_memory: f64,
}

impl ModeProperties {
    /// Derives the properties of using `device` in `mode`, relative to a
    /// `main_memory` reference device (the local DDR5 DIMM in the paper).
    pub fn derive(mode: AccessMode, device: &DeviceSpec, main_memory: &DeviceSpec) -> Self {
        let raw_bw = device.mixed_bandwidth_gbs(2, 1); // STREAM-like 2:1 read:write mix
        let effective = raw_bw / mode.software_overhead();
        let main_bw = main_memory.mixed_bandwidth_gbs(2, 1);
        // Relative cost per byte: DRAM-class devices at parity, CXL-DDR4 cheaper
        // (the paper stresses the DDR4-behind-CXL module is "much cheaper than
        // DDR5"), DCPMM historically cheaper per byte than DRAM as well.
        let relative_cost = match device.kind {
            memsim::DeviceKind::Ddr5 => 1.0,
            memsim::DeviceKind::Ddr4 => 0.7,
            memsim::DeviceKind::CxlExpanderDram => 0.55,
            memsim::DeviceKind::Dcpmm => 0.4,
            memsim::DeviceKind::Hbm => 3.0,
            memsim::DeviceKind::BatteryBackedDram => 1.3,
        };
        ModeProperties {
            mode,
            volatile: !(mode.retains_data() && device.is_persistent()),
            access: match mode {
                AccessMode::AppDirect => "transactional byte-addressable object store".to_string(),
                AccessMode::MemoryMode => "cache-coherent memory expansion".to_string(),
            },
            capacity_bytes: device.capacity_bytes,
            relative_cost,
            effective_bandwidth_gbs: effective,
            fraction_of_main_memory: if main_bw > 0.0 {
                effective / main_bw
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::DeviceSpec;

    #[test]
    fn overheads_match_paper() {
        assert!(AccessMode::AppDirect.software_overhead() > 1.09);
        assert!(AccessMode::AppDirect.software_overhead() < 1.16);
        assert_eq!(AccessMode::MemoryMode.software_overhead(), 1.0);
        assert_eq!(AccessMode::AppDirect.legend_prefix(), "pmem");
        assert_eq!(AccessMode::MemoryMode.legend_prefix(), "numa");
    }

    #[test]
    fn table1_shape_for_the_cxl_expander() {
        let cxl = DeviceSpec::cxl_prototype_ddr4_1333("cxl");
        let ddr5 = DeviceSpec::ddr5_4800_single_dimm("ddr5");
        let app_direct = ModeProperties::derive(AccessMode::AppDirect, &cxl, &ddr5);
        let memory_mode = ModeProperties::derive(AccessMode::MemoryMode, &cxl, &ddr5);
        // Table 1: non-volatile in direct-access mode, volatile as memory extension.
        assert!(!app_direct.volatile);
        assert!(memory_mode.volatile);
        // Performance "several factors below main memory bandwidth".
        assert!(app_direct.fraction_of_main_memory < 0.6);
        assert!(app_direct.fraction_of_main_memory > 0.2);
        // Memory-mode is faster than App-Direct on the same device (no PMDK tax).
        assert!(memory_mode.effective_bandwidth_gbs > app_direct.effective_bandwidth_gbs);
        // Cheaper than the main memory.
        assert!(app_direct.relative_cost < 1.0);
    }

    #[test]
    fn dcpmm_is_volatile_never() {
        let dcpmm = DeviceSpec::dcpmm_single_module("optane");
        let ddr5 = DeviceSpec::ddr5_4800_single_dimm("ddr5");
        let props = ModeProperties::derive(AccessMode::AppDirect, &dcpmm, &ddr5);
        assert!(!props.volatile);
        assert!(props.fraction_of_main_memory < 0.25);
    }

    #[test]
    fn ddr5_memory_mode_is_the_reference() {
        let ddr5 = DeviceSpec::ddr5_4800_single_dimm("ddr5");
        let props = ModeProperties::derive(AccessMode::MemoryMode, &ddr5, &ddr5);
        assert!((props.fraction_of_main_memory - 1.0).abs() < 1e-9);
        assert!(props.volatile); // memory-mode DDR5 is volatile
    }
}
