//! STREAM over ordinary heap arrays (the Memory-Mode / CC-NUMA flavour).

use crate::exec::{run_partitioned, AccessSink};
use crate::kernels::{Kernel, StreamConfig};
use crate::report::{BandwidthReport, KernelMeasurement};
use numa::PinnedPool;
use std::sync::Arc;
use std::time::Instant;

/// A STREAM instance over three heap-allocated `f64` arrays.
///
/// Kernels execute **in place**: every worker of the pinned pool receives a
/// disjoint `&mut [f64]` window of the three arrays via
/// [`crate::exec::ChunkedArrays`], so an invocation moves exactly the bytes
/// STREAM's counting rules say it moves — no copy-out/copy-back, no locks.
///
/// An optional [`AccessSink`] samples every worker window (reads per input
/// array, one write for the output array), feeding the adaptive tiering
/// engine's per-chunk heat counters without changing the data path.
pub struct VolatileStream {
    config: StreamConfig,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    tracker: Option<Arc<dyn AccessSink>>,
}

impl VolatileStream {
    /// Allocates and initialises the arrays with the STREAM initial values
    /// (a = 2.0 after the initial scaling, b = 2.0, c = 0.0).
    pub fn new(config: StreamConfig) -> Self {
        VolatileStream {
            config,
            a: vec![2.0; config.elements],
            b: vec![2.0; config.elements],
            c: vec![0.0; config.elements],
            tracker: None,
        }
    }

    /// The run configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Attaches (or detaches) an access-sampling sink — typically the tiering
    /// engine's `AccessTracker`. Every subsequent worker window is recorded.
    pub fn set_tracker(&mut self, tracker: Option<Arc<dyn AccessSink>>) {
        self.tracker = tracker;
    }

    /// Runs one kernel invocation in place across the pool; returns the
    /// elapsed wall-clock seconds.
    fn run_kernel_once(&mut self, kernel: Kernel, pool: &PinnedPool) -> f64 {
        let scalar = self.config.scalar;
        let tracker = self.tracker.clone();
        let start = Instant::now();
        run_partitioned(
            pool,
            &mut self.a,
            &mut self.b,
            &mut self.c,
            |_ctx, chunk| {
                kernel.apply(chunk.a, chunk.b, chunk.c, scalar);
                if let Some(sink) = &tracker {
                    chunk.record_access(sink.as_ref(), kernel);
                }
            },
        );
        start.elapsed().as_secs_f64()
    }

    /// Runs the full STREAM sequence (`ntimes` repetitions of
    /// Copy→Scale→Add→Triad) on the worker pool and returns the per-kernel
    /// best-of-N bandwidths, exactly like the reference benchmark. Every
    /// repetition re-enters the pool's resident workers over the epoch
    /// barrier, so the per-iteration cost carries no thread-spawn overhead —
    /// the steady-state property the paper's bandwidth numbers assume.
    pub fn run(&mut self, pool: &PinnedPool) -> BandwidthReport {
        let mut report = BandwidthReport::new(pool.len());
        for _ in 0..self.config.ntimes {
            for kernel in Kernel::ALL {
                let seconds = self.run_kernel_once(kernel, pool);
                report.record(KernelMeasurement {
                    kernel,
                    threads: pool.len(),
                    seconds,
                    bytes: self.config.bytes_per_invocation(kernel),
                });
            }
        }
        report
    }

    /// The current contents of the three arrays (`a`, `b`, `c`) — used by
    /// equality tests comparing serial and parallel runs bit-for-bit.
    pub fn arrays(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.a, &self.b, &self.c)
    }

    /// Overwrites element `index` of array `c` (test hook for validation).
    #[cfg(test)]
    fn corrupt_c(&mut self, index: usize, value: f64) {
        self.c[index] = value;
    }

    /// Validates the arrays against the analytically expected values, as the
    /// reference STREAM does after the timed loops. Returns the maximum
    /// relative error observed.
    pub fn validate(&self) -> f64 {
        let (ea, eb, ec) = self.config.expected_values();
        let mut max_err = 0.0f64;
        let check = |expected: f64, values: &[f64], max_err: &mut f64| {
            for &v in values {
                let err = ((v - expected) / expected).abs();
                if err > *max_err {
                    *max_err = err;
                }
            }
        };
        check(ea, &self.a, &mut max_err);
        check(eb, &self.b, &mut max_err);
        check(ec, &self.c, &mut max_err);
        max_err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sz;
    use numa::topology::sapphire_rapids_cxl;
    use numa::AffinityPolicy;

    fn pool(threads: usize) -> PinnedPool {
        let topo = sapphire_rapids_cxl();
        let placement = AffinityPolicy::close().place(&topo, threads).unwrap();
        PinnedPool::new(&topo, &placement)
    }

    #[test]
    fn single_threaded_run_validates() {
        let mut stream = VolatileStream::new(StreamConfig::small(sz(10_000)));
        let report = stream.run(&pool(1));
        assert!(stream.validate() < 1e-12);
        assert_eq!(report.measurements().len(), 4 * 3);
        for kernel in Kernel::ALL {
            assert!(report.best_bandwidth_gbs(kernel).unwrap() > 0.0);
        }
    }

    #[test]
    fn multi_threaded_run_produces_identical_results() {
        let config = StreamConfig::small(sz(50_000));
        let mut serial = VolatileStream::new(config);
        serial.run(&pool(1));
        let mut parallel = VolatileStream::new(config);
        parallel.run(&pool(8));
        assert!(serial.validate() < 1e-12);
        assert!(parallel.validate() < 1e-12);
    }

    #[test]
    fn serial_and_parallel_runs_agree_bitwise() {
        // The partitioned in-place path must be numerically *identical* to a
        // serial run — same element-wise operations, no reassociation.
        let config = StreamConfig::small(sz(12_345));
        let mut serial = VolatileStream::new(config);
        serial.run(&pool(1));
        for threads in [2, 3, 7, 8] {
            let mut parallel = VolatileStream::new(config);
            parallel.run(&pool(threads));
            let (sa, sb, sc) = serial.arrays();
            let (pa, pb, pc) = parallel.arrays();
            for (s, p) in [(sa, pa), (sb, pb), (sc, pc)] {
                assert!(
                    s.iter()
                        .zip(p.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{threads}-thread run diverged bitwise from serial"
                );
            }
        }
    }

    #[test]
    fn validation_detects_corruption() {
        let elements = sz(1000);
        let mut stream = VolatileStream::new(StreamConfig::small(elements));
        stream.run(&pool(2));
        stream.corrupt_c(elements / 2, -1.0e9);
        assert!(stream.validate() > 1e-3);
    }

    #[test]
    fn attached_tracker_sees_stream_byte_accounting() {
        use std::sync::Arc;

        let elements = sz(16_384);
        let tracker = Arc::new(cxl_pmem::AccessTracker::new(
            elements as u64 * 8,
            4096, // tiering-chunk granularity, unrelated to worker windows
        ));
        let mut stream = VolatileStream::new(StreamConfig::small(elements));
        stream.set_tracker(Some(tracker.clone()));
        let report = stream.run(&pool(4));
        assert!(stream.validate() < 1e-12, "sampling must not perturb data");
        assert_eq!(report.measurements().len(), 4 * 3);
        // ntimes × ALL kernels: every byte of the span read 1 (Copy/Scale)
        // or 2 (Add/Triad) times and written once per invocation.
        let heat = tracker.heat();
        let total_read: u64 = heat.iter().map(|h| h.read_bytes).sum();
        let total_written: u64 = heat.iter().map(|h| h.write_bytes).sum();
        let span = elements as u64 * 8;
        let ntimes = 3u64;
        assert_eq!(total_read, ntimes * span * (1 + 1 + 2 + 2));
        assert_eq!(total_written, ntimes * span * 4);
        // Every chunk participated (uniform sweep → uniform heat).
        assert!(heat.iter().all(|h| h.total() > 0));
        // Detaching stops the sampling.
        stream.set_tracker(None);
        stream.run(&pool(4));
        let after: u64 = tracker.heat().iter().map(|h| h.total()).sum();
        assert_eq!(after, total_read + total_written);
    }

    #[test]
    fn awkward_sizes_are_handled() {
        // Element counts that do not divide evenly by the thread count,
        // prime counts, and fewer elements than workers.
        for (elements, threads) in [(sz(10_007), 7), (sz(9973), 8), (3, 8), (1, 4), (17, 16)] {
            let mut stream = VolatileStream::new(StreamConfig::small(elements));
            stream.run(&pool(threads));
            assert!(
                stream.validate() < 1e-12,
                "{elements} elements on {threads} threads"
            );
        }
    }
}
