//! STREAM over ordinary heap arrays (the Memory-Mode / CC-NUMA flavour).

use crate::kernels::{Kernel, StreamConfig};
use crate::report::{BandwidthReport, KernelMeasurement};
use numa::{PinnedPool, WorkerCtx};
use parking_lot::RwLock;
use std::time::Instant;

/// A STREAM instance over three heap-allocated `f64` arrays.
pub struct VolatileStream {
    config: StreamConfig,
    a: RwLock<Vec<f64>>,
    b: RwLock<Vec<f64>>,
    c: RwLock<Vec<f64>>,
}

impl VolatileStream {
    /// Allocates and initialises the arrays with the STREAM initial values
    /// (a = 2.0 after the initial scaling, b = 2.0, c = 0.0).
    pub fn new(config: StreamConfig) -> Self {
        VolatileStream {
            config,
            a: RwLock::new(vec![2.0; config.elements]),
            b: RwLock::new(vec![2.0; config.elements]),
            c: RwLock::new(vec![0.0; config.elements]),
        }
    }

    /// The run configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    fn run_kernel_once(&self, kernel: Kernel, pool: &PinnedPool) -> f64 {
        let scalar = self.config.scalar;
        let elements = self.config.elements;
        let start = Instant::now();
        let a = &self.a;
        let b = &self.b;
        let c = &self.c;
        pool.run(|ctx: WorkerCtx| {
            let (lo, hi) = ctx.chunk(elements);
            if lo == hi {
                return;
            }
            // Each worker owns a disjoint chunk; copy it out, compute, copy
            // back. The copies stay inside the worker's chunk so there is no
            // cross-thread interference; the real memory traffic is what the
            // simulator accounts separately.
            let mut a_chunk = a.read()[lo..hi].to_vec();
            let mut b_chunk = b.read()[lo..hi].to_vec();
            let mut c_chunk = c.read()[lo..hi].to_vec();
            kernel.apply(&mut a_chunk, &mut b_chunk, &mut c_chunk, scalar);
            match kernel {
                Kernel::Copy | Kernel::Add => c.write()[lo..hi].copy_from_slice(&c_chunk),
                Kernel::Scale => b.write()[lo..hi].copy_from_slice(&b_chunk),
                Kernel::Triad => a.write()[lo..hi].copy_from_slice(&a_chunk),
            }
        });
        start.elapsed().as_secs_f64()
    }

    /// Runs the full STREAM sequence (`ntimes` repetitions of
    /// Copy→Scale→Add→Triad) on the worker pool and returns the per-kernel
    /// best-of-N bandwidths, exactly like the reference benchmark.
    pub fn run(&self, pool: &PinnedPool) -> BandwidthReport {
        let mut report = BandwidthReport::new(pool.len());
        for _ in 0..self.config.ntimes {
            for kernel in Kernel::ALL {
                let seconds = self.run_kernel_once(kernel, pool);
                report.record(KernelMeasurement {
                    kernel,
                    threads: pool.len(),
                    seconds,
                    bytes: self.config.bytes_per_invocation(kernel),
                });
            }
        }
        report
    }

    /// Validates the arrays against the analytically expected values, as the
    /// reference STREAM does after the timed loops. Returns the maximum
    /// relative error observed.
    pub fn validate(&self) -> f64 {
        let (ea, eb, ec) = self.config.expected_values();
        let mut max_err = 0.0f64;
        let check = |expected: f64, values: &[f64], max_err: &mut f64| {
            for &v in values {
                let err = ((v - expected) / expected).abs();
                if err > *max_err {
                    *max_err = err;
                }
            }
        };
        check(ea, &self.a.read(), &mut max_err);
        check(eb, &self.b.read(), &mut max_err);
        check(ec, &self.c.read(), &mut max_err);
        max_err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa::topology::sapphire_rapids_cxl;
    use numa::AffinityPolicy;

    fn pool(threads: usize) -> PinnedPool {
        let topo = sapphire_rapids_cxl();
        let placement = AffinityPolicy::close().place(&topo, threads).unwrap();
        PinnedPool::new(&topo, &placement)
    }

    #[test]
    fn single_threaded_run_validates() {
        let stream = VolatileStream::new(StreamConfig::small(10_000));
        let report = stream.run(&pool(1));
        assert!(stream.validate() < 1e-12);
        assert_eq!(report.measurements().len(), 4 * 3);
        for kernel in Kernel::ALL {
            assert!(report.best_bandwidth_gbs(kernel).unwrap() > 0.0);
        }
    }

    #[test]
    fn multi_threaded_run_produces_identical_results() {
        let config = StreamConfig::small(50_000);
        let serial = VolatileStream::new(config);
        serial.run(&pool(1));
        let parallel = VolatileStream::new(config);
        parallel.run(&pool(8));
        assert!(serial.validate() < 1e-12);
        assert!(parallel.validate() < 1e-12);
    }

    #[test]
    fn validation_detects_corruption() {
        let stream = VolatileStream::new(StreamConfig::small(1000));
        stream.run(&pool(2));
        stream.c.write()[500] = -1.0e9;
        assert!(stream.validate() > 1e-3);
    }

    #[test]
    fn awkward_sizes_are_handled() {
        // Element counts that do not divide evenly by the thread count.
        let stream = VolatileStream::new(StreamConfig::small(10_007));
        stream.run(&pool(7));
        assert!(stream.validate() < 1e-12);
    }
}
