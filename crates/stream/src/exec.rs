//! Zero-copy parallel execution primitives for the STREAM hot path.
//!
//! The original execution core copied every worker's chunk of `a`, `b`, `c`
//! out of a lock, ran the kernel on the copies, and copied the result back —
//! tripling the memory traffic of a benchmark whose whole point is to measure
//! memory traffic, and serialising workers on the lock. This module replaces
//! that with true in-place parallel execution: each pinned worker receives a
//! disjoint `&mut [f64]` window of the three arrays and the kernel runs
//! directly on the underlying storage.
//!
//! # Safety argument
//!
//! Handing several threads simultaneous `&mut` access into one allocation is
//! only sound if no two of those borrows can overlap and no other access to
//! the buffers can happen while they are live. Both guarantees are enforced
//! by construction, not by caller discipline:
//!
//! 1. **Exclusivity over the whole arrays** — [`ChunkedArrays::new`] takes
//!    `&'a mut [f64]` for all three arrays, so for the lifetime `'a` the
//!    borrow checker proves nothing else can read or write them. The struct
//!    only stores raw pointers derived from those unique borrows.
//! 2. **Disjointness between workers** — chunk boundaries come from
//!    [`numa::chunk_for`], whose partition property (every index in
//!    `[0, len)` belongs to exactly one `(thread, nthreads)` chunk, chunks
//!    are contiguous and non-overlapping) is property-tested in the `numa`
//!    crate. Two different thread indices therefore can never alias.
//! 3. **At-most-once materialisation per chunk** — the same thread index
//!    claimed twice *would* alias, so [`ChunkedArrays::chunk`] burns a
//!    one-shot atomic claim flag per index: the second claim of a chunk
//!    panics before any reference is created. A `ChunkedArrays` is built per
//!    kernel invocation, so the one-shot flags mirror the one-shot use.
//!
//! Under those three invariants the `slice::from_raw_parts_mut` calls below
//! produce references that are unique for their lifetime, which is exactly
//! the soundness requirement. The rest of the crate stays `deny(unsafe_code)`;
//! only this module may use `unsafe`, and only inside these two abstractions.
//! The invariants are independent of *which* threads execute the chunks: the
//! persistent [`PinnedPool`] dispatches each invocation to its resident
//! workers over an epoch barrier, and the barrier (the submitter does not
//! return until every worker checked in) is what keeps the `ChunkedArrays`
//! borrow alive for exactly the window the workers use it. This module and
//! the pool's epoch protocol are exercised under Miri in CI.
//!
//! [`PerWorker`] applies the same claim-flag discipline to reusable
//! per-worker scratch state (the STREAM-PMem staging buffers), but with
//! releasable claims since scratch is reused across kernel invocations.

#![allow(unsafe_code)]

use crate::kernels::Kernel;
use numa::{chunk_for, PinnedPool, WorkerCtx};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};

/// Observer of per-worker access windows on the STREAM hot path — the
/// sampling hook the adaptive tiering engine's `AccessTracker` plugs into.
///
/// Byte spans are element offsets scaled to bytes (`element × 8` for the
/// `f64` STREAM arrays): the three arrays share one logical index space, so
/// a tiering chunk covers the same element range of `a`, `b` and `c`.
/// Implementations must be cheap — they run inside every worker's kernel
/// window, and `BENCH_tiering.json` holds the whole hook under a 5 % hot-path
/// overhead budget in CI.
pub trait AccessSink: Send + Sync {
    /// Records a read of the byte span `[lo, hi)`.
    fn record_read(&self, lo: u64, hi: u64);
    /// Records a write of the byte span `[lo, hi)`.
    fn record_write(&self, lo: u64, hi: u64);
}

impl AccessSink for cxl_pmem::AccessTracker {
    fn record_read(&self, lo: u64, hi: u64) {
        cxl_pmem::AccessTracker::record_read(self, lo, hi);
    }

    fn record_write(&self, lo: u64, hi: u64) {
        cxl_pmem::AccessTracker::record_write(self, lo, hi);
    }
}

/// Records one `kernel` invocation over the element window `[lo, hi)` into
/// `sink` using STREAM's byte-accounting rules — one read per input array the
/// kernel consumes, one write for its output array. The single definition
/// both hot paths share: the in-place engine samples through
/// [`ArrayChunk::record_access`], the staged STREAM-PMem path calls it with
/// its worker window directly, so volatile and pmem heat stay comparable.
pub fn record_kernel_span(sink: &dyn AccessSink, kernel: Kernel, lo: usize, hi: usize) {
    if lo >= hi {
        return;
    }
    let byte_lo = lo as u64 * 8;
    let byte_hi = hi as u64 * 8;
    let (reads_a, reads_b, reads_c) = kernel.reads();
    for reads in [reads_a, reads_b, reads_c] {
        if reads {
            sink.record_read(byte_lo, byte_hi);
        }
    }
    sink.record_write(byte_lo, byte_hi);
}

/// Three equal-length `f64` arrays partitioned into per-worker windows.
///
/// Built once per kernel invocation from exclusive borrows of the STREAM
/// arrays; workers call [`chunk`](Self::chunk) with their thread index to
/// receive their disjoint in-place window.
pub struct ChunkedArrays<'a> {
    a: *mut f64,
    b: *mut f64,
    c: *mut f64,
    len: usize,
    nthreads: usize,
    claimed: Vec<AtomicBool>,
    _arrays: PhantomData<&'a mut [f64]>,
}

// SAFETY: the raw pointers originate from `&mut [f64]` borrows held for 'a,
// and `chunk` only ever hands out disjoint, claim-guarded windows (see the
// module-level safety argument), so sharing the handle across threads is
// sound.
unsafe impl Send for ChunkedArrays<'_> {}
unsafe impl Sync for ChunkedArrays<'_> {}

/// One worker's in-place window over the three arrays.
pub struct ArrayChunk<'g> {
    /// Window of array `a`.
    pub a: &'g mut [f64],
    /// Window of array `b`.
    pub b: &'g mut [f64],
    /// Window of array `c`.
    pub c: &'g mut [f64],
    /// First element index (inclusive) of the window in the full arrays.
    pub lo: usize,
    /// Last element index (exclusive) of the window in the full arrays.
    pub hi: usize,
}

impl ArrayChunk<'_> {
    /// Number of elements in the window.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the window is empty (more workers than elements).
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Samples this window's traffic for one `kernel` invocation into `sink`:
    /// one read record per input array the kernel consumes, one write record
    /// for its output array — the byte accounting STREAM itself uses, at the
    /// worker-window granularity the tiering planners want.
    pub fn record_access(&self, sink: &dyn AccessSink, kernel: Kernel) {
        record_kernel_span(sink, kernel, self.lo, self.hi);
    }
}

impl<'a> ChunkedArrays<'a> {
    /// Wraps the three arrays for partitioning across `nthreads` workers.
    ///
    /// # Panics
    ///
    /// Panics if the arrays have different lengths.
    pub fn new(a: &'a mut [f64], b: &'a mut [f64], c: &'a mut [f64], nthreads: usize) -> Self {
        assert_eq!(a.len(), b.len(), "STREAM arrays must have equal lengths");
        assert_eq!(a.len(), c.len(), "STREAM arrays must have equal lengths");
        let len = a.len();
        ChunkedArrays {
            a: a.as_mut_ptr(),
            b: b.as_mut_ptr(),
            c: c.as_mut_ptr(),
            len,
            nthreads,
            claimed: (0..nthreads).map(|_| AtomicBool::new(false)).collect(),
            _arrays: PhantomData,
        }
    }

    /// Total elements per array.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arrays are empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Claims worker `thread`'s windows of the three arrays.
    ///
    /// The static-schedule chunk boundaries are the same ones
    /// [`WorkerCtx::chunk`] reports, so simulator byte accounting and real
    /// execution agree element-for-element.
    ///
    /// # Panics
    ///
    /// Panics if `thread >= nthreads` or if this chunk was already claimed —
    /// each chunk is claimable exactly once per `ChunkedArrays`.
    pub fn chunk(&self, thread: usize) -> ArrayChunk<'_> {
        assert!(
            thread < self.nthreads,
            "thread {thread} out of range for {} partitions",
            self.nthreads
        );
        let already = self.claimed[thread].swap(true, Ordering::AcqRel);
        assert!(!already, "chunk {thread} claimed twice");
        let (lo, hi) = chunk_for(thread, self.nthreads, self.len);
        // SAFETY: `lo..hi` windows for distinct claimed `thread` values are
        // disjoint (chunk_for partitions [0, len)), the claim flag above
        // guarantees this window is materialised at most once, and the
        // underlying arrays are exclusively borrowed for 'a — see the
        // module-level safety argument.
        unsafe {
            ArrayChunk {
                a: std::slice::from_raw_parts_mut(self.a.add(lo), hi - lo),
                b: std::slice::from_raw_parts_mut(self.b.add(lo), hi - lo),
                c: std::slice::from_raw_parts_mut(self.c.add(lo), hi - lo),
                lo,
                hi,
            }
        }
    }
}

/// Reusable per-worker mutable state (scratch buffers, counters) shared
/// across a worker pool without locks on the hot path.
///
/// Unlike [`ChunkedArrays`], slots are claim/release: a worker may re-enter
/// its slot on every kernel invocation, but two concurrent claims of the same
/// slot panic instead of aliasing.
pub struct PerWorker<T> {
    slots: Vec<UnsafeCell<T>>,
    claimed: Vec<AtomicBool>,
}

// SAFETY: a slot is only ever reachable through `with`, which enforces
// exclusive access via its claim flag; moving T across threads requires Send.
unsafe impl<T: Send> Sync for PerWorker<T> {}

impl<T> PerWorker<T> {
    /// Creates `n` slots, initialising slot `i` with `init(i)`.
    pub fn new(n: usize, mut init: impl FnMut(usize) -> T) -> Self {
        PerWorker {
            slots: (0..n).map(|i| UnsafeCell::new(init(i))).collect(),
            claimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs `f` with exclusive access to slot `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range or the slot is currently claimed by
    /// another caller.
    pub fn with<R>(&self, thread: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let already = self.claimed[thread].swap(true, Ordering::AcqRel);
        assert!(!already, "per-worker slot {thread} claimed concurrently");
        // Release the claim even if `f` panics, so a poisoned run does not
        // wedge later invocations.
        struct Release<'a>(&'a AtomicBool);
        impl Drop for Release<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        let _release = Release(&self.claimed[thread]);
        // SAFETY: the claim flag gives this call exclusive access to the
        // slot; the Acquire/Release pair orders it against previous users.
        let slot = unsafe { &mut *self.slots[thread].get() };
        f(slot)
    }

    /// Mutable iteration over all slots (requires exclusive ownership, so no
    /// claims are needed).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|cell| cell.get_mut())
    }
}

/// Runs `f` over every worker of `pool` in parallel, handing each its
/// disjoint in-place window of the three arrays. Returns the workers' results
/// in thread order.
///
/// This is the zero-copy replacement for the copy-out/copy-back loop: the
/// closure computes directly on the backing storage of `a`, `b`, `c`. The
/// pool's workers are resident — one invocation costs one epoch-barrier
/// round-trip, not `nthreads` thread spawns.
pub fn run_partitioned<R, F>(
    pool: &PinnedPool,
    a: &mut [f64],
    b: &mut [f64],
    c: &mut [f64],
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(WorkerCtx, ArrayChunk<'_>) -> R + Sync,
{
    let arrays = ChunkedArrays::new(a, b, c, pool.len());
    pool.run(|ctx| {
        let chunk = arrays.chunk(ctx.thread);
        f(ctx, chunk)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa::topology::sapphire_rapids_cxl;
    use numa::AffinityPolicy;

    fn pool(threads: usize) -> PinnedPool {
        let topo = sapphire_rapids_cxl();
        let placement = AffinityPolicy::close().place(&topo, threads).unwrap();
        PinnedPool::new(&topo, &placement)
    }

    #[test]
    fn chunks_are_disjoint_and_cover_everything() {
        let mut a: Vec<f64> = (0..1003).map(|i| i as f64).collect();
        let mut b = a.clone();
        let mut c = a.clone();
        let arrays = ChunkedArrays::new(&mut a, &mut b, &mut c, 7);
        let mut seen = vec![false; 1003];
        for t in 0..7 {
            let chunk = arrays.chunk(t);
            assert_eq!(chunk.len(), chunk.hi - chunk.lo);
            for (offset, &value) in chunk.a.iter().enumerate() {
                let index = chunk.lo + offset;
                assert_eq!(value, index as f64, "window must map onto the array");
                assert!(!seen[index], "index {index} handed to two chunks");
                seen[index] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every element must be covered");
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn double_claim_panics() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        let mut c = vec![0.0; 16];
        let arrays = ChunkedArrays::new(&mut a, &mut b, &mut c, 4);
        let _first = arrays.chunk(2);
        let _second = arrays.chunk(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_thread_panics() {
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        let mut c = vec![0.0; 4];
        let arrays = ChunkedArrays::new(&mut a, &mut b, &mut c, 2);
        let _ = arrays.chunk(2);
    }

    #[test]
    fn parallel_in_place_writes_land_in_the_arrays() {
        let pool = pool(8);
        let mut a = vec![1.0f64; 10_007];
        let mut b = vec![2.0f64; 10_007];
        let mut c = vec![0.0f64; 10_007];
        run_partitioned(&pool, &mut a, &mut b, &mut c, |_ctx, chunk| {
            for ((c, a), b) in chunk.c.iter_mut().zip(chunk.a.iter()).zip(chunk.b.iter()) {
                *c = a + b;
            }
        });
        assert!(c.iter().all(|&x| x == 3.0));
        assert!(a.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn more_workers_than_elements_yields_empty_tail_chunks() {
        let pool = pool(8);
        let mut a = vec![5.0f64; 3];
        let mut b = vec![5.0f64; 3];
        let mut c = vec![0.0f64; 3];
        let lens = run_partitioned(&pool, &mut a, &mut b, &mut c, |_ctx, chunk| {
            for (c, a) in chunk.c.iter_mut().zip(chunk.a.iter()) {
                *c = *a;
            }
            chunk.len()
        });
        assert_eq!(lens.iter().sum::<usize>(), 3);
        assert_eq!(lens.iter().filter(|&&l| l == 0).count(), 5);
        assert!(c.iter().all(|&x| x == 5.0));
    }

    #[test]
    fn per_worker_slots_are_exclusive_and_reusable() {
        let pool = pool(6);
        let scratch: PerWorker<Vec<u64>> = PerWorker::new(6, |_| Vec::new());
        for round in 0..3u64 {
            pool.run(|ctx| {
                scratch.with(ctx.thread, |buf| buf.push(round));
            });
        }
        let mut scratch = scratch;
        for buf in scratch.iter_mut() {
            assert_eq!(*buf, vec![0, 1, 2], "each slot sees every round once");
        }
    }

    #[test]
    #[should_panic(expected = "claimed concurrently")]
    fn per_worker_nested_claim_panics() {
        let scratch: PerWorker<u32> = PerWorker::new(2, |_| 0);
        scratch.with(0, |_| scratch.with(0, |v| *v += 1));
    }

    #[test]
    fn per_worker_releases_slot_after_panic() {
        let scratch: PerWorker<u32> = PerWorker::new(1, |_| 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scratch.with(0, |_| panic!("worker died"));
        }));
        assert!(result.is_err());
        // The claim must have been released on unwind.
        scratch.with(0, |v| *v = 7);
    }
}
