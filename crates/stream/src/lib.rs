//! STREAM and STREAM-PMem.
//!
//! The paper's entire quantitative evaluation is the STREAM benchmark (Copy,
//! Scale, Add, Triad over three 100 M-element `double` arrays) in two
//! flavours: the original cache-coherent version (Memory-Mode / CC-NUMA runs)
//! and STREAM-PMem, where the arrays are `POBJ_ALLOC`ed from a `pmemobj` pool
//! (App-Direct runs). This crate provides both:
//!
//! * [`kernels`] — the four kernels, their byte/flop accounting and the
//!   analytic validation values from the reference implementation.
//! * [`exec`] — the zero-copy parallel execution engine: per-worker disjoint
//!   `&mut` windows over the three arrays and reusable per-worker scratch,
//!   with the soundness argument documented at the module level. Its
//!   [`exec::AccessSink`] hook samples every worker window into the adaptive
//!   tiering engine's per-chunk heat counters.
//! * [`volatile`] — STREAM over ordinary heap arrays, parallelised with the
//!   affinity-aware [`numa::PinnedPool`].
//! * [`pmem_stream`] — STREAM-PMem over [`pmem::PersistentArray`]s living in a
//!   pool (optionally a pool on the CXL expander).
//! * [`report`] — per-kernel bandwidth bookkeeping (best-of-N, as STREAM
//!   reports).
//! * [`runner`] — the bridge to the analytical machine model: converts a
//!   kernel + thread placement + data placement + access mode into the
//!   simulated bandwidth the harness plots, while the functional kernels above
//!   are used to validate correctness of the data path.
//!
//! # Example
//!
//! Run the four STREAM kernels over heap arrays with two pinned workers and
//! check Triad against its analytic expectation:
//!
//! ```
//! use numa::{topology, AffinityPolicy, PinnedPool};
//! use stream_bench::{Kernel, StreamConfig, VolatileStream};
//!
//! let topo = topology::sapphire_rapids_cxl();
//! let placement = AffinityPolicy::close().place(&topo, 2).unwrap();
//! let pool = PinnedPool::new(&topo, &placement);
//!
//! let mut stream = VolatileStream::new(StreamConfig {
//!     elements: 1001,
//!     ntimes: 2,
//!     scalar: 3.0,
//! });
//! let report = stream.run(&pool);
//! assert!(report.best(Kernel::Triad).is_some());
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the `exec` module opts back in for the two
// audited abstractions that make zero-copy partitioning possible.
#![deny(unsafe_code)]

pub mod exec;

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared knobs for the crate's test suites.

    /// Scales an element count down under Miri (interpretation is ~3 orders
    /// of magnitude slower); keeps the count odd so the static-schedule
    /// partitions stay awkward. One definition so the Miri divisor cannot
    /// drift between suites.
    pub fn sz(full: usize) -> usize {
        if cfg!(miri) {
            (full / 64).max(33) | 1
        } else {
            full
        }
    }
}

pub mod kernels;
pub mod pmem_stream;
pub mod report;
pub mod runner;
pub mod volatile;

pub use exec::{AccessSink, ArrayChunk, ChunkedArrays, PerWorker};
pub use kernels::{Kernel, StreamArray, StreamConfig};
pub use pmem_stream::PmemStream;
pub use report::{BandwidthReport, KernelMeasurement};
pub use runner::SimulatedStream;
pub use volatile::VolatileStream;
