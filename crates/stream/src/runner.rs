//! The bridge between STREAM and the analytical machine model.
//!
//! Running 100 M-element STREAM on the host that executes this reproduction
//! would measure *that host*, not the paper's Sapphire-Rapids-plus-CXL
//! testbed. The harness therefore separates two concerns:
//!
//! * **correctness** — the functional kernels in [`crate::volatile`] and
//!   [`crate::pmem_stream`] really run (on smaller arrays) and are validated;
//! * **performance** — [`SimulatedStream`] feeds the kernel's byte counts,
//!   thread placement, data placement and access mode into the calibrated
//!   `memsim` engine via the `cxl-pmem` runtime, producing the bandwidth
//!   numbers the figures plot.

use crate::kernels::{Kernel, StreamConfig};
use cxl_pmem::{AccessMode, CxlPmemRuntime, Result as RuntimeResult};
use memsim::PhaseReport;
use numa::{NodeId, PinnedPool, ThreadPlacement};
use std::sync::Arc;

/// One point of a figure: a kernel, a thread count, a placement and the
/// simulated bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedPoint {
    /// The kernel.
    pub kernel: Kernel,
    /// Number of threads.
    pub threads: usize,
    /// NUMA node the arrays live on.
    pub data_node: NodeId,
    /// Access mode (App-Direct / Memory Mode).
    pub mode: AccessMode,
    /// Simulated bandwidth (GB/s).
    pub bandwidth_gbs: f64,
    /// Simulated elapsed time for one kernel invocation (seconds).
    pub seconds: f64,
    /// Which resource was the bottleneck.
    pub bottleneck: String,
}

/// Simulated STREAM over a `cxl-pmem` runtime.
pub struct SimulatedStream<'rt> {
    runtime: &'rt CxlPmemRuntime,
    config: StreamConfig,
}

impl<'rt> SimulatedStream<'rt> {
    /// Creates a simulated STREAM with the paper's 100 M-element configuration.
    pub fn paper(runtime: &'rt CxlPmemRuntime) -> Self {
        SimulatedStream {
            runtime,
            config: StreamConfig::paper(),
        }
    }

    /// Creates a simulated STREAM with a custom configuration.
    pub fn new(runtime: &'rt CxlPmemRuntime, config: StreamConfig) -> Self {
        SimulatedStream { runtime, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// The resident worker pool for `placement`, provisioned and owned by the
    /// underlying runtime. Pairing a functional (really-executing) STREAM run
    /// with the simulated sweep goes through the same parked workers every
    /// time — no per-run thread spawning anywhere in the harness.
    pub fn workers(&self, placement: &ThreadPlacement) -> Arc<PinnedPool> {
        self.runtime.worker_pool(placement)
    }

    /// Per-thread `(read, write)` byte counts for one invocation of `kernel`.
    fn bytes_per_thread(&self, kernel: Kernel, placement: &ThreadPlacement) -> (u64, u64) {
        let threads = placement.len().max(1) as u64;
        let read_total = self.config.elements as u64 * kernel.read_bytes_per_element();
        let write_total = self.config.elements as u64 * kernel.write_bytes_per_element();
        (read_total / threads, write_total / threads)
    }

    fn phase_label(
        &self,
        kernel: Kernel,
        placement: &ThreadPlacement,
        data_node: NodeId,
        mode: AccessMode,
    ) -> String {
        format!(
            "{} {}t node{} {}",
            kernel.name(),
            placement.len(),
            data_node,
            mode.legend_prefix()
        )
    }

    /// Simulates one kernel invocation with the given placement, data node and
    /// mode, returning the full engine report.
    pub fn simulate_report(
        &self,
        kernel: Kernel,
        placement: &ThreadPlacement,
        data_node: NodeId,
        mode: AccessMode,
    ) -> RuntimeResult<PhaseReport> {
        let (read, write) = self.bytes_per_thread(kernel, placement);
        self.runtime.simulate_stream_phase(
            &self.phase_label(kernel, placement, data_node, mode),
            placement,
            data_node,
            read,
            write,
            mode,
        )
    }

    /// Memoised variant of [`simulate_report`](Self::simulate_report) backed
    /// by the engine's phase cache; used by [`sweep`](Self::sweep) where grid
    /// points with identical traffic (Copy/Scale, Add/Triad) collapse. Hits
    /// share the first verdict via `Arc` (including its label).
    pub fn simulate_report_cached(
        &self,
        kernel: Kernel,
        placement: &ThreadPlacement,
        data_node: NodeId,
        mode: AccessMode,
    ) -> RuntimeResult<Arc<PhaseReport>> {
        let (read, write) = self.bytes_per_thread(kernel, placement);
        self.runtime.simulate_stream_phase_cached(
            &self.phase_label(kernel, placement, data_node, mode),
            placement,
            data_node,
            read,
            write,
            mode,
        )
    }

    /// Simulates one kernel invocation and returns a figure point.
    pub fn simulate(
        &self,
        kernel: Kernel,
        placement: &ThreadPlacement,
        data_node: NodeId,
        mode: AccessMode,
    ) -> RuntimeResult<SimulatedPoint> {
        let report = self.simulate_report_cached(kernel, placement, data_node, mode)?;
        Ok(SimulatedPoint {
            kernel,
            threads: placement.len(),
            data_node,
            mode,
            bandwidth_gbs: report.bandwidth_gbs,
            seconds: report.seconds,
            bottleneck: report.bottleneck_resource.clone(),
        })
    }

    /// Simulates a whole thread sweep (1..=`max_threads`) for one kernel,
    /// through the engine's memoised phase cache.
    pub fn sweep(
        &self,
        kernel: Kernel,
        placements: &[ThreadPlacement],
        data_node: NodeId,
        mode: AccessMode,
    ) -> RuntimeResult<Vec<SimulatedPoint>> {
        placements
            .iter()
            .map(|placement| self.simulate(kernel, placement, data_node, mode))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_pmem::RuntimeBuilder;
    use numa::AffinityPolicy;

    fn placements(runtime: &CxlPmemRuntime, max: usize) -> Vec<ThreadPlacement> {
        (1..=max)
            .map(|t| {
                AffinityPolicy::SingleSocket(0)
                    .place(runtime.topology(), t)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn full_grid_sweep_hits_the_phase_cache_and_matches_uncached() {
        // The acceptance grid: 4 kernels × 10 thread counts × 3 nodes × 2
        // modes. Copy/Scale and Add/Triad submit byte-identical traffic, so
        // half the grid must come from the memoisation layer, and cached
        // verdicts must be bit-identical to the uncached engine path.
        let runtime = RuntimeBuilder::setup1().build();
        let stream = SimulatedStream::paper(&runtime);
        let placements = placements(&runtime, 10);
        let mut points = Vec::new();
        for kernel in Kernel::ALL {
            for node in 0..3 {
                for mode in [AccessMode::AppDirect, AccessMode::MemoryMode] {
                    points.extend(stream.sweep(kernel, &placements, node, mode).unwrap());
                }
            }
        }
        assert_eq!(points.len(), 4 * 10 * 3 * 2);
        let (hits, misses) = runtime.engine().cache_stats();
        assert_eq!(hits + misses, 240);
        assert!(hits >= 120, "only {hits} cache hits over the grid");
        for point in &points {
            let report = stream
                .simulate_report(
                    point.kernel,
                    &placements[point.threads - 1],
                    point.data_node,
                    point.mode,
                )
                .unwrap();
            assert_eq!(
                report.bandwidth_gbs.to_bits(),
                point.bandwidth_gbs.to_bits(),
                "cached point diverged from direct simulation"
            );
        }
    }

    #[test]
    fn functional_run_uses_the_runtime_resident_pool() {
        // The runner hands out the runtime-owned persistent pool, so the
        // functional-correctness leg and the simulated-performance leg share
        // one set of parked workers.
        let runtime = RuntimeBuilder::setup1().build();
        let stream = SimulatedStream::new(&runtime, StreamConfig::small(5_000));
        let placement = AffinityPolicy::SingleSocket(0)
            .place(runtime.topology(), 4)
            .unwrap();
        let workers = stream.workers(&placement);
        assert!(std::sync::Arc::ptr_eq(
            &workers,
            &stream.workers(&placement)
        ));
        let mut functional = crate::VolatileStream::new(StreamConfig::small(5_000));
        functional.run(&workers);
        assert!(functional.validate() < 1e-12);
        let point = stream
            .simulate(Kernel::Triad, &placement, 0, AccessMode::AppDirect)
            .unwrap();
        assert!(point.bandwidth_gbs > 0.0);
    }

    #[test]
    fn local_appdirect_saturates_in_the_paper_band() {
        let runtime = RuntimeBuilder::setup1().build();
        let stream = SimulatedStream::paper(&runtime);
        let placement = AffinityPolicy::SingleSocket(0)
            .place(runtime.topology(), 10)
            .unwrap();
        for kernel in Kernel::ALL {
            let point = stream
                .simulate(kernel, &placement, 0, AccessMode::AppDirect)
                .unwrap();
            // Paper class 1.(a): saturated around 20-22 GB/s (we accept 18-28).
            assert!(
                point.bandwidth_gbs > 18.0 && point.bandwidth_gbs < 28.0,
                "{} local App-Direct {}",
                kernel.name(),
                point.bandwidth_gbs
            );
        }
    }

    #[test]
    fn cxl_appdirect_is_roughly_half_of_remote_ddr5() {
        let runtime = RuntimeBuilder::setup1().build();
        let stream = SimulatedStream::paper(&runtime);
        let placement = AffinityPolicy::SingleSocket(0)
            .place(runtime.topology(), 10)
            .unwrap();
        let remote = stream
            .simulate(Kernel::Triad, &placement, 1, AccessMode::AppDirect)
            .unwrap();
        let cxl = stream
            .simulate(Kernel::Triad, &placement, 2, AccessMode::AppDirect)
            .unwrap();
        let ratio = cxl.bandwidth_gbs / remote.bandwidth_gbs;
        assert!(ratio > 0.40 && ratio < 0.75, "cxl/remote ratio {ratio}");
    }

    #[test]
    fn sweep_is_monotonic_until_saturation() {
        let runtime = RuntimeBuilder::setup1().build();
        let stream = SimulatedStream::paper(&runtime);
        let placements = placements(&runtime, 10);
        let points = stream
            .sweep(Kernel::Scale, &placements, 2, AccessMode::MemoryMode)
            .unwrap();
        assert_eq!(points.len(), 10);
        for pair in points.windows(2) {
            assert!(pair[1].bandwidth_gbs + 1e-9 >= pair[0].bandwidth_gbs);
        }
        // Saturated CXL Memory-Mode sits near the prototype ceiling (~10-12 GB/s).
        let last = points.last().unwrap();
        assert!(last.bandwidth_gbs > 8.0 && last.bandwidth_gbs < 13.0);
    }

    #[test]
    fn add_and_triad_move_more_bytes_than_copy_and_scale() {
        let runtime = RuntimeBuilder::setup1().build();
        let stream = SimulatedStream::new(&runtime, StreamConfig::small(1_000_000));
        let placement = AffinityPolicy::SingleSocket(0)
            .place(runtime.topology(), 4)
            .unwrap();
        let copy = stream
            .simulate_report(Kernel::Copy, &placement, 0, AccessMode::MemoryMode)
            .unwrap();
        let add = stream
            .simulate_report(Kernel::Add, &placement, 0, AccessMode::MemoryMode)
            .unwrap();
        assert!(add.payload_bytes > copy.payload_bytes);
    }
}
