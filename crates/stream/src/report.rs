//! Bandwidth bookkeeping: per-kernel best-of-N, as STREAM reports it.

use crate::kernels::Kernel;

/// One timed kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMeasurement {
    /// The kernel.
    pub kernel: Kernel,
    /// Number of worker threads used.
    pub threads: usize,
    /// Elapsed time (seconds).
    pub seconds: f64,
    /// Bytes moved by the invocation.
    pub bytes: u64,
}

impl KernelMeasurement {
    /// Achieved bandwidth in decimal GB/s.
    pub fn bandwidth_gbs(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1e9 / self.seconds
    }
}

/// Collected measurements of one STREAM run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BandwidthReport {
    threads: usize,
    measurements: Vec<KernelMeasurement>,
}

impl BandwidthReport {
    /// Creates an empty report for a run with `threads` workers.
    pub fn new(threads: usize) -> Self {
        BandwidthReport {
            threads,
            measurements: Vec::new(),
        }
    }

    /// Thread count of the run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Records one measurement.
    pub fn record(&mut self, measurement: KernelMeasurement) {
        self.measurements.push(measurement);
    }

    /// All measurements, in execution order.
    pub fn measurements(&self) -> &[KernelMeasurement] {
        &self.measurements
    }

    /// Best (minimum-time, i.e. maximum-bandwidth) measurement of a kernel —
    /// STREAM reports the best of NTIMES, discarding the first iteration only
    /// in the reference code; with our repetition counts the distinction is
    /// immaterial, so the true best is used.
    pub fn best(&self, kernel: Kernel) -> Option<KernelMeasurement> {
        self.measurements
            .iter()
            .filter(|m| m.kernel == kernel)
            .copied()
            .min_by(|a, b| {
                a.seconds
                    .partial_cmp(&b.seconds)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Best bandwidth of a kernel (GB/s).
    pub fn best_bandwidth_gbs(&self, kernel: Kernel) -> Option<f64> {
        self.best(kernel).map(|m| m.bandwidth_gbs())
    }

    /// Mean bandwidth of a kernel (GB/s).
    pub fn mean_bandwidth_gbs(&self, kernel: Kernel) -> Option<f64> {
        let values: Vec<f64> = self
            .measurements
            .iter()
            .filter(|m| m.kernel == kernel)
            .map(|m| m.bandwidth_gbs())
            .collect();
        if values.is_empty() {
            return None;
        }
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }

    /// Renders the report in the reference benchmark's four-line format.
    pub fn render(&self) -> String {
        let mut out = String::from("Function    Best Rate GB/s  Avg GB/s\n");
        for kernel in Kernel::ALL {
            out.push_str(&format!(
                "{:<12}{:>14.2}{:>10.2}\n",
                format!("{}:", kernel.name()),
                self.best_bandwidth_gbs(kernel).unwrap_or(0.0),
                self.mean_bandwidth_gbs(kernel).unwrap_or(0.0),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(kernel: Kernel, seconds: f64) -> KernelMeasurement {
        KernelMeasurement {
            kernel,
            threads: 4,
            seconds,
            bytes: 1_000_000_000,
        }
    }

    #[test]
    fn bandwidth_math() {
        assert!((m(Kernel::Copy, 0.5).bandwidth_gbs() - 2.0).abs() < 1e-12);
        assert_eq!(m(Kernel::Copy, 0.0).bandwidth_gbs(), 0.0);
    }

    #[test]
    fn best_picks_the_fastest_repetition() {
        let mut report = BandwidthReport::new(4);
        report.record(m(Kernel::Triad, 1.0));
        report.record(m(Kernel::Triad, 0.25));
        report.record(m(Kernel::Triad, 0.5));
        report.record(m(Kernel::Copy, 0.8));
        assert_eq!(report.best(Kernel::Triad).unwrap().seconds, 0.25);
        assert!((report.best_bandwidth_gbs(Kernel::Triad).unwrap() - 4.0).abs() < 1e-12);
        assert!(report.best(Kernel::Add).is_none());
        assert!(report.mean_bandwidth_gbs(Kernel::Add).is_none());
        let mean = report.mean_bandwidth_gbs(Kernel::Triad).unwrap();
        assert!(mean > 1.0 && mean < 4.0);
    }

    #[test]
    fn render_lists_all_kernels() {
        let mut report = BandwidthReport::new(2);
        for kernel in Kernel::ALL {
            report.record(m(kernel, 0.5));
        }
        let text = report.render();
        for kernel in Kernel::ALL {
            assert!(text.contains(kernel.name()));
        }
        assert_eq!(report.threads(), 2);
    }
}
