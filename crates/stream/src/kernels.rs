//! The four STREAM kernels and their accounting rules.

/// One STREAM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = scalar * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + scalar * c[i]`
    Triad,
}

impl Kernel {
    /// All kernels in the order STREAM runs them.
    pub const ALL: [Kernel; 4] = [Kernel::Copy, Kernel::Scale, Kernel::Add, Kernel::Triad];

    /// Kernel name as STREAM prints it.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Copy => "Copy",
            Kernel::Scale => "Scale",
            Kernel::Add => "Add",
            Kernel::Triad => "Triad",
        }
    }

    /// Which paper figure this kernel's sweep appears in.
    pub fn figure_number(&self) -> u32 {
        match self {
            Kernel::Scale => 5,
            Kernel::Add => 6,
            Kernel::Copy => 7,
            Kernel::Triad => 8,
        }
    }

    /// Bytes read from memory per element (f64 elements, STREAM counting rules).
    pub fn read_bytes_per_element(&self) -> u64 {
        match self {
            Kernel::Copy | Kernel::Scale => 8,
            Kernel::Add | Kernel::Triad => 16,
        }
    }

    /// Bytes written to memory per element.
    pub fn write_bytes_per_element(&self) -> u64 {
        8
    }

    /// Total bytes moved per element (what STREAM divides time by).
    pub fn bytes_per_element(&self) -> u64 {
        self.read_bytes_per_element() + self.write_bytes_per_element()
    }

    /// Floating-point operations per element.
    pub fn flops_per_element(&self) -> u64 {
        match self {
            Kernel::Copy => 0,
            Kernel::Scale => 1,
            Kernel::Add => 1,
            Kernel::Triad => 2,
        }
    }

    /// Parses a kernel name (case-insensitive).
    pub fn parse(name: &str) -> Option<Kernel> {
        match name.to_ascii_lowercase().as_str() {
            "copy" => Some(Kernel::Copy),
            "scale" => Some(Kernel::Scale),
            "add" => Some(Kernel::Add),
            "triad" => Some(Kernel::Triad),
            _ => None,
        }
    }

    /// Which of the three arrays (`a`, `b`, `c`) the kernel reads.
    ///
    /// The zero-copy STREAM-PMem path uses this to stage only the inputs a
    /// chunk actually consumes instead of round-tripping all three arrays.
    pub fn reads(&self) -> (bool, bool, bool) {
        match self {
            Kernel::Copy => (true, false, false),
            Kernel::Scale => (false, false, true),
            Kernel::Add => (true, true, false),
            Kernel::Triad => (false, true, true),
        }
    }

    /// Which array the kernel writes.
    pub fn output(&self) -> StreamArray {
        match self {
            Kernel::Copy | Kernel::Add => StreamArray::C,
            Kernel::Scale => StreamArray::B,
            Kernel::Triad => StreamArray::A,
        }
    }

    /// Applies the kernel to a chunk: `a`, `b`, `c` are same-length slices of
    /// the three STREAM arrays restricted to this chunk.
    ///
    /// The bodies are zipped iterators over exactly the slices each kernel
    /// touches: no index arithmetic, no bounds checks in the loop, and a
    /// shape LLVM autovectorises.
    pub fn apply(&self, a: &mut [f64], b: &mut [f64], c: &mut [f64], scalar: f64) {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), c.len());
        match self {
            Kernel::Copy => {
                for (c, &a) in c.iter_mut().zip(a.iter()) {
                    *c = a;
                }
            }
            Kernel::Scale => {
                for (b, &c) in b.iter_mut().zip(c.iter()) {
                    *b = scalar * c;
                }
            }
            Kernel::Add => {
                for ((c, &a), &b) in c.iter_mut().zip(a.iter()).zip(b.iter()) {
                    *c = a + b;
                }
            }
            Kernel::Triad => {
                for ((a, &b), &c) in a.iter_mut().zip(b.iter()).zip(c.iter()) {
                    *a = b + scalar * c;
                }
            }
        }
    }
}

/// Identifies one of the three STREAM arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamArray {
    /// Array `a`.
    A,
    /// Array `b`.
    B,
    /// Array `c`.
    C,
}

/// Configuration of a STREAM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Elements per array (the paper uses 100 M).
    pub elements: usize,
    /// Number of repetitions of the kernel sequence (STREAM's `NTIMES`).
    pub ntimes: usize,
    /// The Scale/Triad scalar (STREAM uses 3.0).
    pub scalar: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            elements: 1_000_000,
            ntimes: memsim::calibration::STREAM_NTIMES,
            scalar: 3.0,
        }
    }
}

impl StreamConfig {
    /// The paper's configuration: 100 M elements per array.
    pub fn paper() -> Self {
        StreamConfig {
            elements: memsim::calibration::PAPER_STREAM_ELEMENTS,
            ..Self::default()
        }
    }

    /// A small configuration for functional tests.
    pub fn small(elements: usize) -> Self {
        StreamConfig {
            elements,
            ntimes: 3,
            scalar: 3.0,
        }
    }

    /// Total bytes one invocation of `kernel` moves.
    pub fn bytes_per_invocation(&self, kernel: Kernel) -> u64 {
        self.elements as u64 * kernel.bytes_per_element()
    }

    /// Computes the values every element of `a`, `b`, `c` must hold after
    /// `ntimes` repetitions of the Copy→Scale→Add→Triad sequence, starting
    /// from the STREAM initial conditions (a=1, b=2, c=0) — the same check the
    /// reference implementation performs.
    pub fn expected_values(&self) -> (f64, f64, f64) {
        let (mut a, mut b, mut c) = (1.0f64, 2.0f64, 0.0f64);
        // STREAM scales the initial a by 2.0 before the timed loops.
        a *= 2.0;
        for _ in 0..self.ntimes {
            c = a; // Copy
            b = self.scalar * c; // Scale
            c = a + b; // Add
            a = b + self.scalar * c; // Triad
        }
        (a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn names_figures_and_parse_round_trip() {
        for kernel in Kernel::ALL {
            assert_eq!(Kernel::parse(kernel.name()), Some(kernel));
        }
        assert_eq!(Kernel::parse("TRIAD"), Some(Kernel::Triad));
        assert_eq!(Kernel::parse("bogus"), None);
        assert_eq!(Kernel::Scale.figure_number(), 5);
        assert_eq!(Kernel::Add.figure_number(), 6);
        assert_eq!(Kernel::Copy.figure_number(), 7);
        assert_eq!(Kernel::Triad.figure_number(), 8);
    }

    #[test]
    fn byte_accounting_matches_stream_rules() {
        assert_eq!(Kernel::Copy.bytes_per_element(), 16);
        assert_eq!(Kernel::Scale.bytes_per_element(), 16);
        assert_eq!(Kernel::Add.bytes_per_element(), 24);
        assert_eq!(Kernel::Triad.bytes_per_element(), 24);
        assert_eq!(Kernel::Triad.flops_per_element(), 2);
        assert_eq!(Kernel::Copy.flops_per_element(), 0);
        let config = StreamConfig::small(1000);
        assert_eq!(config.bytes_per_invocation(Kernel::Add), 24_000);
    }

    #[test]
    fn kernels_compute_the_right_values() {
        let scalar = 3.0;
        let mut a = vec![2.0; 8];
        let mut b = vec![0.5; 8];
        let mut c = vec![0.0; 8];
        Kernel::Copy.apply(&mut a, &mut b, &mut c, scalar);
        assert!(c.iter().all(|&x| x == 2.0));
        Kernel::Scale.apply(&mut a, &mut b, &mut c, scalar);
        assert!(b.iter().all(|&x| x == 6.0));
        Kernel::Add.apply(&mut a, &mut b, &mut c, scalar);
        assert!(c.iter().all(|&x| x == 8.0));
        Kernel::Triad.apply(&mut a, &mut b, &mut c, scalar);
        assert!(a.iter().all(|&x| x == 6.0 + 3.0 * 8.0));
    }

    #[test]
    fn expected_values_match_a_manual_simulation() {
        let config = StreamConfig::small(4);
        let (ea, eb, ec) = config.expected_values();
        // Manually run the sequence on full (tiny) arrays.
        let mut a = vec![2.0f64; 4];
        let mut b = vec![2.0f64; 4];
        let mut c = vec![0.0f64; 4];
        // STREAM initialisation: a = 1 * 2.0, b = 2, c = 0.
        for x in b.iter_mut() {
            *x = 2.0;
        }
        for _ in 0..config.ntimes {
            for k in Kernel::ALL {
                k.apply(&mut a, &mut b, &mut c, config.scalar);
            }
        }
        assert!((a[0] - ea).abs() < 1e-9 * ea.abs());
        assert!((b[0] - eb).abs() < 1e-9 * eb.abs());
        assert!((c[0] - ec).abs() < 1e-9 * ec.abs());
    }

    #[test]
    fn paper_config_uses_100m_elements() {
        assert_eq!(StreamConfig::paper().elements, 100_000_000);
        assert_eq!(StreamConfig::default().scalar, 3.0);
    }

    proptest! {
        #[test]
        fn prop_kernels_are_elementwise(len in 1usize..100, scalar in 0.5f64..4.0) {
            // Applying a kernel to the whole array equals applying it chunk by chunk.
            let a0: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let b0: Vec<f64> = (0..len).map(|i| (i * 2) as f64).collect();
            let c0: Vec<f64> = (0..len).map(|i| (i * 3) as f64).collect();
            for kernel in Kernel::ALL {
                let (mut a1, mut b1, mut c1) = (a0.clone(), b0.clone(), c0.clone());
                kernel.apply(&mut a1, &mut b1, &mut c1, scalar);
                let (mut a2, mut b2, mut c2) = (a0.clone(), b0.clone(), c0.clone());
                let mid = len / 2;
                let (al, ar) = a2.split_at_mut(mid);
                let (bl, br) = b2.split_at_mut(mid);
                let (cl, cr) = c2.split_at_mut(mid);
                kernel.apply(al, bl, cl, scalar);
                kernel.apply(ar, br, cr, scalar);
                prop_assert_eq!(a1, a2);
                prop_assert_eq!(b1, b2);
                prop_assert_eq!(c1, c2);
            }
        }
    }
}
