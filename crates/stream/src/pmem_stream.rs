//! STREAM-PMem: the three arrays live in a persistent pool (App-Direct).
//!
//! This mirrors Listing 2 of the paper: the pool is created (or opened), the
//! three arrays are allocated from it, and the rest of the benchmark proceeds
//! unchanged. The arrays can live on any pool — including one provisioned on
//! the CXL expander by `cxl-pmem` — which is exactly the programming-model
//! portability argument the paper makes.

use crate::kernels::{Kernel, StreamConfig};
use crate::report::{BandwidthReport, KernelMeasurement};
use numa::{PinnedPool, WorkerCtx};
use pmem::{PersistentArray, PmemPool, Result as PmemResult, TypedOid};
use std::time::Instant;

/// STREAM-PMem over three persistent arrays in a pool.
pub struct PmemStream<'p> {
    config: StreamConfig,
    a: PersistentArray<'p, f64>,
    b: PersistentArray<'p, f64>,
    c: PersistentArray<'p, f64>,
}

/// The pool-root record STREAM-PMem stores so a restarted run can reattach to
/// its arrays (the `POBJ_LAYOUT`/root-object pattern).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRoot {
    /// Array `a`.
    pub a: TypedOid<f64>,
    /// Array `b`.
    pub b: TypedOid<f64>,
    /// Array `c`.
    pub c: TypedOid<f64>,
}

impl<'p> PmemStream<'p> {
    /// Allocates the three arrays in `pool` and initialises them with the
    /// STREAM initial values (the `initiate()` function of Listing 2).
    pub fn initiate(pool: &'p PmemPool, config: StreamConfig) -> PmemResult<Self> {
        let a = PersistentArray::allocate(pool, config.elements as u64)?;
        let b = PersistentArray::allocate(pool, config.elements as u64)?;
        let c = PersistentArray::allocate(pool, config.elements as u64)?;
        a.fill(2.0)?;
        b.fill(2.0)?;
        c.fill(0.0)?;
        a.persist_all()?;
        b.persist_all()?;
        c.persist_all()?;
        Ok(PmemStream { config, a, b, c })
    }

    /// Reattaches to arrays allocated by a previous run.
    pub fn reattach(pool: &'p PmemPool, config: StreamConfig, root: StreamRoot) -> Self {
        PmemStream {
            config,
            a: PersistentArray::from_oid(pool, root.a),
            b: PersistentArray::from_oid(pool, root.b),
            c: PersistentArray::from_oid(pool, root.c),
        }
    }

    /// The oids of the three arrays, to be stored via the pool root object.
    pub fn root(&self) -> StreamRoot {
        StreamRoot {
            a: self.a.typed_oid(),
            b: self.b.typed_oid(),
            c: self.c.typed_oid(),
        }
    }

    /// The run configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    fn run_kernel_once(&self, kernel: Kernel, pool: &PinnedPool) -> PmemResult<f64> {
        let scalar = self.config.scalar;
        let elements = self.config.elements;
        let start = Instant::now();
        let results: Vec<PmemResult<()>> = pool.run(|ctx: WorkerCtx| {
            let (lo, hi) = ctx.chunk(elements);
            if lo == hi {
                return Ok(());
            }
            let len = hi - lo;
            let mut a_chunk = vec![0.0f64; len];
            let mut b_chunk = vec![0.0f64; len];
            let mut c_chunk = vec![0.0f64; len];
            self.a.load_slice(lo as u64, &mut a_chunk)?;
            self.b.load_slice(lo as u64, &mut b_chunk)?;
            self.c.load_slice(lo as u64, &mut c_chunk)?;
            kernel.apply(&mut a_chunk, &mut b_chunk, &mut c_chunk, scalar);
            match kernel {
                Kernel::Copy | Kernel::Add => {
                    self.c.store_slice(lo as u64, &c_chunk)?;
                    self.c.persist(lo as u64, len as u64)?;
                }
                Kernel::Scale => {
                    self.b.store_slice(lo as u64, &b_chunk)?;
                    self.b.persist(lo as u64, len as u64)?;
                }
                Kernel::Triad => {
                    self.a.store_slice(lo as u64, &a_chunk)?;
                    self.a.persist(lo as u64, len as u64)?;
                }
            }
            Ok(())
        });
        for result in results {
            result?;
        }
        Ok(start.elapsed().as_secs_f64())
    }

    /// Runs the full STREAM-PMem sequence and returns per-kernel best-of-N
    /// bandwidths.
    pub fn run(&self, pool: &PinnedPool) -> PmemResult<BandwidthReport> {
        let mut report = BandwidthReport::new(pool.len());
        for _ in 0..self.config.ntimes {
            for kernel in Kernel::ALL {
                let seconds = self.run_kernel_once(kernel, pool)?;
                report.record(KernelMeasurement {
                    kernel,
                    threads: pool.len(),
                    seconds,
                    bytes: self.config.bytes_per_invocation(kernel),
                });
            }
        }
        Ok(report)
    }

    /// Validates the persistent arrays against the analytic expected values;
    /// returns the maximum relative error.
    pub fn validate(&self) -> PmemResult<f64> {
        let (ea, eb, ec) = self.config.expected_values();
        let mut max_err = 0.0f64;
        let mut check = |expected: f64, array: &PersistentArray<'p, f64>| -> PmemResult<()> {
            const CHUNK: usize = 8192;
            let mut buf = vec![0.0f64; CHUNK];
            let mut index = 0u64;
            while index < array.len() {
                let n = CHUNK.min((array.len() - index) as usize);
                array.load_slice(index, &mut buf[..n])?;
                for &v in &buf[..n] {
                    let err = ((v - expected) / expected).abs();
                    if err > max_err {
                        max_err = err;
                    }
                }
                index += n as u64;
            }
            Ok(())
        };
        check(ea, &self.a)?;
        check(eb, &self.b)?;
        check(ec, &self.c)?;
        Ok(max_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa::topology::sapphire_rapids_cxl;
    use numa::AffinityPolicy;
    use pmem::PmemPool;

    fn worker_pool(threads: usize) -> PinnedPool {
        let topo = sapphire_rapids_cxl();
        let placement = AffinityPolicy::close().place(&topo, threads).unwrap();
        PinnedPool::new(&topo, &placement)
    }

    fn pmem_pool(bytes: u64) -> PmemPool {
        PmemPool::create_volatile("stream-pmem", bytes).unwrap()
    }

    #[test]
    fn initiate_run_validate() {
        let pool = pmem_pool(8 * 1024 * 1024);
        let config = StreamConfig::small(20_000);
        let stream = PmemStream::initiate(&pool, config).unwrap();
        let report = stream.run(&worker_pool(4)).unwrap();
        assert!(stream.validate().unwrap() < 1e-12);
        assert_eq!(report.measurements().len(), 4 * config.ntimes);
        // Persist instrumentation proves the App-Direct path flushed data.
        assert!(pool.persist_stats().bytes_persisted > 0);
    }

    #[test]
    fn arrays_survive_reattach() {
        let pool = pmem_pool(8 * 1024 * 1024);
        let config = StreamConfig::small(5_000);
        let root = {
            let stream = PmemStream::initiate(&pool, config).unwrap();
            stream.run(&worker_pool(2)).unwrap();
            stream.root()
        };
        let reattached = PmemStream::reattach(&pool, config, root);
        assert!(reattached.validate().unwrap() < 1e-12);
    }

    #[test]
    fn pool_too_small_for_arrays_errors() {
        let pool = pmem_pool(512 * 1024);
        let config = StreamConfig::small(1_000_000);
        assert!(PmemStream::initiate(&pool, config).is_err());
    }

    #[test]
    fn single_thread_matches_expected_values_exactly() {
        let pool = pmem_pool(4 * 1024 * 1024);
        let config = StreamConfig::small(1_000);
        let stream = PmemStream::initiate(&pool, config).unwrap();
        stream.run(&worker_pool(1)).unwrap();
        assert!(stream.validate().unwrap() < 1e-12);
    }
}
