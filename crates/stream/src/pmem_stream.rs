//! STREAM-PMem: the three arrays live in a persistent pool (App-Direct).
//!
//! This mirrors Listing 2 of the paper: the pool is created (or opened), the
//! three arrays are allocated from it, and the rest of the benchmark proceeds
//! unchanged. The arrays can live on any pool — including one provisioned on
//! the CXL expander by `cxl-pmem` — which is exactly the programming-model
//! portability argument the paper makes.
//!
//! The execution core stages as little as possible: each worker loads only
//! the arrays its kernel *reads* into a reusable per-worker scratch buffer
//! (no per-invocation allocation), stores only the array the kernel *writes*,
//! and issues one `flush` for its whole chunk. A single `drain` fence per
//! kernel invocation then makes every chunk durable — the persist-granularity
//! batching that keeps the PMDK overhead at the paper's 10–15 % instead of a
//! per-range fence storm.
//!
//! The scratch buffers live **with the stream**, matching the persistent
//! [`PinnedPool`] worker lifecycle: the resident workers re-claim the same
//! [`PerWorker`] slots on every `run` (and every epoch within a run) instead
//! of getting freshly allocated staging buffers per call.

use crate::exec::{AccessSink, PerWorker};
use crate::kernels::{Kernel, StreamArray, StreamConfig};
use crate::report::{BandwidthReport, KernelMeasurement};
use numa::{PinnedPool, WorkerCtx};
use pmem::{PersistentArray, PmemPool, Result as PmemResult, TypedOid};
use std::sync::Arc;
use std::time::Instant;

/// Per-worker staging buffers, reused across every kernel invocation of
/// every run of the stream (the old path rebuilt the whole set per `run`
/// call, and before that allocated three fresh `Vec`s per worker per
/// invocation).
#[derive(Default)]
struct Scratch {
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
}

impl Scratch {
    fn resize(&mut self, len: usize) {
        self.a.resize(len, 0.0);
        self.b.resize(len, 0.0);
        self.c.resize(len, 0.0);
    }
}

/// STREAM-PMem over three persistent arrays in a pool.
pub struct PmemStream<'p> {
    config: StreamConfig,
    pool: &'p PmemPool,
    a: PersistentArray<'p, f64>,
    b: PersistentArray<'p, f64>,
    c: PersistentArray<'p, f64>,
    /// Staging buffers owned for the stream's lifetime; slot `t` is re-claimed
    /// by resident worker `t` on every epoch. Re-sized lazily when a run uses
    /// a pool with a different worker count.
    scratch: PerWorker<Scratch>,
    /// Optional access-sampling sink (the tiering engine's heat counters).
    tracker: Option<Arc<dyn AccessSink>>,
}

/// The pool-root record STREAM-PMem stores so a restarted run can reattach to
/// its arrays (the `POBJ_LAYOUT`/root-object pattern).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRoot {
    /// Array `a`.
    pub a: TypedOid<f64>,
    /// Array `b`.
    pub b: TypedOid<f64>,
    /// Array `c`.
    pub c: TypedOid<f64>,
}

impl<'p> PmemStream<'p> {
    /// Allocates the three arrays in `pool` and initialises them with the
    /// STREAM initial values (the `initiate()` function of Listing 2).
    pub fn initiate(pool: &'p PmemPool, config: StreamConfig) -> PmemResult<Self> {
        let a = PersistentArray::allocate(pool, config.elements as u64)?;
        let b = PersistentArray::allocate(pool, config.elements as u64)?;
        let c = PersistentArray::allocate(pool, config.elements as u64)?;
        a.fill(2.0)?;
        b.fill(2.0)?;
        c.fill(0.0)?;
        a.persist_all()?;
        b.persist_all()?;
        c.persist_all()?;
        Ok(PmemStream {
            config,
            pool,
            a,
            b,
            c,
            scratch: PerWorker::new(0, |_| Scratch::default()),
            tracker: None,
        })
    }

    /// Reattaches to arrays allocated by a previous run.
    pub fn reattach(pool: &'p PmemPool, config: StreamConfig, root: StreamRoot) -> Self {
        PmemStream {
            config,
            pool,
            a: PersistentArray::from_oid(pool, root.a),
            b: PersistentArray::from_oid(pool, root.b),
            c: PersistentArray::from_oid(pool, root.c),
            scratch: PerWorker::new(0, |_| Scratch::default()),
            tracker: None,
        }
    }

    /// Attaches (or detaches) an access-sampling sink — every worker's staged
    /// window is recorded with the same byte accounting as the in-place path.
    pub fn set_tracker(&mut self, tracker: Option<Arc<dyn AccessSink>>) {
        self.tracker = tracker;
    }

    /// The oids of the three arrays, to be stored via the pool root object.
    pub fn root(&self) -> StreamRoot {
        StreamRoot {
            a: self.a.typed_oid(),
            b: self.b.typed_oid(),
            c: self.c.typed_oid(),
        }
    }

    /// The run configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// One kernel invocation: load inputs, compute, store + flush per chunk,
    /// one drain fence for the whole invocation.
    fn run_kernel_once(
        &self,
        kernel: Kernel,
        pool: &PinnedPool,
        scratch: &PerWorker<Scratch>,
    ) -> PmemResult<f64> {
        let scalar = self.config.scalar;
        let elements = self.config.elements;
        let start = Instant::now();
        let results: Vec<PmemResult<()>> = pool.run(|ctx: WorkerCtx| {
            let (lo, hi) = ctx.chunk(elements);
            if lo == hi {
                return Ok(());
            }
            let len = hi - lo;
            scratch.with(ctx.thread, |s| {
                s.resize(len);
                // Stage only the inputs this kernel reads; the unread buffers
                // keep stale contents that the kernel never looks at.
                let (reads_a, reads_b, reads_c) = kernel.reads();
                if reads_a {
                    self.a.load_slice(lo as u64, &mut s.a)?;
                }
                if reads_b {
                    self.b.load_slice(lo as u64, &mut s.b)?;
                }
                if reads_c {
                    self.c.load_slice(lo as u64, &mut s.c)?;
                }
                kernel.apply(&mut s.a, &mut s.b, &mut s.c, scalar);
                // Store and flush (no fence) the one array the kernel wrote;
                // the caller issues a single drain for all chunks.
                let (output, buf) = match kernel.output() {
                    StreamArray::A => (&self.a, &s.a),
                    StreamArray::B => (&self.b, &s.b),
                    StreamArray::C => (&self.c, &s.c),
                };
                output.store_slice(lo as u64, buf)?;
                output.flush(lo as u64, len as u64)?;
                if let Some(sink) = &self.tracker {
                    crate::exec::record_kernel_span(sink.as_ref(), kernel, lo, hi);
                }
                Ok(())
            })
        });
        for result in results {
            result?;
        }
        // One store fence covers every worker's flushed chunk (`pmem_drain`).
        self.pool.drain();
        Ok(start.elapsed().as_secs_f64())
    }

    /// Runs the full STREAM-PMem sequence and returns per-kernel best-of-N
    /// bandwidths.
    ///
    /// The per-worker scratch is owned by the stream and persists across
    /// calls: a second `run` on the same pool stages through the exact same
    /// buffers, claimed epoch-by-epoch by the pool's resident workers.
    pub fn run(&mut self, pool: &PinnedPool) -> PmemResult<BandwidthReport> {
        if self.scratch.len() != pool.len() {
            self.scratch = PerWorker::new(pool.len(), |_| Scratch::default());
        }
        let mut report = BandwidthReport::new(pool.len());
        for _ in 0..self.config.ntimes {
            for kernel in Kernel::ALL {
                let seconds = self.run_kernel_once(kernel, pool, &self.scratch)?;
                report.record(KernelMeasurement {
                    kernel,
                    threads: pool.len(),
                    seconds,
                    bytes: self.config.bytes_per_invocation(kernel),
                });
            }
        }
        Ok(report)
    }

    /// Number of per-worker scratch slots currently provisioned (0 before the
    /// first run; thereafter the worker count of the last pool used).
    pub fn scratch_slots(&self) -> usize {
        self.scratch.len()
    }

    /// Validates the persistent arrays against the analytic expected values;
    /// returns the maximum relative error.
    pub fn validate(&self) -> PmemResult<f64> {
        let (ea, eb, ec) = self.config.expected_values();
        let mut max_err = 0.0f64;
        let mut check = |expected: f64, array: &PersistentArray<'p, f64>| -> PmemResult<()> {
            const CHUNK: usize = 8192;
            let mut buf = vec![0.0f64; CHUNK];
            let mut index = 0u64;
            while index < array.len() {
                let n = CHUNK.min((array.len() - index) as usize);
                array.load_slice(index, &mut buf[..n])?;
                for &v in &buf[..n] {
                    let err = ((v - expected) / expected).abs();
                    if err > max_err {
                        max_err = err;
                    }
                }
                index += n as u64;
            }
            Ok(())
        };
        check(ea, &self.a)?;
        check(eb, &self.b)?;
        check(ec, &self.c)?;
        Ok(max_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sz;
    use numa::topology::sapphire_rapids_cxl;
    use numa::AffinityPolicy;
    use pmem::PmemPool;

    fn worker_pool(threads: usize) -> PinnedPool {
        let topo = sapphire_rapids_cxl();
        let placement = AffinityPolicy::close().place(&topo, threads).unwrap();
        PinnedPool::new(&topo, &placement)
    }

    fn pmem_pool(bytes: u64) -> PmemPool {
        PmemPool::create_volatile("stream-pmem", bytes).unwrap()
    }

    #[test]
    fn initiate_run_validate() {
        let pool = pmem_pool(8 * 1024 * 1024);
        let config = StreamConfig::small(sz(20_000));
        let mut stream = PmemStream::initiate(&pool, config).unwrap();
        let report = stream.run(&worker_pool(4)).unwrap();
        assert!(stream.validate().unwrap() < 1e-12);
        assert_eq!(report.measurements().len(), 4 * config.ntimes);
        // Persist instrumentation proves the App-Direct path flushed data.
        assert!(pool.persist_stats().bytes_persisted > 0);
    }

    #[test]
    fn flush_batching_is_chunk_granular() {
        // Regression test for the flush-batched persist path: each kernel
        // invocation must issue at most one flush per worker (only workers
        // with non-empty chunks flush) and exactly one drain fence.
        let pool = pmem_pool(8 * 1024 * 1024);
        let config = StreamConfig::small(sz(10_007));
        let threads = 6;
        let mut stream = PmemStream::initiate(&pool, config).unwrap();
        let before = pool.persist_stats();
        stream.run(&worker_pool(threads)).unwrap();
        let after = pool.persist_stats();
        let invocations = (config.ntimes * Kernel::ALL.len()) as u64;
        let flushes = after.flushes - before.flushes;
        let drains = after.drains - before.drains;
        assert!(
            flushes <= invocations * threads as u64,
            "{flushes} flushes for {invocations} invocations × {threads} workers"
        );
        assert_eq!(
            drains, invocations,
            "exactly one drain fence per kernel invocation"
        );
        // Every written byte still reaches the backend: one chunk flush per
        // worker covers the worker's whole written range.
        let written_per_invocation = (config.elements * 8) as u64;
        assert_eq!(
            after.bytes_persisted - before.bytes_persisted,
            invocations * written_per_invocation
        );
    }

    #[test]
    fn more_workers_than_elements_flushes_only_nonempty_chunks() {
        let pool = pmem_pool(4 * 1024 * 1024);
        let config = StreamConfig::small(3);
        let mut stream = PmemStream::initiate(&pool, config).unwrap();
        let before = pool.persist_stats();
        stream.run(&worker_pool(8)).unwrap();
        let after = pool.persist_stats();
        let invocations = (config.ntimes * Kernel::ALL.len()) as u64;
        // Only the 3 workers with non-empty chunks flush.
        assert_eq!(after.flushes - before.flushes, invocations * 3);
        assert!(stream.validate().unwrap() < 1e-12);
    }

    #[test]
    fn scratch_is_resident_across_runs_and_tracks_pool_size() {
        let pool = pmem_pool(8 * 1024 * 1024);
        let config = StreamConfig::small(sz(4_096));
        let mut stream = PmemStream::initiate(&pool, config).unwrap();
        assert_eq!(stream.scratch_slots(), 0, "no scratch before the first run");
        stream.run(&worker_pool(4)).unwrap();
        assert_eq!(stream.scratch_slots(), 4);
        // A second run on the same worker count keeps the same slots (the
        // resident workers re-claim them); a different count re-provisions.
        stream.run(&worker_pool(4)).unwrap();
        assert_eq!(stream.scratch_slots(), 4);
        stream.run(&worker_pool(2)).unwrap();
        assert_eq!(stream.scratch_slots(), 2);
        // Three back-to-back runs advance the arrays by 3 × ntimes iterations;
        // validate through a view whose config expects exactly that.
        let accumulated = StreamConfig {
            ntimes: config.ntimes * 3,
            ..config
        };
        let view = PmemStream::reattach(&pool, accumulated, stream.root());
        assert!(view.validate().unwrap() < 1e-12);
    }

    #[test]
    fn arrays_survive_reattach() {
        let pool = pmem_pool(8 * 1024 * 1024);
        let config = StreamConfig::small(sz(5_000));
        let root = {
            let mut stream = PmemStream::initiate(&pool, config).unwrap();
            stream.run(&worker_pool(2)).unwrap();
            stream.root()
        };
        let reattached = PmemStream::reattach(&pool, config, root);
        assert!(reattached.validate().unwrap() < 1e-12);
    }

    #[test]
    fn attached_tracker_samples_the_staged_hot_path() {
        use std::sync::Arc;

        let pool = pmem_pool(8 * 1024 * 1024);
        let elements = sz(8_192);
        let config = StreamConfig::small(elements);
        let tracker = Arc::new(cxl_pmem::AccessTracker::new(elements as u64 * 8, 2048));
        let mut stream = PmemStream::initiate(&pool, config).unwrap();
        stream.set_tracker(Some(tracker.clone()));
        stream.run(&worker_pool(4)).unwrap();
        assert!(stream.validate().unwrap() < 1e-12);
        let heat = tracker.heat();
        let span = elements as u64 * 8;
        let ntimes = config.ntimes as u64;
        assert_eq!(
            heat.iter().map(|h| h.read_bytes).sum::<u64>(),
            ntimes * span * 6,
            "Copy+Scale read once, Add+Triad read twice"
        );
        assert_eq!(
            heat.iter().map(|h| h.write_bytes).sum::<u64>(),
            ntimes * span * 4
        );
        assert!(heat.iter().all(|h| h.total() > 0));
    }

    #[test]
    fn pool_too_small_for_arrays_errors() {
        let pool = pmem_pool(512 * 1024);
        let config = StreamConfig::small(1_000_000);
        assert!(PmemStream::initiate(&pool, config).is_err());
    }

    #[test]
    fn single_thread_matches_expected_values_exactly() {
        let pool = pmem_pool(4 * 1024 * 1024);
        let config = StreamConfig::small(sz(1_000));
        let mut stream = PmemStream::initiate(&pool, config).unwrap();
        stream.run(&worker_pool(1)).unwrap();
        assert!(stream.validate().unwrap() < 1e-12);
    }

    #[test]
    fn awkward_partition_sizes_validate() {
        for (elements, threads) in [(sz(9973), 7), (11, 8), (1, 2)] {
            let pool = pmem_pool(8 * 1024 * 1024);
            let config = StreamConfig::small(elements);
            let mut stream = PmemStream::initiate(&pool, config).unwrap();
            stream.run(&worker_pool(threads)).unwrap();
            assert!(
                stream.validate().unwrap() < 1e-12,
                "{elements} elements on {threads} threads"
            );
        }
    }
}
