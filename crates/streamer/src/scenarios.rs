//! Disaggregated-restart scenarios: the paper's federation story end-to-end.
//!
//! Figures 5–8 measure bandwidth; this module exercises the *availability*
//! claim of §1.3/§2.2 — a compute node checkpoints into switch-pooled CXL far
//! memory, fails mid-commit, and a different node attaches, acquires and
//! restores the last committed epoch. Each [`RestartScenario`] is one cell of
//! that story; [`run_all`] drives every cell and
//! [`disaggregation_table`] renders the result as a table next to the paper's
//! bandwidth tables.

use crate::tables::Table;
use cxl_pmem::cluster::{
    CheckpointCrash, CheckpointPhase, CoherenceMode, CrashPoint, SerialExecutor,
};
use cxl_pmem::{ClusterError, CxlPmemRuntime, DisaggregatedCluster, RuntimeBuilder};

/// Snapshot payload each scenario checkpoints (bytes).
const DATA_LEN: u64 = 128 * 1024;
/// Persist granularity (bytes).
const CHUNK_LEN: u64 = 8 * 1024;
/// Epochs host A commits before the injected failure.
const EPOCHS: u64 = 3;

/// The scenario group: every cross-host restart cell the harness runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestartScenario {
    /// Host A dies mid-commit (torn commit record); host B acquires and
    /// restores the last committed epoch bit-exact.
    FailoverMidCommit,
    /// Host B restores without acquiring first — the software-coherence
    /// discipline must refuse with a typed error, not return stale data.
    StaleReadRefused,
    /// Host A dies during its *first* commit, before ever publishing; any
    /// reader must get a typed never-published error.
    UnpublishedReadRefused,
    /// Hardware back-invalidation (CXL 3.0 style): the same failover works
    /// with no explicit acquire.
    HardwareCoherenceFailover,
}

impl RestartScenario {
    /// All scenarios, in narrative order.
    pub const ALL: [RestartScenario; 4] = [
        RestartScenario::FailoverMidCommit,
        RestartScenario::StaleReadRefused,
        RestartScenario::UnpublishedReadRefused,
        RestartScenario::HardwareCoherenceFailover,
    ];

    /// Human-readable title.
    pub fn title(&self) -> &'static str {
        match self {
            RestartScenario::FailoverMidCommit => "Failover after a mid-commit crash",
            RestartScenario::StaleReadRefused => "Restore without acquire is refused",
            RestartScenario::UnpublishedReadRefused => "Unpublished segment read is refused",
            RestartScenario::HardwareCoherenceFailover => "Failover under hardware coherence",
        }
    }
}

/// Outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Which scenario ran.
    pub scenario: RestartScenario,
    /// Whether the scenario's claim held.
    pub holds: bool,
    /// What happened, one line.
    pub detail: String,
}

/// Aggregate report of the whole scenario group.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartReport {
    /// Pooled expander cards behind the switch.
    pub devices: usize,
    /// Total pooled capacity (GiB).
    pub pooled_capacity_gib: f64,
    /// Per-scenario outcomes, in [`RestartScenario::ALL`] order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl RestartReport {
    /// Whether every scenario's claim held.
    pub fn all_hold(&self) -> bool {
        self.outcomes.iter().all(|o| o.holds)
    }
}

fn image(epoch: u64) -> Vec<u8> {
    (0..DATA_LEN as usize)
        .map(|i| (i as u8).wrapping_mul(29).wrapping_add(epoch as u8))
        .collect()
}

fn cluster(runtime: &CxlPmemRuntime, mode: CoherenceMode) -> DisaggregatedCluster {
    runtime.disaggregated_cluster(2, mode)
}

/// Commits [`EPOCHS`] epochs as host 0, then dies mid-commit of the next one.
fn commit_then_crash(cluster: &DisaggregatedCluster, name: &str) -> Result<(), ClusterError> {
    let mut a = cluster.host(0).create_segment(name, DATA_LEN, CHUNK_LEN)?;
    for epoch in 1..=EPOCHS {
        a.checkpoint(&image(epoch))?;
    }
    let err = a
        .checkpoint_crashing(
            &image(EPOCHS + 1),
            CheckpointCrash {
                phase: CheckpointPhase::Commit,
                point: CrashPoint::BeforeCommit,
            },
            &SerialExecutor,
        )
        .expect_err("the armed crash must fire");
    assert!(err.is_injected_crash(), "unexpected failure: {err}");
    Ok(())
}

fn run_scenario(
    runtime: &CxlPmemRuntime,
    scenario: RestartScenario,
) -> Result<ScenarioOutcome, ClusterError> {
    let outcome = |holds: bool, detail: String| {
        Ok(ScenarioOutcome {
            scenario,
            holds,
            detail,
        })
    };
    match scenario {
        RestartScenario::FailoverMidCommit => {
            let cluster = cluster(runtime, CoherenceMode::SoftwareManaged);
            commit_then_crash(&cluster, "stencil")?;
            let mut b = cluster.host(1).attach_segment("stencil")?;
            b.acquire()?;
            let mut out = vec![0u8; DATA_LEN as usize];
            let epoch = b.restore(&mut out)?;
            let bit_exact = out == image(epoch);
            outcome(
                epoch == EPOCHS && bit_exact,
                format!(
                    "host 1 restored epoch {epoch}/{EPOCHS} ({}) after host 0's torn commit",
                    if bit_exact { "bit-exact" } else { "CORRUPT" }
                ),
            )
        }
        RestartScenario::StaleReadRefused => {
            let cluster = cluster(runtime, CoherenceMode::SoftwareManaged);
            commit_then_crash(&cluster, "stencil")?;
            let mut b = cluster.host(1).attach_segment("stencil")?;
            let mut out = vec![0u8; DATA_LEN as usize];
            match b.restore(&mut out) {
                Err(ClusterError::NotAcquired { host, .. }) => outcome(
                    host == 1,
                    "restore before acquire refused with NotAcquired".to_string(),
                ),
                Err(e) => outcome(false, format!("wrong error: {e}")),
                Ok(epoch) => outcome(false, format!("stale restore of epoch {epoch} succeeded")),
            }
        }
        RestartScenario::UnpublishedReadRefused => {
            let cluster = cluster(runtime, CoherenceMode::SoftwareManaged);
            {
                let mut a = cluster
                    .host(0)
                    .create_segment("fresh", DATA_LEN, CHUNK_LEN)?;
                let _ = a.checkpoint_crashing(
                    &image(1),
                    CheckpointCrash {
                        phase: CheckpointPhase::HeaderWrite,
                        point: CrashPoint::BeforeCommit,
                    },
                    &SerialExecutor,
                );
            }
            let mut b = cluster.host(1).attach_segment("fresh")?;
            b.acquire()?;
            let mut out = vec![0u8; DATA_LEN as usize];
            match b.restore(&mut out) {
                Err(ClusterError::NeverPublished { .. }) => outcome(
                    true,
                    "read of a never-published segment refused with NeverPublished".to_string(),
                ),
                Err(e) => outcome(false, format!("wrong error: {e}")),
                Ok(epoch) => outcome(false, format!("epoch {epoch} restored without publication")),
            }
        }
        RestartScenario::HardwareCoherenceFailover => {
            let cluster = cluster(runtime, CoherenceMode::HardwareBackInvalidate);
            commit_then_crash(&cluster, "stencil")?;
            let mut b = cluster.host(1).attach_segment("stencil")?;
            let mut out = vec![0u8; DATA_LEN as usize];
            let epoch = b.restore(&mut out)?;
            let bit_exact = out == image(epoch);
            outcome(
                epoch == EPOCHS && bit_exact,
                format!("epoch {epoch} restored with no explicit acquire (back-invalidation)"),
            )
        }
    }
}

/// Runs the whole scenario group on the paper's Setup #1 runtime.
pub fn run_all() -> Result<RestartReport, ClusterError> {
    let runtime = RuntimeBuilder::setup1().build();
    let probe = cluster(&runtime, CoherenceMode::SoftwareManaged);
    let devices = probe.ports();
    let pooled_capacity_gib = probe.total_capacity() as f64 / (1u64 << 30) as f64;
    let outcomes = RestartScenario::ALL
        .iter()
        .map(|&s| run_scenario(&runtime, s))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RestartReport {
        devices,
        pooled_capacity_gib,
        outcomes,
    })
}

/// The disaggregated-restart table: one row per scenario plus the pool shape,
/// rendered alongside the paper's bandwidth tables.
pub fn disaggregation_table() -> Result<Table, ClusterError> {
    Ok(render_table(&run_all()?))
}

/// Renders an already-computed report as the disaggregated-restart table —
/// callers that just ran the scenario group render this instead of paying
/// for a second full run.
pub fn render_table(report: &RestartReport) -> Table {
    let mut rows = vec![vec![
        "Pooled far memory".to_string(),
        format!(
            "{} expander cards behind one CXL 2.0 switch",
            report.devices
        ),
        format!("{:.0} GiB shared pool", report.pooled_capacity_gib),
    ]];
    rows.extend(report.outcomes.iter().map(|o| {
        vec![
            o.scenario.title().to_string(),
            (if o.holds { "holds" } else { "FAILS" }).to_string(),
            o.detail.clone(),
        ]
    }));
    Table {
        title: "Disaggregated restart: cross-host checkpoint/restart over pooled CXL memory"
            .to_string(),
        headers: vec![
            "Scenario".to_string(),
            "Verdict".to_string(),
            "Detail".to_string(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_holds() {
        let report = run_all().unwrap();
        assert_eq!(report.outcomes.len(), RestartScenario::ALL.len());
        for outcome in &report.outcomes {
            assert!(
                outcome.holds,
                "{}: {}",
                outcome.scenario.title(),
                outcome.detail
            );
        }
        assert!(report.all_hold());
        assert_eq!(report.devices, 2);
        assert!(report.pooled_capacity_gib > 0.0);
    }

    #[test]
    fn table_renders_all_scenarios() {
        let table = disaggregation_table().unwrap();
        assert_eq!(table.rows.len(), 1 + RestartScenario::ALL.len());
        let md = table.to_markdown();
        assert!(md.contains("Disaggregated restart"));
        assert!(md.contains("holds"));
        assert!(!md.contains("FAILS"));
        assert!(table.to_csv().contains("Scenario"));
    }
}
