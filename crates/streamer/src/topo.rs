//! The topology-ingestion scenario group: every reference machine description
//! is ingested end-to-end — text → compiled device graph → runtime → traffic.
//!
//! The sweep drives each `.topo` description shipped with `memsim`
//! ([`memsim::topology::reference`]) through
//! [`RuntimeBuilder::from_description`]: the near tier is measured with the
//! paper's single-socket affinity, the far tier with threads spread across
//! every socket (interleave windows aggregate cards, so saturating them takes
//! both sockets' root ports), and machines exposing a CPU-less node also
//! provision a functional pool on it. On top of the per-topology rows the
//! report carries the silicon-validated calibration table
//! ([`memsim::calibration::run_calibration`]) whose maximum relative error CI
//! gates, plus the cross-topology check that the 2-way interleave description
//! really widens the far tier over the single-card one.

use crate::tables::Table;
use cxl_pmem::{Result as RuntimeResult, RuntimeBuilder, TierPolicy};
use memsim::calibration::{calibration_json, run_calibration, CalibrationReport};
use memsim::topology::reference;
use numa::AffinityPolicy;

/// 1 GiB of per-thread reads in each measured phase (2:1 read:write).
const GIB: u64 = 1 << 30;
/// Threads used to saturate a far tier from every socket.
const SPREAD_THREADS: usize = 20;
/// Threads used on the paper's single-socket near-tier runs.
const LOCAL_THREADS: usize = 10;
/// Minimum far-tier widening the 2-way interleave description must show over
/// the single-card one.
const MIN_INTERLEAVE_SPEEDUP: f64 = 1.5;

/// One ingested reference topology, measured end-to-end.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyPoint {
    /// Registry name of the description (e.g. `spr-dual-cxl-interleave`).
    pub name: String,
    /// Machine name from the description's `[machine]` section.
    pub machine: String,
    /// NUMA nodes in the compiled graph.
    pub nodes: usize,
    /// Sockets in the compiled graph.
    pub sockets: usize,
    /// Interleave ways of the widest declared window (0 = no window).
    pub interleave_ways: usize,
    /// Near-tier STREAM-mix bandwidth (GB/s), single-socket affinity.
    pub local_gbs: f64,
    /// The far node measured (CPU-less node, or the other socket's memory).
    pub far_node: usize,
    /// Far-tier STREAM-mix bandwidth (GB/s).
    pub far_gbs: f64,
    /// Idle load-to-use latency CPU 0 → far node (ns).
    pub far_latency_ns: f64,
    /// Mount of the pool provisioned on the CPU-less tier, when one exists.
    pub pool_mount: Option<String>,
    /// Whether this topology's sanity checks hold (near ≥ far bandwidth,
    /// both tiers deliver traffic, CPU-less tiers take a pool).
    pub holds: bool,
}

/// The whole sweep: per-topology rows plus the calibration verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyReport {
    /// One row per ingested reference description.
    pub points: Vec<TopologyPoint>,
    /// Far-tier bandwidth of the 2-way interleave description over the
    /// single-card one.
    pub interleave_speedup: f64,
    /// The silicon-validated calibration table (CXL-DMSim / published
    /// measurements vs the engine's predictions).
    pub calibration: CalibrationReport,
}

impl TopologyReport {
    /// The acceptance criterion CI enforces: at least three topologies ingest
    /// and hold, interleaving widens the far tier, and every calibration row
    /// sits inside [`memsim::calibration::CALIBRATION_ERROR_BOUND`].
    pub fn all_hold(&self) -> bool {
        self.points.len() >= 3
            && self.points.iter().all(|p| p.holds)
            && self.interleave_speedup >= MIN_INTERLEAVE_SPEEDUP
            && self.calibration.all_hold()
    }
}

/// Ingests and measures one reference description.
fn run_point(name: &str, text: &str) -> RuntimeResult<TopologyPoint> {
    let runtime = RuntimeBuilder::from_description(text)?.build();
    let machine = runtime.machine();
    let nodes = runtime.topology().nodes().len();
    let sockets = runtime.topology().sockets().len();
    let socket_ids: Vec<usize> = runtime.topology().sockets().iter().map(|s| s.id).collect();
    let local_node = runtime.topology().socket(0)?.local_node;
    let cpuless = runtime.topology().memory_only_nodes().next().map(|n| n.id);
    // The far tier is the CPU-less node when the machine has one, otherwise
    // the other socket's memory (the paper's remote-DRAM tier).
    let far_node = match cpuless {
        Some(node) => node,
        None => TierPolicy::RemoteDram { socket: 0 }.resolve(machine)?,
    };

    let local_placement = runtime.place(&AffinityPolicy::SingleSocket(0), LOCAL_THREADS)?;
    let local = runtime.simulate_stream_phase(
        "near",
        &local_placement,
        local_node,
        GIB,
        GIB / 2,
        cxl_pmem::AccessMode::AppDirect,
    )?;
    // CPU-less windows aggregate expander cards, so saturating them takes
    // both sockets' root ports; plain remote DRAM keeps the single-socket
    // affinity (spreading would make the measurement symmetric with "near").
    let far_placement = if cpuless.is_some() {
        runtime.place(
            &AffinityPolicy::Spread {
                sockets: socket_ids,
            },
            SPREAD_THREADS,
        )?
    } else {
        local_placement
    };
    let far = runtime.simulate_stream_phase(
        "far",
        &far_placement,
        far_node,
        GIB,
        GIB / 2,
        cxl_pmem::AccessMode::AppDirect,
    )?;
    let far_latency_ns = machine.access_latency_ns(0, far_node)?;

    let pool_mount = match cpuless {
        Some(_) => Some(
            runtime
                .provision_pool(&TierPolicy::CxlExpander, "topo-sweep", 8 * 1024 * 1024)?
                .mount()
                .to_string(),
        ),
        None => None,
    };

    let interleave_ways = runtime
        .interleaved_windows()
        .iter()
        .map(|w| w.endpoints().len())
        .max()
        .unwrap_or(0);
    let holds = local.bandwidth_gbs + 1e-6 >= far.bandwidth_gbs
        && far.bandwidth_gbs > 0.0
        && (cpuless.is_none() || pool_mount.is_some());

    Ok(TopologyPoint {
        name: name.to_string(),
        machine: machine.topology().name.clone(),
        nodes,
        sockets,
        interleave_ways,
        local_gbs: local.bandwidth_gbs,
        far_node,
        far_gbs: far.bandwidth_gbs,
        far_latency_ns,
        pool_mount,
        holds,
    })
}

/// Runs the sweep over every reference description.
pub fn run_topologies() -> RuntimeResult<TopologyReport> {
    let mut points = Vec::new();
    for (name, text) in reference::all() {
        points.push(run_point(name, text)?);
    }
    let far_of = |name: &str| {
        points
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.far_gbs)
            .unwrap_or(0.0)
    };
    let single = far_of("sapphire-rapids-cxl");
    let interleave_speedup = if single > 0.0 {
        far_of("spr-dual-cxl-interleave") / single
    } else {
        0.0
    };
    Ok(TopologyReport {
        points,
        interleave_speedup,
        calibration: run_calibration(),
    })
}

/// Renders an already-computed report as the topology-sweep table.
pub fn render_table(report: &TopologyReport) -> Table {
    let rows = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{} ({} nodes / {} sockets)", p.machine, p.nodes, p.sockets),
                if p.interleave_ways > 1 {
                    format!("{}-way", p.interleave_ways)
                } else {
                    "—".to_string()
                },
                format!("{:.1}", p.local_gbs),
                format!("node {} @ {:.0} ns", p.far_node, p.far_latency_ns),
                format!("{:.1}", p.far_gbs),
                p.pool_mount.clone().unwrap_or_else(|| "—".to_string()),
                (if p.holds { "holds" } else { "FAILS" }).to_string(),
            ]
        })
        .collect();
    Table {
        title: format!(
            "Topology ingestion sweep: reference descriptions compiled and driven end-to-end \
             (2-way interleave widens the far tier {:.2}x; calibration max rel. error {:.1}%)",
            report.interleave_speedup,
            report.calibration.max_rel_error() * 100.0
        ),
        headers: vec![
            "description".to_string(),
            "machine".to_string(),
            "window".to_string(),
            "near GB/s".to_string(),
            "far tier".to_string(),
            "far GB/s".to_string(),
            "pool".to_string(),
            "verdict".to_string(),
        ],
        rows,
    }
}

/// Runs the sweep and renders its table in one call.
pub fn topology_table() -> RuntimeResult<Table> {
    Ok(render_table(&run_topologies()?))
}

/// The `BENCH_calibration.json` document for an already-computed report.
pub fn report_json(report: &TopologyReport) -> String {
    calibration_json(&report.calibration)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reference_topology_ingests_and_holds() {
        let report = run_topologies().unwrap();
        assert!(report.points.len() >= 3, "need ≥3 ingested topologies");
        for point in &report.points {
            assert!(
                point.holds,
                "{}: near {:.1} GB/s, far {:.1} GB/s",
                point.name, point.local_gbs, point.far_gbs
            );
            assert!(point.sockets >= 2);
        }
        assert!(
            report.interleave_speedup >= MIN_INTERLEAVE_SPEEDUP,
            "interleave speedup {:.2}",
            report.interleave_speedup
        );
        assert!(report.calibration.all_hold());
        assert!(report.all_hold());
    }

    #[test]
    fn cpuless_machines_take_a_pool_and_declare_their_window() {
        let report = run_topologies().unwrap();
        let dual = report
            .points
            .iter()
            .find(|p| p.name == "spr-dual-cxl-interleave")
            .unwrap();
        assert_eq!(dual.interleave_ways, 2);
        assert_eq!(dual.pool_mount.as_deref(), Some("/mnt/pmem2"));
        let xeon = report
            .points
            .iter()
            .find(|p| p.name == "xeon-gold-ddr4")
            .unwrap();
        assert_eq!(xeon.interleave_ways, 0);
        assert!(xeon.pool_mount.is_none());
    }

    #[test]
    fn table_and_json_render_the_verdict() {
        let report = run_topologies().unwrap();
        let md = render_table(&report).to_markdown();
        assert!(md.contains("Topology ingestion sweep"));
        assert!(md.contains("holds"));
        assert!(!md.contains("FAILS"));
        let json = report_json(&report);
        assert!(json.contains("\"schema\": \"bench-calibration-v1\""));
        assert!(json.contains("\"all_hold\": true"));
    }
}
